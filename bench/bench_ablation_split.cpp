// Ablation of the paper's design choices (google-benchmark):
//  - minimization mode (exact QM / heuristic / merge-only / raw cubes)
//  - sublist split vs flat two-level SOP
//  - structural hashing (CSE) on/off
// for sigma in {1, 2, 6.15543} at n = 128. Counters report the netlist op
// count so speed can be correlated with circuit size.

#include <benchmark/benchmark.h>

#include "ct/bitsliced_sampler.h"
#include "ct/flat_baseline.h"
#include "ct/wide_sampler.h"
#include "prng/splitmix.h"

namespace {

using namespace cgs;

gauss::GaussianParams params_for(int idx) {
  switch (idx) {
    case 0: return gauss::GaussianParams::sigma_1(128);
    case 1: return gauss::GaussianParams::sigma_2(128);
    default: return gauss::GaussianParams::sigma_6_15543(128);
  }
}

void run_batches(benchmark::State& state, ct::BitslicedSampler& s) {
  prng::SplitMix64Source rng(9);
  std::uint32_t out[64];
  for (auto _ : state) benchmark::DoNotOptimize(s.sample_magnitudes(rng, out));
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["netlist_ops"] =
      static_cast<double>(s.synth().stats.netlist_ops);
  state.counters["Delta"] = s.synth().stats.delta;
}

void BM_SplitMode(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  ct::SynthesisConfig cfg;
  cfg.mode = static_cast<ct::MinimizeMode>(state.range(1));
  ct::BitslicedSampler s(ct::synthesize(m, cfg));
  run_batches(state, s);
}
BENCHMARK(BM_SplitMode)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3}})
    ->ArgNames({"sigma_idx", "mode"});

void BM_FlatBaseline(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  ct::FlatConfig cfg;
  cfg.merge = state.range(1) != 0;
  ct::BitslicedSampler s(ct::synthesize_flat(m, cfg));
  run_batches(state, s);
}
BENCHMARK(BM_FlatBaseline)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"sigma_idx", "merge"});

void BM_CseOff(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  ct::SynthesisConfig cfg;
  cfg.cse = false;
  ct::BitslicedSampler s(ct::synthesize(m, cfg));
  run_batches(state, s);
}
BENCHMARK(BM_CseOff)->Arg(1)->Arg(2)->ArgName("sigma_idx");

// Batch width: 64 lanes (uint64) vs 256 lanes (vector extension / AVX2).
void BM_BatchWidth64(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  ct::BitslicedSampler s(ct::synthesize(m, {}));
  prng::SplitMix64Source rng(10);
  std::uint32_t out[64];
  for (auto _ : state) benchmark::DoNotOptimize(s.sample_magnitudes(rng, out));
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchWidth64)->Arg(1)->Arg(2)->ArgName("sigma_idx");

void BM_BatchWidth256(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  ct::WideBitslicedSampler s(ct::synthesize(m, {}));
  prng::SplitMix64Source rng(11);
  std::uint32_t out[256];
  std::uint64_t valid[4];
  for (auto _ : state) {
    s.sample_magnitudes(rng, out, valid);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BatchWidth256)->Arg(1)->Arg(2)->ArgName("sigma_idx");

// Synthesis-time cost of the pipeline itself (one-off, but worth tracking).
void BM_SynthesisTime(benchmark::State& state) {
  const gauss::ProbMatrix m(params_for(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto s = ct::synthesize(m, {});
    benchmark::DoNotOptimize(s.stats.netlist_ops);
  }
}
BENCHMARK(BM_SynthesisTime)->Arg(0)->Arg(1)->Arg(2)->ArgName("sigma_idx");

}  // namespace

BENCHMARK_MAIN();
