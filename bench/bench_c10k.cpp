// C10K gate for the multi-reactor front door: >=2000 concurrent
// pipelining connections driving mixed keygen/sign/verify traffic through
// net::Server -> serve::route_frame -> Dispatcher, measured once against
// a single reactor and once against a multi-reactor server on the same
// dispatcher. Three gates:
//
//   - correctness (always): every sign response decodes and comes back
//     accepted when round-tripped through the verify lane (the server
//     verifies every signature it produced), spot-checked locally against
//     the public key; queue-full admission failures are retried, never
//     dropped.
//   - scaling (wall-clock, skipped when CGS_BENCH_SKIP_TIMING_GATE is
//     set): multi-reactor throughput >= 1.0x the single-reactor run —
//     adding event loops must never cost throughput.
//   - overload (always): with max_connections far below the offered
//     connection count, every connection over the cap observes a typed
//     kOverloaded frame before its close — zero silent closes, and the
//     server's shed counter agrees with what the clients saw.
//
// Usage: bench_c10k [n_connections] [--json FILE]

#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "falcon/verify.h"
#include "net/client.h"
#include "net/overload.h"
#include "net/server.h"
#include "serial/serial.h"
#include "serve/dispatcher.h"
#include "serve/router.h"
#include "serve/wire.h"

namespace {

using namespace cgs;
using benchutil::Clock;

constexpr std::size_t kDegree = 64;
constexpr int kThreads = 16;
constexpr int kSignsPerConn = 4;  // pipelined window per connection
constexpr int kRetryLimit = 10;   // per request, on queue-full admission

/// Raise RLIMIT_NOFILE toward `wanted`; returns the achieved soft limit.
std::size_t raise_nofile(std::size_t wanted) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < wanted) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? wanted
            : std::min<rlim_t>(static_cast<rlim_t>(wanted), lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

struct PhaseTotals {
  std::atomic<std::uint64_t> signs{0}, verifies{0}, keygens{0}, retries{0};
  std::atomic<std::uint64_t> decode_failures{0}, verdict_failures{0},
      local_verify_failures{0};
  double secs = 0.0;
  double rps() const {
    const double reqs = static_cast<double>(signs.load() + verifies.load() +
                                            keygens.load());
    return secs > 0 ? reqs / secs : 0.0;
  }
};

// One driver thread: owns `n_conns` pipelining connections. It pipelines
// a window of sign requests down every connection (a keygen rides along
// on connection 0 — a tenant onboarding mid-storm), reads the signatures
// back, then feeds every one through the verify lane and demands an
// accept — the server re-verifies every signature this bench produced.
// Responses arrive in completion order, not request order (lanes batch
// and interleave), so frames are classified by tag and slotted by
// request_id; queue-full admission failures are re-sent, never dropped.
void drive(std::uint16_t port, int n_conns, std::uint64_t key_id,
           const falcon::Verifier& verifier, std::atomic<int>& ready,
           const std::atomic<bool>& go, PhaseTotals& totals) {
  net::ClientOptions copts;
  copts.connect_timeout = std::chrono::milliseconds(15000);
  copts.read_timeout = std::chrono::milliseconds(60000);
  std::vector<net::Client> clients;
  clients.reserve(static_cast<std::size_t>(n_conns));
  for (int c = 0; c < n_conns; ++c) clients.emplace_back(port, copts);
  ++ready;
  while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

  serve::KeygenRequestFrame kg;
  kg.request_id = 9999;
  kg.degree = kDegree;
  kg.seed = 0x1000u + static_cast<std::uint64_t>(port);
  clients[0].send(serve::encode(kg));

  std::vector<std::vector<std::string>> messages(
      static_cast<std::size_t>(n_conns));
  std::vector<std::vector<falcon::Signature>> sigs(
      static_cast<std::size_t>(n_conns));

  // Window of signs down every connection before reading anything back:
  // all connections have requests in flight at once.
  for (int c = 0; c < n_conns; ++c) {
    sigs[c].resize(kSignsPerConn);
    for (int i = 0; i < kSignsPerConn; ++i) {
      messages[c].push_back("c10k conn " + std::to_string(c) + " msg " +
                            std::to_string(i));
      serve::SignRequestFrame req;
      req.request_id = static_cast<std::uint64_t>(i);
      req.key_id = key_id;
      req.message = messages[c].back();
      clients[c].send(serve::encode(req));
    }
  }
  bool local_checked = false;
  std::vector<std::vector<bool>> have(static_cast<std::size_t>(n_conns));
  for (int c = 0; c < n_conns; ++c) {
    have[c].assign(kSignsPerConn, false);
    net::Client& client = clients[static_cast<std::size_t>(c)];
    int frames_due = kSignsPerConn + (c == 0 ? 1 : 0);  // + the keygen
    std::vector<int> attempts(kSignsPerConn, 0);
    while (frames_due > 0) {
      std::optional<std::vector<std::uint8_t>> frame;
      try {
        frame = client.read();
      } catch (const std::exception&) {
        frame.reset();
      }
      if (!frame) {
        totals.decode_failures += static_cast<std::uint64_t>(frames_due);
        break;
      }
      --frames_due;
      try {
        if (serial::peek_tag(*frame) == serial::TypeTag::kKeygenResponse) {
          if (serve::decode_keygen_response(*frame).ok)
            ++totals.keygens;
          else
            ++totals.decode_failures;
          continue;
        }
        const serve::SignResponseFrame resp =
            serve::decode_sign_response(*frame);
        const std::size_t id = static_cast<std::size_t>(resp.request_id);
        if (id >= static_cast<std::size_t>(kSignsPerConn)) {
          ++totals.decode_failures;
        } else if (resp.ok) {
          ++totals.signs;
          sigs[c][id] = resp.to_signature();
          have[c][id] = true;
          if (!local_checked) {
            local_checked = true;
            if (!verifier.verify(messages[c][id], sigs[c][id]))
              ++totals.local_verify_failures;
          }
        } else if (attempts[id]++ < kRetryLimit) {
          // Queue-full admission: back off briefly and re-send the same
          // message, expecting one more response frame on this connection.
          ++totals.retries;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(attempts[id]));
          serve::SignRequestFrame retry;
          retry.request_id = id;
          retry.key_id = key_id;
          retry.message = messages[c][id];
          client.send(serve::encode(retry));
          ++frames_due;
        } else {
          ++totals.decode_failures;
        }
      } catch (const std::exception&) {
        ++totals.decode_failures;
      }
    }
  }
  // Round-trip every signature through the verify lane; all must accept.
  // Slots whose sign never succeeded are already counted as failures.
  for (int c = 0; c < n_conns; ++c) {
    for (int i = 0; i < kSignsPerConn; ++i)
      if (have[c][i])
        clients[c].send(serve::encode(serve::VerifyRequestFrame::make(
            static_cast<std::uint64_t>(i), key_id, messages[c][i],
            sigs[c][i])));
  }
  for (int c = 0; c < n_conns; ++c) {
    net::Client& client = clients[static_cast<std::size_t>(c)];
    int frames_due = 0;
    for (int i = 0; i < kSignsPerConn; ++i) frames_due += have[c][i] ? 1 : 0;
    std::vector<int> attempts(kSignsPerConn, 0);
    while (frames_due > 0) {
      std::optional<std::vector<std::uint8_t>> frame;
      try {
        frame = client.read();
      } catch (const std::exception&) {
        frame.reset();
      }
      if (!frame) {
        totals.decode_failures += static_cast<std::uint64_t>(frames_due);
        break;
      }
      --frames_due;
      try {
        const serve::VerifyResponseFrame resp =
            serve::decode_verify_response(*frame);
        const std::size_t id = static_cast<std::size_t>(resp.request_id);
        if (resp.ok && resp.accepted) {
          ++totals.verifies;
        } else if (!resp.ok && id < static_cast<std::size_t>(kSignsPerConn) &&
                   attempts[id]++ < kRetryLimit) {
          ++totals.retries;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(attempts[id]));
          client.send(serve::encode(serve::VerifyRequestFrame::make(
              static_cast<std::uint64_t>(id), key_id, messages[c][id],
              sigs[c][id])));
          ++frames_due;
        } else {
          ++totals.verdict_failures;
        }
      } catch (const std::exception&) {
        ++totals.decode_failures;
      }
    }
  }
}

/// One measured phase: a server with `reactors` event loops, `n_conns`
/// concurrent connections across kThreads drivers, each signing under its
/// own tenant key (keys shard across the dispatcher's sign lanes — one
/// shared key would funnel every sign into a single lane's queue). The
/// clock starts once every connection is open (setup is not throughput).
void run_phase(serve::Dispatcher& dispatcher, int reactors, int n_conns,
               const std::vector<std::uint64_t>& key_ids,
               const std::vector<falcon::Verifier>& verifiers,
               PhaseTotals& totals, int* reactors_used) {
  serve::CompletionPool pool(4);
  net::ServerOptions sopts;
  sopts.reactors = reactors;
  sopts.backlog = 512;
  sopts.registry = &dispatcher.obs_registry();
  net::Server server(
      [&](net::ResponseToken token, std::vector<std::uint8_t> frame) {
        serve::route_frame(dispatcher, pool, std::move(token),
                           std::move(frame));
      },
      sopts);
  *reactors_used = server.reactors();

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  const int per_thread = n_conns / kThreads;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      drive(server.port(), per_thread + (t == 0 ? n_conns % kThreads : 0),
            key_ids[static_cast<std::size_t>(t) % key_ids.size()],
            verifiers[static_cast<std::size_t>(t) % verifiers.size()], ready,
            go, totals);
    });
  while (ready.load() < kThreads) std::this_thread::yield();
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  totals.secs = benchutil::ms_since(t0) / 1000.0;

  server.shutdown();
  pool.join();  // settle any straggler tokens before `server` dies
}

struct OverloadResult {
  int attempted = 0;
  int served = 0;
  int sheds_observed = 0;
  int silent_closes = 0;
  std::uint64_t sheds_counted = 0;  // the server's own counter
};

/// Offer 4x more connections than the cap admits. Every over-cap
/// connection must read a typed kOverloaded frame — a timeout or a bare
/// EOF is a silent close, and the gate is zero of them.
OverloadResult run_overload(serve::Dispatcher& dispatcher,
                            std::uint64_t key_id) {
  OverloadResult result;
  serve::CompletionPool pool(2);
  net::ServerOptions sopts;
  sopts.reactors = 2;
  sopts.backlog = 512;
  sopts.limits.max_connections = 64;
  sopts.timeouts.shed_linger = std::chrono::milliseconds(10000);
  net::Server server(
      [&](net::ResponseToken token, std::vector<std::uint8_t> frame) {
        serve::route_frame(dispatcher, pool, std::move(token),
                           std::move(frame));
      },
      sopts);

  result.attempted = 256;
  net::ClientOptions copts;
  copts.read_timeout = std::chrono::milliseconds(10000);
  std::vector<net::Client> conns;
  conns.reserve(static_cast<std::size_t>(result.attempted));
  for (int i = 0; i < result.attempted; ++i) conns.emplace_back(server.port(), copts);

  // Every connection asks for work; admitted ones get the signature,
  // over-cap ones already have the typed shed frame queued (their request
  // bytes are discarded by the shedding connection).
  for (int i = 0; i < result.attempted; ++i) {
    serve::SignRequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.key_id = key_id;
    req.message = "overload probe " + std::to_string(i);
    try {
      conns[static_cast<std::size_t>(i)].send(serve::encode(req));
    } catch (const net::ClientError&) {
      // Connection torn down before the frame left: judged on read below.
    }
  }
  for (int i = 0; i < result.attempted; ++i) {
    try {
      const auto frame = conns[static_cast<std::size_t>(i)].read();
      if (!frame) {
        ++result.silent_closes;  // EOF with no answer
      } else if (net::is_overloaded(*frame)) {
        ++result.sheds_observed;
      } else {
        const serve::SignResponseFrame resp =
            serve::decode_sign_response(*frame);
        if (resp.ok) ++result.served;
      }
    } catch (const net::ClientError&) {
      ++result.silent_closes;  // timeout or reset with no answer
    }
  }
  result.sheds_counted = server.stats().sheds_accept_cap;
  conns.clear();
  server.shutdown();
  pool.join();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  int n_conns = args.n > 0 ? static_cast<int>(args.n) : 2048;

  // 1 client fd + 1 server fd per connection, plus epoll/eventfd/listener
  // overhead and the process's own files.
  const std::size_t fd_budget =
      raise_nofile(static_cast<std::size_t>(2 * n_conns) + 256);
  if (fd_budget < static_cast<std::size_t>(2 * n_conns) + 256) {
    const int fit = static_cast<int>((fd_budget - 256) / 2);
    std::printf("nofile limit %zu too low for %d connections; dropping to %d\n",
                fd_budget, n_conns, fit);
    n_conns = fit;
  }

  serve::DispatcherOptions dopts;
  dopts.queue_capacity = 4096;
  dopts.max_batch = 64;
  dopts.max_linger_us = 2000;
  dopts.sign_lanes = 4;
  dopts.verify_lanes = 4;
  dopts.signing.root_seed = 0xC10C;
  serve::Dispatcher dispatcher(engine::SamplerRegistry::global(), dopts);

  // One tenant key per driver thread, registered through the keygen lane
  // (blocking — key setup is not part of any measured phase). Distinct
  // keys shard the sign load across lanes, like real multi-tenant
  // traffic; each thread locally verifies against its own public key.
  std::vector<std::uint64_t> key_ids;
  std::vector<falcon::Verifier> verifiers;
  for (int t = 0; t < kThreads; ++t) {
    serve::KeygenRequest kreq;
    kreq.params = falcon::FalconParams::for_degree(kDegree);
    kreq.seed = 0x5EEDC10Cu + static_cast<std::uint64_t>(t);
    const serve::KeygenResult key = dispatcher.submit(std::move(kreq)).future.get();
    key_ids.push_back(key.key_id);
    verifiers.emplace_back(key.public_h,
                           falcon::FalconParams::for_degree(kDegree));
  }

  const int multi_reactors =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));

  std::printf("== c10k: %d connections, %d driver threads, %d signs/conn ==\n",
              n_conns, kThreads, kSignsPerConn);
  PhaseTotals single, multi;
  int single_used = 0, multi_used = 0;
  run_phase(dispatcher, 1, n_conns, key_ids, verifiers, single, &single_used);
  std::printf("single reactor : %7.0f req/s (%llu signs, %llu verifies, "
              "%llu keygens, %llu retries) in %.2fs\n",
              single.rps(),
              static_cast<unsigned long long>(single.signs.load()),
              static_cast<unsigned long long>(single.verifies.load()),
              static_cast<unsigned long long>(single.keygens.load()),
              static_cast<unsigned long long>(single.retries.load()),
              single.secs);
  run_phase(dispatcher, multi_reactors, n_conns, key_ids, verifiers, multi,
            &multi_used);
  std::printf("%d reactors     : %7.0f req/s (%llu signs, %llu verifies, "
              "%llu keygens, %llu retries) in %.2fs\n",
              multi_used, multi.rps(),
              static_cast<unsigned long long>(multi.signs.load()),
              static_cast<unsigned long long>(multi.verifies.load()),
              static_cast<unsigned long long>(multi.keygens.load()),
              static_cast<unsigned long long>(multi.retries.load()),
              multi.secs);
  const double speedup = single.rps() > 0 ? multi.rps() / single.rps() : 0.0;
  std::printf("scaling        : %.2fx\n", speedup);

  const OverloadResult overload = run_overload(dispatcher, key_ids[0]);
  std::printf("overload       : %d offered / cap 64 -> %d served, %d typed "
              "sheds (server counted %llu), %d silent closes\n",
              overload.attempted, overload.served, overload.sheds_observed,
              static_cast<unsigned long long>(overload.sheds_counted),
              overload.silent_closes);

  dispatcher.shutdown();

  const char* skip_env = std::getenv("CGS_BENCH_SKIP_TIMING_GATE");
  const bool gate_timing = !(skip_env && *skip_env && *skip_env != '0');

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "c10k")
        .field("connections", n_conns)
        .field("driver_threads", kThreads)
        .field("signs_per_conn", kSignsPerConn)
        .field("single_reactor_rps", single.rps())
        .field("multi_reactors", multi_used)
        .field("multi_reactor_rps", multi.rps())
        .field("speedup", speedup)
        .field("signs",
               static_cast<std::size_t>(single.signs + multi.signs))
        .field("verifies",
               static_cast<std::size_t>(single.verifies + multi.verifies))
        .field("keygens",
               static_cast<std::size_t>(single.keygens + multi.keygens))
        .field("retries",
               static_cast<std::size_t>(single.retries + multi.retries))
        .field("decode_failures",
               static_cast<std::size_t>(single.decode_failures +
                                        multi.decode_failures))
        .field("verdict_failures",
               static_cast<std::size_t>(single.verdict_failures +
                                        multi.verdict_failures))
        .field("overload_offered", overload.attempted)
        .field("overload_served", overload.served)
        .field("overload_typed_sheds", overload.sheds_observed)
        .field("overload_silent_closes", overload.silent_closes)
        .field("timing_gated", gate_timing)
        .end_object();
    json.write_file(args.json_path);
  }

  // Correctness gates — never skipped.
  const std::uint64_t bad_decodes =
      single.decode_failures + multi.decode_failures;
  const std::uint64_t bad_verdicts =
      single.verdict_failures + multi.verdict_failures;
  const std::uint64_t bad_local =
      single.local_verify_failures + multi.local_verify_failures;
  if (bad_decodes != 0 || bad_verdicts != 0 || bad_local != 0) {
    std::printf("FAIL: %llu undecodable/failed responses, %llu rejected "
                "verdicts, %llu local verify failures\n",
                static_cast<unsigned long long>(bad_decodes),
                static_cast<unsigned long long>(bad_verdicts),
                static_cast<unsigned long long>(bad_local));
    return 1;
  }
  if (overload.silent_closes != 0) {
    std::printf("FAIL: %d connections closed without a typed answer\n",
                overload.silent_closes);
    return 1;
  }
  if (overload.sheds_observed !=
          static_cast<int>(overload.sheds_counted) ||
      overload.served + overload.sheds_observed != overload.attempted) {
    std::printf("FAIL: shed accounting off: %d observed, %llu counted, "
                "%d served of %d\n",
                overload.sheds_observed,
                static_cast<unsigned long long>(overload.sheds_counted),
                overload.served, overload.attempted);
    return 1;
  }
  // Scale and scaling gates — wall-clock-sensitive, honor the skip env.
  if (gate_timing && n_conns < 2000) {
    std::printf("FAIL: only %d concurrent connections (< 2000 gate)\n",
                n_conns);
    return 1;
  }
  // On a single-core host every reactor time-slices the same CPU, so
  // "more event loops must not cost throughput" cannot be measured — the
  // scaling gate needs at least two cores to mean anything.
  const bool gate_scaling =
      gate_timing && std::thread::hardware_concurrency() >= 2;
  if (gate_scaling && speedup < 1.0) {
    std::printf("FAIL: multi-reactor throughput %.2fx single-reactor "
                "(< 1.0x gate)\n",
                speedup);
    return 1;
  }
  std::printf("OK: every response verified, zero silent closes%s\n",
              gate_scaling
                  ? ", scaling gate passed"
                  : (gate_timing ? " (single-core host: scaling gate n/a)"
                                 : " (timing gates skipped)"));
  return 0;
}
