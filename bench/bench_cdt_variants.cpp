// Sampler-only microbenchmarks of the base samplers: ns/sample at
// sigma = 2, n = 128 — the raw ranking underlying Table 1 — plus the
// amortized 64-lane batch view of the bit-sliced core. A standalone main
// (not google-benchmark) so it shares the common "[n] [--json FILE]"
// convention and lands in the unified per-PR bench artifact.
//
// Usage: bench_cdt_variants [samples_per_rep] [--json FILE]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "ct/buffered.h"
#include "ct/compiled_sampler.h"
#include "ct/synthesis.h"
#include "ddg/kysampler.h"
#include "prng/splitmix.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

struct Row {
  const char* key;
  double ns_per_sample;
};

// Median-of-reps ns/sample through any callable returning a sample (the
// sink defeats dead-code elimination the way DoNotOptimize used to).
template <typename Draw>
double ns_per_sample(Draw&& draw, std::size_t n_per_rep) {
  std::int64_t sink = 0;
  for (std::size_t i = 0; i < n_per_rep / 4; ++i) sink += draw();  // warmup
  std::vector<double> reps;
  for (int rep = 0; rep < 9; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n_per_rep; ++i) sink += draw();
    reps.push_back(ms_since(t0));
  }
  std::nth_element(reps.begin(), reps.begin() + reps.size() / 2, reps.end());
  const double median_ms = reps[reps.size() / 2];
  asm volatile("" : : "r"(sink));
  return median_ms * 1e6 / static_cast<double>(n_per_rep);
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::size_t n = args.n ? args.n : 200000;
  const gauss::ProbMatrix matrix(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable table(matrix);
  const ct::SynthesizedSampler synth = ct::synthesize(matrix, {});

  std::printf("base-sampler ns/sample, sigma = 2, precision 128, %zu "
              "samples/rep, median of 9\n\n", n);
  std::vector<Row> rows;
  const auto run = [&](const char* key, auto make_draw) {
    const double ns = ns_per_sample(make_draw(), n);
    rows.push_back({key, ns});
    std::printf("%-24s %10.1f ns/sample\n", key, ns);
  };

  run("cdt_byte_scan", [&] {
    return [s = cdt::CdtByteScanSampler(table),
            rng = prng::SplitMix64Source(1)]() mutable { return s.sample(rng); };
  });
  run("cdt_binary_search", [&] {
    return [s = cdt::CdtBinarySearchSampler(table),
            rng = prng::SplitMix64Source(2)]() mutable { return s.sample(rng); };
  });
  run("cdt_linear_ct", [&] {
    return [s = cdt::CdtLinearCtSampler(table),
            rng = prng::SplitMix64Source(3)]() mutable { return s.sample(rng); };
  });
  run("bitsliced_ct", [&] {
    return [s = ct::BufferedBitslicedSampler(synth),
            rng = prng::SplitMix64Source(4)]() mutable { return s.sample(rng); };
  });
  if (ct::CompiledKernel::is_available()) {
    run("bitsliced_ct_compiled", [&] {
      return [s = ct::BufferedCompiledSampler(synth),
              rng = prng::SplitMix64Source(7)]() mutable {
        return s.sample(rng);
      };
    });
  } else {
    std::printf("%-24s %10s\n", "bitsliced_ct_compiled", "(no host compiler)");
  }
  run("knuth_yao_reference", [&] {
    return [s = ct::ReferenceKySampler(matrix),
            rng = prng::SplitMix64Source(5)]() mutable { return s.sample(rng); };
  });
  // Amortized view: one 64-lane batch per netlist pass.
  {
    ct::BitslicedSampler s(synth);
    prng::SplitMix64Source rng(6);
    std::int32_t out[64];
    std::size_t lane = 64;
    const double ns = ns_per_sample(
        [&]() mutable {
          if (lane == 64) {
            (void)s.sample_batch(rng, out);
            lane = 0;
          }
          return out[lane++];
        },
        n);
    rows.push_back({"bitsliced_batch64", ns});
    std::printf("%-24s %10.1f ns/sample (amortized over 64-lane batches)\n",
                "bitsliced_batch64", ns);
  }

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "cdt_variants")
        .field("n_per_rep", n)
        .begin_object("ns_per_sample");
    for (const Row& row : rows) json.field(row.key, row.ns_per_sample);
    json.end_object().end_object();
    json.write_file(args.json_path);
  }
  return 0;
}
