// Sampler-only microbenchmarks of the four base samplers (google-benchmark):
// ns/sample at sigma = 2, n = 128 — the raw ranking underlying Table 1.

#include <benchmark/benchmark.h>

#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "ddg/kysampler.h"
#include "ct/buffered.h"
#include "prng/splitmix.h"

namespace {

using namespace cgs;

const gauss::ProbMatrix& matrix() {
  static const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(128));
  return m;
}

const cdt::CdtTable& table() {
  static const cdt::CdtTable t(matrix());
  return t;
}

void BM_CdtByteScan(benchmark::State& state) {
  cdt::CdtByteScanSampler s(table());
  prng::SplitMix64Source rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_CdtByteScan);

void BM_CdtBinarySearch(benchmark::State& state) {
  cdt::CdtBinarySearchSampler s(table());
  prng::SplitMix64Source rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_CdtBinarySearch);

void BM_CdtLinearCt(benchmark::State& state) {
  cdt::CdtLinearCtSampler s(table());
  prng::SplitMix64Source rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_CdtLinearCt);

void BM_BitslicedCt(benchmark::State& state) {
  ct::BufferedBitslicedSampler s(ct::synthesize(matrix(), {}));
  prng::SplitMix64Source rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_BitslicedCt);

void BM_BitslicedCtCompiled(benchmark::State& state) {
  if (!ct::CompiledKernel::is_available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  ct::BufferedCompiledSampler s(ct::synthesize(matrix(), {}));
  prng::SplitMix64Source rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_BitslicedCtCompiled);

void BM_KnuthYaoReference(benchmark::State& state) {
  ct::ReferenceKySampler s(matrix());
  prng::SplitMix64Source rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(s.sample(rng));
}
BENCHMARK(BM_KnuthYaoReference);

// Full 64-sample batch of the bit-sliced core (amortized view).
void BM_BitslicedBatch64(benchmark::State& state) {
  ct::BitslicedSampler s(ct::synthesize(matrix(), {}));
  prng::SplitMix64Source rng(6);
  std::int32_t out[64];
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sample_batch(rng, out));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BitslicedBatch64);

}  // namespace

BENCHMARK_MAIN();
