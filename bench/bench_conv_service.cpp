// Arbitrary-(sigma, c) service throughput: the batch convolution path vs
// the scalar two-draws-per-sample baseline it replaces, on the ISSUE's
// non-synthesized target sigma=271.4, c=0.5.
//
//   1. plan      — recipe selection (base sigma0, stride k, shift stage);
//   2. scalar    — n samples through ConvolutionSampler::sample over a
//                  buffered single-stream bit-sliced base (the only way to
//                  serve this target before GaussianService existed);
//   3. service   — n samples through GaussianService batch requests (two
//                  SamplerEngine streams, vectorized combine);
//   4. accept    — chi-square vs the design pmf + Renyi vs the ideal
//                  D_{sigma', c}: the speed must not come from serving the
//                  wrong distribution.
//
// Self-checks: acceptance always gates; the >= 5x speedup gate is skipped
// when CGS_BENCH_SKIP_TIMING_GATE is set (shared CI runners).
//
// Usage: bench_conv_service [samples_per_run] [--json FILE]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "conv/convolution.h"
#include "ct/bitsliced_sampler.h"
#include "engine/service.h"
#include "gauss/probmatrix.h"
#include "prng/chacha20.h"
#include "stats/acceptance.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::string& json_path = args.json_path;
  const std::size_t n_samples = args.n ? args.n : 1000000;
  const double target_sigma = 271.4, target_center = 0.5;

  // Per-process cache dir: hermetic against concurrent runs (same reasoning
  // as bench_engine_throughput).
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("cgs-bench-conv-cache-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  engine::SamplerRegistry reg({.cache_dir = dir});

  // 1. Plan.
  engine::GaussianService service(reg, {.root_seed = 2019});
  const gauss::ConvolutionRecipe recipe =
      service.plan(target_sigma, target_center);
  std::printf("== plan: %s ==\n\n", recipe.describe().c_str());

  // Offline part, reported but not gated: base synthesis + kernel hosting.
  auto t0 = Clock::now();
  const auto synth = reg.get(recipe.base);
  const double synth_ms = ms_since(t0);

  // 2. Scalar baseline: one stream, two scalar draws + combine per sample.
  ct::BufferedBitslicedSampler base(*synth);
  conv::ConvolutionSampler scalar(base, recipe.k);
  prng::ChaCha20Source rng(2019);
  t0 = Clock::now();
  std::int64_t sink = 0;
  for (std::size_t i = 0; i < n_samples; ++i) sink += scalar.sample(rng);
  const double scalar_ms = ms_since(t0);
  const double scalar_rate = static_cast<double>(n_samples) / scalar_ms * 1e3;
  std::printf("== scalar: %zu x ConvolutionSampler::sample: %.0f ms "
              "(%.3e samples/s) ==\n",
              n_samples, scalar_ms, scalar_rate);

  // 3. Service batch path (first call pays engine bring-up; warm it, then
  // measure steady-state throughput like the engine bench does).
  t0 = Clock::now();
  (void)service.sample(target_sigma, target_center, n_samples / 4);
  const double bringup_ms = ms_since(t0);
  t0 = Clock::now();
  const auto samples = service.sample(target_sigma, target_center, n_samples);
  const double service_ms = ms_since(t0);
  const double service_rate = static_cast<double>(n_samples) / service_ms * 1e3;
  const double speedup = service_rate / scalar_rate;
  std::printf("== service: %zu-sample batch: %.0f ms (%.3e samples/s, "
              "%.1fx scalar; bring-up %.0f ms, synthesis %.0f ms) ==\n\n",
              n_samples, service_ms, service_rate, speedup, bringup_ms,
              synth_ms);

  // 4. Acceptance: the convolved batch must match D_{sigma', c}.
  const gauss::ProbMatrix matrix(recipe.base);
  const auto acc = stats::accept_convolution(samples, matrix, recipe);
  std::printf("== acceptance: %s ==\n", acc.describe().c_str());

  if (!json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "conv_service")
        .field("target_sigma", target_sigma)
        .field("target_center", target_center)
        .field("base_sigma", recipe.base.sigma())
        .field("stride", recipe.k)
        .field("achieved_sigma", recipe.achieved_sigma)
        .field("sigma_loss", recipe.sigma_loss)
        .field("n", n_samples)
        .field("synthesis_ms", synth_ms)
        .field("bringup_ms", bringup_ms)
        .field("scalar_samples_per_sec", scalar_rate)
        .field("service_samples_per_sec", service_rate)
        .field("speedup", speedup)
        .field("chi_p_value", acc.chi.p_value)
        .field("renyi2", acc.renyi)
        .field("accepted", acc.accepted())
        .end_object();
    json.write_file(json_path);
  }

  std::filesystem::remove_all(dir);
  (void)sink;

  const char* skip_env = std::getenv("CGS_BENCH_SKIP_TIMING_GATE");
  const bool gate_timing = !(skip_env && *skip_env && *skip_env != '0');
  if (!acc.accepted() || (gate_timing && speedup < 5.0)) {
    std::printf("\nFAIL: %s\n", !acc.accepted()
                                    ? "acceptance rejected the batch"
                                    : "service batch < 5x scalar");
    return 1;
  }
  std::printf("\nOK: batch %.1fx scalar%s, acceptance passed\n", speedup,
              gate_timing ? " (>= 5x)" : " (timing gate skipped)");
  return 0;
}
