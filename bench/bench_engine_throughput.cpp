// Sampler-engine throughput: the cost of the offline/online split in
// numbers. Measures, for the Falcon base distribution sigma_2(64):
//
//   1. cold start  — full synthesis (probability matrix -> QM exact
//      minimization -> netlist), i.e. what every process start paid before
//      the registry existed;
//   2. warm start  — deserializing the cached netlist frame from disk
//      (expected >= 10x faster than cold; asserted at the end);
//   3. round-trip fidelity — the deserialized sampler's stream is
//      bit-identical to the fresh one under the same ChaCha20 seed;
//   4. online throughput — samples/sec per backend, single- vs
//      multi-threaded, through SamplerEngine.
//
// Usage: bench_engine_throughput [samples_per_run] [--json FILE]
// (default 2^21 samples; --json writes the measurements as one JSON object
// so CI can archive a perf trajectory across PRs)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "prng/chacha20.h"
#include "serial/formats.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::string& json_path = args.json_path;
  std::size_t n_samples = args.n;
  if (n_samples == 0) n_samples = 1u << 21;  // default; also unparseable argv
  const auto params = gauss::GaussianParams::sigma_2(64);
  // Per-process dir: a concurrent bench run must not remove_all() the cache
  // this run is warm-loading from (that would fake a cold start and flip the
  // >= 10x gate).
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("cgs-bench-engine-cache-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  std::printf("== offline: cold synthesis vs warm cache load, %s ==\n",
              params.describe().c_str());

  // Cold: synthesize + persist (averaged over a few runs, fresh dir each).
  constexpr int kReps = 5;
  double cold_ms = 0;
  for (int i = 0; i < kReps; ++i) {
    std::filesystem::remove_all(dir);
    engine::SamplerRegistry reg({.cache_dir = dir});
    const auto t0 = Clock::now();
    (void)reg.get(params);
    cold_ms += ms_since(t0);
  }
  cold_ms /= kReps;

  // Warm: a fresh registry (a "new process") against the populated dir.
  double warm_ms = 0;
  engine::SamplerRegistry::Source source{};
  for (int i = 0; i < kReps; ++i) {
    engine::SamplerRegistry reg({.cache_dir = dir});
    const auto t0 = Clock::now();
    (void)reg.get(params, {}, &source);
    warm_ms += ms_since(t0);
  }
  warm_ms /= kReps;
  const double speedup = cold_ms / warm_ms;
  std::printf("  cold synthesis: %8.3f ms\n", cold_ms);
  std::printf("  warm load:      %8.3f ms (%s)\n", warm_ms,
              source == engine::SamplerRegistry::Source::kDisk
                  ? "from disk cache"
                  : "UNEXPECTED SOURCE");
  std::printf("  speedup:        %8.1fx\n\n", speedup);

  // Round-trip fidelity: fresh vs serialize->deserialize, same seed.
  const gauss::ProbMatrix matrix(params);
  ct::SynthesizedSampler fresh = ct::synthesize(matrix, {});
  ct::SynthesizedSampler loaded =
      serial::deserialize_sampler(serial::serialize(params, {}, fresh)).sampler;
  bool identical = true;
  {
    ct::BitslicedSampler a(fresh), b(loaded);
    prng::ChaCha20Source rng_a(2019), rng_b(2019);
    std::int32_t batch_a[64], batch_b[64];
    for (int it = 0; it < 1000 && identical; ++it) {
      identical &= a.sample_batch(rng_a, batch_a) ==
                   b.sample_batch(rng_b, batch_b);
      for (int lane = 0; lane < 64; ++lane)
        identical &= batch_a[lane] == batch_b[lane];
    }
  }
  std::printf("== round trip: 64000 samples fresh vs deserialized: %s ==\n\n",
              identical ? "bit-identical" : "MISMATCH");

  // Online throughput per backend and thread count.
  engine::SamplerRegistry reg({.cache_dir = dir});
  const auto synth = reg.get(params);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("== online: samples/sec, %zu samples per run, hw threads=%u ==\n",
              n_samples, hw);
  std::printf("%-14s %10s %14s %10s\n", "backend", "threads", "samples/s",
              "scaling");
  struct ThroughputRow {
    const char* backend;
    unsigned threads;
    double rate;
  };
  std::vector<ThroughputRow> rows;
  for (engine::Backend backend :
       {engine::Backend::kCompiled, engine::Backend::kWide,
        engine::Backend::kBitsliced}) {
    if (backend == engine::Backend::kCompiled &&
        !ct::CompiledKernel::is_available()) {
      std::printf("%-14s %21s\n", engine::backend_name(backend),
                  "(no host compiler)");
      continue;
    }
    double single = 0;
    for (unsigned threads = 1; threads <= hw; threads *= 2) {
      engine::SamplerEngine engine(
          synth, {.backend = backend,
                  .num_threads = static_cast<int>(threads),
                  .root_seed = 42});
      (void)engine.sample(n_samples / 4);  // warmup
      const auto t0 = Clock::now();
      (void)engine.sample(n_samples);
      const double secs = ms_since(t0) / 1e3;
      const double rate = static_cast<double>(n_samples) / secs;
      if (threads == 1) single = rate;
      std::printf("%-14s %10u %14.3e %9.2fx\n", engine::backend_name(backend),
                  threads, rate, rate / single);
      rows.push_back({engine::backend_name(backend), threads, rate});
    }
  }

  if (!json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "engine_throughput")
        .field("n", n_samples)
        .field("cold_synthesis_ms", cold_ms)
        .field("warm_load_ms", warm_ms)
        .field("warm_speedup", speedup)
        .field("round_trip_identical", identical)
        .begin_array("throughput");
    for (const ThroughputRow& row : rows)
      json.begin_object()
          .field("backend", row.backend)
          .field("threads", row.threads)
          .field("samples_per_sec", row.rate)
          .end_object();
    json.end_array().end_object();
    json.write_file(json_path);
  }

  std::filesystem::remove_all(dir);
  // The timing gate is meaningful on quiet machines; shared CI runners can
  // deschedule the ~ms warm-load reps and fake a miss, so CI sets
  // CGS_BENCH_SKIP_TIMING_GATE=1 and gates on bit-identity alone.
  const char* skip_env = std::getenv("CGS_BENCH_SKIP_TIMING_GATE");
  const bool gate_timing = !(skip_env && *skip_env && *skip_env != '0');
  // The warm reps coming from disk is jitter-free and always gated: a dead
  // persist path must not hide behind the skipped timing gate.
  const bool from_disk = source == engine::SamplerRegistry::Source::kDisk;
  if (!identical || !from_disk || (gate_timing && speedup < 10.0)) {
    std::printf("\nFAIL: %s\n",
                !identical  ? "round trip not bit-identical"
                : !from_disk ? "warm reps did not load from the disk cache"
                             : "warm start < 10x cold");
    return 1;
  }
  std::printf("\nOK: warm start %.1fx faster than cold synthesis%s, "
              "round trip bit-identical\n", speedup,
              gate_timing ? " (>= 10x)" : " (timing gate skipped)");
  return 0;
}
