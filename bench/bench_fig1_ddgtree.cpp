// Fig. 1: the probability matrix and DDG tree for sigma = 2 at n = 6 bits
// of precision — the paper's worked example, regenerated from our pipeline.

#include <cstdio>

#include "ddg/ddgtree.h"

int main() {
  using namespace cgs;
  std::printf("Fig. 1 reproduction: probability matrix and DDG tree, "
              "sigma = 2, n = 6\n\n");
  const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(6));
  std::printf("%s\n", m.to_string().c_str());
  const ddg::DdgTree tree(m);
  std::printf("%s", tree.to_string(6).c_str());
  std::printf("\ntotal leaves: %zu, deficit (restart mass): %g\n",
              tree.total_leaves(), m.deficit_double());
  return 0;
}
