// Fig. 3: the leaf list L sorted into sublists l_kappa (sigma = 2, n = 16),
// plus the Delta values of §5 for all four paper parameter sets at n = 128.

#include <cstdio>

#include "ct/sublists.h"

int main() {
  using namespace cgs;
  std::printf("Fig. 3 reproduction: list L split into sublists, sigma=2, "
              "n=16\n");
  std::printf("(draw order: kappa ones, a zero, then j suffix bits)\n\n");
  {
    const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(16));
    const auto list = ct::enumerate_leaves(m);
    const auto split = ct::split_by_kappa(list);
    for (const auto& sl : split.sublists) {
      if (sl.leaves.empty()) continue;
      std::printf("l_%d (delta=%d):\n", sl.kappa, sl.delta);
      for (const auto& leaf : sl.leaves) {
        std::printf("  ");
        for (int b : leaf.bits()) std::printf("%d", b);
        std::printf("  -> %u (level %d)\n", leaf.value, leaf.level);
      }
    }
    std::printf("\nDelta = %d, n' = %d, leaves = %zu\n\n", list.delta,
                list.max_kappa, list.leaves.size());
  }

  std::printf("§5 Delta values at n = 128 (paper reports 4, 4, 6, 15):\n");
  struct Entry {
    const char* name;
    gauss::GaussianParams p;
  } entries[] = {
      {"sigma = 1", gauss::GaussianParams::sigma_1(128)},
      {"sigma = 2", gauss::GaussianParams::sigma_2(128)},
      {"sigma = 6.15543", gauss::GaussianParams::sigma_6_15543(128)},
      {"sigma = 215", gauss::GaussianParams::sigma_215(128)},
  };
  std::printf("  %-18s %28s %28s\n", "", "truncate", "round-to-nearest");
  for (const auto& e : entries) {
    std::printf("  %-18s", e.name);
    for (auto rounding : {gauss::Rounding::kTruncate, gauss::Rounding::kNearest}) {
      for (auto norm : {gauss::Normalization::kDiscrete,
                        gauss::Normalization::kContinuous}) {
        auto p = e.p;
        p.rounding = rounding;
        p.normalization = norm;
        const gauss::ProbMatrix m(p);
        const auto list = ct::enumerate_leaves(m);
        std::printf("  %s D=%2d", norm == gauss::Normalization::kDiscrete
                                      ? "disc" : "cont",
                    list.delta);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(the Delta constant depends on the probability pipeline's\n"
              " normalizer and rounding; the paper does not pin these down —\n"
              " the structural claim is that Delta stays tiny, which holds\n"
              " in every variant)\n");
  return 0;
}
