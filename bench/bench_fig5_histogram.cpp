// Fig. 5: histograms of the constant-time bit-sliced sampler for sigma = 2
// and sigma = 6.15543. The paper plots 64e7 samples; the default here is
// 64e5 for a quick run (pass a multiplier argument to scale up, 100 ->
// paper-size). A chi-square test against the target distribution
// accompanies each plot.

#include <cstdio>
#include <cstdlib>

#include "ct/bitsliced_sampler.h"
#include "prng/chacha20.h"
#include "stats/chisquare.h"

namespace {

using namespace cgs;

void run(const char* label, const gauss::GaussianParams& params,
         std::uint64_t batches) {
  const gauss::ProbMatrix matrix(params);
  ct::BitslicedSampler sampler(ct::synthesize(matrix, {}));
  prng::ChaCha20Source rng(2019);

  stats::Histogram h;
  std::int32_t batch[64];
  for (std::uint64_t it = 0; it < batches; ++it) {
    const std::uint64_t valid = sampler.sample_batch(rng, batch);
    for (int lane = 0; lane < 64; ++lane)
      if ((valid >> lane) & 1u) h.add(batch[lane]);
  }

  std::printf("--- %s: %llu samples ---\n", label,
              static_cast<unsigned long long>(h.total()));
  std::printf("%s", h.render(64).c_str());
  const auto chi = stats::chi_square_signed(h, matrix);
  std::printf("chi-square = %.2f (dof %d), p = %.4f\n\n", chi.statistic,
              chi.dof, chi.p_value);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t scale = 1;
  if (argc > 1) scale = std::strtoull(argv[1], nullptr, 10);
  const std::uint64_t batches = 100000 * scale;  // 64e5 samples at scale 1

  std::printf("Fig. 5 reproduction: sampler output histograms (%llu x 64 "
              "samples)\n\n",
              static_cast<unsigned long long>(batches));
  run("sigma = 2", gauss::GaussianParams::sigma_2(128), batches);
  run("sigma = 6.15543", gauss::GaussianParams::sigma_6_15543(128), batches);
  return 0;
}
