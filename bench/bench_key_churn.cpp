// Multi-tenant key-state churn (ISSUE 8 acceptance): a Zipfian tenant
// population far larger than RAM wants, served through the bounded 2Q key
// caches with the KvStore as the warm-start layer underneath.
//
// Phases and self-check gates:
//
//   churn    — 10^5 verify requests, Zipfian(s = 1.0) over 10^5 synthetic
//              tenant keys, NTT-key cache budgeted to 10^3 entries backed
//              by a KvStore (fsync off). Gates: the cache never exceeds
//              its entry budget and evictions + disk warm starts actually
//              happened                               (always gated);
//              peak RSS stays within 2x the budget-sized steady state
//              measured after warm-up                 (resource gate).
//   all-hot  — the same request count against only the 10^3 hottest keys,
//              unbounded cache (everything resident). Gate: the bounded
//              churn run keeps >= 0.5x this throughput (timing gate).
//   warmcold — ffLDL-tree / NTT-key / netlist warm start (one decode)
//              vs cold rebuild, min-of-reps. Gate: warm < cold for all
//              three artifact kinds                   (timing gate).
//   bitexact — a tree-cache budget of ONE plus the store, alternating two
//              keys so every sign_many re-enters its tree through a disk
//              round trip. Gate: signatures bit-identical to a
//              never-evicting service                 (always gated).
//
// Timing/resource gates are skipped when CGS_BENCH_SKIP_TIMING_GATE is
// set (shared CI runners jitter both clocks and RSS); the boundedness and
// bit-exactness gates always enforce.
//
// Usage: bench_key_churn [accesses] [--json FILE]

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "falcon/ffsampling.h"
#include "falcon/keygen.h"
#include "falcon/ntt.h"
#include "falcon/signing_service.h"
#include "falcon/state_codec.h"
#include "falcon/verification_service.h"
#include "prng/chacha20.h"
#include "prng/splitmix.h"
#include "store/kvstore.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

constexpr std::size_t kNumKeys = 100000;   // tenant population
constexpr std::size_t kBudgetEntries = 1000;  // resident key budget
constexpr std::size_t kDegree = 64;        // churn-phase ring dimension

/// Current resident set size in KiB (VmRSS from /proc/self/status).
std::size_t rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10);
  }
  return 0;
}

std::string fresh_dir(const char* name) {
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/cgs-bench-churn-" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Zipf(s = 1.0) over ranks [0, n): precomputed CDF + binary search.
class Zipf {
 public:
  explicit Zipf(std::size_t n) : cdf_(n) {
    double total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_[r] = total;
    }
    total_ = total;
  }
  std::size_t sample(prng::SplitMix64Source& rng) const {
    const double u =
        total_ * static_cast<double>(rng.next_word() >> 11) * 0x1.0p-53;
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0;
};

/// Deterministic synthetic public key for tenant `id` (values mod q).
std::vector<std::uint32_t> make_h(std::size_t id, std::size_t n) {
  prng::SplitMix64Source rng(0xC0FFEE ^ (id * 0x9E3779B97F4A7C15ull));
  std::vector<std::uint32_t> h(n);
  for (auto& v : h)
    v = static_cast<std::uint32_t>(rng.next_word() % falcon::kQ);
  return h;
}

struct ChurnResult {
  double accesses_per_sec = 0;
  std::size_t steady_rss_kb = 0;
  std::size_t peak_rss_kb = 0;
  obs::CacheStats cache;
  store::KvStoreStats kv;
};

ChurnResult run_churn(std::size_t accesses, const Zipf& zipf,
                      const std::string& kv_dir) {
  ChurnResult r;
  store::KvStoreOptions kv_opts{.dir = kv_dir};
  kv_opts.fsync_writes = false;
  store::KvStore kv(kv_opts);

  falcon::VerificationOptions opts;
  opts.num_threads = 1;
  opts.key_cache.max_entries = kBudgetEntries;
  opts.key_state = &kv;
  falcon::VerificationService svc(opts);

  const falcon::FalconParams params =
      falcon::FalconParams::for_degree(kDegree);
  falcon::Signature dummy;
  dummy.s1.assign(kDegree, 0);  // always rejects; the key-state path is
                                // identical for accept and reject

  // Warm the budget-sized working set, then call that RSS "steady state".
  for (std::size_t rank = 0; rank < kBudgetEntries; ++rank)
    (void)svc.verify(make_h(rank, kDegree), params, "churn", dummy);
  r.steady_rss_kb = rss_kb();

  prng::SplitMix64Source rng(42);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < accesses; ++i) {
    const std::size_t rank = zipf.sample(rng);
    (void)svc.verify(make_h(rank, kDegree), params, "churn", dummy);
  }
  const double elapsed_ms = ms_since(t0);
  r.peak_rss_kb = rss_kb();
  r.accesses_per_sec = 1000.0 * static_cast<double>(accesses) / elapsed_ms;
  r.cache = svc.key_cache_stats();
  r.kv = kv.stats();

  std::printf(
      "churn    %zu accesses over %zu keys, budget %zu: %.0f req/s, "
      "entries %zu, evictions %llu, warm starts %llu, "
      "RSS steady %zu KiB -> peak %zu KiB\n",
      accesses, kNumKeys, kBudgetEntries, r.accesses_per_sec,
      r.cache.entries, static_cast<unsigned long long>(r.cache.evictions),
      static_cast<unsigned long long>(r.cache.warm_starts), r.steady_rss_kb,
      r.peak_rss_kb);
  return r;
}

double run_all_hot(std::size_t accesses) {
  falcon::VerificationOptions opts;
  opts.num_threads = 1;  // unbounded, no store: the legacy resident path
  falcon::VerificationService svc(opts);
  const falcon::FalconParams params =
      falcon::FalconParams::for_degree(kDegree);
  falcon::Signature dummy;
  dummy.s1.assign(kDegree, 0);

  for (std::size_t rank = 0; rank < kBudgetEntries; ++rank)
    (void)svc.verify(make_h(rank, kDegree), params, "churn", dummy);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < accesses; ++i)
    (void)svc.verify(make_h(i % kBudgetEntries, kDegree), params, "churn",
                     dummy);
  const double elapsed_ms = ms_since(t0);
  const double per_sec = 1000.0 * static_cast<double>(accesses) / elapsed_ms;
  std::printf("all-hot  %zu accesses over %zu resident keys: %.0f req/s\n",
              accesses, kBudgetEntries, per_sec);
  return per_sec;
}

struct WarmCold {
  double cold_us = 0;  // min-of-reps full rebuild
  double warm_us = 0;  // min-of-reps persistent decode
};

WarmCold time_tree(const falcon::KeyPair& kp) {
  WarmCold r{1e300, 1e300};
  const falcon::FalconTree built(kp);
  const auto frame = falcon::encode_tree(kp, built);
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = Clock::now();
    const falcon::FalconTree cold(kp);
    r.cold_us = std::min(r.cold_us, 1000.0 * ms_since(t0));
    t0 = Clock::now();
    const falcon::TreeRecord rec = falcon::decode_tree(frame);
    r.warm_us = std::min(r.warm_us, 1000.0 * ms_since(t0));
    if (rec.f != kp.f) std::abort();  // keep the decode observable
  }
  return r;
}

WarmCold time_ntt_key(std::size_t n) {
  WarmCold r{1e300, 1e300};
  falcon::NttKeyRecord rec;
  rec.params = falcon::FalconParams::for_degree(n);
  rec.h = make_h(1, n);
  rec.h_ntt = rec.h;
  const auto ctx = falcon::shared_ntt_context(n);
  ctx->forward_br(rec.h_ntt);
  for (std::uint32_t w : rec.h_ntt)
    rec.h_ntt_shoup.push_back(falcon::NttContext::shoup_factor(w));
  const auto frame = falcon::encode_ntt_key(rec);

  for (int rep = 0; rep < 50; ++rep) {
    auto t0 = Clock::now();
    std::vector<std::uint32_t> h_ntt = rec.h;
    ctx->forward_br(h_ntt);
    std::vector<std::uint32_t> shoup;
    shoup.reserve(n);
    for (std::uint32_t w : h_ntt)
      shoup.push_back(falcon::NttContext::shoup_factor(w));
    r.cold_us = std::min(r.cold_us, 1000.0 * ms_since(t0));
    if (shoup != rec.h_ntt_shoup) std::abort();

    t0 = Clock::now();
    const falcon::NttKeyRecord warm = falcon::decode_ntt_key(frame);
    r.warm_us = std::min(r.warm_us, 1000.0 * ms_since(t0));
    if (warm.h_ntt != rec.h_ntt) std::abort();
  }
  return r;
}

WarmCold time_netlist(const std::string& dir, bool* sources_ok) {
  WarmCold r;
  const auto params = gauss::GaussianParams::sigma_2(64);
  engine::SamplerRegistry::Source src;

  engine::SamplerRegistry cold_reg({.cache_dir = dir, .use_disk = true});
  auto t0 = Clock::now();
  (void)cold_reg.get(params, {}, &src);
  r.cold_us = 1000.0 * ms_since(t0);
  const bool cold_ok = src == engine::SamplerRegistry::Source::kSynthesized;

  // A fresh registry over the same directory: the netlist comes back as
  // one frame decode — exactly what a post-eviction get() pays.
  engine::SamplerRegistry warm_reg({.cache_dir = dir, .use_disk = true});
  t0 = Clock::now();
  (void)warm_reg.get(params, {}, &src);
  r.warm_us = 1000.0 * ms_since(t0);
  *sources_ok = cold_ok && src == engine::SamplerRegistry::Source::kDisk;
  return r;
}

bool run_bitexact(engine::SamplerRegistry& registry,
                  const falcon::KeyPair& kp_a, const falcon::KeyPair& kp_b,
                  const std::string& kv_dir, std::uint64_t* warm_starts) {
  store::KvStoreOptions kv_opts{.dir = kv_dir};
  kv_opts.fsync_writes = false;
  store::KvStore kv(kv_opts);

  falcon::SigningOptions bounded_opts;
  bounded_opts.num_threads = 1;
  bounded_opts.root_seed = 77;
  bounded_opts.precision = 64;
  bounded_opts.tree_cache.max_entries = 1;
  bounded_opts.key_state = &kv;
  falcon::SigningService bounded(registry, bounded_opts);

  falcon::SigningOptions legacy_opts;
  legacy_opts.num_threads = 1;
  legacy_opts.root_seed = 77;
  legacy_opts.precision = 64;
  falcon::SigningService legacy(registry, legacy_opts);

  bool identical = true;
  for (int i = 0; i < 6; ++i) {
    const falcon::KeyPair& kp = (i % 2 == 0) ? kp_a : kp_b;
    const std::string msg = "churn-" + std::to_string(i);
    const falcon::Signature a = bounded.sign(kp, msg);
    const falcon::Signature b = legacy.sign(kp, msg);
    identical = identical && a.nonce == b.nonce && a.s1 == b.s1;
  }
  *warm_starts = bounded.tree_cache_stats().warm_starts;
  std::printf(
      "bitexact 6 alternating signs, tree budget 1: signatures %s, "
      "%llu disk warm starts\n",
      identical ? "identical" : "DIVERGED",
      static_cast<unsigned long long>(*warm_starts));
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::size_t accesses = args.n ? args.n : 100000;
  const bool skip_timing =
      std::getenv("CGS_BENCH_SKIP_TIMING_GATE") != nullptr;

  const std::string kv_dir = fresh_dir("kv");
  const std::string netlist_dir = fresh_dir("netlists");
  const std::string sign_kv_dir = fresh_dir("sign-kv");

  const Zipf zipf(kNumKeys);
  const ChurnResult churn = run_churn(accesses, zipf, kv_dir);
  const double all_hot_per_sec = run_all_hot(accesses);
  const double throughput_ratio = churn.accesses_per_sec / all_hot_per_sec;

  prng::ChaCha20Source rng_a(11), rng_b(22), rng_tree(33);
  const falcon::KeyPair kp_a =
      falcon::keygen(falcon::FalconParams::for_degree(kDegree), rng_a);
  const falcon::KeyPair kp_b =
      falcon::keygen(falcon::FalconParams::for_degree(kDegree), rng_b);
  // Warm-vs-cold at production degrees: an n=512 ffLDL build is the
  // hundreds-of-microseconds rebuild the store exists to avoid.
  const falcon::KeyPair kp_tree =
      falcon::keygen(falcon::FalconParams::for_degree(512), rng_tree);

  const WarmCold tree = time_tree(kp_tree);
  const WarmCold ntt = time_ntt_key(1024);
  bool netlist_sources_ok = false;
  const WarmCold netlist = time_netlist(netlist_dir, &netlist_sources_ok);
  std::printf(
      "warmcold tree %.1f us cold / %.1f us warm; ntt-key %.1f / %.1f; "
      "netlist %.1f / %.1f\n",
      tree.cold_us, tree.warm_us, ntt.cold_us, ntt.warm_us, netlist.cold_us,
      netlist.warm_us);

  engine::SamplerRegistry registry({.cache_dir = netlist_dir});
  std::uint64_t sign_warm_starts = 0;
  const bool bitexact =
      run_bitexact(registry, kp_a, kp_b, sign_kv_dir, &sign_warm_starts);

  bool ok = true;
  // Always-on gates: boundedness, the disk path actually exercised, and
  // bit-exactness under churn.
  if (churn.cache.entries > kBudgetEntries) {
    std::printf("FAIL: cache holds %zu entries over budget %zu\n",
                churn.cache.entries, kBudgetEntries);
    ok = false;
  }
  if (churn.cache.evictions == 0 || churn.cache.warm_starts == 0) {
    std::printf("FAIL: churn produced no evictions or no warm starts\n");
    ok = false;
  }
  if (churn.kv.puts == 0 || churn.kv.hits == 0) {
    std::printf("FAIL: KvStore saw no write-through or no warm-start read\n");
    ok = false;
  }
  if (!netlist_sources_ok) {
    std::printf("FAIL: netlist sources not kSynthesized-then-kDisk\n");
    ok = false;
  }
  if (!bitexact || sign_warm_starts < 2) {
    std::printf("FAIL: eviction churn changed signatures (or never touched "
                "the store)\n");
    ok = false;
  }

  // Timing/resource gates (skipped on jittery shared runners).
  struct Gate {
    const char* what;
    bool pass;
  };
  const Gate gates[] = {
      {"peak RSS within 2x budget-sized steady state",
       churn.peak_rss_kb <= 2 * churn.steady_rss_kb},
      {"churn throughput >= 0.5x all-hot", throughput_ratio >= 0.5},
      {"tree warm start cheaper than rebuild", tree.warm_us < tree.cold_us},
      {"ntt-key warm start cheaper than rebuild", ntt.warm_us < ntt.cold_us},
      {"netlist warm start cheaper than resynthesis",
       netlist.warm_us < netlist.cold_us},
  };
  for (const Gate& g : gates) {
    if (g.pass) continue;
    if (skip_timing) {
      std::printf("timing gate skipped: %s (CGS_BENCH_SKIP_TIMING_GATE)\n",
                  g.what);
    } else {
      std::printf("FAIL: %s\n", g.what);
      ok = false;
    }
  }

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "key_churn")
        .field("accesses", accesses)
        .field("num_keys", kNumKeys)
        .field("budget_entries", kBudgetEntries)
        .field("degree", kDegree)
        .field("timing_gate_enforced", !skip_timing)
        .begin_object("churn")
        .field("accesses_per_sec", churn.accesses_per_sec)
        .field("steady_rss_kb", churn.steady_rss_kb)
        .field("peak_rss_kb", churn.peak_rss_kb)
        .field("entries", churn.cache.entries)
        .field("hits", static_cast<std::size_t>(churn.cache.hits))
        .field("misses", static_cast<std::size_t>(churn.cache.misses))
        .field("evictions", static_cast<std::size_t>(churn.cache.evictions))
        .field("warm_starts",
               static_cast<std::size_t>(churn.cache.warm_starts))
        .field("kv_file_bytes",
               static_cast<std::size_t>(churn.kv.file_bytes))
        .field("kv_entries", churn.kv.entries)
        .end_object()
        .begin_object("all_hot")
        .field("accesses_per_sec", all_hot_per_sec)
        .field("throughput_ratio", throughput_ratio)
        .end_object()
        .begin_object("warm_cold_us")
        .field("tree_cold", tree.cold_us)
        .field("tree_warm", tree.warm_us)
        .field("ntt_key_cold", ntt.cold_us)
        .field("ntt_key_warm", ntt.warm_us)
        .field("netlist_cold", netlist.cold_us)
        .field("netlist_warm", netlist.warm_us)
        .end_object()
        .begin_object("bitexact")
        .field("identical", bitexact)
        .field("tree_warm_starts",
               static_cast<std::size_t>(sign_warm_starts))
        .end_object()
        .end_object();
    if (!json.write_file(args.json_path)) ok = false;
  }

  std::filesystem::remove_all(kv_dir);
  std::filesystem::remove_all(netlist_dir);
  std::filesystem::remove_all(sign_kv_dir);
  std::printf("%s\n", ok ? "bench self-checks passed" : "BENCH FAILED");
  return ok ? 0 : 1;
}
