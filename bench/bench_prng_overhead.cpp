// §7 reproduction: how much of total sampling time goes to pseudorandom
// generation. The paper reports 80-85% with Keccak and ~60% with ChaCha.
// Measured by sampling with a real PRNG vs a pre-filled pool (zero-cost
// randomness): overhead = 1 - t_pool / t_prng.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "ct/bitsliced_sampler.h"
#include "prng/chacha20.h"
#include "prng/keccak.h"
#include "prng/splitmix.h"

namespace {

using namespace cgs;

class PoolSource final : public RandomBitSource {
 public:
  PoolSource() : words_(1 << 16) {
    prng::SplitMix64Source seed(3);
    for (auto& w : words_) w = seed.next_word();
  }
  std::uint64_t next_word() override {
    const std::uint64_t w = words_[pos_];
    pos_ = (pos_ + 1) & (words_.size() - 1);
    return w;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t pos_ = 0;
};

double seconds_for_batches(ct::BitslicedSampler& s, RandomBitSource& rng,
                           int batches) {
  std::int32_t out[64];
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < batches; ++i) (void)s.sample_batch(rng, out);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("§7 reproduction: PRNG share of total sampling time\n");
  std::printf("(paper: Keccak 80-85%%, ChaCha ~60%%)\n\n");

  const gauss::ProbMatrix matrix(gauss::GaussianParams::sigma_2(128));
  ct::BitslicedSampler sampler(ct::synthesize(matrix, {}));
  const int kBatches = 20000;

  PoolSource pool;
  (void)seconds_for_batches(sampler, pool, 1000);  // warmup
  const double t_pool = seconds_for_batches(sampler, pool, kBatches);

  struct Entry {
    const char* name;
    std::unique_ptr<RandomBitSource> src;
  } entries[3] = {
      {"SHAKE-128 (Keccak)", std::make_unique<prng::ShakeSource>(1)},
      {"ChaCha20", std::make_unique<prng::ChaCha20Source>(1)},
      {"SplitMix64 (non-crypto)", std::make_unique<prng::SplitMix64Source>(1)},
  };

  std::printf("core-only time (pre-filled pool): %.3fs for %d batches\n\n",
              t_pool, kBatches);
  std::printf("%-26s %10s %14s\n", "PRNG", "total(s)", "PRNG share");
  for (auto& e : entries) {
    const double t = seconds_for_batches(sampler, *e.src, kBatches);
    std::printf("%-26s %10.3f %13.1f%%\n", e.name, t,
                100.0 * (1.0 - t_pool / t));
  }
  std::printf("\n(each batch consumes %d words = %d random bits)\n",
              sampler.words_per_batch(), sampler.words_per_batch() * 64);
  return 0;
}
