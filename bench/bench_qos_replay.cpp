// QoS replay gate for the admission policy: open-loop Poisson arrivals
// (latency is measured from each request's *intended* arrival time, so
// queueing delay is never coordinated away) driving two tenants through
// net::Server -> serve::route_frame -> a single shared sign lane — the
// worst case for fair-share, since every request contends for one queue.
//
//   phase A (solo)  : the victim tenant at its base rate — the baseline
//                     interactive tail.
//   phase B (storm) : the same victim, plus an aggressor tenant offering
//                     10x the victim's rate under a diurnal ramp
//                     (sinusoidal rate modulation).
//
// Both phases also carry background keygens on the wire and bulk gauss
// batches in-process, so all three QoS bands hold work throughout AND the
// heavy background CPU load (an NTRU solve burns a core for most of a
// second) is identical across phases — the aggressor is the only variable
// the solo/storm tail comparison sees.
//
// Gates:
//   - conservation (always): served + typed sheds == offered, exactly,
//     per tenant per phase — no request vanishes without a typed answer.
//   - shed hygiene (always): every admission shed carries a nonzero
//     retry-after hint (a shed with no hint is a guess, not an answer).
//   - inversions (always): the dispatcher's priority-inversion counter —
//     a lower band served while a higher band had unaged work — is zero.
//   - isolation (wall-clock, skipped when CGS_BENCH_SKIP_TIMING_GATE is
//     set): the storm sheds the aggressor, never the victim, and leaves
//     the victim's interactive p99 within 3x its solo p99.
//
// Usage: bench_qos_replay [victim_requests] [--json FILE]

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "net/client.h"
#include "net/overload.h"
#include "net/server.h"
#include "prng/splitmix.h"
#include "serial/serial.h"
#include "serve/dispatcher.h"
#include "serve/router.h"
#include "serve/wire.h"

namespace {

using namespace cgs;
using benchutil::Clock;

constexpr std::size_t kDegree = 64;
constexpr double kVictimRate = 400.0;   // req/s, constant
constexpr int kAggressorRatio = 10;     // offered-rate and count multiplier
constexpr double kDiurnalSwing = 0.6;   // aggressor rate swings +-60%
constexpr int kKeygens = 4;             // background class, on the wire
constexpr int kGaussBatches = 12;       // bulk class, in-process

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// One tenant's ledger for one phase. Offered is fixed up front; every
/// offered request ends up in exactly one of served / sheds / errors —
/// the conservation gate checks the sum.
struct TenantLedger {
  std::uint64_t offered = 0;
  std::atomic<std::uint64_t> served{0}, sheds{0}, zero_retry_sheds{0},
      errors{0};
  std::mutex mu;
  std::vector<double> latency_ms;  // served only, from intended arrival
};

/// Precomputed open-loop arrival schedule: exponential inter-arrivals at
/// base_rate, optionally modulated by one full sinusoidal "day" over the
/// schedule (the diurnal ramp). Deterministic per seed.
std::vector<double> arrival_schedule(int count, double base_rate,
                                     bool diurnal, std::uint64_t seed) {
  prng::SplitMix64Source rng(seed);
  const double expected_secs = static_cast<double>(count) / base_rate;
  std::vector<double> at(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    double rate = base_rate;
    if (diurnal)
      rate *= 1.0 + kDiurnalSwing *
                        std::sin(2.0 * M_PI * t / expected_secs);
    const double u =
        static_cast<double>(rng.next_word() >> 11) * 0x1.0p-53;
    t += -std::log1p(-u) / rate;
    at[static_cast<std::size_t>(i)] = t;
  }
  return at;
}

/// Drive one tenant through one phase: a sender thread paces sign
/// requests down `n_conns` pipelined connections on the precomputed
/// schedule; one reader per connection settles responses by request_id.
/// Every response is either a sign success (served, latency from the
/// intended arrival), a typed kOverloaded shed, or an error.
void run_tenant(std::uint16_t port, std::uint64_t key_id, int count,
                int n_conns, const std::vector<double>& schedule,
                const std::atomic<bool>& go, Clock::time_point t0,
                TenantLedger& ledger) {
  net::ClientOptions copts;
  copts.connect_timeout = std::chrono::milliseconds(15000);
  copts.read_timeout = std::chrono::milliseconds(60000);
  std::vector<net::Client> clients;
  clients.reserve(static_cast<std::size_t>(n_conns));
  for (int c = 0; c < n_conns; ++c) clients.emplace_back(port, copts);
  while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<std::thread> readers;
  for (int c = 0; c < n_conns; ++c)
    readers.emplace_back([&, c] {
      // Request i rides connection i % n_conns, so this reader owes
      // exactly the schedule slots congruent to c.
      int due = count / n_conns + (c < count % n_conns ? 1 : 0);
      net::Client& client = clients[static_cast<std::size_t>(c)];
      while (due > 0) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
          frame = client.read();
        } catch (const std::exception&) {
          frame.reset();
        }
        if (!frame) {
          ledger.errors += static_cast<std::uint64_t>(due);
          return;
        }
        --due;
        try {
          if (net::is_overloaded(*frame)) {
            const net::OverloadedFrame shed = net::decode_overloaded(*frame);
            ++ledger.sheds;
            if (shed.retry_after_ms == 0) ++ledger.zero_retry_sheds;
            continue;
          }
          const serve::SignResponseFrame resp =
              serve::decode_sign_response(*frame);
          const std::size_t id = static_cast<std::size_t>(resp.request_id);
          if (!resp.ok || id >= schedule.size()) {
            ++ledger.errors;
            continue;
          }
          const double intended_ms = schedule[id] * 1000.0;
          const double done_ms = benchutil::ms_since(t0);
          ++ledger.served;
          std::lock_guard<std::mutex> lock(ledger.mu);
          ledger.latency_ms.push_back(done_ms - intended_ms);
        } catch (const std::exception&) {
          ++ledger.errors;
        }
      }
    });

  // Open loop: each request leaves at its intended instant whether or not
  // earlier ones have been answered. Falling behind the schedule only
  // ever inflates measured latency — never deflates it.
  for (int i = 0; i < count; ++i) {
    const auto intended =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(
                     schedule[static_cast<std::size_t>(i)]));
    std::this_thread::sleep_until(intended);
    serve::SignRequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.key_id = key_id;
    req.message = "qos replay " + std::to_string(key_id % 1000) + " #" +
                  std::to_string(i);
    try {
      clients[static_cast<std::size_t>(i % n_conns)].send(
          serve::encode(req));
    } catch (const std::exception&) {
      ++ledger.errors;  // the reader will time out on the missing frame
    }
  }
  for (auto& r : readers) r.join();
}

struct PhaseOut {
  double secs = 0.0;
  std::vector<double> keygen_ms;  // background class (wire)
  std::vector<double> gauss_ms;   // bulk class (in-process)
};

/// One measured phase against a fresh front door over the shared
/// dispatcher. Background keygens and bulk gauss run in every phase; the
/// storm phase adds the aggressor.
PhaseOut run_phase(serve::Dispatcher& dispatcher, bool storm,
                   std::uint64_t victim_key, std::uint64_t aggressor_key,
                   int victim_count, TenantLedger& victim,
                   TenantLedger& aggressor) {
  PhaseOut out;
  serve::CompletionPool pool(4);
  net::ServerOptions sopts;
  sopts.reactors = 2;
  sopts.backlog = 256;
  net::Server server(
      [&](net::ResponseToken token, std::vector<std::uint8_t> frame) {
        serve::route_frame(dispatcher, pool, std::move(token),
                           std::move(frame));
      },
      sopts);

  const int aggressor_count = victim_count * kAggressorRatio;
  victim.offered = static_cast<std::uint64_t>(victim_count);
  const std::vector<double> victim_at =
      arrival_schedule(victim_count, kVictimRate, false, 0x5010 + storm);
  std::vector<double> aggressor_at;
  if (storm) {
    aggressor.offered = static_cast<std::uint64_t>(aggressor_count);
    aggressor_at = arrival_schedule(
        aggressor_count, kVictimRate * kAggressorRatio, true, 0xA99);
  }

  std::atomic<bool> go{false};
  const auto t0 = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    run_tenant(server.port(), victim_key, victim_count, 2, victim_at, go,
               t0, victim);
  });
  if (storm) {
    threads.emplace_back([&] {
      run_tenant(server.port(), aggressor_key, aggressor_count, 4,
                 aggressor_at, go, t0, aggressor);
    });
  }
  threads.emplace_back([&] {  // background: keygens over the wire
    net::ClientOptions copts;
    copts.read_timeout = std::chrono::milliseconds(60000);
    net::Client client(server.port(), copts);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < kKeygens; ++i) {
      serve::KeygenRequestFrame req;
      req.request_id = static_cast<std::uint64_t>(i);
      req.degree = kDegree;
      // Phase-distinct seeds: both phases pay for real solves.
      req.seed = (storm ? 0xB0B0u : 0x50B0u) + static_cast<std::uint64_t>(i);
      const auto sent = Clock::now();
      try {
        const serve::KeygenResponseFrame resp =
            serve::decode_keygen_response(
                client.request(serve::encode(req)));
        if (resp.ok) out.keygen_ms.push_back(benchutil::ms_since(sent));
      } catch (const std::exception&) {
        // Counted by absence: background latency is reported, not gated.
      }
    }
  });
  threads.emplace_back([&] {  // bulk: gauss batches, closed loop
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < kGaussBatches; ++i) {
      serve::GaussRequest greq;
      greq.sigma = 1.7;
      greq.center = 0.0;
      greq.n = 2048;
      greq.request_id = static_cast<std::uint64_t>(i);
      const auto sent = Clock::now();
      try {
        auto sub = dispatcher.submit(std::move(greq));
        if (sub.ok()) {
          sub.future.get();
          out.gauss_ms.push_back(benchutil::ms_since(sent));
        }
      } catch (const std::exception&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  out.secs = benchutil::ms_since(t0) / 1000.0;

  server.shutdown();
  pool.join();
  return out;
}

void print_ledger(const char* name, const TenantLedger& ledger) {
  std::printf(
      "%-14s: offered %5llu -> served %5llu, typed sheds %4llu "
      "(zero-retry %llu), errors %llu | p50 %7.1fms p95 %7.1fms p99 %7.1fms\n",
      name, static_cast<unsigned long long>(ledger.offered),
      static_cast<unsigned long long>(ledger.served.load()),
      static_cast<unsigned long long>(ledger.sheds.load()),
      static_cast<unsigned long long>(ledger.zero_retry_sheds.load()),
      static_cast<unsigned long long>(ledger.errors.load()),
      percentile(ledger.latency_ms, 50), percentile(ledger.latency_ms, 95),
      percentile(ledger.latency_ms, 99));
}

bool conserved(const TenantLedger& ledger) {
  return ledger.served.load() + ledger.sheds.load() +
             ledger.errors.load() ==
         ledger.offered;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const int victim_count = args.n > 0 ? static_cast<int>(args.n) : 400;

  // One sign lane on purpose: both tenants contend for the same queue, so
  // isolation can only come from the admission policy — per-tenant DRR
  // and the tenant depth cap — not from lane sharding.
  serve::DispatcherOptions dopts;
  dopts.queue_capacity = 512;
  dopts.max_batch = 16;
  dopts.max_linger_us = 2000;
  dopts.sign_lanes = 1;
  dopts.verify_lanes = 1;
  dopts.tenant_capacity = 8;  // the storm hits this; the victim never does
  dopts.drr_quantum = 2;
  dopts.signing.root_seed = 0x005;
  // One engine thread: the lane's service rate must sit below the storm's
  // offered rate, or the admission policy never has anything to decide.
  dopts.signing.num_threads = 1;
  serve::Dispatcher dispatcher(engine::SamplerRegistry::global(), dopts);

  serve::KeygenRequest vreq;
  vreq.params = falcon::FalconParams::for_degree(kDegree);
  vreq.seed = 0x71C71;
  const std::uint64_t victim_key =
      dispatcher.submit(std::move(vreq)).future.get().key_id;
  serve::KeygenRequest areq;
  areq.params = falcon::FalconParams::for_degree(kDegree);
  areq.seed = 0xA99E5;
  const std::uint64_t aggressor_key =
      dispatcher.submit(std::move(areq)).future.get().key_id;

  std::printf("== qos replay: victim %d req @ %.0f/s, aggressor %dx under "
              "diurnal ramp, 1 sign lane, tenant cap %zu ==\n",
              victim_count, kVictimRate, kAggressorRatio,
              dopts.tenant_capacity);

  TenantLedger solo_victim, solo_aggressor;  // aggressor idle in phase A
  const PhaseOut solo = run_phase(dispatcher, false, victim_key,
                                  aggressor_key, victim_count, solo_victim,
                                  solo_aggressor);
  std::printf("-- solo (%.2fs) --\n", solo.secs);
  print_ledger("victim", solo_victim);

  TenantLedger storm_victim, storm_aggressor;
  const PhaseOut storm = run_phase(dispatcher, true, victim_key,
                                   aggressor_key, victim_count,
                                   storm_victim, storm_aggressor);
  std::printf("-- storm (%.2fs) --\n", storm.secs);
  print_ledger("victim", storm_victim);
  print_ledger("aggressor", storm_aggressor);
  std::printf("background    : %zu/%d keygens served, p99 %.1fms | bulk: "
              "%zu/%d gauss batches, p99 %.1fms\n",
              storm.keygen_ms.size(), kKeygens,
              percentile(storm.keygen_ms, 99), storm.gauss_ms.size(),
              kGaussBatches, percentile(storm.gauss_ms, 99));

  const serve::MetricsSnapshot m = dispatcher.metrics();
  const double solo_p99 = percentile(solo_victim.latency_ms, 99);
  const double storm_p99 = percentile(storm_victim.latency_ms, 99);
  const double tail_ratio = solo_p99 > 0 ? storm_p99 / solo_p99 : 0.0;
  std::printf("isolation     : victim p99 solo %.1fms -> storm %.1fms "
              "(%.2fx), inversions %llu, aged promotions %llu, tenant "
              "rejections %llu\n",
              solo_p99, storm_p99, tail_ratio,
              static_cast<unsigned long long>(m.priority_inversions()),
              static_cast<unsigned long long>(m.aged_promotions()),
              static_cast<unsigned long long>(m.tenant_rejections()));

  dispatcher.shutdown();

  const char* skip_env = std::getenv("CGS_BENCH_SKIP_TIMING_GATE");
  const bool gate_timing = !(skip_env && *skip_env && *skip_env != '0');

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "qos_replay")
        .field("victim_requests", victim_count)
        .field("aggressor_requests", victim_count * kAggressorRatio)
        .field("victim_rate_rps", kVictimRate)
        .field("aggressor_ratio", kAggressorRatio)
        .field("solo_victim_p50_ms", percentile(solo_victim.latency_ms, 50))
        .field("solo_victim_p95_ms", percentile(solo_victim.latency_ms, 95))
        .field("solo_victim_p99_ms", solo_p99)
        .field("storm_victim_p50_ms",
               percentile(storm_victim.latency_ms, 50))
        .field("storm_victim_p95_ms",
               percentile(storm_victim.latency_ms, 95))
        .field("storm_victim_p99_ms", storm_p99)
        .field("storm_aggressor_p50_ms",
               percentile(storm_aggressor.latency_ms, 50))
        .field("storm_aggressor_p99_ms",
               percentile(storm_aggressor.latency_ms, 99))
        .field("background_keygen_p99_ms", percentile(storm.keygen_ms, 99))
        .field("bulk_gauss_p99_ms", percentile(storm.gauss_ms, 99))
        .field("victim_tail_ratio", tail_ratio)
        .field("victim_sheds",
               static_cast<std::size_t>(solo_victim.sheds +
                                        storm_victim.sheds))
        .field("aggressor_sheds",
               static_cast<std::size_t>(storm_aggressor.sheds))
        .field("zero_retry_sheds",
               static_cast<std::size_t>(solo_victim.zero_retry_sheds +
                                        storm_victim.zero_retry_sheds +
                                        storm_aggressor.zero_retry_sheds))
        .field("priority_inversions",
               static_cast<std::size_t>(m.priority_inversions()))
        .field("aged_promotions",
               static_cast<std::size_t>(m.aged_promotions()))
        .field("tenant_rejections",
               static_cast<std::size_t>(m.tenant_rejections()))
        .field("timing_gated", gate_timing)
        .end_object();
    json.write_file(args.json_path);
  }

  // Conservation and shed-hygiene gates — never skipped.
  if (solo_victim.errors != 0 || storm_victim.errors != 0 ||
      storm_aggressor.errors != 0) {
    std::printf("FAIL: %llu responses missing or undecodable\n",
                static_cast<unsigned long long>(solo_victim.errors +
                                                storm_victim.errors +
                                                storm_aggressor.errors));
    return 1;
  }
  if (!conserved(solo_victim) || !conserved(storm_victim) ||
      !conserved(storm_aggressor)) {
    std::printf("FAIL: served + typed sheds != offered\n");
    return 1;
  }
  if (solo_victim.zero_retry_sheds + storm_victim.zero_retry_sheds +
          storm_aggressor.zero_retry_sheds !=
      0) {
    std::printf("FAIL: admission shed with a zero retry-after hint\n");
    return 1;
  }
  if (m.priority_inversions() != 0) {
    std::printf("FAIL: %llu priority inversions\n",
                static_cast<unsigned long long>(m.priority_inversions()));
    return 1;
  }
  // Isolation gates — wall-clock-sensitive, honor the skip env.
  if (gate_timing) {
    if (storm_aggressor.sheds == 0) {
      std::printf("FAIL: the storm never overloaded (no aggressor sheds); "
                  "gates did not bite\n");
      return 1;
    }
    if (storm_victim.sheds != 0 || solo_victim.sheds != 0) {
      std::printf("FAIL: the victim was shed %llu times — fair-share did "
                  "not protect it\n",
                  static_cast<unsigned long long>(storm_victim.sheds +
                                                  solo_victim.sheds));
      return 1;
    }
    if (solo_p99 > 0 && tail_ratio > 3.0) {
      std::printf("FAIL: victim storm p99 %.2fx solo (> 3x gate)\n",
                  tail_ratio);
      return 1;
    }
  }
  std::printf("OK: conservation exact, typed sheds carry retry hints, "
              "zero inversions%s\n",
              gate_timing ? ", victim tail within gate"
                          : " (timing gates skipped)");
  return 0;
}
