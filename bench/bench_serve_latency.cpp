// Serving-layer latency/throughput/occupancy under offered load: the
// number the async layer exists for. Three phases over one tenant key at
// N = 64 (keygen-cheap; the serving overheads under test are degree-
// independent):
//
//   1. baseline  — the pre-serving-layer shape: requests handled one at a
//      time, one sign_many(1) per request on a single dispatch thread, so
//      however many workers exist, each request uses one and the rest
//      idle;
//   2. load      — the same number of requests stormed through the
//      Dispatcher from several client threads (backpressure retries on
//      kQueueFull), which the MicroBatcher turns into full bit-sliced
//      batches fanned across every worker;
//   3. idle      — single in-flight requests (submit, wait, repeat): the
//      price one lone client pays for batching is bounded by the linger;
//   4. telemetry — the same storm twice more on fresh dispatchers, once
//      with the whole obs layer priced out (tracing sample_every = 0 AND
//      tenant_metrics off: submits cost one branch) and once with the
//      full PR 9 telemetry on — labeled per-tenant counter families,
//      windowed latency histograms, SLO counters, 1-in-64 tracing;
//   5. tenant cardinality storm — 10^5 distinct tenants hammered into
//      one labeled counter family from every client thread: the series
//      count must stay bounded at top-K (+ the `other` overflow cell)
//      and the labeled series must re-add exactly to the global.
//
// Self-check gates (ISSUE 4 + PR 6 + PR 9 acceptance):
//   - every returned signature verifies             (always gated)
//   - mean achieved batch occupancy >= 32 at load   (always gated)
//   - labeled series bounded + sum exactly to global (always gated)
//   - load throughput >= 2x the baseline            (timing gate)
//   - idle p99 latency <= 2 * max_linger_us         (timing gate)
//   - full-telemetry throughput >= 0.90x obs-off    (timing gate)
// Timing gates are skipped when CGS_BENCH_SKIP_TIMING_GATE is set (shared
// CI runners jitter both wall-clock and core availability).
//
// Usage: bench_serve_latency [requests] [--json FILE]

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "falcon/keygen.h"
#include "falcon/verify.h"
#include "obs/labels.h"
#include "obs/registry.h"
#include "prng/chacha20.h"
#include "serve/dispatcher.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

constexpr double kThroughputGate = 2.0;  // load vs baseline
constexpr std::uint64_t kLingerUs = 4000;
constexpr std::size_t kMaxBatch = 64;

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::size_t n_requests = args.n ? args.n : 512;
  const std::size_t n_idle = std::min<std::size_t>(64, n_requests);

  // Per-process cache dir: hermetic against concurrent runs (same
  // reasoning as the other benches).
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("cgs-bench-serve-cache-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  engine::SamplerRegistry reg({.cache_dir = dir});

  prng::ChaCha20Source rng(0x5E7F);
  const falcon::KeyPair kp =
      falcon::keygen(falcon::FalconParams::for_degree(64), rng);
  const falcon::Verifier verifier(kp.h, kp.params);

  serve::DispatcherOptions opts;
  opts.queue_capacity = 256;
  opts.max_batch = kMaxBatch;
  opts.max_linger_us = kLingerUs;
  opts.sign_lanes = 1;  // one tenant key -> one shard; isolation is tested
                        // in test_serve, occupancy is measured here
  opts.signing.root_seed = 0x5E7F;
  serve::Dispatcher dispatcher(reg, opts);
  const std::uint64_t key_id = dispatcher.add_key(kp);

  std::printf("== serving-layer bench: %zu requests, max_batch %zu, "
              "max_linger %llu us, %d signing workers ==\n\n",
              n_requests, kMaxBatch,
              static_cast<unsigned long long>(kLingerUs),
              dispatcher.signing_service().num_threads());

  bool all_verified = true;

  // 1. Baseline: one-request-per-sign_many on one dispatch thread.
  falcon::SigningService& svc = dispatcher.signing_service();
  (void)svc.sign(kp, "warmup");  // tree build + ring fill
  const auto t_base = Clock::now();
  for (std::size_t i = 0; i < n_requests; ++i) {
    const falcon::Signature sig =
        svc.sign(kp, "baseline " + std::to_string(i));
    if (i % 17 == 0 &&
        !verifier.verify("baseline " + std::to_string(i), sig))
      all_verified = false;
  }
  const double base_ms = ms_since(t_base);
  const double base_rate = static_cast<double>(n_requests) / base_ms * 1e3;
  std::printf("baseline: %8.0f signs/s (one sign_many(1) per request)\n",
              base_rate);

  // 2. Offered-load storm through the dispatcher.
  std::vector<std::future<falcon::Signature>> futures(n_requests);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> retries{0};
  const unsigned n_clients =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  const auto t_load = Clock::now();
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < n_clients; ++c) {
    clients.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n_requests) return;
        while (true) {
          auto sub =
              dispatcher.submit(serve::SignRequest{
                  .key_id = key_id,
                  .message = "load " + std::to_string(i)});
          if (sub.ok()) {
            futures[i] = std::move(sub.future);
            break;
          }
          retries.fetch_add(1);  // kQueueFull backpressure: spin politely
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < n_requests; ++i) {
    const falcon::Signature sig = futures[i].get();
    if (!verifier.verify("load " + std::to_string(i), sig))
      all_verified = false;
  }
  const double load_ms = ms_since(t_load);
  const double load_rate = static_cast<double>(n_requests) / load_ms * 1e3;
  const serve::MetricsSnapshot after_load = dispatcher.metrics();
  const double occupancy = after_load.sign_occupancy();
  const double speedup = load_rate / base_rate;
  std::printf("load:     %8.0f signs/s (%.2fx baseline) from %u clients, "
              "%llu backpressure retries\n",
              load_rate, speedup, n_clients,
              static_cast<unsigned long long>(retries.load()));
  std::printf("          occupancy %.1f req/batch over %llu batches, "
              "p50/p95/p99 %.0f/%.0f/%.0f us\n",
              occupancy,
              static_cast<unsigned long long>(after_load.sign_batches()),
              after_load.p50_us, after_load.p95_us, after_load.p99_us);

  // 3. Idle: single in-flight request latency (fresh histogram via a
  // second dispatcher so the load phase's latencies don't pollute p99).
  serve::Dispatcher idle_dispatcher(reg, opts);
  const std::uint64_t idle_key = idle_dispatcher.add_key(kp);
  (void)idle_dispatcher.submit(serve::SignRequest{.key_id = idle_key, .message = "warmup"}).future.get();
  std::vector<double> idle_us;
  for (std::size_t i = 0; i < n_idle; ++i) {
    const auto t0 = Clock::now();
    auto sub = idle_dispatcher.submit(serve::SignRequest{.key_id = idle_key, .message = "idle"});
    const falcon::Signature sig = sub.future.get();
    idle_us.push_back(ms_since(t0) * 1e3);
    if (i % 9 == 0 && !verifier.verify("idle", sig)) all_verified = false;
  }
  std::sort(idle_us.begin(), idle_us.end());
  const double idle_p50 = idle_us[idle_us.size() / 2];
  const double idle_p99 = idle_us[idle_us.size() * 99 / 100];
  std::printf("idle:     p50 %.0f us, p99 %.0f us single in-flight "
              "(linger %llu us)\n",
              idle_p50, idle_p99,
              static_cast<unsigned long long>(kLingerUs));

  // 4. Instrumentation overhead: identical storms on fresh dispatchers,
  // the whole obs layer off vs the full telemetry configuration (labeled
  // tenant families + windowed histograms + SLO counters + 1-in-64
  // tracing). Everything else (lanes, batching, key, request count) held
  // constant.
  const auto storm_rate = [&](serve::Dispatcher& d, std::uint64_t kid) {
    (void)d.submit(serve::SignRequest{.key_id = kid, .message = "warmup"}).future.get();
    std::vector<std::future<falcon::Signature>> futs(n_requests);
    std::atomic<std::size_t> idx{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> storm;
    for (unsigned c = 0; c < n_clients; ++c) {
      storm.emplace_back([&] {
        while (true) {
          const std::size_t i = idx.fetch_add(1);
          if (i >= n_requests) return;
          while (true) {
            auto sub = d.submit(serve::SignRequest{.key_id = kid, .message = "trace " + std::to_string(i)});
            if (sub.ok()) {
              futs[i] = std::move(sub.future);
              break;
            }
            std::this_thread::yield();
          }
        }
      });
    }
    for (auto& t : storm) t.join();
    for (std::size_t i = 0; i < n_requests; ++i) {
      const falcon::Signature sig = futs[i].get();
      if (i % 17 == 0 && !verifier.verify("trace " + std::to_string(i), sig))
        all_verified = false;
    }
    return static_cast<double>(n_requests) / ms_since(t0) * 1e3;
  };
  serve::DispatcherOptions off_opts = opts;
  off_opts.trace.sample_every = 0;   // tracing off: one branch per submit
  off_opts.tenant_metrics = false;   // no labeled / windowed / SLO updates
  const std::uint32_t sample_every = opts.trace.sample_every;
  double off_rate, traced_rate;
  {
    serve::Dispatcher off_dispatcher(reg, off_opts);
    off_rate = storm_rate(off_dispatcher, off_dispatcher.add_key(kp));
  }
  {
    serve::Dispatcher traced_dispatcher(reg, opts);
    traced_rate =
        storm_rate(traced_dispatcher, traced_dispatcher.add_key(kp));
  }
  const double tracing_overhead_pct = (1.0 - traced_rate / off_rate) * 100.0;
  std::printf("telemetry: %7.0f signs/s obs-off, %8.0f signs/s with labeled"
              " + windowed + 1-in-%u tracing (overhead %+.1f%%)\n",
              off_rate, traced_rate, sample_every, tracing_overhead_pct);

  // 5. Tenant cardinality storm, straight at the labeled-family layer:
  // 10^5 distinct tenants (plus a recurring hot set that must survive the
  // churn) from every client thread. The two invariants the family
  // promises — bounded live series, fold-don't-drop — are checked at
  // quiescence, where the sum is exact.
  constexpr std::uint64_t kStormTenants = 100'000;
  obs::Registry storm_registry;
  obs::CounterFamily& storm_family =
      storm_registry.counter_family("cgs_tenant_sign_requests_total");
  std::atomic<std::uint64_t> storm_next{0};
  const auto t_storm = Clock::now();
  std::vector<std::thread> storm_threads;
  for (unsigned c = 0; c < n_clients; ++c) {
    storm_threads.emplace_back([&] {
      while (true) {
        const std::uint64_t t = storm_next.fetch_add(1);
        if (t >= kStormTenants) return;
        storm_family.add(
            obs::LabelSet{{"tenant", obs::tenant_label(0xBEEF + t * 0x9E37)}});
        // Every 16th iteration also touches a hot tenant, keeping the
        // top-K protected set warm while the cold sweep churns.
        if (t % 16 == 0)
          storm_family.add(
              obs::LabelSet{{"tenant", obs::tenant_label(t % 8)}});
      }
    });
  }
  for (auto& t : storm_threads) t.join();
  const double storm_ms = ms_since(t_storm);
  const std::uint64_t storm_adds =
      kStormTenants + (kStormTenants + 15) / 16;
  std::uint64_t labeled_sum = 0;
  const auto storm_cells = storm_family.collect();
  for (const auto& cell : storm_cells) labeled_sum += cell.value;
  std::uint64_t storm_global = 0;
  for (const obs::Sample& s : storm_registry.collect())
    if (s.name == "cgs_tenant_sign_requests_total" && s.labels.empty())
      storm_global = static_cast<std::uint64_t>(s.value);
  std::printf("tenants:  %7.0f adds/s over %llu distinct tenants -> %zu live"
              " series + other (%llu folds), labeled sum %llu vs global "
              "%llu\n\n",
              static_cast<double>(storm_adds) / storm_ms * 1e3,
              static_cast<unsigned long long>(kStormTenants),
              storm_family.series(),
              static_cast<unsigned long long>(storm_family.folds()),
              static_cast<unsigned long long>(labeled_sum),
              static_cast<unsigned long long>(storm_global));

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "serve_latency")
        .field("n_requests", n_requests)
        .field("max_batch", kMaxBatch)
        .field("max_linger_us", kLingerUs)
        .field("signing_workers", dispatcher.signing_service().num_threads())
        .field("clients", n_clients)
        .field("baseline_signs_per_sec", base_rate)
        .field("load_signs_per_sec", load_rate)
        .field("speedup_vs_baseline", speedup)
        .field("occupancy", occupancy)
        .field("batches",
               static_cast<std::uint64_t>(after_load.sign_batches()))
        .field("backpressure_retries", retries.load())
        .field("load_p50_us", after_load.p50_us)
        .field("load_p95_us", after_load.p95_us)
        .field("load_p99_us", after_load.p99_us)
        .field("idle_p50_us", idle_p50)
        .field("idle_p99_us", idle_p99)
        .field("trace_sample_every", sample_every)
        .field("telemetry_off_signs_per_sec", off_rate)
        .field("telemetry_on_signs_per_sec", traced_rate)
        .field("telemetry_overhead_pct", tracing_overhead_pct)
        .field("tenant_storm_tenants", kStormTenants)
        .field("tenant_storm_adds_per_sec",
               static_cast<double>(storm_adds) / storm_ms * 1e3)
        .field("tenant_live_series",
               static_cast<std::uint64_t>(storm_family.series()))
        .field("tenant_folds", storm_family.folds())
        .field("all_verified", all_verified)
        .end_object();
    json.write_file(args.json_path);
  }

  std::filesystem::remove_all(dir);

  // Gates. Occupancy is load-driven, not wall-clock-driven, so it holds on
  // noisy runners and always gates alongside signature validity; the two
  // rate/latency gates are wall-clock and honor the skip env.
  const char* skip_env = std::getenv("CGS_BENCH_SKIP_TIMING_GATE");
  const bool gate_timing = !(skip_env && *skip_env && *skip_env != '0');
  if (!all_verified) {
    std::printf("FAIL: a served signature did not verify\n");
    return 1;
  }
  if (occupancy < 32.0) {
    std::printf("FAIL: mean batch occupancy %.1f < 32 lanes under load\n",
                occupancy);
    return 1;
  }
  if (gate_timing && speedup < kThroughputGate) {
    std::printf("FAIL: load throughput %.2fx baseline < %.1fx gate\n",
                speedup, kThroughputGate);
    return 1;
  }
  if (gate_timing && idle_p99 > 2.0 * static_cast<double>(kLingerUs)) {
    std::printf("FAIL: idle p99 %.0f us > 2x linger (%llu us)\n", idle_p99,
                static_cast<unsigned long long>(2 * kLingerUs));
    return 1;
  }
  if (gate_timing && traced_rate < 0.90 * off_rate) {
    std::printf("FAIL: full telemetry costs %.1f%% throughput (> 10%%)\n",
                tracing_overhead_pct);
    return 1;
  }
  // Cardinality gates are correctness, not wall-clock: always enforced.
  if (storm_family.series() > 32) {
    std::printf("FAIL: tenant storm grew %zu live series (> max_series 32)\n",
                storm_family.series());
    return 1;
  }
  if (storm_cells.size() > 33) {
    std::printf("FAIL: tenant storm exposes %zu series (> top-K + other)\n",
                storm_cells.size());
    return 1;
  }
  if (labeled_sum != storm_adds || storm_global != storm_adds) {
    std::printf("FAIL: labeled sum %llu / global %llu != %llu adds — an "
                "observation was dropped\n",
                static_cast<unsigned long long>(labeled_sum),
                static_cast<unsigned long long>(storm_global),
                static_cast<unsigned long long>(storm_adds));
    return 1;
  }
  std::printf("OK: occupancy %.1f >= 32, every signature verified, labeled "
              "series bounded and sum to global%s\n",
              occupancy,
              gate_timing ? ", throughput and idle-latency gates passed"
                          : " (timing gates skipped)");
  return 0;
}
