// Table 1: Falcon signing throughput (signs/sec) at N = 256/512/1024 with
// the four interchangeable base samplers, ChaCha20 as the PRNG — the
// paper's headline application experiment.
//
// Expected shape (paper, i7-6600U): byte-scan CDT fastest, binary-search
// CDT next, this work's bit-sliced CT sampler ~10-30% behind the CDTs, and
// linear-search CT CDT slowest; this work faster than linear CT.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "engine/registry.h"
#include "falcon/sign.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

namespace {

using namespace cgs;

struct SamplerEntry {
  const char* label;
  std::unique_ptr<IntSampler> sampler;
};

std::vector<SamplerEntry> make_samplers(const gauss::ProbMatrix& matrix,
                                        const cdt::CdtTable& table) {
  std::vector<SamplerEntry> v;
  v.push_back({"byte-scan CDT  [13] (non-CT)",
               std::make_unique<cdt::CdtByteScanSampler>(table)});
  v.push_back({"CDT            [26] (non-CT)",
               std::make_unique<cdt::CdtBinarySearchSampler>(table)});
  v.push_back({"linear CDT     [7]  (CT)    ",
               std::make_unique<cdt::CdtLinearCtSampler>(table)});
  // Base-sampler netlist via the registry: synthesized once ever, then
  // warm-loaded from the on-disk cache on every later bench run.
  const auto synth = engine::SamplerRegistry::global().get(matrix.params());
  if (ct::CompiledKernel::is_available()) {
    v.push_back({"this work, compiled (CT)    ",
                 std::make_unique<ct::BufferedCompiledSampler>(*synth)});
  } else {
    v.push_back({"this work, interp.  (CT)    ",
                 std::make_unique<ct::BufferedBitslicedSampler>(*synth)});
  }
  return v;
}

double signs_per_sec(falcon::Signer& signer, RandomBitSource& rng,
                     double budget_sec) {
  // Warmup.
  (void)signer.sign("warmup", rng);
  const auto t0 = std::chrono::steady_clock::now();
  int signs = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0).count() < budget_sec) {
    (void)signer.sign("benchmark message", rng);
    ++signs;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();
  return signs / secs;
}

}  // namespace

int main(int argc, char** argv) {
  double budget = 2.0;
  if (argc > 1) budget = std::atof(argv[1]);

  std::printf("Table 1 reproduction: Falcon-sign throughput, ChaCha20 PRNG\n");
  std::printf("(paper: byte-scan 10327/5220/2640, CDT 8041/4064/2014,\n");
  std::printf(" linear CDT 6080/3027/1519, this work 7025/3527/1754 "
              "signs/sec on i7-6600U)\n\n");

  const gauss::ProbMatrix matrix(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable table(matrix);

  std::printf("%-30s", "sampler \\ N");
  for (std::size_t n : {256, 512, 1024}) std::printf("%10zu", n);
  std::printf("\n");

  // Keygen once per degree, reused across samplers (as in the paper).
  std::vector<falcon::KeyPair> keys;
  for (std::size_t n : {256, 512, 1024}) {
    prng::ChaCha20Source rng(1000 + n);
    keys.push_back(falcon::keygen(falcon::FalconParams::for_degree(n), rng));
    std::fprintf(stderr, "[keygen N=%zu done]\n", n);
  }

  auto samplers = make_samplers(matrix, table);
  std::vector<std::vector<double>> results(samplers.size());
  for (std::size_t s = 0; s < samplers.size(); ++s) {
    std::printf("%-30s", samplers[s].label);
    for (const auto& kp : keys) {
      prng::ChaCha20Source rng(42);
      falcon::Signer signer(kp, *samplers[s].sampler);
      // Sanity: signatures verify.
      falcon::Verifier verifier(kp.h, kp.params);
      auto sig = signer.sign("check", rng);
      if (!verifier.verify("check", sig)) {
        std::printf(" VERIFY-FAIL");
        continue;
      }
      const double sps = signs_per_sec(signer, rng, budget);
      results[s].push_back(sps);
      std::printf("%10.0f", sps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nRelative slowdown of this-work vs fastest non-CT "
              "(paper: <= ~32%%):\n");
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    const double fastest = results[0][i];
    const double ours = results[3][i];
    std::printf("  N=%4d: %.1f%% slower; vs linear-CT CDT: %.1f%% faster\n",
                256 << i, 100.0 * (1.0 - ours / fastest),
                100.0 * (ours / results[2][i] - 1.0));
  }
  return 0;
}
