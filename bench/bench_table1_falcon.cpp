// Table 1: Falcon signing throughput (signs/sec) at N = 256/512/1024 with
// the four interchangeable base samplers, ChaCha20 as the PRNG — the
// paper's headline application experiment — plus the PR-3 batched column:
// the same bit-sliced sampler served through the engine/BlockSource
// pipeline (SigningService), which must clear >= 3x the scalar bit-sliced
// baseline with every produced signature verifying.
//
// Expected shape (paper, i7-6600U): byte-scan CDT fastest among scalar
// rows, binary-search CDT next, this work's bit-sliced CT sampler
// ~10-30% behind the CDTs, linear-search CT CDT slowest. The batched row
// is this repo's contribution on top: block-pulled proposals from the
// compiled (or wide) engine backend amortize the netlist pass the scalar
// rows pay per 64 samples.
//
// Usage: bench_table1_falcon [budget_sec] [--json FILE] [--degrees a,b,c]
// Timing gates are skipped when CGS_BENCH_SKIP_TIMING_GATE is set (shared
// CI runners); the every-signature-verifies gate always applies.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "engine/registry.h"
#include "falcon/sign.h"
#include "falcon/signing_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

namespace {

using namespace cgs;

constexpr double kGateSpeedup = 3.0;

struct SamplerEntry {
  const char* label;
  const char* key;  // json-safe slug
  std::unique_ptr<IntSampler> sampler;
};

std::vector<SamplerEntry> make_samplers(const gauss::ProbMatrix& matrix,
                                        const cdt::CdtTable& table) {
  std::vector<SamplerEntry> v;
  v.push_back({"byte-scan CDT  [13] (non-CT)", "byte_scan_cdt",
               std::make_unique<cdt::CdtByteScanSampler>(table)});
  v.push_back({"CDT            [26] (non-CT)", "binary_cdt",
               std::make_unique<cdt::CdtBinarySearchSampler>(table)});
  v.push_back({"linear CDT     [7]  (CT)    ", "linear_cdt",
               std::make_unique<cdt::CdtLinearCtSampler>(table)});
  // The scalar bit-sliced baseline: the paper's 64-lane constant-time
  // netlist evaluator pulled one sample per call through IntSampler& —
  // exactly what the batched column below replaces. Netlist via the
  // registry: synthesized once ever, warm-loaded afterwards.
  const auto synth = engine::SamplerRegistry::global().get(matrix.params());
  v.push_back({"this work, scalar   (CT)    ", "bitsliced_scalar",
               std::make_unique<ct::BufferedBitslicedSampler>(*synth)});
  return v;
}

double scalar_signs_per_sec(falcon::Signer& signer, RandomBitSource& rng,
                            double budget_sec) {
  (void)signer.sign("warmup", rng);
  const auto t0 = std::chrono::steady_clock::now();
  int signs = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0).count() < budget_sec) {
    (void)signer.sign("benchmark message", rng);
    ++signs;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();
  return signs / secs;
}

/// Batched column: repeated sign_many() batches until the accumulated
/// signing time fills the budget. Every produced signature is verified
/// between timed calls (verification excluded from the rate, and memory
/// stays at one batch however long the budget).
double batched_signs_per_sec(falcon::SigningService& svc,
                             const falcon::KeyPair& kp, double budget_sec,
                             bool* all_verified) {
  const std::vector<std::string_view> batch(32, "benchmark message");
  (void)svc.sign_many(kp, batch);  // warmup (tree build, ring fill)
  const falcon::Verifier verifier(kp.h, kp.params);
  double sign_secs = 0.0;
  std::size_t produced = 0;
  while (sign_secs < budget_sec) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto sigs = svc.sign_many(kp, batch);
    sign_secs += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0).count();
    produced += sigs.size();
    for (const auto& sig : sigs)
      if (!verifier.verify("benchmark message", sig)) *all_verified = false;
  }
  return static_cast<double>(produced) / sign_secs;
}

}  // namespace

int main(int argc, char** argv) {
  double budget = 2.0;
  std::string json_path;
  std::vector<std::size_t> degrees = {256, 512, 1024};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--degrees") == 0 && i + 1 < argc) {
      degrees.clear();
      for (const char* p = argv[++i]; *p;) {
        char* end = nullptr;
        const std::size_t d = std::strtoull(p, &end, 10);
        if (end == p) {  // non-numeric garbage: stop, don't spin
          std::fprintf(stderr, "bad --degrees list at '%s'\n", p);
          return 2;
        }
        if (d > 0) degrees.push_back(d);
        p = end;
        if (*p == ',') ++p;
      }
      if (degrees.empty()) {
        std::fprintf(stderr, "--degrees produced no degrees\n");
        return 2;
      }
    } else {
      char* end = nullptr;
      budget = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || budget <= 0.0) {
        std::fprintf(stderr,
                     "unrecognized argument '%s'\nusage: %s [budget_sec] "
                     "[--json FILE] [--degrees a,b,c]\n",
                     argv[i], argv[0]);
        return 2;
      }
    }
  }

  std::printf("Table 1 reproduction: Falcon-sign throughput, ChaCha20 PRNG\n");
  std::printf("(paper: byte-scan 10327/5220/2640, CDT 8041/4064/2014,\n");
  std::printf(" linear CDT 6080/3027/1519, this work 7025/3527/1754 "
              "signs/sec on i7-6600U)\n\n");

  const gauss::ProbMatrix matrix(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable table(matrix);

  std::printf("%-30s", "sampler \\ N");
  for (std::size_t n : degrees) std::printf("%10zu", n);
  std::printf("\n");

  // Keygen once per degree, reused across samplers (as in the paper).
  std::vector<falcon::KeyPair> keys;
  for (std::size_t n : degrees) {
    prng::ChaCha20Source rng(1000 + n);
    keys.push_back(falcon::keygen(falcon::FalconParams::for_degree(n), rng));
    std::fprintf(stderr, "[keygen N=%zu done]\n", n);
  }

  auto samplers = make_samplers(matrix, table);
  std::vector<std::vector<double>> results(samplers.size());
  bool scalar_verified = true;
  for (std::size_t s = 0; s < samplers.size(); ++s) {
    std::printf("%-30s", samplers[s].label);
    for (const auto& kp : keys) {
      prng::ChaCha20Source rng(42);
      falcon::Signer signer(kp, *samplers[s].sampler);
      falcon::Verifier verifier(kp.h, kp.params);
      auto sig = signer.sign("check", rng);
      if (!verifier.verify("check", sig)) {
        scalar_verified = false;
        results[s].push_back(0.0);
        std::printf(" VERI-FAIL");
        continue;
      }
      const double sps = scalar_signs_per_sec(signer, rng, budget);
      results[s].push_back(sps);
      std::printf("%10.0f", sps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // The batched column: SigningService over the engine stack (auto
  // backend: compiled-wide > wide > bitsliced), deterministic worker
  // streams, every signature verified. One worker thread — the scalar
  // rows are single-threaded, so the >= 3x gate measures the batching
  // itself, not thread count (sign_many thread scaling is exercised by
  // the test suite).
  falcon::SigningOptions svc_opts;
  svc_opts.root_seed = 42;
  svc_opts.num_threads = 1;
  falcon::SigningService service(engine::SamplerRegistry::global(),
                                 svc_opts);
  std::vector<double> batched;
  bool batched_verified = true;
  std::printf("%-30s", "this work, batched  (CT)    ");
  for (const auto& kp : keys) {
    const double sps =
        batched_signs_per_sec(service, kp, budget, &batched_verified);
    batched.push_back(sps);
    std::printf("%10.0f", sps);
    std::fflush(stdout);
  }
  std::printf("   [engine=%s, threads=%d]\n",
              engine::backend_name(service.backend()),
              service.num_threads());

  // Gate baseline located by key, not position, so reordering the sampler
  // table can never silently re-point the speedup at a CDT row.
  std::size_t baseline_row = samplers.size();
  for (std::size_t s = 0; s < samplers.size(); ++s)
    if (std::strcmp(samplers[s].key, "bitsliced_scalar") == 0)
      baseline_row = s;
  if (baseline_row == samplers.size()) {
    std::fprintf(stderr, "FAIL: bitsliced_scalar baseline row missing\n");
    return 1;
  }
  std::printf("\nBatched pipeline vs scalar bit-sliced baseline "
              "(gate: >= %.1fx):\n", kGateSpeedup);
  double min_speedup = 1e9;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double speedup = results[baseline_row][i] > 0
                               ? batched[i] / results[baseline_row][i]
                               : 0.0;
    min_speedup = std::min(min_speedup, speedup);
    std::printf("  N=%4zu: %.2fx\n", degrees[i], speedup);
  }
  std::printf("  every batched signature verified: %s\n",
              batched_verified ? "yes" : "NO");

  std::printf("\nRelative slowdown of scalar this-work vs fastest non-CT "
              "(paper: <= ~32%%):\n");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (results[0][i] <= 0 || results[2][i] <= 0) continue;
    const double ours = results[baseline_row][i];
    std::printf("  N=%4zu: %.1f%% slower; vs linear-CT CDT: %.1f%% %s\n",
                degrees[i], 100.0 * (1.0 - ours / results[0][i]),
                100.0 * std::fabs(ours / results[2][i] - 1.0),
                ours >= results[2][i] ? "faster" : "slower");
  }

  if (!json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "table1_falcon")
        .field("budget_sec", budget)
        .begin_array("degrees");
    for (std::size_t n : degrees) json.item(n);
    json.end_array().begin_object("rows");
    for (std::size_t s = 0; s < samplers.size(); ++s) {
      json.begin_array(samplers[s].key);
      for (double r : results[s]) json.item(r);
      json.end_array();
    }
    json.end_object()
        .begin_object("batched")
        .field("backend", engine::backend_name(service.backend()))
        .field("num_threads", service.num_threads())
        .begin_array("signs_per_sec");
    for (double b : batched) json.item(b);
    json.end_array().begin_array("speedup_vs_scalar_bitsliced");
    for (std::size_t i = 0; i < batched.size(); ++i)
      json.item(results[baseline_row][i] > 0
                    ? batched[i] / results[baseline_row][i]
                    : 0.0);
    json.end_array()
        .field("all_verified", batched_verified)
        .end_object()
        .begin_object("gate")
        .field("min_speedup_required", kGateSpeedup)
        .field("min_speedup_measured", min_speedup)
        .field("pass", min_speedup >= kGateSpeedup && batched_verified &&
                           scalar_verified)
        .end_object()
        .end_object();
    json.write_file(json_path);
  }

  if (!scalar_verified || !batched_verified) {
    std::fprintf(stderr, "FAIL: a produced signature did not verify\n");
    return 1;
  }
  if (min_speedup < kGateSpeedup) {
    if (std::getenv("CGS_BENCH_SKIP_TIMING_GATE")) {
      std::printf("timing gate skipped (CGS_BENCH_SKIP_TIMING_GATE)\n");
    } else {
      std::fprintf(stderr,
                   "FAIL: batched speedup %.2fx below the %.1fx gate\n",
                   min_speedup, kGateSpeedup);
      return 1;
    }
  }
  return 0;
}
