// Table 2: sampler-only cycle counts for one 64-sample batch, sigma = 2 and
// 6.15543, comparing the flat [21]-style bit-sliced sampler ("simple
// minimization") with this work's sublist-split exact minimization.
// PRNG cost is excluded: input words are pre-generated outside the timed
// region, exactly as the paper's numbers exclude pseudorandom generation.
//
// Paper (i7-6600U, compiled C): sigma=2: 3787 -> 2293 cycles (37%);
// sigma=6.15543: 11136 -> 9880 cycles (11%). Ours run on an interpreted
// netlist, so absolute cycles are higher; the split-vs-flat ratio is the
// reproduction target.

// Usage: bench_table2_sampler [--json FILE]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycles.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "ct/flat_baseline.h"
#include "prng/splitmix.h"

namespace {

using namespace cgs;

struct Row {
  const char* sigma;
  const char* mode;  // interpreted | compiled
  double flat_cycles;
  double split_cycles;
  std::size_t flat_ops;
  std::size_t split_ops;
};

// Pre-generated randomness so serving a word is a pointer bump.
class PoolSource final : public RandomBitSource {
 public:
  explicit PoolSource(std::size_t n) : words_(n) {
    prng::SplitMix64Source seed(7);
    for (auto& w : words_) w = seed.next_word();
  }
  std::uint64_t next_word() override {
    const std::uint64_t w = words_[pos_];
    pos_ = (pos_ + 1) % words_.size();
    return w;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t pos_ = 0;
};

// Median cycles for one batch through any sampler-like callable.
template <typename Sampler>
double median_batch_cycles(Sampler& s) {
  PoolSource pool(4096);
  std::uint32_t out[64];
  for (int i = 0; i < 50; ++i) (void)s.sample_magnitudes(pool, out);
  std::vector<double> runs;
  for (int rep = 0; rep < 2000; ++rep) {
    const std::uint64_t c0 = cycles_begin();
    (void)s.sample_magnitudes(pool, out);
    const std::uint64_t c1 = cycles_end();
    runs.push_back(static_cast<double>(c1 - c0));
  }
  std::nth_element(runs.begin(), runs.begin() + runs.size() / 2, runs.end());
  return runs[runs.size() / 2];
}

void run_sigma(const char* label, const gauss::GaussianParams& params,
               std::vector<Row>& rows) {
  const gauss::ProbMatrix matrix(params);

  ct::BitslicedSampler split(ct::synthesize(matrix, {}));
  ct::BitslicedSampler flat(ct::synthesize_flat(matrix, {}));
  const double flat_i = median_batch_cycles(flat);
  const double split_i = median_batch_cycles(split);
  std::printf("%-9s %-12s %14.0f %14.0f %12.1f%%   (ops %zu vs %zu)\n", label,
              "interpreted", flat_i, split_i, 100.0 * (1.0 - split_i / flat_i),
              flat.synth().stats.netlist_ops, split.synth().stats.netlist_ops);
  rows.push_back({label, "interpreted", flat_i, split_i,
                  flat.synth().stats.netlist_ops,
                  split.synth().stats.netlist_ops});

  if (ct::CompiledKernel::is_available()) {
    // The paper's numbers are for compiled generated C — this row is the
    // faithful comparison.
    ct::CompiledBitslicedSampler csplit(ct::synthesize(matrix, {}));
    ct::CompiledBitslicedSampler cflat(ct::synthesize_flat(matrix, {}));
    const double flat_c = median_batch_cycles(cflat);
    const double split_c = median_batch_cycles(csplit);
    std::printf("%-9s %-12s %14.0f %14.0f %12.1f%%\n", label, "compiled",
                flat_c, split_c, 100.0 * (1.0 - split_c / flat_c));
    rows.push_back({label, "compiled", flat_c, split_c,
                    cflat.synth().stats.netlist_ops,
                    csplit.synth().stats.netlist_ops});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  std::printf("Table 2 reproduction: cycles per 64-sample batch, PRNG "
              "excluded\n");
  std::printf("(paper, compiled C on i7-6600U: sigma=2: 3787 -> 2293, 37%%; "
              "sigma=6.15543: 11136 -> 9880, 11%%)\n\n");
  std::printf("%-9s %-12s %14s %14s %13s\n", "sigma", "mode", "[21] flat",
              "this work", "improvement");
  std::vector<Row> rows;
  run_sigma("2", gauss::GaussianParams::sigma_2(128), rows);
  run_sigma("6.15543", gauss::GaussianParams::sigma_6_15543(128), rows);

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "table2_sampler")
        .begin_array("rows");
    for (const Row& row : rows)
      json.begin_object()
          .field("sigma", row.sigma)
          .field("mode", row.mode)
          .field("flat_cycles", row.flat_cycles)
          .field("split_cycles", row.split_cycles)
          .field("improvement",
                 1.0 - row.split_cycles / row.flat_cycles)
          .field("flat_ops", row.flat_ops)
          .field("split_ops", row.split_ops)
          .end_object();
    json.end_array().end_object();
    json.write_file(args.json_path);
  }
  return 0;
}
