#pragma once
// Shared plumbing for the standalone bench mains: steady-clock timing, the
// common "[n_samples] [--json FILE]" argument convention, and the one JSON
// writer every `--json` bench emits through — so the per-PR BENCH_*.json
// artifacts parse and measure identically across benches. The writer
// itself lives in common/json.h now (the obs exporters share it).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.h"

namespace cgs::benchutil {

using JsonWriter = cgs::JsonWriter;

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Args {
  std::size_t n = 0;  // 0 -> caller's default
  std::string json_path;
};

inline Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      args.json_path = argv[++i];
    else
      args.n = std::strtoull(argv[i], nullptr, 10);
  }
  return args;
}

}  // namespace cgs::benchutil
