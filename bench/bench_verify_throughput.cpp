// Batched vs scalar Falcon verification (ISSUE 5 acceptance): the same
// bit-sliced-throughput argument the paper makes for sampling applies to
// amortizing NTT work across a verify batch. At each degree the bench
// signs a corpus once, then measures
//
//   scalar  — falcon::Verifier::verify per signature (the legacy path:
//             three size-n transforms per verify, h re-transformed every
//             call, fresh allocations);
//   batched — VerificationService::verify_many at batch 64 (NTT-domain
//             key cached per fingerprint, one forward + one inverse per
//             signature, shared scratch, fused centering/norm pass,
//             thread fan-out).
//
// Self-check gates:
//   - batched verdicts bit-for-bit equal scalar's, on genuine AND
//     tampered signatures                              (always gated)
//   - batched throughput >= 2x scalar at batch 64      (timing gate;
//     skipped when CGS_BENCH_SKIP_TIMING_GATE is set)
//
// Usage: bench_verify_throughput [signatures] [--json FILE]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "engine/registry.h"
#include "falcon/keygen.h"
#include "falcon/signing_service.h"
#include "falcon/verification_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

namespace {

using namespace cgs;
using benchutil::Clock;
using benchutil::ms_since;

constexpr double kThroughputGate = 2.0;
constexpr std::size_t kBatch = 64;

struct DegreeResult {
  std::size_t degree = 0;
  std::size_t count = 0;
  double scalar_us_per_verify = 0;
  double batched_us_per_verify = 0;
  double speedup = 0;
  bool identical = false;
};

DegreeResult run_degree(engine::SamplerRegistry& registry, std::size_t degree,
                        std::size_t count) {
  DegreeResult r;
  r.degree = degree;
  r.count = count;

  prng::ChaCha20Source rng(0xBE9C4 + degree);
  const falcon::KeyPair kp =
      falcon::keygen(falcon::FalconParams::for_degree(degree), rng);

  falcon::SigningService signer(
      registry, {.root_seed = 1234, .precision = 64});
  std::vector<std::string> storage;
  storage.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    storage.push_back("verify bench " + std::to_string(i));
  std::vector<std::string_view> messages(storage.begin(), storage.end());
  std::vector<falcon::Signature> sigs = signer.sign_many(kp, messages);

  // A third of the corpus is tampered so both verdict paths are timed and
  // differentially compared on both outcomes.
  for (std::size_t i = 0; i < count; i += 3)
    sigs[i].s1[i % sigs[i].s1.size()] += 1;

  const falcon::Verifier scalar(kp.h, kp.params);
  std::vector<std::uint8_t> scalar_verdicts(count);
  const auto t_scalar = Clock::now();
  for (std::size_t i = 0; i < count; ++i)
    scalar_verdicts[i] = scalar.verify(messages[i], sigs[i]) ? 1 : 0;
  const double scalar_ms = ms_since(t_scalar);

  falcon::VerificationService service;
  // Warm the key cache (the NTT-domain transform is a per-key cost, paid
  // once per tenant, not per batch — keep it out of the timed region the
  // same way the signer's tree cache is warmed by signing).
  {
    const std::string_view one[] = {messages[0]};
    const falcon::Signature one_sig[] = {sigs[0]};
    (void)service.verify_many(kp.h, kp.params, one, one_sig);
  }
  std::vector<std::uint8_t> batched_verdicts;
  batched_verdicts.reserve(count);
  const auto t_batched = Clock::now();
  for (std::size_t off = 0; off < count; off += kBatch) {
    const std::size_t len = std::min(kBatch, count - off);
    const auto verdicts = service.verify_many(
        kp.h, kp.params,
        std::span(messages).subspan(off, len),
        std::span(sigs).subspan(off, len));
    batched_verdicts.insert(batched_verdicts.end(), verdicts.begin(),
                            verdicts.end());
  }
  const double batched_ms = ms_since(t_batched);

  r.identical = batched_verdicts == scalar_verdicts;
  r.scalar_us_per_verify = 1000.0 * scalar_ms / static_cast<double>(count);
  r.batched_us_per_verify = 1000.0 * batched_ms / static_cast<double>(count);
  r.speedup = r.scalar_us_per_verify / r.batched_us_per_verify;

  std::size_t accepted = 0;
  for (std::uint8_t v : batched_verdicts) accepted += v;
  std::printf(
      "N=%4zu  %5zu sigs  scalar %7.2f us/verify  batched %7.2f us/verify  "
      "speedup %.2fx  verdicts %s  (%zu accepted)\n",
      degree, count, r.scalar_us_per_verify, r.batched_us_per_verify,
      r.speedup, r.identical ? "identical" : "DIVERGED", accepted);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args = benchutil::parse(argc, argv);
  const std::size_t count = args.n ? args.n : 2048;

  engine::SamplerRegistry& registry = engine::SamplerRegistry::global();
  std::vector<DegreeResult> results;
  for (const std::size_t degree : {std::size_t{256}, std::size_t{512}})
    results.push_back(run_degree(registry, degree, count));

  bool ok = true;
  for (const DegreeResult& r : results) {
    if (!r.identical) {
      std::printf("FAIL: batched verdicts diverged from scalar at N=%zu\n",
                  r.degree);
      ok = false;
    }
  }
  const bool skip_timing =
      std::getenv("CGS_BENCH_SKIP_TIMING_GATE") != nullptr;
  for (const DegreeResult& r : results) {
    if (r.speedup < kThroughputGate) {
      if (skip_timing) {
        std::printf(
            "timing gate skipped at N=%zu (%.2fx < %.1fx, "
            "CGS_BENCH_SKIP_TIMING_GATE)\n",
            r.degree, r.speedup, kThroughputGate);
      } else {
        std::printf("FAIL: batched speedup %.2fx < %.1fx at N=%zu\n",
                    r.speedup, kThroughputGate, r.degree);
        ok = false;
      }
    }
  }

  if (!args.json_path.empty()) {
    benchutil::JsonWriter json;
    json.begin_object()
        .field("bench", "verify_throughput")
        .field("batch", kBatch)
        .field("gate_speedup", kThroughputGate)
        .field("timing_gate_enforced", !skip_timing)
        .begin_array("degrees");
    for (const DegreeResult& r : results) {
      json.begin_object()
          .field("degree", r.degree)
          .field("signatures", r.count)
          .field("scalar_us_per_verify", r.scalar_us_per_verify)
          .field("batched_us_per_verify", r.batched_us_per_verify)
          .field("speedup", r.speedup)
          .field("verdicts_identical", r.identical)
          .end_object();
    }
    json.end_array().end_object();
    if (!json.write_file(args.json_path)) ok = false;
  }

  std::printf("%s\n", ok ? "bench self-checks passed" : "BENCH FAILED");
  return ok ? 0 : 1;
}
