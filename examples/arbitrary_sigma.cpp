// Sampling at arbitrary (sigma, c): plan a convolution recipe for targets
// no synthesized configuration covers, serve them in batch through
// GaussianService, and verify each batch against the design distribution
// (chi-square) and the ideal Gaussian (Renyi).
//
// Run it twice: the first run synthesizes the chosen base samplers (cached
// on disk), the second starts warm.

#include <cstdio>

#include "engine/service.h"
#include "gauss/probmatrix.h"
#include "stats/acceptance.h"

int main() {
  using namespace cgs;

  engine::GaussianService service(engine::SamplerRegistry::global(),
                                  {.num_threads = 2, .root_seed = 2019});

  // Targets chosen to resolve to small bases (sub-second synthesis) so the
  // demo stays snappy; bigger targets work the same way, they just pay a
  // longer one-time synthesis for their ladder rung (cached afterwards).
  struct Target {
    double sigma, center;
  };
  const Target targets[] = {{271.4, 0.5}, {42.0, -3.25}, {7.3, 0.25}};

  for (const Target& t : targets) {
    const gauss::ConvolutionRecipe recipe = service.plan(t.sigma, t.center);
    std::printf("%s\n", recipe.describe().c_str());

    const auto samples = service.sample(t.sigma, t.center, 200000);
    double mean = 0;
    for (auto x : samples) mean += x;
    mean /= static_cast<double>(samples.size());

    const gauss::ProbMatrix base(recipe.base);
    const auto acc = stats::accept_convolution(samples, base, recipe);
    std::printf("  200000 samples: mean %.3f (target %.3f) -> %s\n\n", mean,
                t.center, acc.describe().c_str());
    if (!acc.accepted()) return 1;
  }
  return 0;
}
