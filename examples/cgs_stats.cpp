// Scrape a running protocol server's metrics over the wire: connect,
// send one kStatsRequest, print the exposition document. The default
// output is the Prometheus text format (pipe it straight into a
// file_sd-style bridge); --json asks the server for the JSON summary
// instead.
//
// --check turns the tool into a smoke probe: after printing, it
// asserts the exposition actually carries the instrumentation a
// healthy server must expose — the per-stage trace histograms
// (queue-wait / linger / compute), the open-connections gauge, and
// hit/miss counters for all three per-key caches — and exits nonzero
// when anything is missing. On the Prometheus format it additionally
// (a) re-adds every labeled cgs_tenant_*_requests_total slice and
// requires the sum to equal the unlabeled global exactly (the
// attribution invariant the bounded-cardinality families promise), and
// (b) sends a kHealthRequest and requires a ready verdict with at
// least one component. The ctest scrape smoke runs exactly this.
//
// Usage: cgs_stats <port> [--json] [--check]

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "net/client.h"
#include "serve/wire.h"

namespace {

using namespace cgs;

/// The metric names a live scrape must contain for --check to pass.
/// Kept to names that exist in both exposition formats.
const char* const kRequiredMetrics[] = {
    // Per-stage request tracing (Dispatcher lifecycle histograms).
    "cgs_trace_queue_wait_us",
    "cgs_trace_linger_us",
    "cgs_trace_compute_us",
    // Transport health.
    "cgs_net_connections_open",
    // All three per-key caches, hits and misses.
    "cgs_cache_ffldl_tree_hits_total",
    "cgs_cache_ffldl_tree_misses_total",
    "cgs_cache_ntt_key_hits_total",
    "cgs_cache_ntt_key_misses_total",
    "cgs_cache_recipe_hits_total",
    "cgs_cache_recipe_misses_total",
    // Bounded-cache lifecycle: evictions under budget pressure and
    // warm starts from the persistent key-state store.
    "cgs_cache_ffldl_tree_evictions_total",
    "cgs_cache_ffldl_tree_warm_starts_total",
    "cgs_cache_ntt_key_evictions_total",
    "cgs_cache_ntt_key_warm_starts_total",
    "cgs_cache_recipe_evictions_total",
    "cgs_cache_recipe_warm_starts_total",
};

int check_exposition(const std::string& text, serve::StatsFormat format) {
  int missing = 0;
  if (text.empty()) {
    std::fprintf(stderr, "cgs_stats: check failed: empty exposition\n");
    return 1;
  }
  if (format == serve::StatsFormat::kPrometheus &&
      text.find("# TYPE") == std::string::npos) {
    std::fprintf(stderr, "cgs_stats: check failed: no # TYPE lines\n");
    ++missing;
  }
  for (const char* name : kRequiredMetrics) {
    if (text.find(name) == std::string::npos) {
      std::fprintf(stderr, "cgs_stats: check failed: missing metric %s\n",
                   name);
      ++missing;
    }
  }
  return missing;
}

/// The per-tenant attribution invariant: every labeled
/// cgs_tenant_*_requests_total slice (including tenant="other") re-added
/// must equal its unlabeled global exactly. Counts are integers, so the
/// doubles compare exactly. Prometheus text only — the JSON summary
/// nests labels differently.
int check_labeled_sums(const std::string& text) {
  struct Family {
    double global = 0;
    double labeled = 0;
    bool has_global = false;
    int series = 0;
  };
  std::map<std::string, Family> families;
  constexpr const char* kPrefix = "cgs_tenant_";
  constexpr const char* kSuffix = "_requests_total";
  const std::size_t suffix_len = std::strlen(kSuffix);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(0, name_end);
    if (name.rfind(kPrefix, 0) != 0 || name.size() < suffix_len ||
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0)
      continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const double value = std::strtod(line.c_str() + sp + 1, nullptr);
    Family& fam = families[name];
    if (line[name_end] == '{') {
      fam.labeled += value;
      ++fam.series;
    } else {
      fam.global = value;
      fam.has_global = true;
    }
  }

  int failures = 0;
  int labeled_families = 0;
  for (const auto& [name, fam] : families) {
    if (fam.series == 0) continue;  // family registered but untouched
    ++labeled_families;
    if (!fam.has_global) {
      std::fprintf(stderr,
                   "cgs_stats: check failed: %s has labeled series but no "
                   "global sample\n",
                   name.c_str());
      ++failures;
    } else if (fam.labeled != fam.global) {
      std::fprintf(stderr,
                   "cgs_stats: check failed: %s labeled sum %.0f != global "
                   "%.0f (%d series)\n",
                   name.c_str(), fam.labeled, fam.global, fam.series);
      ++failures;
    }
  }
  if (labeled_families == 0) {
    std::fprintf(stderr,
                 "cgs_stats: check failed: no labeled cgs_tenant_* series in "
                 "exposition\n");
    ++failures;
  } else if (failures == 0) {
    std::fprintf(stderr,
                 "cgs_stats: labeled sums match globals (%d families)\n",
                 labeled_families);
  }
  return failures;
}

/// One kHealthRequest round trip on the already-open scrape connection:
/// a healthy server answers ok with a non-empty component list.
int check_health(net::Client& client) {
  serve::HealthRequestFrame req;
  req.request_id = 2;
  const serve::HealthResponseFrame health =
      serve::decode_health_response(client.request(serve::encode(req)));
  if (!health.ok) {
    std::fprintf(stderr, "cgs_stats: check failed: health error: %s\n",
                 health.error.c_str());
    return 1;
  }
  if (health.components.empty()) {
    std::fprintf(stderr,
                 "cgs_stats: check failed: health response has no "
                 "components\n");
    return 1;
  }
  for (const auto& c : health.components)
    std::fprintf(stderr, "cgs_stats: health %-16s %s (%.4f) %s\n",
                 c.name.c_str(), c.ok ? "ok" : "NOT READY", c.value,
                 c.detail.c_str());
  if (!health.healthy) {
    std::fprintf(stderr, "cgs_stats: check failed: server reports unhealthy\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cgs_stats <port> [--json] [--check]\n");
    return 2;
  }
  const std::uint16_t port =
      static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10));
  serve::StatsFormat format = serve::StatsFormat::kPrometheus;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      format = serve::StatsFormat::kJson;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "cgs_stats: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  try {
    net::ClientOptions copts;
    copts.connect_timeout = std::chrono::milliseconds(2000);
    copts.read_timeout = std::chrono::milliseconds(5000);
    net::Client client(port, copts);
    serve::StatsRequestFrame req;
    req.request_id = 1;
    req.format = format;
    // request() is the whole scrape: one frame out, one back, with a
    // typed ClientError (connect refusal, deadline, overload shed) on
    // anything but a proper response.
    const serve::StatsResponseFrame resp =
        serve::decode_stats_response(client.request(serve::encode(req)));
    if (!resp.ok) {
      std::fprintf(stderr, "cgs_stats: server error: %s\n",
                   resp.error.c_str());
      return 1;
    }
    std::fputs(resp.text.c_str(), stdout);
    if (!resp.text.empty() && resp.text.back() != '\n') std::fputc('\n', stdout);
    if (check) {
      int failures = check_exposition(resp.text, resp.format);
      if (resp.format == serve::StatsFormat::kPrometheus)
        failures += check_labeled_sums(resp.text);
      failures += check_health(client);
      if (failures != 0) return 1;
      std::fprintf(stderr,
                   "cgs_stats: check passed (%zu required metrics, labeled "
                   "sums, health)\n",
                   sizeof(kRequiredMetrics) / sizeof(kRequiredMetrics[0]));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cgs_stats: %s\n", e.what());
    return 1;
  }
}
