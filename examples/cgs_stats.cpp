// Scrape a running protocol server's metrics over the wire: connect,
// send one kStatsRequest, print the exposition document. The default
// output is the Prometheus text format (pipe it straight into a
// file_sd-style bridge); --json asks the server for the JSON summary
// instead.
//
// --check turns the tool into a smoke probe: after printing, it
// asserts the exposition actually carries the instrumentation a
// healthy server must expose — the per-stage trace histograms
// (queue-wait / linger / compute), the open-connections gauge, and
// hit/miss counters for all three per-key caches — and exits nonzero
// when anything is missing. The ctest scrape smoke runs exactly this.
//
// Usage: cgs_stats <port> [--json] [--check]

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "serve/wire.h"

namespace {

using namespace cgs;

/// The metric names a live scrape must contain for --check to pass.
/// Kept to names that exist in both exposition formats.
const char* const kRequiredMetrics[] = {
    // Per-stage request tracing (Dispatcher lifecycle histograms).
    "cgs_trace_queue_wait_us",
    "cgs_trace_linger_us",
    "cgs_trace_compute_us",
    // Transport health.
    "cgs_net_connections_open",
    // All three per-key caches, hits and misses.
    "cgs_cache_ffldl_tree_hits_total",
    "cgs_cache_ffldl_tree_misses_total",
    "cgs_cache_ntt_key_hits_total",
    "cgs_cache_ntt_key_misses_total",
    "cgs_cache_recipe_hits_total",
    "cgs_cache_recipe_misses_total",
    // Bounded-cache lifecycle: evictions under budget pressure and
    // warm starts from the persistent key-state store.
    "cgs_cache_ffldl_tree_evictions_total",
    "cgs_cache_ffldl_tree_warm_starts_total",
    "cgs_cache_ntt_key_evictions_total",
    "cgs_cache_ntt_key_warm_starts_total",
    "cgs_cache_recipe_evictions_total",
    "cgs_cache_recipe_warm_starts_total",
};

int check_exposition(const std::string& text, serve::StatsFormat format) {
  int missing = 0;
  if (text.empty()) {
    std::fprintf(stderr, "cgs_stats: check failed: empty exposition\n");
    return 1;
  }
  if (format == serve::StatsFormat::kPrometheus &&
      text.find("# TYPE") == std::string::npos) {
    std::fprintf(stderr, "cgs_stats: check failed: no # TYPE lines\n");
    ++missing;
  }
  for (const char* name : kRequiredMetrics) {
    if (text.find(name) == std::string::npos) {
      std::fprintf(stderr, "cgs_stats: check failed: missing metric %s\n",
                   name);
      ++missing;
    }
  }
  return missing;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cgs_stats <port> [--json] [--check]\n");
    return 2;
  }
  const std::uint16_t port =
      static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10));
  serve::StatsFormat format = serve::StatsFormat::kPrometheus;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      format = serve::StatsFormat::kJson;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "cgs_stats: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  try {
    net::ClientOptions copts;
    copts.connect_timeout = std::chrono::milliseconds(2000);
    copts.read_timeout = std::chrono::milliseconds(5000);
    net::Client client(port, copts);
    serve::StatsRequestFrame req;
    req.request_id = 1;
    req.format = format;
    // request() is the whole scrape: one frame out, one back, with a
    // typed ClientError (connect refusal, deadline, overload shed) on
    // anything but a proper response.
    const serve::StatsResponseFrame resp =
        serve::decode_stats_response(client.request(serve::encode(req)));
    if (!resp.ok) {
      std::fprintf(stderr, "cgs_stats: server error: %s\n",
                   resp.error.c_str());
      return 1;
    }
    std::fputs(resp.text.c_str(), stdout);
    if (!resp.text.empty() && resp.text.back() != '\n') std::fputc('\n', stdout);
    if (check) {
      const int missing = check_exposition(resp.text, resp.format);
      if (missing != 0) return 1;
      std::fprintf(stderr, "cgs_stats: check passed (%zu required metrics)\n",
                   sizeof(kRequiredMetrics) / sizeof(kRequiredMetrics[0]));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cgs_stats: %s\n", e.what());
    return 1;
  }
}
