// Emit the synthesized constant-time sampler as standalone C — the shape of
// artifact the paper's companion tool produced (github.com/Angshumank/
// const_gauss_split). Pipe to a file, compile with any C compiler, link
// anywhere.
//
// Usage: codegen_c [sigma_num sigma_den [precision]]   (default: sigma=2, n=32)

#include <cstdio>
#include <cstdlib>

#include "bf/codegen.h"
#include "ct/synthesis.h"

int main(int argc, char** argv) {
  using namespace cgs;

  std::uint64_t num = 2, den = 1;
  int precision = 32;
  if (argc >= 3) {
    num = std::strtoull(argv[1], nullptr, 10);
    den = std::strtoull(argv[2], nullptr, 10);
  }
  if (argc >= 4) precision = std::atoi(argv[3]);

  const auto params =
      gauss::GaussianParams::from_sigma(num, den, /*tau=*/13, precision);
  const gauss::ProbMatrix matrix(params);
  const ct::SynthesizedSampler synth = ct::synthesize(matrix, {});

  std::fprintf(stderr, "// %s\n// %s\n", params.describe().c_str(),
               synth.stats.describe().c_str());
  std::fprintf(stderr,
               "// outputs: %d sample bits (LSB first) + 1 valid bit\n"
               "// inputs: %d words, lane i of word k = path bit k of "
               "sample i\n",
               synth.num_output_bits, synth.precision);
  std::printf("%s", bf::emit_c(synth.netlist, "sample_gauss_ct").c_str());
  return 0;
}
