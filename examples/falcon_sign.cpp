// Falcon signing end to end with the constant-time base sampler: keygen,
// sign a message, compress the signature, verify — then the same key
// through the batch-first SigningService (engine + BlockSource pipeline),
// the paper's application scenario as a production user would run it.
// Exits nonzero on any check failure (this example doubles as a ctest
// smoke test).

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "ct/bitsliced_sampler.h"
#include "engine/registry.h"
#include "falcon/codec.h"
#include "falcon/sign.h"
#include "falcon/signing_service.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"

int main(int argc, char** argv) {
  using namespace cgs;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const std::string message =
      argc > 2 ? argv[2] : "Constant-time sampling, DAC 2019";
  bool ok = true;

  prng::ChaCha20Source rng(0xFA1C0);

  std::printf("== keygen (N = %zu) ==\n", n);
  falcon::KeygenStats kstats;
  const falcon::KeyPair kp =
      falcon::keygen(falcon::FalconParams::for_degree(n), rng, &kstats);
  std::printf("resampled (f,g) %d times, NTRU failures %d\n",
              kstats.fg_resamples, kstats.ntru_failures);
  std::printf("f[0..7]: ");
  for (int i = 0; i < 8; ++i) std::printf("%d ", kp.f[static_cast<std::size_t>(i)]);
  std::printf("\nF[0..7]: ");
  for (int i = 0; i < 8; ++i) std::printf("%d ", kp.f_cap[static_cast<std::size_t>(i)]);
  std::printf("  (short: NTRUSolve + Babai reduction)\n");

  std::printf("\n== sign with the constant-time bit-sliced sampler ==\n");
  // Registry, not synthesize(): the base sampler is warm-loaded from the
  // on-disk cache after the first ever run on this machine.
  ct::BufferedBitslicedSampler base(*engine::SamplerRegistry::global().get(
      gauss::GaussianParams::sigma_2(128)));
  falcon::Signer signer(kp, base);
  falcon::SignStats sstats;
  const falcon::Signature sig = signer.sign(message, rng, &sstats);
  std::printf("message: \"%s\"\n", message.c_str());
  std::printf("ffSampling attempts: %llu, base Gaussian draws: %llu\n",
              static_cast<unsigned long long>(sstats.attempts),
              static_cast<unsigned long long>(sstats.base_samples));
  std::printf("s1 norm^2 = %lld (bound %lld)\n",
              static_cast<long long>(falcon::norm_sq(sig.s1)),
              static_cast<long long>(kp.params.bound_sq()));

  const auto compressed = falcon::compress_s1(sig.s1);
  std::printf("compressed signature: %zu bytes (+40-byte nonce)\n",
              compressed.size());
  const auto decompressed = falcon::decompress_s1(compressed, n);
  const bool codec_ok = decompressed && *decompressed == sig.s1;
  ok &= codec_ok;
  std::printf("codec round trip: %s\n", codec_ok ? "ok" : "FAILED");

  std::printf("\n== verify ==\n");
  const falcon::Verifier verifier(kp.h, kp.params);
  const bool genuine = verifier.verify(message, sig);
  const bool tampered = verifier.verify(message + "!", sig);
  ok &= genuine && !tampered;
  std::printf("genuine message: %s\n", genuine ? "ACCEPT" : "reject (BUG!)");
  std::printf("tampered message: %s\n",
              tampered ? "accept (BUG!)" : "REJECT");

  std::printf("\n== batched signing service ==\n");
  // The batch-first pipeline: per-key cached tree, per-worker engine
  // block sources, deterministic for a fixed (root_seed, num_threads).
  falcon::SigningOptions opts;
  opts.root_seed = 0xFA1C0;
  falcon::SigningService service(engine::SamplerRegistry::global(), opts);
  std::vector<std::string> storage;
  std::vector<std::string_view> batch;
  for (int i = 0; i < 8; ++i)
    storage.push_back(message + " #" + std::to_string(i));
  for (const auto& s : storage) batch.push_back(s);
  falcon::SignStats bstats;
  const auto sigs = service.sign_many(kp, batch, &bstats);
  int verified = 0;
  for (std::size_t i = 0; i < sigs.size(); ++i)
    verified += verifier.verify(batch[i], sigs[i]) ? 1 : 0;
  ok &= verified == static_cast<int>(sigs.size());
  std::printf("engine backend: %s, worker threads: %d\n",
              engine::backend_name(service.backend()),
              service.num_threads());
  std::printf("signed %zu messages in one batch, %d/%zu verify\n",
              sigs.size(), verified, sigs.size());
  std::printf("base draws: %llu (%.1f per signature)\n",
              static_cast<unsigned long long>(bstats.base_samples),
              static_cast<double>(bstats.base_samples) /
                  static_cast<double>(sigs.size()));

  std::printf("\n%s\n", ok ? "all checks passed" : "A CHECK FAILED");
  return ok ? 0 : 1;
}
