// Large-sigma sampling via convolution (the use-case the paper's §3 points
// at: its sampler is the *base* sampler of [25, 28]-style constructions).
// Builds sigma ~= 215 from two draws of the constant-time sigma = 6.15543
// base sampler: x = x1 + k * x2, sigma = sigma0 sqrt(1 + k^2).

#include <cmath>
#include <cstdio>

#include "conv/convolution.h"
#include "ct/bitsliced_sampler.h"
#include "prng/chacha20.h"
#include "stats/chisquare.h"

int main() {
  using namespace cgs;

  const double target = 215.0;
  const gauss::GaussianParams base_params =
      gauss::GaussianParams::sigma_6_15543(128);
  const int k = conv::ConvolutionSampler::stride_for(base_params.sigma(), target);
  const double sigma =
      conv::ConvolutionSampler::combined_sigma(base_params.sigma(), k);
  std::printf("base sigma = %.5f, stride k = %d -> combined sigma = %.3f "
              "(target %.1f)\n",
              base_params.sigma(), k, sigma, target);

  const gauss::ProbMatrix matrix(base_params);
  ct::BufferedBitslicedSampler base(ct::synthesize(matrix, {}));
  conv::ConvolutionSampler sampler(base, k);
  std::printf("constant-time: %s (inherited from the base sampler)\n",
              sampler.constant_time() ? "yes" : "no");

  prng::ChaCha20Source rng(215);
  double sum = 0, sum_sq = 0;
  stats::Histogram h;
  const int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    const std::int32_t v = sampler.sample(rng);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
    h.add(v / 32);  // coarse bins for display
  }
  const double mean = sum / kSamples;
  std::printf("drew %d samples: mean %+.3f, sigma %.3f\n", kSamples, mean,
              std::sqrt(sum_sq / kSamples - mean * mean));
  std::printf("\ncoarse histogram (bin = 32 values):\n%s",
              h.render(48).c_str());
  return 0;
}
