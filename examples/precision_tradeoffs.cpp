// The research direction the paper's §7 closes on: how far can the
// precision n be lowered — and how much randomness saved — before the
// sampled distribution drifts? Sweeps n, reporting statistical distance,
// Renyi divergence, max-log distance ([25]'s measure), circuit size and
// random bits per sample.

#include <cmath>
#include <cstdio>

#include "ct/synthesis.h"
#include "stats/divergence.h"

int main() {
  using namespace cgs;

  std::printf("precision sweep, sigma = 2, tau = 13\n\n");
  std::printf("%5s %12s %14s %12s %10s %10s %9s\n", "n", "SD", "Renyi(2)-1",
              "max-log", "leaves", "ops", "bits/smp");
  for (int n : {16, 24, 32, 48, 64, 96, 128}) {
    const gauss::ProbMatrix m(gauss::GaussianParams::sigma_2(n));
    const auto synth = ct::synthesize(m, {});
    const double sd = stats::statistical_distance(m);
    const double renyi = stats::renyi_divergence(m, 2.0) - 1.0;
    const double maxlog = stats::max_log_distance(m);
    std::printf("%5d %12.3e %14.3e %12.3e %10zu %10zu %9d\n", n, sd, renyi,
                maxlog, synth.stats.num_leaves, synth.stats.netlist_ops,
                n + 1);
  }

  std::printf("\nprecision needed for SD < 2^-lambda (sigma = 2):\n");
  for (int lambda : {40, 64, 80, 128}) {
    std::printf("  lambda = %3d -> n >= %d bits\n", lambda,
                stats::required_precision_bits(gauss::GaussianParams::sigma_2(),
                                               lambda));
  }
  std::printf(
      "\n(Renyi/max-log based accounting admits much smaller n than SD for\n"
      " the same security level — exactly the savings [25, 28] formalize;\n"
      " every row above is a sampler this library can synthesize.)\n");
  return 0;
}
