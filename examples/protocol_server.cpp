// The full signature lifecycle over a real socket: the multi-reactor
// server (net::Server) multiplexing every wire request type into the
// Dispatcher's lanes through the shared serve::route_frame switch, and
// concurrent pipelining clients (net::Client) that each onboard a tenant
// key through the keygen lane, sign a burst of messages, then ask the
// verify lane for verdicts — one good and one tampered verify per
// signature, expecting accept and reject respectively. Exits nonzero on
// any failure (this example doubles as a ctest smoke test for the
// mixed-traffic path, including shutdown drain).
//
// The dispatcher and the server share one obs::Registry, so a
// kStatsRequest frame (or the cgs_stats CLI) sees serving-lane,
// transport and cache metrics in a single exposition. After the client
// storm the server prints that exposition — before shutdown, because
// shutdown unregisters the callback-backed gauges (queue depths, open
// connections, cache bridges).
//
// Usage: protocol_server [degree] [clients] [requests_per_client]
//                        [--stats-exec <path-to-cgs_stats>]
//                        [--stats-interval <seconds>]
//
// --stats-exec runs `<path> <port> --check` against the live server and
// fails the run unless the scrape exits 0 — the ctest scrape smoke.
// --stats-interval dumps the Prometheus exposition to stderr every
// <seconds> while serving (the poor operator's sidecar scraper).

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "falcon/verify.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "serve/dispatcher.h"
#include "serve/router.h"
#include "serve/wire.h"

namespace {

using namespace cgs;

struct ClientOutcome {
  bool keygen_ok = false;
  bool health_ok = false;
  int signed_ok = 0;
  int local_verified = 0;
  int good_accepted = 0;
  int tampered_rejected = 0;
  int protocol_errors = 0;
};

// keygen -> pipelined signs -> local verify -> pipelined verifies (one
// good, one tampered per signature) -> half-close and drain. Transport
// failures (timeouts, resets) throw ClientError; the caller counts them.
ClientOutcome run_client(std::uint16_t port, std::size_t degree,
                         int client_idx, int requests) {
  ClientOutcome outcome;
  net::Client client(port);

  serve::KeygenRequestFrame kg;
  kg.request_id = 1;
  kg.degree = degree;
  kg.seed = 0xC0FFEE00u + static_cast<std::uint64_t>(client_idx);
  const serve::KeygenResponseFrame key =
      serve::decode_keygen_response(client.request(serve::encode(kg)));
  if (!key.ok) {
    std::fprintf(stderr, "client %d: keygen failed: %s\n", client_idx,
                 key.error.c_str());
    return outcome;
  }
  outcome.keygen_ok = true;
  const falcon::Verifier verifier(key.h,
                                  falcon::FalconParams::for_degree(degree));

  // One health probe per client: answered inline by the router (never
  // queued), and a freshly keyed, lightly loaded server must be ready.
  serve::HealthRequestFrame hq;
  hq.request_id = 2;
  const serve::HealthResponseFrame health =
      serve::decode_health_response(client.request(serve::encode(hq)));
  outcome.health_ok = health.ok && health.healthy && !health.components.empty();
  if (!outcome.health_ok)
    std::fprintf(stderr, "client %d: health probe not ready (%zu components)\n",
                 client_idx, health.components.size());

  // Pipeline the whole sign burst, then read the responses back.
  std::vector<std::string> messages;
  for (int i = 0; i < requests; ++i) {
    messages.push_back("client " + std::to_string(client_idx) + " message " +
                       std::to_string(i));
    serve::SignRequestFrame req;
    req.request_id = 100 + static_cast<std::uint64_t>(i);
    req.key_id = key.key_id;
    req.message = messages.back();
    // Exercise the optional wire trace context on a slice of the burst:
    // a caller-supplied id forces sampling, so these requests land in the
    // slow ring / exemplars tagged with an id we chose client-side.
    if (i % 4 == 0)
      req.trace_id = (static_cast<std::uint64_t>(client_idx + 1) << 32) |
                     static_cast<std::uint64_t>(i + 1);
    client.send(serve::encode(req));
  }
  std::map<std::uint64_t, falcon::Signature> sigs;
  for (int i = 0; i < requests; ++i) {
    const auto frame = client.read();
    if (!frame) return outcome;
    const serve::SignResponseFrame resp = serve::decode_sign_response(*frame);
    if (!resp.ok) {
      ++outcome.protocol_errors;
      continue;
    }
    ++outcome.signed_ok;
    falcon::Signature sig = resp.to_signature();
    if (verifier.verify(messages[resp.request_id - 100], sig))
      ++outcome.local_verified;
    sigs.emplace(resp.request_id - 100, std::move(sig));
  }

  // Two verify requests per signature: the genuine article and a tamper
  // (alternating message and s1 tampering), pipelined together.
  int expect_good = 0, expect_tampered = 0;
  for (const auto& [idx, sig] : sigs) {
    client.send(serve::encode(serve::VerifyRequestFrame::make(
        200 + idx, key.key_id, messages[idx], sig)));
    ++expect_good;
    if (idx % 2 == 0) {
      client.send(serve::encode(serve::VerifyRequestFrame::make(
          300 + idx, key.key_id, messages[idx] + " (tampered)", sig)));
    } else {
      falcon::Signature bent = sig;
      bent.s1[static_cast<std::size_t>(idx) % bent.s1.size()] += 1;
      client.send(serve::encode(serve::VerifyRequestFrame::make(
          300 + idx, key.key_id, messages[idx], bent)));
    }
    ++expect_tampered;
  }
  client.half_close();
  while (auto frame = client.read()) {
    const serve::VerifyResponseFrame resp =
        serve::decode_verify_response(*frame);
    if (!resp.ok) {
      ++outcome.protocol_errors;
      continue;
    }
    if (resp.request_id >= 300) {
      if (!resp.accepted) ++outcome.tampered_rejected;
    } else {
      if (resp.accepted) ++outcome.good_accepted;
    }
  }
  if (outcome.good_accepted != expect_good ||
      outcome.tampered_rejected != expect_tampered)
    std::fprintf(stderr,
                 "client %d: verdicts off: %d/%d good accepted, %d/%d "
                 "tampered rejected\n",
                 client_idx, outcome.good_accepted, expect_good,
                 outcome.tampered_rejected, expect_tampered);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> positional;
  const char* stats_exec = nullptr;
  long stats_interval_s = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-exec") == 0 && i + 1 < argc) {
      stats_exec = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval_s = std::strtol(argv[++i], nullptr, 10);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t degree =
      positional.size() > 0 ? std::strtoull(positional[0], nullptr, 10) : 128;
  const int num_clients = positional.size() > 1 ? std::atoi(positional[1]) : 4;
  const int per_client = positional.size() > 2 ? std::atoi(positional[2]) : 6;

  // One registry for everything: serving lanes, tracing, caches and the
  // transport all expose through it, so one scrape sees the whole stack.
  obs::Registry registry;

  serve::DispatcherOptions opts;
  opts.max_batch = 32;
  opts.max_linger_us = 2000;
  opts.sign_lanes = 2;
  opts.verify_lanes = 2;
  opts.signing.root_seed = 0x5E7F0;
  opts.obs_registry = &registry;
  serve::Dispatcher dispatcher(engine::SamplerRegistry::global(), opts);

  serve::CompletionPool pool(2);
  net::ServerOptions sopts;
  sopts.registry = &registry;
  net::Server server(
      [&](net::ResponseToken token, std::vector<std::uint8_t> frame) {
        serve::route_frame(dispatcher, pool, std::move(token),
                           std::move(frame));
      },
      sopts);
  std::printf("== serving full protocol on 127.0.0.1:%u "
              "(%d reactors%s; %d clients x %d requests, N = %zu) ==\n",
              server.port(), server.reactors(),
              server.reuse_port() ? ", SO_REUSEPORT" : ", hand-off",
              num_clients, per_client, degree);

  // --stats-interval: periodic exposition dumps to stderr while serving —
  // what an operator tailing the box would see between scrapes. Runs for
  // the whole storm and stops before shutdown (same callback-lifetime
  // rule as the final dump below).
  std::atomic<bool> stats_dumping{stats_interval_s > 0};
  std::thread stats_dumper;
  if (stats_interval_s > 0) {
    stats_dumper = std::thread([&] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::seconds(stats_interval_s);
      while (stats_dumping.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::seconds(stats_interval_s);
        std::fprintf(stderr, "-- periodic stats --\n%s",
                     obs::prometheus_text(registry).c_str());
      }
    });
  }

  std::vector<std::thread> clients;
  std::mutex outcomes_mu;
  std::vector<ClientOutcome> outcomes;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      ClientOutcome outcome;
      try {
        outcome = run_client(server.port(), degree, c, per_client);
      } catch (const std::exception& e) {
        // An unexpected frame or a torn stream is a failed client, not a
        // process abort: the final checks report it.
        std::fprintf(stderr, "client %d: protocol error: %s\n", c, e.what());
        ++outcome.protocol_errors;
      }
      std::lock_guard<std::mutex> lock(outcomes_mu);
      outcomes.push_back(outcome);
    });
  }
  for (auto& t : clients) t.join();

  // Live scrape against the still-serving socket: fork/exec the cgs_stats
  // probe in --check mode and require a clean exit. Runs after the storm
  // so lane, trace and cache counters are populated.
  bool stats_ok = true;
  if (stats_exec != nullptr) {
    const std::string port_str = std::to_string(server.port());
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(stats_exec, stats_exec, port_str.c_str(), "--check",
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "protocol_server: exec %s failed\n", stats_exec);
      std::_Exit(127);
    }
    int wstatus = 0;
    if (pid < 0 || ::waitpid(pid, &wstatus, 0) != pid ||
        !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      std::fprintf(stderr, "protocol_server: stats scrape failed\n");
      stats_ok = false;
    }
  }

  if (stats_dumper.joinable()) {
    stats_dumping.store(false, std::memory_order_relaxed);
    stats_dumper.join();
  }

  // The exposition must print before shutdown: shutting down unregisters
  // the callback-backed instruments (queue depths, cache bridges, open
  // connections), which would otherwise vanish from the dump.
  std::printf("\n== final metrics (prometheus exposition) ==\n%s",
              obs::prometheus_text(registry).c_str());

  const std::size_t force_closed = server.shutdown();
  dispatcher.shutdown();
  // All futures are now resolved; run the last completion tasks (their
  // token sends land on the shut-down-but-alive server) and park the
  // workers before `server` can go out of scope.
  pool.join();

  int keygens = 0, healths = 0, signed_ok = 0, local_verified = 0,
      good_accepted = 0, tampered_rejected = 0, protocol_errors = 0;
  for (const ClientOutcome& o : outcomes) {
    keygens += o.keygen_ok ? 1 : 0;
    healths += o.health_ok ? 1 : 0;
    signed_ok += o.signed_ok;
    local_verified += o.local_verified;
    good_accepted += o.good_accepted;
    tampered_rejected += o.tampered_rejected;
    protocol_errors += o.protocol_errors;
  }

  const serve::MetricsSnapshot m = dispatcher.metrics();
  std::printf("\n== results ==\n");
  std::printf("keygens: %d/%d  health probes ok: %d/%d  signed: %d  "
              "locally verified: %d\n",
              keygens, num_clients, healths, num_clients, signed_ok,
              local_verified);
  std::printf("server verdicts: %d good accepted, %d tampered rejected\n",
              good_accepted, tampered_rejected);
  std::printf("frames: %llu in / %llu out, force-closed conns: %zu\n",
              static_cast<unsigned long long>(server.frames_received()),
              static_cast<unsigned long long>(server.frames_sent()),
              force_closed);
  std::printf("sign lanes: occupancy %.1f, p99 %.0fus | verify lanes: "
              "occupancy %.1f, p99 %.0fus | keygens completed: %llu\n",
              m.sign_occupancy(), m.p99_us, m.verify_occupancy(),
              m.verify_p99_us,
              static_cast<unsigned long long>(m.keygen_completed()));
  std::printf("cached trees: %zu, cached verify keys: %zu\n",
              dispatcher.signing_service().num_cached_trees(),
              dispatcher.verification_service().num_cached_keys());

  const int total = num_clients * per_client;
  const bool ok = keygens == num_clients && healths == num_clients &&
                  signed_ok == total &&
                  local_verified == total && good_accepted == total &&
                  tampered_rejected == total && protocol_errors == 0 &&
                  force_closed == 0 && stats_ok;
  std::printf("\n%s\n", ok ? "all checks passed" : "A CHECK FAILED");
  return ok ? 0 : 1;
}
