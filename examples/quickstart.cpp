// Quickstart: synthesize a constant-time discrete Gaussian sampler for
// sigma = 2 at 128-bit precision, draw a few batches, and print summary
// statistics. This is the five-line happy path of the library.

#include <cmath>
#include <cstdio>

#include "ct/bitsliced_sampler.h"
#include "prng/chacha20.h"

int main() {
  using namespace cgs;

  // 1. Parameters: sigma = 2, tail cut 13 sigma, 128-bit probabilities.
  const gauss::GaussianParams params = gauss::GaussianParams::sigma_2(128);
  std::printf("target distribution: %s\n", params.describe().c_str());

  // 2. Probability matrix -> Theorem-1 leaf list -> minimized Boolean
  //    functions -> straight-line netlist. One call.
  const gauss::ProbMatrix matrix(params);
  ct::SynthesizedSampler synth = ct::synthesize(matrix, {});
  std::printf("synthesized sampler: %s\n", synth.stats.describe().c_str());

  // 3. Wrap in the bit-sliced runtime and sample 64 values per batch.
  ct::BitslicedSampler sampler(std::move(synth));
  prng::ChaCha20Source rng(/*seed=*/2019);

  std::int64_t count = 0;
  double sum = 0, sum_sq = 0;
  std::int32_t batch[64];
  for (int it = 0; it < 10000; ++it) {
    const std::uint64_t valid = sampler.sample_batch(rng, batch);
    for (int lane = 0; lane < 64; ++lane) {
      if (!((valid >> lane) & 1u)) continue;  // ~never at 128-bit precision
      ++count;
      sum += batch[lane];
      sum_sq += static_cast<double>(batch[lane]) * batch[lane];
    }
  }

  const double mean = sum / static_cast<double>(count);
  const double sigma_hat =
      std::sqrt(sum_sq / static_cast<double>(count) - mean * mean);
  std::printf("drew %lld samples: mean = %+.4f (expect 0), sigma = %.4f "
              "(expect 2)\n",
              static_cast<long long>(count), mean, sigma_hat);

  std::printf("first batch: ");
  for (int i = 0; i < 16; ++i) std::printf("%d ", batch[i]);
  std::printf("...\n");
  return 0;
}
