// Quickstart: get a constant-time discrete Gaussian sampler for sigma = 2 at
// 128-bit precision from the sampler registry (synthesized on first run,
// warm-loaded from the on-disk cache afterwards — try running this twice),
// then draw samples both through the raw bit-sliced runtime and through the
// multi-threaded SamplerEngine. This is the five-line happy path.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "ct/bitsliced_sampler.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "prng/chacha20.h"

int main() {
  using namespace cgs;

  // 1. Parameters: sigma = 2, tail cut 13 sigma, 128-bit probabilities.
  const gauss::GaussianParams params = gauss::GaussianParams::sigma_2(128);
  std::printf("target distribution: %s\n", params.describe().c_str());

  // 2. The registry runs the offline pipeline (probability matrix ->
  //    Theorem-1 leaf list -> minimized Boolean functions -> straight-line
  //    netlist) at most once per configuration: synthesized on the first
  //    ever run, then persisted to the cache directory ($CGS_CACHE_DIR)
  //    and warm-loaded in a fraction of the time.
  engine::SamplerRegistry::Source source;
  const auto t0 = std::chrono::steady_clock::now();
  auto synth = engine::SamplerRegistry::global().get(params, {}, &source);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0).count();
  std::printf("sampler ready in %.2f ms (%s): %s\n", ms,
              source == engine::SamplerRegistry::Source::kDisk
                  ? "warm start from disk cache"
                  : "cold synthesis, now cached",
              synth->stats.describe().c_str());

  // 3. Wrap in the bit-sliced runtime and sample 64 values per batch.
  ct::BitslicedSampler sampler(*synth);
  prng::ChaCha20Source rng(/*seed=*/2019);

  std::int64_t count = 0;
  double sum = 0, sum_sq = 0;
  std::int32_t batch[64];
  for (int it = 0; it < 10000; ++it) {
    const std::uint64_t valid = sampler.sample_batch(rng, batch);
    for (int lane = 0; lane < 64; ++lane) {
      if (!((valid >> lane) & 1u)) continue;  // ~never at 128-bit precision
      ++count;
      sum += batch[lane];
      sum_sq += static_cast<double>(batch[lane]) * batch[lane];
    }
  }

  const double mean = sum / static_cast<double>(count);
  const double sigma_hat =
      std::sqrt(sum_sq / static_cast<double>(count) - mean * mean);
  std::printf("drew %lld samples: mean = %+.4f (expect 0), sigma = %.4f "
              "(expect 2)\n",
              static_cast<long long>(count), mean, sigma_hat);

  std::printf("first batch: ");
  for (int i = 0; i < 16; ++i) std::printf("%d ", batch[i]);
  std::printf("...\n");

  // 4. Or let the engine pick the fastest backend and fan the work out
  //    across worker threads, one independent ChaCha20 stream each.
  engine::SamplerEngine eng(synth, {.root_seed = 2019});
  const auto bulk = eng.sample(1 << 20);
  double bulk_sq = 0;
  for (std::int32_t v : bulk) bulk_sq += static_cast<double>(v) * v;
  std::printf("engine [%s, %d threads]: %zu samples, sigma = %.4f\n",
              engine::backend_name(eng.backend()), eng.num_threads(),
              bulk.size(),
              std::sqrt(bulk_sq / static_cast<double>(bulk.size())));
  return 0;
}
