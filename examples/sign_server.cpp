// The serving layer end to end over a real socket: a loopback TCP signing
// server (wire frames -> Dispatcher -> SigningService) and a handful of
// concurrent demo clients. Each client connects, pipelines a burst of
// kSignRequest frames for its tenant key, half-closes, then reads the
// kSignResponse frames back and verifies every signature against the
// tenant's public key. Exits nonzero on any failure (this example doubles
// as a ctest smoke test).
//
// Usage: sign_server [degree] [clients] [requests_per_client]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "falcon/keygen.h"
#include "falcon/verify.h"
#include "prng/chacha20.h"
#include "serve/dispatcher.h"
#include "serve/wire.h"

namespace {

using namespace cgs;

// One connection: read every request, submit it, then stream the
// responses back in submission order (ids let the client match them
// regardless). Rejected submissions come back as error frames — the
// client sees typed backpressure, not a hang.
void serve_connection(int fd, serve::Dispatcher& dispatcher,
                      std::atomic<bool>& server_ok) {
  struct Pending {
    std::uint64_t id;
    serve::Submission<falcon::Signature> submission;
  };
  std::vector<Pending> pending;
  try {
    while (auto frame = serve::read_message(fd)) {
      serve::SignRequestFrame req = serve::decode_sign_request(*frame);
      auto submission =
          dispatcher.submit_sign(req.key_id, std::move(req.message));
      pending.push_back({req.request_id, std::move(submission)});
    }
    for (Pending& p : pending) {
      serve::SignResponseFrame resp =
          p.submission.ok()
              ? serve::SignResponseFrame::success(p.id,
                                                  p.submission.future.get())
              : serve::SignResponseFrame::failure(
                    p.id, serve::to_string(p.submission.status));
      if (!serve::write_message(fd, serve::encode(resp))) {
        server_ok = false;
        break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server connection error: %s\n", e.what());
    server_ok = false;
  }
  ::close(fd);
}

int run_client(int port, std::uint64_t key_id, const falcon::Verifier& verifier,
               int client_idx, int requests) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }

  // Pipeline the whole burst, then half-close: the server learns the
  // request stream is complete without any in-band terminator.
  std::vector<std::string> messages;
  for (int i = 0; i < requests; ++i) {
    messages.push_back("client " + std::to_string(client_idx) + " message " +
                       std::to_string(i));
    serve::SignRequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.key_id = key_id;
    req.message = messages.back();
    if (!serve::write_message(fd, serve::encode(req))) {
      ::close(fd);
      return 0;
    }
  }
  ::shutdown(fd, SHUT_WR);

  int verified = 0;
  try {
    while (auto frame = serve::read_message(fd)) {
      const serve::SignResponseFrame resp =
          serve::decode_sign_response(*frame);
      if (!resp.ok) {
        std::fprintf(stderr, "client %d: request %llu rejected: %s\n",
                     client_idx,
                     static_cast<unsigned long long>(resp.request_id),
                     resp.error.c_str());
        continue;
      }
      const falcon::Signature sig = resp.to_signature();
      if (resp.request_id < messages.size() &&
          verifier.verify(messages[static_cast<std::size_t>(resp.request_id)],
                          sig))
        ++verified;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client %d error: %s\n", client_idx, e.what());
  }
  ::close(fd);
  return verified;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t degree =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
  const int num_clients =
      argc > 2 ? std::atoi(argv[2]) : 4;
  const int per_client =
      argc > 3 ? std::atoi(argv[3]) : 8;

  // Two tenant keys: odd clients sign under key B — one server, several
  // keys, each under its own cached ffLDL tree.
  std::printf("== keygen: two tenant keys, N = %zu ==\n", degree);
  prng::ChaCha20Source rng_a(0x5E7F1), rng_b(0x5E7F2);
  const falcon::KeyPair kp_a =
      falcon::keygen(falcon::FalconParams::for_degree(degree), rng_a);
  const falcon::KeyPair kp_b =
      falcon::keygen(falcon::FalconParams::for_degree(degree), rng_b);
  const falcon::Verifier verifier_a(kp_a.h, kp_a.params);
  const falcon::Verifier verifier_b(kp_b.h, kp_b.params);

  serve::DispatcherOptions opts;
  opts.max_batch = 32;
  opts.max_linger_us = 2000;
  opts.sign_lanes = 2;
  opts.signing.root_seed = 0x5E7F0;
  serve::Dispatcher dispatcher(engine::SamplerRegistry::global(), opts);
  const std::uint64_t id_a = dispatcher.add_key(kp_a);
  const std::uint64_t id_b = dispatcher.add_key(kp_b);

  // Loopback listener on an ephemeral port.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return 1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const int port = ntohs(addr.sin_port);
  std::printf("== serving on 127.0.0.1:%d (%d clients x %d requests) ==\n",
              port, num_clients, per_client);

  std::atomic<bool> server_ok{true};
  std::thread acceptor([&] {
    std::vector<std::thread> connections;
    for (int c = 0; c < num_clients; ++c) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) {
        server_ok = false;
        break;
      }
      connections.emplace_back(serve_connection, fd, std::ref(dispatcher),
                               std::ref(server_ok));
    }
    for (auto& t : connections) t.join();
  });

  std::vector<std::thread> clients;
  std::atomic<int> total_verified{0};
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const bool is_b = (c % 2) == 1;
      total_verified += run_client(port, is_b ? id_b : id_a,
                                   is_b ? verifier_b : verifier_a, c,
                                   per_client);
    });
  }
  for (auto& t : clients) t.join();
  acceptor.join();
  ::close(listener);
  dispatcher.shutdown();

  const serve::MetricsSnapshot m = dispatcher.metrics();
  std::printf("\n== results ==\n");
  std::printf("verified %d / %d signatures across %d clients, 2 keys\n",
              total_verified.load(), num_clients * per_client, num_clients);
  std::printf("lanes: %zu  batches: %llu  occupancy: %.1f req/batch\n",
              m.sign_lanes.size(),
              static_cast<unsigned long long>(m.sign_batches()),
              m.sign_occupancy());
  std::printf("latency: p50 %.0fus  p95 %.0fus  p99 %.0fus\n", m.p50_us,
              m.p95_us, m.p99_us);
  std::printf("cached trees: %zu\n",
              dispatcher.signing_service().num_cached_trees());

  const bool ok = server_ok && total_verified == num_clients * per_client &&
                  dispatcher.signing_service().num_cached_trees() == 2;
  std::printf("\n%s\n", ok ? "all checks passed" : "A CHECK FAILED");
  return ok ? 0 : 1;
}
