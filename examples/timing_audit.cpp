// dudect-style timing audit of every sampler in the library — the paper's
// §5.2 validation ("we used the tool dudect to affirm the constant running
// time"). Fixed-vs-random input classes, Welch t-test on cycles, |t| > 4.5
// flags a leak.

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "cdt/cdt_samplers.h"
#include "ct/bitsliced_sampler.h"
#include "prng/splitmix.h"
#include "stats/dudect.h"

namespace {

using namespace cgs;

// Serves pre-generated words; per-call cost is class-independent, so the
// measurement isolates the sampler computation (dudect methodology).
class ArraySource final : public RandomBitSource {
 public:
  void load(const std::uint64_t* words, std::size_t count) {
    words_ = words;
    count_ = count;
    pos_ = 0;
  }
  std::uint64_t next_word() override {
    const std::uint64_t w = words_[pos_];
    pos_ = (pos_ + 1) % count_;
    return w;
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t count_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t measurements =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  const gauss::ProbMatrix matrix(gauss::GaussianParams::sigma_2(128));
  const cdt::CdtTable table(matrix);

  std::array<std::uint64_t, 512> random_words{};
  std::array<std::uint64_t, 512> zero_words{};
  prng::SplitMix64Source seed(99);
  for (auto& w : random_words) w = seed.next_word();

  ArraySource src;
  auto source_for = [&](int cls) -> RandomBitSource& {
    src.load(cls ? random_words.data() : zero_words.data(),
             random_words.size());
    return src;
  };

  std::printf("dudect timing audit: %zu measurements per sampler\n", measurements);
  std::printf("class 0: all-zero input bits, class 1: random input bits\n");
  std::printf("|t| > 4.5 => data-dependent timing (LEAKY)\n\n");

  struct Entry {
    const char* label;
    std::unique_ptr<IntSampler> sampler;
  };
  std::vector<Entry> entries;
  entries.push_back({"cdt-byte-scan   (expect LEAKY)",
                     std::make_unique<cdt::CdtByteScanSampler>(table)});
  entries.push_back({"cdt-binary-search (expect LEAKY-ish)",
                     std::make_unique<cdt::CdtBinarySearchSampler>(table)});
  entries.push_back({"cdt-linear-ct   (expect ok)",
                     std::make_unique<cdt::CdtLinearCtSampler>(table)});

  for (auto& e : entries) {
    const auto r = stats::dudect(
        [&](int cls) { (void)e.sampler->sample_magnitude(source_for(cls)); },
        {.measurements = measurements, .warmup = 1000,
         .keep_percentile = 0.9});
    std::printf("%-38s %s\n", e.label, r.describe().c_str());
  }

  // The bit-sliced batch sampler (this work).
  ct::BitslicedSampler bitsliced(ct::synthesize(matrix, {}));
  std::uint32_t out[64];
  const auto r = stats::dudect(
      [&](int cls) { (void)bitsliced.sample_magnitudes(source_for(cls), out); },
      {.measurements = measurements / 4, .warmup = 500,
       .keep_percentile = 0.9});
  std::printf("%-38s %s\n", "bitsliced-ct (this work, expect ok)",
              r.describe().c_str());
  return 0;
}
