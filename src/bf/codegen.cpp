#include "bf/codegen.h"

#include <sstream>

namespace cgs::bf {

std::string emit_c(const Netlist& nl, const std::string& name) {
  std::ostringstream os;
  os << "#include <stdint.h>\n\n"
     << "/* Auto-generated constant-time bit-sliced sampler core.\n"
     << " * " << nl.stats() << "\n"
     << " * Straight-line code: no branches, no table lookups. */\n"
     << "void " << name << "(const uint64_t in[" << nl.num_inputs()
     << "], uint64_t out[" << nl.outputs().size() << "]) {\n";
  const auto& nodes = nl.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "  const uint64_t t" << i << " = ";
    switch (n.op) {
      case Op::kConst0: os << "UINT64_C(0)"; break;
      case Op::kConst1: os << "~UINT64_C(0)"; break;
      case Op::kInput:  os << "in[" << n.a << "]"; break;
      case Op::kNot:    os << "~t" << n.a; break;
      case Op::kAnd:    os << "t" << n.a << " & t" << n.b; break;
      case Op::kOr:     os << "t" << n.a << " | t" << n.b; break;
      case Op::kXor:    os << "t" << n.a << " ^ t" << n.b; break;
    }
    os << ";\n";
  }
  const auto& outs = nl.outputs();
  for (std::size_t o = 0; o < outs.size(); ++o)
    os << "  out[" << o << "] = t" << outs[o] << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace cgs::bf
