#include "bf/codegen.h"

#include <sstream>

namespace cgs::bf {

namespace {

// Shared emitter: `word` is the lane-word C type, `zero`/`ones` its
// constants, `load` renders the input expression for netlist input k.
template <typename LoadFn>
void emit_body(std::ostringstream& os, const Netlist& nl,
               const std::string& word, const std::string& zero,
               const std::string& ones, LoadFn load) {
  const auto& nodes = nl.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "  const " << word << " t" << i << " = ";
    switch (n.op) {
      case Op::kConst0: os << zero; break;
      case Op::kConst1: os << ones; break;
      case Op::kInput:  os << load(n.a); break;
      case Op::kNot:    os << "~t" << n.a; break;
      case Op::kAnd:    os << "t" << n.a << " & t" << n.b; break;
      case Op::kOr:     os << "t" << n.a << " | t" << n.b; break;
      case Op::kXor:    os << "t" << n.a << " ^ t" << n.b; break;
    }
    os << ";\n";
  }
}

}  // namespace

std::string emit_c(const Netlist& nl, const std::string& name) {
  std::ostringstream os;
  os << "#include <stdint.h>\n\n"
     << "/* Auto-generated constant-time bit-sliced sampler core.\n"
     << " * " << nl.stats() << "\n"
     << " * Straight-line code: no branches, no table lookups. */\n"
     << "void " << name << "(const uint64_t in[" << nl.num_inputs()
     << "], uint64_t out[" << nl.outputs().size() << "]) {\n";
  emit_body(os, nl, "uint64_t", "UINT64_C(0)", "~UINT64_C(0)",
            [](int k) { return "in[" + std::to_string(k) + "]"; });
  const auto& outs = nl.outputs();
  for (std::size_t o = 0; o < outs.size(); ++o)
    os << "  out[" << o << "] = t" << outs[o] << ";\n";
  os << "}\n";
  return os.str();
}

std::string emit_c_wide(const Netlist& nl, const std::string& name) {
  std::ostringstream os;
  os << "#include <stdint.h>\n\n"
     << "/* Auto-generated constant-time bit-sliced sampler core, 256-lane\n"
     << " * form: the same straight-line netlist on 4x64-bit vector words\n"
     << " * (GCC vector extensions; compiles to AVX2 where available).\n"
     << " * " << nl.stats() << " */\n"
     << "typedef uint64_t cgs_w4 "
        "__attribute__((vector_size(32), aligned(8)));\n\n"
     << "void " << name << "(const uint64_t in[" << 4 * nl.num_inputs()
     << "], uint64_t out[" << 4 * nl.outputs().size() << "]) {\n";
  emit_body(os, nl, "cgs_w4", "((cgs_w4){0, 0, 0, 0})",
            "~((cgs_w4){0, 0, 0, 0})", [](int k) {
              return "*(const cgs_w4*)(in + " + std::to_string(4 * k) + ")";
            });
  const auto& outs = nl.outputs();
  for (std::size_t o = 0; o < outs.size(); ++o)
    os << "  *(cgs_w4*)(out + " << 4 * o << ") = t" << outs[o] << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace cgs::bf
