#pragma once
// Emits a synthesized netlist as a self-contained C function operating on
// uint64_t lanes — the shape of artifact the paper's companion tool
// (github.com/Angshumank/const_gauss_split) produced.

#include <string>

#include "bf/netlist.h"

namespace cgs::bf {

/// C11 source for:
///   void <name>(const uint64_t in[num_inputs], uint64_t out[num_outputs]);
std::string emit_c(const Netlist& nl, const std::string& name);

}  // namespace cgs::bf
