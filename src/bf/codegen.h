#pragma once
// Emits a synthesized netlist as a self-contained C function operating on
// uint64_t lanes — the shape of artifact the paper's companion tool
// (github.com/Angshumank/const_gauss_split) produced.

#include <string>

#include "bf/netlist.h"

namespace cgs::bf {

/// C11 source for:
///   void <name>(const uint64_t in[num_inputs], uint64_t out[num_outputs]);
std::string emit_c(const Netlist& nl, const std::string& name);

/// Same straight-line netlist on 4x64 = 256 lanes via GCC vector
/// extensions (the paper's §3.2 word-width scaling, applied to the
/// compiled artifact): in/out are 4 uint64 words per netlist bit,
/// group-major (word g of bit k at index 4*k + g). The typedef carries
/// aligned(8) so callers need not over-align their buffers.
///   void <name>(const uint64_t in[4*num_inputs], uint64_t out[4*num_outputs]);
std::string emit_c_wide(const Netlist& nl, const std::string& name);

}  // namespace cgs::bf
