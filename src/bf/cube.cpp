#include "bf/cube.h"

#include <bit>

namespace cgs::bf {

Cube Cube::minterm(std::uint64_t m, int nv) {
  CGS_CHECK(nv >= 1 && nv <= 64);
  CGS_CHECK(nv == 64 || m < (std::uint64_t(1) << nv));
  Cube c(nv);
  c.mask_[0] = (nv == 64) ? ~std::uint64_t(0) : ((std::uint64_t(1) << nv) - 1);
  c.val_[0] = m;
  return c;
}

int Cube::literal_count() const {
  return std::popcount(mask_[0]) + std::popcount(mask_[1]);
}

bool Cube::covers_minterm(std::uint64_t m) const {
  CGS_DCHECK(nv_ <= 64);
  return ((m ^ val_[0]) & mask_[0]) == 0;
}

bool Cube::contains(const Cube& o) const {
  // Every variable we specify, o must specify identically.
  const bool spec_subset = ((mask_[0] & ~o.mask_[0]) | (mask_[1] & ~o.mask_[1])) == 0;
  if (!spec_subset) return false;
  return (((val_[0] ^ o.val_[0]) & mask_[0]) | ((val_[1] ^ o.val_[1]) & mask_[1])) == 0;
}

std::optional<Cube> Cube::merge_adjacent(const Cube& o) const {
  if (nv_ != o.nv_) return std::nullopt;
  if (mask_[0] != o.mask_[0] || mask_[1] != o.mask_[1]) return std::nullopt;
  const std::uint64_t d0 = (val_[0] ^ o.val_[0]) & mask_[0];
  const std::uint64_t d1 = (val_[1] ^ o.val_[1]) & mask_[1];
  const int diff = std::popcount(d0) + std::popcount(d1);
  if (diff != 1) return std::nullopt;
  Cube r = *this;
  r.mask_[0] &= ~d0;
  r.mask_[1] &= ~d1;
  r.val_[0] &= ~d0;
  r.val_[1] &= ~d1;
  return r;
}

bool Cube::intersects(const Cube& o) const {
  const std::uint64_t both0 = mask_[0] & o.mask_[0];
  const std::uint64_t both1 = mask_[1] & o.mask_[1];
  return (((val_[0] ^ o.val_[0]) & both0) | ((val_[1] ^ o.val_[1]) & both1)) == 0;
}

std::uint64_t Cube::hash() const {
  std::uint64_t h = 0x243f6a8885a308d3ull ^ static_cast<std::uint64_t>(nv_);
  for (std::uint64_t w : {mask_[0], mask_[1], val_[0], val_[1]}) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Cube::to_string() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(nv_));
  for (int v = 0; v < nv_; ++v) {
    const int st = var(v);
    s += (st < 0) ? 'x' : static_cast<char>('0' + st);
  }
  return s;
}

}  // namespace cgs::bf
