#pragma once
// Product-term cubes over up to 128 Boolean variables. A cube is a partial
// assignment: each variable is 0, 1, or don't-care. Cubes are the currency
// of two-level minimization (QM, espresso-lite) and of the leaf list L —
// every Theorem-1 string x^i (0/1)^j 0 1^k *is* a cube.

#include <cstdint>
#include <optional>
#include <string>

#include "common/check.h"

namespace cgs::bf {

class Cube {
 public:
  /// All-don't-care cube over nv variables (the tautology product).
  explicit Cube(int nv = 0) : nv_(nv) {
    CGS_CHECK(nv >= 0 && nv <= 128);
  }

  /// Minterm cube: all nv variables specified from the bits of `minterm`
  /// (bit v of minterm = variable v).
  static Cube minterm(std::uint64_t m, int nv);

  int num_vars() const { return nv_; }

  /// Variable state: -1 don't-care, 0, or 1.
  int var(int v) const {
    CGS_DCHECK(v >= 0 && v < nv_);
    if (!get(mask_, v)) return -1;
    return get(val_, v);
  }

  void set_var(int v, int state) {
    CGS_DCHECK(v >= 0 && v < nv_);
    if (state < 0) {
      clear(mask_, v);
      clear(val_, v);
    } else {
      put(mask_, v);
      if (state) put(val_, v); else clear(val_, v);
    }
  }

  /// Number of specified literals.
  int literal_count() const;

  /// True if the fully specified minterm lies inside this cube.
  bool covers_minterm(std::uint64_t m) const;

  /// True if `o`'s cube (as a set of minterms) is inside this cube.
  bool contains(const Cube& o) const;

  /// Combine two cubes that differ in exactly one specified variable and
  /// agree elsewhere (QM adjacency step). nullopt if not adjacent.
  std::optional<Cube> merge_adjacent(const Cube& o) const;

  /// Set intersection is non-empty?
  bool intersects(const Cube& o) const;

  bool operator==(const Cube& o) const {
    return nv_ == o.nv_ && mask_[0] == o.mask_[0] && mask_[1] == o.mask_[1] &&
           val_[0] == o.val_[0] && val_[1] == o.val_[1];
  }

  /// Stable key for hashing / dedup.
  std::uint64_t hash() const;

  /// "1-0x" style rendering, variable 0 first.
  std::string to_string() const;

 private:
  using Words = std::uint64_t[2];

  static bool get(const Words& w, int v) {
    return (w[v >> 6] >> (v & 63)) & 1u;
  }
  static void put(Words& w, int v) { w[v >> 6] |= std::uint64_t(1) << (v & 63); }
  static void clear(Words& w, int v) {
    w[v >> 6] &= ~(std::uint64_t(1) << (v & 63));
  }

  int nv_;
  std::uint64_t mask_[2] = {0, 0};  // 1 = variable specified
  std::uint64_t val_[2] = {0, 0};   // value where specified
};

}  // namespace cgs::bf
