#include "bf/espresso_lite.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace cgs::bf {

namespace {

// All minterms of `c` lie in ON ∪ DC?
bool cube_in_care_set(const TruthTable& tt, const Cube& c) {
  // Enumerate assignments of the don't-care variables of c.
  const int nv = tt.num_vars();
  std::vector<int> free_vars;
  std::uint64_t base = 0;
  for (int v = 0; v < nv; ++v) {
    const int st = c.var(v);
    if (st < 0)
      free_vars.push_back(v);
    else if (st == 1)
      base |= std::uint64_t(1) << v;
  }
  const std::uint64_t count = std::uint64_t(1) << free_vars.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t m = base;
    for (std::size_t k = 0; k < free_vars.size(); ++k)
      if ((i >> k) & 1) m |= std::uint64_t(1) << free_vars[k];
    if (tt.state(m) == TruthTable::State::kOff) return false;
  }
  return true;
}

}  // namespace

std::vector<Cube> espresso_lite(const TruthTable& tt, std::vector<Cube> cover) {
  const int nv = tt.num_vars();

  // EXPAND: try dropping literals, highest variable first (the trailing
  // variables of sublist functions are the most often redundant ones).
  for (Cube& c : cover) {
    for (int v = nv - 1; v >= 0; --v) {
      if (c.var(v) < 0) continue;
      Cube widened = c;
      widened.set_var(v, -1);
      if (cube_in_care_set(tt, widened)) c = widened;
    }
  }

  // Dedup + drop contained cubes.
  std::vector<Cube> dedup;
  for (const Cube& c : cover) {
    bool dominated = false;
    for (const Cube& d : dedup)
      if (d.contains(c)) {
        dominated = true;
        break;
      }
    if (!dominated) {
      std::erase_if(dedup, [&](const Cube& d) { return c.contains(d); });
      dedup.push_back(c);
    }
  }
  cover = std::move(dedup);

  // IRREDUNDANT: count, per ON minterm, how many cubes cover it; a cube all
  // of whose ON minterms have count >= 2 can go. Process widest-first so the
  // cheap cubes are the ones dropped.
  const auto on = tt.on_set();
  std::vector<std::vector<std::size_t>> covering(on.size());
  for (std::size_t k = 0; k < on.size(); ++k)
    for (std::size_t ci = 0; ci < cover.size(); ++ci)
      if (cover[ci].covers_minterm(on[k])) covering[k].push_back(ci);

  std::vector<std::size_t> order(cover.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cover[a].literal_count() > cover[b].literal_count();
  });

  std::vector<std::uint8_t> removed(cover.size(), 0);
  std::vector<int> count(on.size(), 0);
  for (std::size_t k = 0; k < on.size(); ++k)
    count[k] = static_cast<int>(covering[k].size());
  for (std::size_t ci : order) {
    bool removable = true;
    for (std::size_t k = 0; k < on.size(); ++k) {
      if (count[k] == 1 && !removed[ci] &&
          std::find(covering[k].begin(), covering[k].end(), ci) !=
              covering[k].end()) {
        removable = false;
        break;
      }
    }
    if (!removable) continue;
    // Check: every ON minterm of ci has another cover.
    for (std::size_t k = 0; k < on.size() && removable; ++k) {
      if (std::find(covering[k].begin(), covering[k].end(), ci) !=
          covering[k].end())
        removable = count[k] >= 2;
    }
    if (removable) {
      removed[ci] = 1;
      for (std::size_t k = 0; k < on.size(); ++k)
        if (std::find(covering[k].begin(), covering[k].end(), ci) !=
            covering[k].end())
          --count[k];
    }
  }

  std::vector<Cube> result;
  for (std::size_t ci = 0; ci < cover.size(); ++ci)
    if (!removed[ci]) result.push_back(cover[ci]);

  CGS_CHECK_MSG(tt.cover_matches(result), "espresso_lite broke the cover");
  return result;
}

std::vector<Cube> merge_only(std::vector<Cube> cover) {
  // Cubes can only merge when they share the same specified-variable mask,
  // so bucket by mask and only compare within buckets. Iterate to fixpoint
  // (a merge changes the mask, moving the result to another bucket).
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      // Mask-only key: fold the cube hash of a value-stripped copy.
      Cube masked = cover[i];
      for (int v = 0; v < masked.num_vars(); ++v)
        if (masked.var(v) == 1) masked.set_var(v, 0);
      buckets[masked.hash()].push_back(i);
    }
    std::vector<std::uint8_t> dead(cover.size(), 0);
    std::vector<Cube> merged_cubes;
    for (auto& [key, ids] : buckets) {
      (void)key;
      for (std::size_t a = 0; a < ids.size(); ++a) {
        if (dead[ids[a]]) continue;
        for (std::size_t b = a + 1; b < ids.size(); ++b) {
          if (dead[ids[b]]) continue;
          if (cover[ids[a]] == cover[ids[b]]) {
            dead[ids[b]] = 1;
            changed = true;
            continue;
          }
          if (auto m = cover[ids[a]].merge_adjacent(cover[ids[b]])) {
            dead[ids[a]] = dead[ids[b]] = 1;
            merged_cubes.push_back(*m);
            changed = true;
            break;
          }
        }
      }
    }
    if (changed) {
      std::vector<Cube> next;
      next.reserve(cover.size());
      for (std::size_t i = 0; i < cover.size(); ++i)
        if (!dead[i]) next.push_back(cover[i]);
      next.insert(next.end(), merged_cubes.begin(), merged_cubes.end());
      cover = std::move(next);
    }
  }
  return cover;
}

}  // namespace cgs::bf
