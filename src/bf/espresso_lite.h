#pragma once
// Heuristic two-level minimization in the espresso style (EXPAND +
// IRREDUNDANT over explicit minterm sets), plus the cheap merge-only pass
// used for the flat [21]-style baseline. Not exact, but always correct;
// used when the variable count makes QM + Petrick too expensive.

#include <vector>

#include "bf/cube.h"
#include "bf/truthtable.h"

namespace cgs::bf {

/// EXPAND each cube greedily (drop literals while staying inside ON ∪ DC),
/// then IRREDUNDANT (drop cubes whose ON minterms are all covered by
/// others). Input cover must already be a correct cover of ON.
std::vector<Cube> espresso_lite(const TruthTable& tt,
                                std::vector<Cube> cover);

/// Repeatedly merge adjacent cube pairs (same mask, one differing value bit)
/// until fixpoint. Works on arbitrary-width cubes (no truth table needed),
/// preserves the covered set exactly.
std::vector<Cube> merge_only(std::vector<Cube> cover);

}  // namespace cgs::bf
