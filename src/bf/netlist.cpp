#include "bf/netlist.h"

#include <sstream>

namespace cgs::bf {

Netlist Netlist::from_parts(int num_inputs, std::vector<Node> nodes,
                            std::vector<std::int32_t> outputs) {
  CGS_CHECK_MSG(num_inputs >= 0, "netlist: negative input count");
  const auto size = static_cast<std::int32_t>(nodes.size());
  for (std::int32_t i = 0; i < size; ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    switch (n.op) {
      case Op::kConst0:
      case Op::kConst1:
        break;
      case Op::kInput:
        CGS_CHECK_MSG(n.a >= 0 && n.a < num_inputs,
                      "netlist: input index out of range");
        break;
      case Op::kNot:
        CGS_CHECK_MSG(n.a >= 0 && n.a < i,
                      "netlist: NOT operand not an earlier node");
        break;
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
        CGS_CHECK_MSG(n.a >= 0 && n.a < i && n.b >= 0 && n.b < i,
                      "netlist: binary operand not an earlier node");
        break;
      default:
        CGS_CHECK_MSG(false, "netlist: unknown op");
    }
  }
  for (std::int32_t o : outputs)
    CGS_CHECK_MSG(o >= 0 && o < size, "netlist: output id out of range");
  Netlist nl;
  nl.num_inputs_ = num_inputs;
  nl.nodes_ = std::move(nodes);
  nl.outputs_ = std::move(outputs);
  return nl;
}

std::size_t Netlist::op_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.op == Op::kNot || node.op == Op::kAnd || node.op == Op::kOr ||
        node.op == Op::kXor)
      ++n;
  return n;
}

std::string Netlist::stats() const {
  std::size_t cnt[7] = {0};
  for (const Node& n : nodes_) ++cnt[static_cast<int>(n.op)];
  std::ostringstream os;
  os << "nodes=" << nodes_.size() << " and=" << cnt[int(Op::kAnd)]
     << " or=" << cnt[int(Op::kOr)] << " xor=" << cnt[int(Op::kXor)]
     << " not=" << cnt[int(Op::kNot)] << " inputs=" << num_inputs_
     << " outputs=" << outputs_.size();
  return os.str();
}

void Netlist::eval(std::span<const std::uint64_t> inputs,
                   std::span<std::uint64_t> outputs) const {
  CGS_CHECK(inputs.size() == static_cast<std::size_t>(num_inputs_));
  CGS_CHECK(outputs.size() == outputs_.size());
  scratch_.resize(nodes_.size());
  std::uint64_t* v = scratch_.data();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.op) {
      case Op::kConst0: v[i] = 0; break;
      case Op::kConst1: v[i] = ~std::uint64_t(0); break;
      case Op::kInput:  v[i] = inputs[static_cast<std::size_t>(n.a)]; break;
      case Op::kNot:    v[i] = ~v[n.a]; break;
      case Op::kAnd:    v[i] = v[n.a] & v[n.b]; break;
      case Op::kOr:     v[i] = v[n.a] | v[n.b]; break;
      case Op::kXor:    v[i] = v[n.a] ^ v[n.b]; break;
    }
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o)
    outputs[o] = v[outputs_[o]];
}

std::vector<int> Netlist::eval_bits(const std::vector<int>& input_bits) const {
  CGS_CHECK(input_bits.size() == static_cast<std::size_t>(num_inputs_));
  std::vector<std::uint64_t> in(input_bits.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = input_bits[i] ? ~std::uint64_t(0) : 0;
  std::vector<std::uint64_t> out(outputs_.size());
  eval(in, out);
  std::vector<int> bits(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) bits[i] = out[i] & 1u;
  return bits;
}

NetlistBuilder::NetlistBuilder(int num_inputs, bool enable_cse)
    : cse_(enable_cse) {
  CGS_CHECK(num_inputs >= 0);
  nl_.num_inputs_ = num_inputs;
  // Node 0/1: the constants; inputs next, so ids are stable and cheap.
  nl_.nodes_.push_back({Op::kConst0, -1, -1});
  nl_.nodes_.push_back({Op::kConst1, -1, -1});
  for (int i = 0; i < num_inputs; ++i)
    nl_.nodes_.push_back({Op::kInput, i, -1});
}

std::int32_t NetlistBuilder::const0() { return 0; }
std::int32_t NetlistBuilder::const1() { return 1; }

std::int32_t NetlistBuilder::input(int i) {
  CGS_CHECK(i >= 0 && i < nl_.num_inputs_);
  return 2 + i;
}

std::int32_t NetlistBuilder::emit(Op op, std::int32_t a, std::int32_t b) {
  if (cse_) {
    if ((op == Op::kAnd || op == Op::kOr || op == Op::kXor) && a > b)
      std::swap(a, b);  // commutative canonicalization
    const std::uint64_t key = (static_cast<std::uint64_t>(op) << 58) ^
                              (static_cast<std::uint64_t>(std::uint32_t(a)) << 29) ^
                              static_cast<std::uint64_t>(std::uint32_t(b));
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    nl_.nodes_.push_back({op, a, b});
    const auto id = static_cast<std::int32_t>(nl_.nodes_.size() - 1);
    memo_.emplace(key, id);
    return id;
  }
  nl_.nodes_.push_back({op, a, b});
  return static_cast<std::int32_t>(nl_.nodes_.size() - 1);
}

std::int32_t NetlistBuilder::land(std::int32_t a, std::int32_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == 1) return b;
  if (b == 1) return a;
  if (a == b) return a;
  return emit(Op::kAnd, a, b);
}

std::int32_t NetlistBuilder::lor(std::int32_t a, std::int32_t b) {
  if (a == 1 || b == 1) return 1;
  if (a == 0) return b;
  if (b == 0) return a;
  if (a == b) return a;
  return emit(Op::kOr, a, b);
}

std::int32_t NetlistBuilder::lxor(std::int32_t a, std::int32_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  if (a == b) return 0;
  return emit(Op::kXor, a, b);
}

std::int32_t NetlistBuilder::lnot(std::int32_t a) {
  if (a == 0) return 1;
  if (a == 1) return 0;
  return emit(Op::kNot, a, -1);
}

std::int32_t NetlistBuilder::cube_product(const Cube& c, int base_input) {
  std::int32_t acc = 1;  // const1
  for (int v = 0; v < c.num_vars(); ++v) {
    const int st = c.var(v);
    if (st < 0) continue;
    const std::int32_t lit =
        st ? input(base_input + v) : lnot(input(base_input + v));
    acc = land(acc, lit);
  }
  return acc;
}

std::int32_t NetlistBuilder::sop(const std::vector<Cube>& cover,
                                 int base_input) {
  std::int32_t acc = 0;  // const0
  for (const Cube& c : cover) acc = lor(acc, cube_product(c, base_input));
  return acc;
}

void NetlistBuilder::add_output(std::int32_t node) {
  CGS_CHECK(node >= 0 && node < static_cast<std::int32_t>(nl_.nodes_.size()));
  nl_.outputs_.push_back(node);
}

Netlist NetlistBuilder::take() {
  memo_.clear();
  return std::move(nl_);
}

}  // namespace cgs::bf
