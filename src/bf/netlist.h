#pragma once
// Straight-line netlist of bitwise word operations — the runtime form of the
// synthesized Boolean functions. Evaluating it on uint64 words *is* the
// paper's bit-sliced SIMD execution: lane i of every word belongs to sample
// i of the batch. Straight-line + branch-free == constant time by
// construction; the dudect harness confirms it empirically.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bf/cube.h"
#include "common/check.h"

namespace cgs::bf {

enum class Op : std::uint8_t { kConst0, kConst1, kInput, kNot, kAnd, kOr, kXor };

struct Node {
  Op op;
  std::int32_t a = -1;  // operand node id (or input index for kInput)
  std::int32_t b = -1;
};

class Netlist {
 public:
  /// Rebuild a netlist from serialized parts (src/serial). Validates the
  /// straight-line invariants — operands refer to strictly earlier nodes,
  /// input indices are in range, outputs name existing nodes — and throws
  /// cgs::Error on any violation, so a hostile or corrupted file can never
  /// produce an out-of-bounds eval.
  static Netlist from_parts(int num_inputs, std::vector<Node> nodes,
                            std::vector<std::int32_t> outputs);

  int num_inputs() const { return num_inputs_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::int32_t>& outputs() const { return outputs_; }

  /// Bitwise-op counts by kind (Table-2 style cost reporting).
  std::size_t op_count() const;
  std::string stats() const;

  /// Evaluate 64 lanes at once. `inputs.size() == num_inputs()`,
  /// `outputs.size() == outputs().size()`.
  void eval(std::span<const std::uint64_t> inputs,
            std::span<std::uint64_t> outputs) const;

  /// Generic-width evaluation: T is any type with ~ & | ^ (e.g. a GCC
  /// vector extension for 256-wide batches). Caller provides scratch of
  /// nodes().size() elements to keep this allocation-free.
  template <typename T>
  void eval_wide(const T* inputs, T* outputs, T* scratch) const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      switch (n.op) {
        case Op::kConst0: scratch[i] = T{} ^ T{}; break;
        case Op::kConst1: scratch[i] = ~(T{} ^ T{}); break;
        case Op::kInput:  scratch[i] = inputs[static_cast<std::size_t>(n.a)]; break;
        case Op::kNot:    scratch[i] = ~scratch[n.a]; break;
        case Op::kAnd:    scratch[i] = scratch[n.a] & scratch[n.b]; break;
        case Op::kOr:     scratch[i] = scratch[n.a] | scratch[n.b]; break;
        case Op::kXor:    scratch[i] = scratch[n.a] ^ scratch[n.b]; break;
      }
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o)
      outputs[o] = scratch[outputs_[o]];
  }

  /// Single-lane convenience (bits as 0/1).
  std::vector<int> eval_bits(const std::vector<int>& input_bits) const;

 private:
  friend class NetlistBuilder;
  int num_inputs_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> outputs_;
  mutable std::vector<std::uint64_t> scratch_;  // reused eval buffer
};

/// Builds netlists with structural hashing (CSE): identical (op, a, b)
/// triples return the same node, so shared prefixes (the c_kappa chain) and
/// shared product terms across output bits cost nothing extra. Constant
/// folding and operand canonicalization keep the node count honest.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(int num_inputs, bool enable_cse = true);

  std::int32_t const0();
  std::int32_t const1();
  std::int32_t input(int i);
  std::int32_t land(std::int32_t a, std::int32_t b);
  std::int32_t lor(std::int32_t a, std::int32_t b);
  std::int32_t lxor(std::int32_t a, std::int32_t b);
  std::int32_t lnot(std::int32_t a);

  /// AND of the cube's literals over inputs [base_input, base_input+nv).
  std::int32_t cube_product(const Cube& c, int base_input);

  /// OR of cube products (an SOP cover). Empty cover == const 0;
  /// all-don't-care cube == const 1.
  std::int32_t sop(const std::vector<Cube>& cover, int base_input);

  void add_output(std::int32_t node);

  /// Finalize. The builder is left empty.
  Netlist take();

 private:
  std::int32_t emit(Op op, std::int32_t a, std::int32_t b);

  Netlist nl_;
  bool cse_;
  std::unordered_map<std::uint64_t, std::int32_t> memo_;
};

}  // namespace cgs::bf
