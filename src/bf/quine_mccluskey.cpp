#include "bf/quine_mccluskey.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace cgs::bf {

namespace {

struct CubeHash {
  std::size_t operator()(const Cube& c) const { return c.hash(); }
};

using CubeSet = std::unordered_set<Cube, CubeHash>;

}  // namespace

std::vector<Cube> prime_implicants(const TruthTable& tt) {
  const int nv = tt.num_vars();
  CubeSet current;
  for (std::uint64_t m = 0; m < tt.size(); ++m) {
    if (tt.state(m) != TruthTable::State::kOff)
      current.insert(nv == 0 ? Cube(0) : Cube::minterm(m, nv));
  }
  std::vector<Cube> primes;
  while (!current.empty()) {
    CubeSet next;
    std::vector<const Cube*> merged(current.size(), nullptr);
    std::vector<Cube> cubes(current.begin(), current.end());
    std::vector<bool> was_merged(cubes.size(), false);
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        if (auto m = cubes[i].merge_adjacent(cubes[j])) {
          next.insert(*m);
          was_merged[i] = was_merged[j] = true;
        }
      }
    }
    for (std::size_t i = 0; i < cubes.size(); ++i)
      if (!was_merged[i]) primes.push_back(cubes[i]);
    current = std::move(next);
  }
  return primes;
}

namespace {

struct CoverSearch {
  const std::vector<Cube>* primes;
  const std::vector<std::vector<int>>* covers_of;  // per ON minterm: prime ids
  std::size_t budget;
  std::size_t visited = 0;
  std::vector<int> best;       // prime ids of best cover
  long best_cost = -1;         // cubes * 1000 + literals
  std::vector<int> chosen;

  long cost_of(const std::vector<int>& ids) const {
    long lits = 0;
    for (int id : ids) lits += (*primes)[std::size_t(id)].literal_count();
    return static_cast<long>(ids.size()) * 1000 + lits;
  }

  void search(std::vector<std::uint8_t>& covered, std::size_t uncovered) {
    if (visited++ > budget) return;
    if (best_cost >= 0 && cost_of(chosen) >= best_cost) return;  // prune
    if (uncovered == 0) {
      const long c = cost_of(chosen);
      if (best_cost < 0 || c < best_cost) {
        best_cost = c;
        best = chosen;
      }
      return;
    }
    // Pick the uncovered minterm with the fewest candidate primes.
    int pick = -1;
    std::size_t fewest = ~std::size_t(0);
    for (std::size_t m = 0; m < covered.size(); ++m) {
      if (covered[m]) continue;
      const std::size_t k = (*covers_of)[m].size();
      if (k < fewest) {
        fewest = k;
        pick = static_cast<int>(m);
      }
    }
    CGS_CHECK_MSG(fewest > 0, "ON minterm covered by no prime implicant");
    for (int id : (*covers_of)[std::size_t(pick)]) {
      // Apply prime `id`.
      std::vector<std::size_t> newly;
      for (std::size_t m = 0; m < covered.size(); ++m) {
        if (!covered[m] && (*covers_of)[m].end() !=
                               std::find((*covers_of)[m].begin(),
                                         (*covers_of)[m].end(), id)) {
          covered[m] = 1;
          newly.push_back(m);
        }
      }
      chosen.push_back(id);
      search(covered, uncovered - newly.size());
      chosen.pop_back();
      for (std::size_t m : newly) covered[m] = 0;
    }
  }
};

}  // namespace

MinimizeResult minimize_exact(const TruthTable& tt, std::size_t node_budget) {
  MinimizeResult res;
  const std::vector<std::uint64_t> on = tt.on_set();
  if (on.empty()) return res;  // empty cover == constant 0

  std::vector<Cube> primes = prime_implicants(tt);
  // covers_of[k] = indices of primes covering ON minterm k.
  std::vector<std::vector<int>> covers_of(on.size());
  for (std::size_t k = 0; k < on.size(); ++k) {
    for (std::size_t p = 0; p < primes.size(); ++p)
      if (primes[p].covers_minterm(on[k]))
        covers_of[k].push_back(static_cast<int>(p));
  }

  // Essential primes first: minterms with exactly one candidate.
  std::vector<std::uint8_t> covered(on.size(), 0);
  std::vector<int> essential;
  for (std::size_t k = 0; k < on.size(); ++k) {
    if (covers_of[k].size() == 1) {
      const int id = covers_of[k][0];
      if (std::find(essential.begin(), essential.end(), id) == essential.end())
        essential.push_back(id);
    }
  }
  std::size_t uncovered = on.size();
  for (int id : essential) {
    for (std::size_t k = 0; k < on.size(); ++k) {
      if (!covered[k] && primes[std::size_t(id)].covers_minterm(on[k])) {
        covered[k] = 1;
        --uncovered;
      }
    }
  }

  CoverSearch s;
  s.primes = &primes;
  s.covers_of = &covers_of;
  s.budget = node_budget;
  s.search(covered, uncovered);

  res.exact = s.visited <= node_budget;
  std::vector<int> ids = essential;
  if (s.best_cost >= 0) {
    ids.insert(ids.end(), s.best.begin(), s.best.end());
  } else if (uncovered > 0) {
    // Budget exhausted before any full cover: greedy fallback.
    res.exact = false;
    while (uncovered > 0) {
      int best_id = -1;
      std::size_t best_gain = 0;
      for (std::size_t p = 0; p < primes.size(); ++p) {
        std::size_t gain = 0;
        for (std::size_t k = 0; k < on.size(); ++k)
          if (!covered[k] && primes[p].covers_minterm(on[k])) ++gain;
        if (gain > best_gain) {
          best_gain = gain;
          best_id = static_cast<int>(p);
        }
      }
      CGS_CHECK(best_id >= 0);
      ids.push_back(best_id);
      for (std::size_t k = 0; k < on.size(); ++k)
        if (!covered[k] && primes[std::size_t(best_id)].covers_minterm(on[k])) {
          covered[k] = 1;
          --uncovered;
        }
    }
  }

  for (int id : ids) res.cover.push_back(primes[std::size_t(id)]);
  CGS_CHECK_MSG(tt.cover_matches(res.cover), "QM produced an invalid cover");
  return res;
}

}  // namespace cgs::bf
