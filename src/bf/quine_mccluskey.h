#pragma once
// Exact two-level minimization: Quine–McCluskey prime-implicant generation
// followed by branch-and-bound minimum cover (Petrick-style, with pruning).
// This plays the role of `espresso -Dso -S1` in the paper: exact single-
// output minimization of the small Delta-variable sublist functions.

#include <vector>

#include "bf/cube.h"
#include "bf/truthtable.h"

namespace cgs::bf {

/// All prime implicants of the (incompletely specified) function.
std::vector<Cube> prime_implicants(const TruthTable& tt);

struct MinimizeResult {
  std::vector<Cube> cover;
  bool exact = true;  // false if branch-and-bound hit its node budget
};

/// Minimum-cube (ties: minimum-literal) SOP cover of ON using DC freely.
/// `node_budget` bounds the search; on exhaustion the best cover found so
/// far is returned with exact=false (still a *correct* cover).
MinimizeResult minimize_exact(const TruthTable& tt,
                              std::size_t node_budget = 200000);

}  // namespace cgs::bf
