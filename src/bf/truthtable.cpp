#include "bf/truthtable.h"

namespace cgs::bf {

void TruthTable::set_block(std::uint64_t m, int span, State s) {
  CGS_CHECK(span >= 0 && span <= nv_);
  const std::uint64_t count = std::uint64_t(1) << span;
  CGS_CHECK(m + count <= size());
  for (std::uint64_t i = 0; i < count; ++i) {
    State& cur = states_[m + i];
    if (cur == State::kDc) {
      cur = s;
    } else {
      CGS_CHECK_MSG(cur == s,
                    "conflicting ON/OFF assignment — overlapping leaves?");
    }
  }
}

bool TruthTable::eval_cover(const std::vector<Cube>& cover, std::uint64_t m) {
  for (const Cube& c : cover)
    if (c.covers_minterm(m)) return true;
  return false;
}

bool TruthTable::cover_matches(const std::vector<Cube>& cover) const {
  for (std::uint64_t m = 0; m < size(); ++m) {
    const State s = states_[m];
    if (s == State::kDc) continue;
    const bool v = eval_cover(cover, m);
    if (v != (s == State::kOn)) return false;
  }
  return true;
}

}  // namespace cgs::bf
