#pragma once
// Incompletely specified single-output Boolean functions over a small number
// of variables (<= 20): explicit ON / OFF / DC minterm sets. This is the
// input language of the minimizers; the sublist functions f^{iota,kappa}_D
// of the paper are instances with Delta variables.

#include <cstdint>
#include <vector>

#include "bf/cube.h"
#include "common/check.h"

namespace cgs::bf {

class TruthTable {
 public:
  enum class State : std::uint8_t { kOff = 0, kOn = 1, kDc = 2 };

  explicit TruthTable(int nv) : nv_(nv), states_(std::size_t(1) << nv, State::kDc) {
    CGS_CHECK(nv >= 0 && nv <= 20);
  }

  int num_vars() const { return nv_; }
  std::uint64_t size() const { return std::uint64_t(1) << nv_; }

  State state(std::uint64_t m) const { return states_[m]; }
  void set(std::uint64_t m, State s) { states_[m] = s; }

  /// Marks [m, m + 2^span) — the minterm block of a cube with `span`
  /// trailing don't-care variables. Throws if it would flip ON<->OFF.
  void set_block(std::uint64_t m, int span, State s);

  std::vector<std::uint64_t> on_set() const { return collect(State::kOn); }
  std::vector<std::uint64_t> dc_set() const { return collect(State::kDc); }
  std::vector<std::uint64_t> off_set() const { return collect(State::kOff); }

  /// Does the cover (OR of cubes) equal this function on ON and OFF sets?
  /// (DC minterms may fall either way.)
  bool cover_matches(const std::vector<Cube>& cover) const;

  /// Evaluate a cover at a minterm.
  static bool eval_cover(const std::vector<Cube>& cover, std::uint64_t m);

 private:
  std::vector<std::uint64_t> collect(State s) const {
    std::vector<std::uint64_t> r;
    for (std::uint64_t m = 0; m < size(); ++m)
      if (states_[m] == s) r.push_back(m);
    return r;
  }

  int nv_;
  std::vector<State> states_;
};

}  // namespace cgs::bf
