#include "bigint/bigint.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace cgs::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  const u64 mag = negative_ ? (~static_cast<u64>(v) + 1) : static_cast<u64>(v);
  limbs_.push_back(mag);
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return static_cast<int>(64 * (limbs_.size() - 1)) +
         std::bit_width(limbs_.back());
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

int BigInt::compare_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;)
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  return 0;
}

int BigInt::compare(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_ ? -1 : 1;
  const int m = compare_mag(*this, o);
  return negative_ ? -m : m;
}

BigInt BigInt::add_mag(const BigInt& a, const BigInt& b, bool negative) {
  BigInt r;
  r.negative_ = negative;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    r.limbs_[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  if (carry) r.limbs_.push_back(static_cast<u64>(carry));
  r.trim();
  return r;
}

BigInt BigInt::sub_mag(const BigInt& a, const BigInt& b) {
  CGS_DCHECK(compare_mag(a, b) >= 0);
  BigInt r;
  r.limbs_.resize(a.limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const u64 bv = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const u64 av = a.limbs_[i];
    r.limbs_[i] = av - bv - borrow;
    borrow = (static_cast<u128>(bv) + borrow > av) ? 1 : 0;
  }
  r.trim();
  return r;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) return add_mag(*this, o, negative_);
  const int m = compare_mag(*this, o);
  if (m == 0) return BigInt();
  if (m > 0) {
    BigInt r = sub_mag(*this, o);
    r.negative_ = negative_;
    r.trim();
    return r;
  }
  BigInt r = sub_mag(o, *this);
  r.negative_ = o.negative_;
  r.trim();
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt r;
  r.negative_ = negative_ != o.negative_;
  r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    if (limbs_[i] == 0) continue;
    u128 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur =
          static_cast<u128>(limbs_[i]) * o.limbs_[j] + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const u128 cur = static_cast<u128>(r.limbs_[k]) + carry;
      r.limbs_[k] = static_cast<u64>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  r.trim();
  return r;
}

BigInt BigInt::shifted_left(int bits) const {
  CGS_CHECK(bits >= 0);
  if (is_zero() || bits == 0) return *this;
  const int limb_shift = bits / 64;
  const int bit_shift = bits % 64;
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() + static_cast<std::size_t>(limb_shift) + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::size_t k = i + static_cast<std::size_t>(limb_shift);
    r.limbs_[k] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) r.limbs_[k + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  r.trim();
  return r;
}

BigInt BigInt::shifted_right(int bits) const {
  CGS_CHECK(bits >= 0);
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = static_cast<std::size_t>(bits) / 64;
  const int bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    const std::size_t k = i + limb_shift;
    r.limbs_[i] = bit_shift ? (limbs_[k] >> bit_shift) : limbs_[k];
    if (bit_shift && k + 1 < limbs_.size())
      r.limbs_[i] |= limbs_[k + 1] << (64 - bit_shift);
  }
  r.trim();
  return r;
}

double BigInt::to_double_scaled(int& exponent) const {
  if (is_zero()) {
    exponent = 0;
    return 0.0;
  }
  const int bl = bit_length();
  const int drop = std::max(0, bl - 53);
  const BigInt top = abs().shifted_right(drop);
  double m = 0.0;
  for (std::size_t i = top.limbs_.size(); i-- > 0;)
    m = m * 18446744073709551616.0 + static_cast<double>(top.limbs_[i]);
  exponent = drop + 53;
  m = std::ldexp(m, -53);  // into [0.5, 1)
  return negative_ ? -m : m;
}

std::int64_t BigInt::to_int64() const {
  if (is_zero()) return 0;
  CGS_CHECK_MSG(limbs_.size() == 1 && limbs_[0] <= (1ull << 63),
                "BigInt does not fit int64");
  const u64 mag = limbs_[0];
  if (negative_) return -static_cast<std::int64_t>(mag - 1) - 1;
  CGS_CHECK(mag < (1ull << 63));
  return static_cast<std::int64_t>(mag);
}

std::string BigInt::to_string_hex() const {
  if (is_zero()) return "0";
  std::string s = negative_ ? "-0x" : "0x";
  char buf[17];
  std::snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(limbs_.back()));
  s += buf;
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(limbs_[i]));
    s += buf;
  }
  return s;
}

BigInt BigInt::xgcd(const BigInt& a_in, const BigInt& b_in, BigInt& u_out,
                    BigInt& v_out) {
  // Binary extended GCD (HAC 14.61). Cofactors for the original signed
  // inputs are fixed up at the end.
  BigInt x = a_in.abs(), y = b_in.abs();
  if (x.is_zero()) {
    u_out = BigInt(0);
    v_out = BigInt(b_in.is_negative() ? -1 : 1);
    return y;
  }
  if (y.is_zero()) {
    u_out = BigInt(a_in.is_negative() ? -1 : 1);
    v_out = BigInt(0);
    return x;
  }
  int shift = 0;
  while (!x.is_odd() && !y.is_odd()) {
    x = x.shifted_right(1);
    y = y.shifted_right(1);
    ++shift;
  }
  const BigInt g = x, h = y;
  BigInt u = x, v = y;
  BigInt A(1), B(0), C(0), D(1);
  while (!u.is_zero()) {
    while (!u.is_odd()) {
      u = u.shifted_right(1);
      if (A.is_odd() || B.is_odd()) {
        A = A + h;
        B = B - g;
      }
      A = A.shifted_right(1);
      B = B.shifted_right(1);
    }
    while (!v.is_odd()) {
      v = v.shifted_right(1);
      if (C.is_odd() || D.is_odd()) {
        C = C + h;
        D = D - g;
      }
      C = C.shifted_right(1);
      D = D.shifted_right(1);
    }
    // Ties must reduce u (u -> 0 ends the loop); reducing v on a tie would
    // zero v and the halving loop above would spin on an even 0 forever.
    if (!(u < v)) {
      u = u - v;
      A = A - C;
      B = B - D;
    } else {
      v = v - u;
      C = C - A;
      D = D - B;
    }
  }
  const BigInt gcd = v.shifted_left(shift);
  u_out = a_in.is_negative() ? -C : C;
  v_out = b_in.is_negative() ? -D : D;
  return gcd;
}

}  // namespace cgs::bigint
