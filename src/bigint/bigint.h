#pragma once
// Signed arbitrary-precision integers, sized for NTRUSolve: resultants of
// degree-1024 NTRU polynomials run to a few thousand bits, and the solver
// needs exact add/sub/mul, bit shifts, binary XGCD, and top-53-bit doubles
// for the Babai reduction. Division is deliberately absent — nothing in the
// solver needs it (XGCD is the binary variant).

#include <cstdint>
#include <string>
#include <vector>

namespace cgs::bigint {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  /// Bits in the magnitude (0 for zero).
  int bit_length() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }

  BigInt shifted_left(int bits) const;
  BigInt shifted_right(int bits) const;  // arithmetic toward zero on magnitude

  /// Sign-aware comparison: <0, 0, >0.
  int compare(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }

  /// Approximate value as m * 2^e with m in [0.5, 1) (sign applied to m).
  /// Exact for magnitudes <= 53 bits.
  double to_double_scaled(int& exponent) const;

  /// Exact conversion when |*this| < 2^63; throws otherwise.
  std::int64_t to_int64() const;

  std::string to_string_hex() const;

  /// Extended GCD: returns g = gcd(|a|, |b|) with u*a + v*b = g.
  /// (Binary XGCD; no division required.)
  static BigInt xgcd(const BigInt& a, const BigInt& b, BigInt& u, BigInt& v);

 private:
  static BigInt add_mag(const BigInt& a, const BigInt& b, bool negative);
  static BigInt sub_mag(const BigInt& a, const BigInt& b);  // |a| >= |b|
  static int compare_mag(const BigInt& a, const BigInt& b);
  void trim();

  bool negative_ = false;
  std::vector<std::uint64_t> limbs_;  // little endian, no trailing zeros
};

}  // namespace cgs::bigint
