#include "cdt/cdt_samplers.h"

namespace cgs::cdt {

std::uint32_t CdtBinarySearchSampler::sample_magnitude(RandomBitSource& rng) {
  for (;;) {
    const U128 r = detail::draw_u128(rng);
    // Smallest v with r < cum(v): classic lower-bound search.
    std::size_t lo = 0, hi = t_->size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (r < t_->cum(mid))
        hi = mid;
      else
        lo = mid + 1;
    }
    if (lo < t_->size()) return static_cast<std::uint32_t>(lo);
    // r landed in the truncation deficit: restart (probability ~ 2^-115).
  }
}

std::uint32_t CdtByteScanSampler::sample_magnitude(RandomBitSource& rng) {
  for (;;) {
    const U128 r = detail::draw_u128(rng);
    std::uint8_t rb[16];
    for (int k = 0; k < 8; ++k) {
      rb[k] = static_cast<std::uint8_t>(r.hi >> (56 - 8 * k));
      rb[8 + k] = static_cast<std::uint8_t>(r.lo >> (56 - 8 * k));
    }
    // Skip rows ruled out by the first byte, then byte-wise compares with
    // early exit — almost always decided by byte 0 or 1.
    for (std::size_t v = t_->first_row_for_byte(rb[0]); v < t_->size(); ++v) {
      for (int k = 0; k < 16; ++k) {
        const std::uint8_t cb = t_->byte(v, k);
        if (rb[k] < cb) return static_cast<std::uint32_t>(v);
        if (rb[k] > cb) break;  // r > cum(v) at this byte: next row
        // equal: look at the next byte
      }
    }
  }
}

std::uint32_t CdtLinearCtSampler::sample_magnitude(RandomBitSource& rng) {
  for (;;) {
    const U128 r = detail::draw_u128(rng);
    // v = number of rows with cum(v) <= r, accumulated branch-free over the
    // whole table regardless of where the answer lies.
    std::uint64_t ge_count = 0;
    for (std::size_t v = 0; v < t_->size(); ++v)
      ge_count += 1u - U128::lt_ct(r, t_->cum(v));
    if (ge_count < t_->size()) return static_cast<std::uint32_t>(ge_count);
  }
}

}  // namespace cgs::cdt
