#pragma once
// The three CDT samplers Table 1 compares against, all over the shared
// 128-bit CdtTable:
//  - CdtBinarySearchSampler: Peikert-style inversion sampling with binary
//    search. Fast, variable time (search path depends on the secret draw).
//  - CdtByteScanSampler: Du-Bai byte-scanning — first-byte skip table plus
//    byte-wise early-exit compares. The fastest non-constant-time entry.
//  - CdtLinearCtSampler: Bos et al. linear scan touching every row with
//    branch-free 128-bit compares. Constant time, slowest.

#include "cdt/cdt_table.h"
#include "common/sampler.h"

namespace cgs::cdt {

namespace detail {
inline U128 draw_u128(RandomBitSource& rng) {
  // hi = first 64 random bits (fraction bits 1..64).
  U128 r;
  r.hi = rng.next_word();
  r.lo = rng.next_word();
  return r;
}
inline std::int32_t apply_sign(std::uint32_t mag, RandomBitSource& rng) {
  const std::int32_t s = -static_cast<std::int32_t>(rng.next_word() & 1u);
  return (static_cast<std::int32_t>(mag) ^ s) - s;
}
}  // namespace detail

class CdtBinarySearchSampler final : public IntSampler {
 public:
  explicit CdtBinarySearchSampler(const CdtTable& table) : t_(&table) {}
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  std::int32_t sample(RandomBitSource& rng) override {
    return detail::apply_sign(sample_magnitude(rng), rng);
  }
  const char* name() const override { return "cdt-binary-search"; }
  bool constant_time() const override { return false; }

 private:
  const CdtTable* t_;
};

class CdtByteScanSampler final : public IntSampler {
 public:
  explicit CdtByteScanSampler(const CdtTable& table) : t_(&table) {}
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  std::int32_t sample(RandomBitSource& rng) override {
    return detail::apply_sign(sample_magnitude(rng), rng);
  }
  const char* name() const override { return "cdt-byte-scan"; }
  bool constant_time() const override { return false; }

 private:
  const CdtTable* t_;
};

class CdtLinearCtSampler final : public IntSampler {
 public:
  explicit CdtLinearCtSampler(const CdtTable& table) : t_(&table) {}
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  std::int32_t sample(RandomBitSource& rng) override {
    return detail::apply_sign(sample_magnitude(rng), rng);
  }
  const char* name() const override { return "cdt-linear-ct"; }
  bool constant_time() const override { return true; }

 private:
  const CdtTable* t_;
};

}  // namespace cgs::cdt
