#include "cdt/cdt_table.h"

#include "common/check.h"
#include "fp/bigfix.h"

namespace cgs::cdt {

CdtTable::CdtTable(const gauss::ProbMatrix& m) : matrix_(&m) {
  CGS_CHECK_MSG(m.precision() <= 128, "CDT stores 128 fraction bits");
  fp::BigFix acc(fp::BigFix::kDefaultFracLimbs);
  cum_.reserve(m.rows());
  bytes_.reserve(m.rows());
  for (std::size_t v = 0; v < m.rows(); ++v) {
    acc = acc.add(m.probability(v));
    U128 c;
    for (int i = 1; i <= 128; ++i) {
      const int bit = (i <= m.precision()) ? acc.frac_bit(i) : 0;
      if (i <= 64)
        c.hi |= static_cast<std::uint64_t>(bit) << (64 - i);
      else
        c.lo |= static_cast<std::uint64_t>(bit) << (128 - i);
    }
    // A cumulative sum that reaches exactly 1.0 would need an integer bit;
    // the truncation deficit guarantees acc < 1 so 128 fraction bits suffice.
    CGS_CHECK(acc.int_part() == 0);
    cum_.push_back(c);
    std::array<std::uint8_t, 16> by{};
    for (int k = 0; k < 8; ++k) {
      by[static_cast<std::size_t>(k)] =
          static_cast<std::uint8_t>(c.hi >> (56 - 8 * k));
      by[static_cast<std::size_t>(8 + k)] =
          static_cast<std::uint8_t>(c.lo >> (56 - 8 * k));
    }
    bytes_.push_back(by);
  }

  // first_row_[b]: smallest v whose cum first byte is >= b. Rows before it
  // can never satisfy r < cum(v) when r's first byte is b.
  std::size_t v = 0;
  for (int b = 0; b < 256; ++b) {
    while (v < cum_.size() &&
           bytes_[v][0] < static_cast<std::uint8_t>(b))
      ++v;
    first_row_[static_cast<std::size_t>(b)] = v;
  }
}

std::size_t CdtTable::lookup_linear_reference(const U128& r) const {
  for (std::size_t v = 0; v < cum_.size(); ++v)
    if (r < cum_[v]) return v;
  return cum_.size();
}

}  // namespace cgs::cdt
