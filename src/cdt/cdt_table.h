#pragma once
// Cumulative distribution table at 128-bit precision, shared by the three
// CDT samplers of Table 1 (binary search [26], byte-scanning [13], linear
// constant-time scan [7]). Built from the same truncated probability matrix
// as the Knuth-Yao samplers so all samplers target the identical
// distribution.

#include <array>
#include <cstdint>
#include <vector>

#include "gauss/probmatrix.h"

namespace cgs::cdt {

/// 128 fraction bits as (hi, lo): hi holds bits 1..64 (bit 1 = weight 1/2).
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator<(const U128& a, const U128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend bool operator==(const U128& a, const U128& b) = default;

  /// Constant-time "a < b" returning all-ones / all-zeros avoidance: plain
  /// 0/1 without data-dependent branches.
  static std::uint64_t lt_ct(const U128& a, const U128& b) {
    // borrow of (a - b): 1 iff a < b, computed branch-free.
    const std::uint64_t lo_borrow = (a.lo < b.lo) ? 1u : 0u;  // cmov, no branch
    const unsigned __int128 ahi = a.hi;
    const unsigned __int128 sub = ahi - b.hi - lo_borrow;
    return static_cast<std::uint64_t>(sub >> 127);
  }
};

class CdtTable {
 public:
  explicit CdtTable(const gauss::ProbMatrix& matrix);

  const gauss::ProbMatrix& matrix() const { return *matrix_; }
  std::size_t size() const { return cum_.size(); }

  /// Cumulative probability of magnitudes <= v.
  const U128& cum(std::size_t v) const { return cum_[v]; }

  /// Big-endian byte k (0 = most significant) of cum(v).
  std::uint8_t byte(std::size_t v, int k) const {
    return bytes_[v][static_cast<std::size_t>(k)];
  }

  /// Smallest v with r < cum(v), or size() if none (restart region).
  std::size_t lookup_linear_reference(const U128& r) const;

  /// Range of candidate rows whose answer cannot be decided by the first
  /// byte of r alone: [first_ge[b], first_gt[b]) style index. Used by the
  /// byte-scanning sampler's first-byte skip table.
  std::size_t first_row_for_byte(std::uint8_t b) const {
    return first_row_[b];
  }

 private:
  const gauss::ProbMatrix* matrix_;
  std::vector<U128> cum_;
  std::vector<std::array<std::uint8_t, 16>> bytes_;
  std::array<std::size_t, 256> first_row_{};
};

}  // namespace cgs::cdt
