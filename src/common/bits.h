#pragma once
// Small bit-manipulation helpers shared across modules.

#include <bit>
#include <cstdint>

namespace cgs {

/// Number of bits needed to represent v (bit_width), with bit_width(0) == 1
/// so that even a zero-valued sample occupies one output bit.
constexpr int sample_bit_width(std::uint64_t v) {
  return v == 0 ? 1 : std::bit_width(v);
}

/// Extract bit `i` (0 = LSB) of `v`.
constexpr int bit_at(std::uint64_t v, int i) {
  return static_cast<int>((v >> i) & 1u);
}

/// Count of leading one-bits of `v` when viewed as a `width`-bit string,
/// MSB first. Example: v=0b1101, width=4 -> 2.
constexpr int leading_ones(std::uint64_t v, int width) {
  int k = 0;
  for (int i = width - 1; i >= 0; --i) {
    if (((v >> i) & 1u) == 0) break;
    ++k;
  }
  return k;
}

/// Parity-safe 64-bit rotation (used by PRNG cores).
constexpr std::uint64_t rotl64(std::uint64_t x, int r) {
  return std::rotl(x, r);
}
constexpr std::uint32_t rotl32(std::uint32_t x, int r) {
  return std::rotl(x, r);
}

}  // namespace cgs
