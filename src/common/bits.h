#pragma once
// Small bit-manipulation helpers shared across modules.

#include <bit>
#include <cstdint>

namespace cgs {

/// Number of bits needed to represent v (bit_width), with bit_width(0) == 1
/// so that even a zero-valued sample occupies one output bit.
constexpr int sample_bit_width(std::uint64_t v) {
  return v == 0 ? 1 : std::bit_width(v);
}

/// Extract bit `i` (0 = LSB) of `v`.
constexpr int bit_at(std::uint64_t v, int i) {
  return static_cast<int>((v >> i) & 1u);
}

/// Count of leading one-bits of `v` when viewed as a `width`-bit string,
/// MSB first. Example: v=0b1101, width=4 -> 2.
constexpr int leading_ones(std::uint64_t v, int width) {
  int k = 0;
  for (int i = width - 1; i >= 0; --i) {
    if (((v >> i) & 1u) == 0) break;
    ++k;
  }
  return k;
}

/// Parity-safe 64-bit rotation (used by PRNG cores).
constexpr std::uint64_t rotl64(std::uint64_t x, int r) {
  return std::rotl(x, r);
}
constexpr std::uint32_t rotl32(std::uint32_t x, int r) {
  return std::rotl(x, r);
}

/// Branch-free x < y over uint64: the borrow bit of x - y (Hacker's Delight
/// §2-13). Used for constant-time Bernoulli draws (compare a uniform word
/// against a fixed threshold without a data-dependent branch).
constexpr std::uint64_t ct_lt_u64(std::uint64_t x, std::uint64_t y) {
  return ((~x & y) | ((~x | y) & (x - y))) >> 63;
}

/// Branch-free |x| for int32 (two's complement mask trick). INT32_MIN maps
/// to itself, as with std::abs — callers keep samples far from that edge.
constexpr std::uint32_t ct_abs_i32(std::int32_t x) {
  const std::int32_t mask = x >> 31;
  return static_cast<std::uint32_t>((x ^ mask) - mask);
}

}  // namespace cgs
