#pragma once
// BlockSource: the pull-based block supply behind the batch-first online
// path. The bit-sliced samplers produce 64+ samples per netlist pass, so
// consumers that pull one scalar at a time (Falcon's SamplerZ before this
// refactor) waste exactly the amortization the paper measures. A
// BlockSource instead hands out base Gaussian samples and uniform random
// words an engine-sized block at a time; consumers drain a prefetched ring
// and refill it with one virtual call per block instead of one per sample.
//
// preferred_block() lets each producer advertise its natural granularity:
// scalar shims say 1 (so legacy CDT baselines stay genuinely scalar — no
// hidden prefetch, no discarded randomness), batch producers say a
// multiple of their lane count.

#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/randombits.h"
#include "common/sampler.h"

namespace cgs {

class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// Fill `out` with signed samples from the base discrete Gaussian.
  virtual void fill_base(std::span<std::int32_t> out) = 0;

  /// Fill `out` with uniform 64-bit words (rejection uniforms, nonces).
  virtual void fill_words(std::span<std::uint64_t> out) = 0;

  /// The refill size consumers should buffer at (>= 1). Pulling smaller
  /// spans is allowed but forfeits amortization.
  virtual std::size_t preferred_block() const = 0;

  /// Human-readable name for benches/tables.
  virtual const char* name() const = 0;

  /// Whether the base-sample producer is constant-time by construction.
  virtual bool constant_time() const = 0;
};

/// Legacy shim: adapts a scalar IntSampler + RandomBitSource pair to the
/// block interface, one virtual call per element — the plug-in point for
/// Table 1's CDT variants, which have no batch form. The bit source is
/// rebindable because legacy call sites (Signer::sign(msg, rng)) hand a
/// fresh rng per call; preferred_block() == 1 keeps draw order identical
/// to the historical scalar loop.
class ScalarBlockSource final : public BlockSource {
 public:
  explicit ScalarBlockSource(IntSampler& base, RandomBitSource* rng = nullptr)
      : base_(&base), rng_(rng) {}

  void bind(RandomBitSource& rng) { rng_ = &rng; }

  void fill_base(std::span<std::int32_t> out) override {
    CGS_CHECK_MSG(rng_ != nullptr, "ScalarBlockSource has no bound rng");
    for (auto& v : out) v = base_->sample(*rng_);
  }
  void fill_words(std::span<std::uint64_t> out) override {
    CGS_CHECK_MSG(rng_ != nullptr, "ScalarBlockSource has no bound rng");
    rng_->fill_words(out);
  }
  std::size_t preferred_block() const override { return 1; }
  const char* name() const override { return base_->name(); }
  bool constant_time() const override { return base_->constant_time(); }

 private:
  IntSampler* base_;
  RandomBitSource* rng_;
};

}  // namespace cgs
