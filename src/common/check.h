#pragma once
// Lightweight precondition / invariant checking used across the library.
//
// CGS_CHECK is always on (library-level API misuse should never be silent);
// CGS_DCHECK compiles out in release builds and guards hot inner loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace cgs {

/// Thrown on violated preconditions or internal invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CGS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cgs

#define CGS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::cgs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CGS_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream cgs_os_;                                    \
      cgs_os_ << msg;                                                \
      ::cgs::detail::check_failed(#expr, __FILE__, __LINE__, cgs_os_.str()); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define CGS_DCHECK(expr) ((void)0)
#else
#define CGS_DCHECK(expr) CGS_CHECK(expr)
#endif
