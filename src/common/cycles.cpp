#include "common/cycles.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CGS_HAVE_RDTSC 1
#endif

namespace cgs {

std::uint64_t cycles_begin() {
#ifdef CGS_HAVE_RDTSC
  unsigned aux = 0;
  _mm_lfence();
  std::uint64_t t = __rdtscp(&aux);
  _mm_lfence();
  return t;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

std::uint64_t cycles_end() {
#ifdef CGS_HAVE_RDTSC
  unsigned aux = 0;
  _mm_lfence();
  std::uint64_t t = __rdtscp(&aux);
  _mm_lfence();
  return t;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

double cycles_per_second() {
  static const double rate = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = cycles_begin();
    // Busy-wait ~20ms; enough for a stable estimate in benches.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(20)) {
    }
    const std::uint64_t c1 = cycles_end();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(c1 - c0) / secs;
  }();
  return rate;
}

}  // namespace cgs
