#pragma once
// Cycle counting for sampler-only measurements (Table 2) and the dudect
// leakage detector. Uses rdtsc on x86-64, a steady_clock fallback elsewhere.

#include <cstdint>

namespace cgs {

/// Serialized timestamp read (cpuid+rdtsc style fencing via intrinsics).
std::uint64_t cycles_begin();

/// Serialized timestamp read suitable for the end of a measured region.
std::uint64_t cycles_end();

/// Rough cycles-per-second estimate (calibrated once, cached).
double cycles_per_second();

}  // namespace cgs
