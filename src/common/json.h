#pragma once
// Streaming JSON emitter with automatic comma placement: begin/end nest,
// field() inside objects, item() inside arrays. Numbers round-trip
// (%.17g doubles), strings get minimal escaping. The writer trusts its
// caller to nest correctly — these are hand-assembled reports (bench
// JSONs, the obs registry's JSON exposition), not arbitrary data — but
// misnesting still produces visibly broken JSON rather than silent
// reordering. Shared by bench/bench_util.h and src/obs/export.cpp so the
// per-PR BENCH_*.json artifacts and the wire-scrapeable stats parse
// identically.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace cgs {

class JsonWriter {
 public:
  JsonWriter& begin_object(const char* key = nullptr) {
    open(key, '{');
    return *this;
  }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array(const char* key = nullptr) {
    open(key, '[');
    return *this;
  }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& field(const char* key, double v) { return kv(key, num(v)); }
  JsonWriter& field(const char* key, std::size_t v) {
    return kv(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, int v) {
    return kv(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, unsigned v) {
    return kv(key, std::to_string(v));
  }
  JsonWriter& field(const char* key, bool v) {
    return kv(key, v ? "true" : "false");
  }
  JsonWriter& field(const char* key, const char* v) {
    return kv(key, quoted(v));
  }
  JsonWriter& field(const char* key, const std::string& v) {
    return kv(key, quoted(v));
  }

  JsonWriter& item(double v) { return raw_item(num(v)); }
  JsonWriter& item(std::size_t v) { return raw_item(std::to_string(v)); }
  JsonWriter& item(int v) { return raw_item(std::to_string(v)); }
  JsonWriter& item(const char* v) { return raw_item(quoted(v)); }

  const std::string& str() const { return out_; }

  /// Write the document and report where it went; false on I/O failure.
  bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_ << "\n";
    if (!f) return false;
    std::printf("json written to %s\n", path.c_str());
    return true;
  }

 private:
  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }
  static std::string quoted(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        q += '\\';
        q += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        q += buf;
      } else {
        q += c;
      }
    }
    return q + "\"";
  }
  void comma() {
    if (!first_.empty()) {
      if (!first_.back()) out_ += ", ";
      first_.back() = false;
    }
  }
  void open(const char* key, char brace) {
    comma();
    if (key) out_ += quoted(key) + ": ";
    out_ += brace;
    first_.push_back(true);
  }
  JsonWriter& close(char brace) {
    first_.pop_back();
    out_ += brace;
    return *this;
  }
  JsonWriter& kv(const char* key, const std::string& rendered) {
    comma();
    out_ += quoted(key) + ": " + rendered;
    return *this;
  }
  JsonWriter& raw_item(const std::string& rendered) {
    comma();
    out_ += rendered;
    return *this;
  }

  std::string out_;
  std::vector<bool> first_;
};

}  // namespace cgs
