#include "common/randombits.h"

#include "common/check.h"

namespace cgs {

DeterministicBitSource::DeterministicBitSource(std::vector<int> bits)
    : bits_(std::move(bits)) {
  CGS_CHECK_MSG(!bits_.empty(), "DeterministicBitSource needs >= 1 bit");
  for (int b : bits_) CGS_CHECK(b == 0 || b == 1);
}

std::uint64_t DeterministicBitSource::next_word() {
  std::uint64_t w = 0;
  for (int i = 0; i < 64; ++i) {
    w |= static_cast<std::uint64_t>(bits_[pos_]) << i;
    pos_ = (pos_ + 1) % bits_.size();
    ++served_;
  }
  return w;
}

}  // namespace cgs
