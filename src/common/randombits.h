#pragma once
// RandomBitSource: the single abstraction every sampler draws randomness
// through. Concrete sources live in src/prng (ChaCha20, SHAKE, SplitMix64);
// tests use DeterministicBitSource to replay exact bit strings.

#include <cstdint>
#include <span>
#include <vector>

namespace cgs {

/// Interface producing uniformly random bits. Single-bit draws are buffered
/// from 64-bit words, consumed LSB-first: the i-th call to next_bit() after a
/// refill returns bit i of the buffered word.
class RandomBitSource {
 public:
  virtual ~RandomBitSource() = default;

  /// 64 fresh uniform bits.
  virtual std::uint64_t next_word() = 0;

  /// One uniform bit (buffered from next_word()).
  int next_bit() {
    if (bits_left_ == 0) {
      buffer_ = next_word();
      bits_left_ = 64;
    }
    const int b = static_cast<int>(buffer_ & 1u);
    buffer_ >>= 1;
    --bits_left_;
    return b;
  }

  /// Fill a span with fresh words (bulk path for bit-sliced batches).
  /// Overrides must produce exactly the words repeated next_word() calls
  /// would — block-refill consumers and scalar consumers share streams.
  virtual void fill_words(std::span<std::uint64_t> out) {
    for (auto& w : out) w = next_word();
  }

  /// Discard any partially consumed word so the next next_bit() starts a
  /// fresh word. Samplers call this between independent samples when exact
  /// bit accounting matters in tests.
  void flush_bit_buffer() { bits_left_ = 0; }

 private:
  std::uint64_t buffer_ = 0;
  int bits_left_ = 0;
};

/// Replays a fixed bit sequence; wraps around at the end. Tests use this to
/// drive samplers down chosen DDG-tree paths.
class DeterministicBitSource final : public RandomBitSource {
 public:
  explicit DeterministicBitSource(std::vector<int> bits);

  std::uint64_t next_word() override;

  /// Total single bits served so far (before wrap accounting).
  std::size_t bits_served() const { return served_; }

 private:
  std::vector<int> bits_;
  std::size_t pos_ = 0;
  std::size_t served_ = 0;
};

}  // namespace cgs
