#pragma once
// The plug-in point Table 1 revolves around: Falcon's signer (and anything
// else) draws base Gaussian integers through this interface, so the four
// samplers of the paper — byte-scanning CDT, binary-search CDT, linear CDT,
// and the bit-sliced constant-time sampler — are interchangeable.

#include <cstdint>

#include "common/randombits.h"

namespace cgs {

class IntSampler {
 public:
  virtual ~IntSampler() = default;

  /// Signed sample from the discrete Gaussian.
  virtual std::int32_t sample(RandomBitSource& rng) = 0;

  /// Magnitude-only sample (|X| under the folded distribution).
  virtual std::uint32_t sample_magnitude(RandomBitSource& rng) = 0;

  /// Human-readable name for benches/tables.
  virtual const char* name() const = 0;

  /// Whether the implementation is constant-time by construction.
  virtual bool constant_time() const = 0;
};

}  // namespace cgs
