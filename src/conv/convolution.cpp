#include "conv/convolution.h"

#include <cmath>

#include "common/check.h"

namespace cgs::conv {

ConvolutionSampler::ConvolutionSampler(IntSampler& base, int k)
    : base_(&base), k_(k) {
  CGS_CHECK(k >= 1);
}

std::int32_t ConvolutionSampler::sample(RandomBitSource& rng) {
  const std::int32_t x1 = base_->sample(rng);
  const std::int32_t x2 = base_->sample(rng);
  return x1 + k_ * x2;
}

std::uint32_t ConvolutionSampler::sample_magnitude(RandomBitSource& rng) {
  const std::int32_t s = sample(rng);
  return static_cast<std::uint32_t>(s < 0 ? -s : s);
}

double ConvolutionSampler::combined_sigma(double base_sigma, int k) {
  return base_sigma * std::sqrt(1.0 + static_cast<double>(k) * k);
}

int ConvolutionSampler::stride_for(double base_sigma, double target_sigma) {
  CGS_CHECK(base_sigma > 0 && target_sigma >= base_sigma);
  int k = 1;
  while (combined_sigma(base_sigma, k) < target_sigma) ++k;
  return k;
}

}  // namespace cgs::conv
