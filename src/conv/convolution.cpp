#include "conv/convolution.h"

#include <cmath>
#include <limits>

#include "common/bits.h"
#include "common/check.h"

namespace cgs::conv {

ConvolutionSampler::ConvolutionSampler(IntSampler& base, int k)
    : base_(&base), k_(k) {
  CGS_CHECK(k >= 1 && k <= max_stride());
}

std::int32_t ConvolutionSampler::sample(RandomBitSource& rng) {
  const std::int32_t x1 = base_->sample(rng);
  const std::int32_t x2 = base_->sample(rng);
  return BatchConvolver::combine_one(x1, x2, k_);
}

std::uint32_t ConvolutionSampler::sample_magnitude(RandomBitSource& rng) {
  return ct_abs_i32(sample(rng));
}

double ConvolutionSampler::combined_sigma(double base_sigma, int k) {
  return base_sigma * std::sqrt(1.0 + static_cast<double>(k) * k);
}

int ConvolutionSampler::stride_for(double base_sigma, double target_sigma) {
  CGS_CHECK(base_sigma > 0 && target_sigma >= base_sigma);
  CGS_CHECK_MSG(std::isfinite(base_sigma) && std::isfinite(target_sigma),
                "stride_for needs finite sigmas");
  // Closed form: smallest k with sigma0^2 (1 + k^2) >= target^2, then a
  // fix-up loop (<= 2 steps) absorbing the floating-point slop. The old
  // linear scan walked k one by one — quadratic pain for the large-sigma
  // targets this now serves.
  const double ratio = target_sigma / base_sigma;
  const double kd = std::sqrt(std::max(0.0, ratio * ratio - 1.0));
  CGS_CHECK_MSG(kd <= static_cast<double>(max_stride()),
                "convolution stride for target sigma="
                    << target_sigma << " over base " << base_sigma
                    << " exceeds max_stride() — sample combine would overflow");
  int k = static_cast<int>(kd);
  if (k < 1) k = 1;
  while (combined_sigma(base_sigma, k) < target_sigma) {
    CGS_CHECK_MSG(k < max_stride(), "convolution stride exceeds max_stride()");
    ++k;
  }
  return k;
}

// ---------------------------------------------------------------- batcher ---

BatchConvolver::BatchConvolver(int k, std::int32_t shift_int,
                               double shift_frac)
    : k_(k), shift_int_(shift_int), shift_frac_(shift_frac),
      threshold_(bernoulli_threshold(shift_frac)) {
  CGS_CHECK(k >= 1 && k <= ConvolutionSampler::max_stride());
  CGS_CHECK_MSG(shift_frac >= 0.0 && shift_frac < 1.0,
                "fractional shift must be in [0, 1)");
}

std::int32_t BatchConvolver::combine_one(std::int32_t x1, std::int32_t x2,
                                         int k) {
  // 64-bit combine: max_stride() bounds k but not the base's support, so a
  // wide base under a huge stride must fail loudly, not wrap int32.
  const std::int64_t r =
      static_cast<std::int64_t>(x1) + static_cast<std::int64_t>(k) * x2;
  CGS_CHECK_MSG(r >= std::numeric_limits<std::int32_t>::min() &&
                    r <= std::numeric_limits<std::int32_t>::max(),
                "convolution combine overflows int32: stride " << k
                    << " is too large for this base's support");
  return static_cast<std::int32_t>(r);
}

std::uint64_t BatchConvolver::bernoulli_threshold(double frac) {
  CGS_CHECK(frac >= 0.0 && frac < 1.0);
  if (frac == 0.0) return 0;
  const double scaled = std::ldexp(frac, 64);  // frac * 2^64, exact scaling
  if (scaled >= 18446744073709551615.0) return ~0ull;  // saturate near 1
  return static_cast<std::uint64_t>(scaled);
}

void BatchConvolver::combine(std::span<const std::int32_t> x1,
                             std::span<const std::int32_t> x2,
                             std::span<std::int32_t> out) const {
  CGS_CHECK(x1.size() == out.size() && x2.size() == out.size());
  const std::int32_t k = k_, shift = shift_int_;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = x1[i] + k * x2[i] + shift;
}

void BatchConvolver::combine(std::span<const std::int32_t> x1,
                             std::span<const std::int32_t> x2,
                             RandomBitSource& rounding,
                             std::span<std::int32_t> out) const {
  if (threshold_ == 0) {
    combine(x1, x2, out);
    return;
  }
  CGS_CHECK(x1.size() == out.size() && x2.size() == out.size());
  const std::int32_t k = k_, shift = shift_int_;
  const std::uint64_t threshold = threshold_;
  // Bulk-fill rounding words in fixed-size blocks so the (virtual) source
  // is not called once per sample; the compare itself is branch-free.
  constexpr std::size_t kBlock = 256;
  std::uint64_t words[kBlock];
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t m = std::min(kBlock, out.size() - base);
    rounding.fill_words(std::span<std::uint64_t>(words, m));
    for (std::size_t j = 0; j < m; ++j) {
      const std::int32_t bump =
          static_cast<std::int32_t>(ct_lt_u64(words[j], threshold));
      out[base + j] = x1[base + j] + k * x2[base + j] + shift + bump;
    }
  }
}

std::size_t BatchConvolver::combine_masked(std::span<const std::int32_t> x1,
                                           std::span<const std::uint64_t> mask1,
                                           std::span<const std::int32_t> x2,
                                           std::span<const std::uint64_t> mask2,
                                           RandomBitSource& rounding,
                                           std::span<std::int32_t> out) const {
  CGS_CHECK(mask1.size() >= (x1.size() + 63) / 64 &&
            mask2.size() >= (x2.size() + 63) / 64);
  auto next_valid = [](std::span<const std::int32_t> x,
                       std::span<const std::uint64_t> mask, std::size_t& i) {
    while (i < x.size() && !((mask[i / 64] >> (i % 64)) & 1u)) ++i;
    return i < x.size();
  };
  std::size_t i1 = 0, i2 = 0, written = 0;
  while (written < out.size() && next_valid(x1, mask1, i1) &&
         next_valid(x2, mask2, i2)) {
    std::int32_t pair1 = x1[i1++], pair2 = x2[i2++];
    std::int32_t bump = 0;
    if (threshold_ != 0)
      bump = static_cast<std::int32_t>(
          ct_lt_u64(rounding.next_word(), threshold_));
    out[written++] = pair1 + k_ * pair2 + shift_int_ + bump;
  }
  return written;
}

}  // namespace cgs::conv
