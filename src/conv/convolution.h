#pragma once
// Convolution of base samplers into a wide discrete Gaussian
// (Poppelmann-Ducas-Guneysu CHES'14 / Micciancio-Walter style): the paper's
// §3 notes its sampler is meant as the *base* sampler inside such schemes.
// x = x1 + k * x2 with x1, x2 ~ D_sigma0 gives sigma = sigma0 * sqrt(1+k^2)
// (up to smoothing-parameter loss, reported by the stats module).

#include <memory>

#include "common/sampler.h"

namespace cgs::conv {

class ConvolutionSampler final : public IntSampler {
 public:
  /// Combines two draws from `base` (not owned) with stride k.
  ConvolutionSampler(IntSampler& base, int k);

  std::int32_t sample(RandomBitSource& rng) override;
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  const char* name() const override { return "convolution"; }
  bool constant_time() const override { return base_->constant_time(); }

  /// Resulting sigma given the base sigma.
  static double combined_sigma(double base_sigma, int k);

  /// Smallest k with combined sigma >= target.
  static int stride_for(double base_sigma, double target_sigma);

 private:
  IntSampler* base_;
  int k_;
};

}  // namespace cgs::conv
