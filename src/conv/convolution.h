#pragma once
// Convolution of base samplers into a wide discrete Gaussian
// (Poppelmann-Ducas-Guneysu CHES'14 / Micciancio-Walter style): the paper's
// §3 notes its sampler is meant as the *base* sampler inside such schemes.
// x = x1 + k * x2 with x1, x2 ~ D_sigma0 gives sigma = sigma0 * sqrt(1+k^2)
// (up to smoothing-parameter loss, reported by the stats module).
//
// Two layers live here:
//  - ConvolutionSampler: the scalar two-draws-per-sample IntSampler. Its
//    combine computes in 64 bits with a masked abs (no value-dependent
//    ternaries); the only branch is the overflow guard, which cannot fire
//    for any (base, k) satisfying the planner's reach bound — it exists to
//    fail loudly on invalid stride/support combinations instead of
//    wrapping int32 — so constant-time-ness reduces to the base sampler's.
//  - BatchConvolver: the vectorized combine/shift stage behind
//    engine::GaussianService — span-in/span-out, valid-mask aware, with a
//    constant-time Bernoulli(frac) randomized-rounding stage for
//    non-integer centers (threshold compare against uniform 64-bit words,
//    no data-dependent branches in the value path).

#include <cstddef>
#include <memory>
#include <span>

#include "common/sampler.h"

namespace cgs::conv {

class ConvolutionSampler final : public IntSampler {
 public:
  /// Combines two draws from `base` (not owned) with stride k.
  ConvolutionSampler(IntSampler& base, int k);

  std::int32_t sample(RandomBitSource& rng) override;
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  const char* name() const override { return "convolution"; }
  /// The combine stage has no value-dependent behavior on any valid
  /// (base, k) pair — the overflow guard never fires inside the planner's
  /// reach bound — so constant-time-ness reduces to the base sampler's
  /// (asserted empirically in test_constant_time).
  bool constant_time() const override { return base_->constant_time(); }

  /// Resulting sigma given the base sigma.
  static double combined_sigma(double base_sigma, int k);

  /// Smallest k with combined sigma >= target (closed form plus a fix-up
  /// step). Requires target >= base sigma — a convolution cannot shrink
  /// sigma — and throws when k would exceed max_stride(). The stride bound
  /// alone does not cap k * |sample| for arbitrarily wide bases, so the
  /// combine is computed in 64 bits and throws instead of wrapping int32
  /// (gauss::plan_recipe additionally bounds the planned reach up front).
  static int stride_for(double base_sigma, double target_sigma);

  /// Largest stride stride_for will return.
  static constexpr int max_stride() { return 1 << 20; }

 private:
  IntSampler* base_;
  int k_;
};

/// Vectorized combine stage: out = x1 + k * x2 + shift, span-in/span-out.
/// Fractional centers are served by randomized rounding: each output adds a
/// Bernoulli(shift_frac) bit drawn constant-time from a uniform 64-bit word
/// (branch-free threshold compare), preserving the target mean exactly at a
/// variance cost of shift_frac*(1-shift_frac) <= 1/4.
///
/// Contract: callers guarantee (1+k)*max|x| + |shift_int| + 1 fits int32 —
/// the value loops are deliberately check-free so they vectorize.
/// gauss::plan_recipe enforces this bound for every recipe it emits.
class BatchConvolver {
 public:
  explicit BatchConvolver(int k, std::int32_t shift_int = 0,
                          double shift_frac = 0.0);

  int stride() const { return k_; }
  std::int32_t shift_int() const { return shift_int_; }
  double shift_frac() const { return shift_frac_; }
  /// True when outputs consume rounding randomness (shift_frac > 0).
  bool randomized_rounding() const { return threshold_ != 0; }

  /// Integer-center fast path: out[i] = x1[i] + k*x2[i] + shift_int.
  /// Spans must have equal sizes; out may alias x1.
  void combine(std::span<const std::int32_t> x1,
               std::span<const std::int32_t> x2,
               std::span<std::int32_t> out) const;

  /// Full path with randomized rounding for the fractional center; draws
  /// one word per output from `rounding` only when randomized_rounding().
  void combine(std::span<const std::int32_t> x1,
               std::span<const std::int32_t> x2, RandomBitSource& rounding,
               std::span<std::int32_t> out) const;

  /// Valid-mask aware combine over raw lane batches (as produced by the
  /// bit-sliced backends): lane l of xN is live iff bit l%64 of maskN[l/64]
  /// is set. Valid lanes of each input are compacted independently, paired
  /// in order, combined, and appended to `out`; returns the number written
  /// (= min(valid1, valid2, out.size())). Restart masks are public values
  /// (independent of sample magnitudes), so the compaction branch leaks
  /// nothing the valid bit did not already.
  std::size_t combine_masked(std::span<const std::int32_t> x1,
                             std::span<const std::uint64_t> mask1,
                             std::span<const std::int32_t> x2,
                             std::span<const std::uint64_t> mask2,
                             RandomBitSource& rounding,
                             std::span<std::int32_t> out) const;

  /// Bernoulli(frac) as a 64-bit compare threshold: round(frac * 2^64),
  /// saturated; frac == 0 maps to 0 (never add), frac -> 1 to ~2^64-1.
  static std::uint64_t bernoulli_threshold(double frac);

  /// Single-pair combine, the one place the x1 + k*x2 arithmetic and its
  /// failure mode live: computed in 64 bits and throws instead of wrapping
  /// int32 when the stride/support combination overflows (the planner's
  /// reach bound guarantees it cannot for recipes it emits). The scalar
  /// ConvolutionSampler routes through this.
  static std::int32_t combine_one(std::int32_t x1, std::int32_t x2, int k);

 private:
  int k_;
  std::int32_t shift_int_;
  double shift_frac_;
  std::uint64_t threshold_;
};

}  // namespace cgs::conv
