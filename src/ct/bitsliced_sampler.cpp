#include "ct/bitsliced_sampler.h"

#include "common/check.h"

namespace cgs::ct {

BitslicedSampler::BitslicedSampler(SynthesizedSampler synth)
    : synth_(std::move(synth)),
      in_(static_cast<std::size_t>(synth_.precision)),
      out_words_(synth_.netlist.outputs().size()) {
  CGS_CHECK(synth_.netlist.num_inputs() == synth_.precision);
}

std::uint64_t BitslicedSampler::sample_magnitudes(
    RandomBitSource& rng, std::span<std::uint32_t> out) {
  CGS_CHECK(out.size() >= kBatch);
  rng.fill_words(in_);
  synth_.netlist.eval(in_, out_words_);
  const int m = synth_.num_output_bits;
  for (int lane = 0; lane < kBatch; ++lane) {
    std::uint32_t v = 0;
    for (int iota = 0; iota < m; ++iota)
      v |= static_cast<std::uint32_t>(
               (out_words_[static_cast<std::size_t>(iota)] >> lane) & 1u)
           << iota;
    out[static_cast<std::size_t>(lane)] = v;
  }
  return synth_.has_valid_bit ? out_words_[static_cast<std::size_t>(m)]
                              : ~std::uint64_t(0);
}

std::uint64_t BitslicedSampler::sample_batch(RandomBitSource& rng,
                                             std::span<std::int32_t> out) {
  std::uint32_t mags[kBatch];
  const std::uint64_t valid = sample_magnitudes(rng, mags);
  const std::uint64_t signs = rng.next_word();
  for (int lane = 0; lane < kBatch; ++lane) {
    const auto mag = static_cast<std::int32_t>(mags[lane]);
    // Branch-free sign application: negate iff the sign bit is set.
    const std::int32_t s = -static_cast<std::int32_t>((signs >> lane) & 1u);
    out[static_cast<std::size_t>(lane)] = (mag ^ s) - s;
  }
  return valid;
}

void BufferedBitslicedSampler::refill(RandomBitSource& rng) {
  buf_.clear();
  while (buf_.empty()) {
    std::int32_t batch[BitslicedSampler::kBatch];
    const std::uint64_t valid = core_.sample_batch(rng, batch);
    for (int lane = 0; lane < BitslicedSampler::kBatch; ++lane)
      if ((valid >> lane) & 1u) buf_.push_back(batch[lane]);
  }
  pos_ = 0;
}

std::int32_t BufferedBitslicedSampler::sample(RandomBitSource& rng) {
  if (pos_ >= buf_.size()) refill(rng);
  return buf_[pos_++];
}

std::uint32_t BufferedBitslicedSampler::sample_magnitude(RandomBitSource& rng) {
  const std::int32_t s = sample(rng);
  return static_cast<std::uint32_t>(s < 0 ? -s : s);
}

}  // namespace cgs::ct
