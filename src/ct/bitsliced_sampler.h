#pragma once
// The runtime half of the paper: feed 64 lanes of random bits through the
// synthesized netlist, unpack 64 magnitude samples per batch, fold in a sign
// word. One netlist input word per precision bit; lane i of input word k is
// b_k of sample i.

#include <cstdint>
#include <span>
#include <vector>

#include "common/sampler.h"
#include "ct/synthesis.h"

namespace cgs::ct {

class BitslicedSampler {
 public:
  static constexpr int kBatch = 64;

  explicit BitslicedSampler(SynthesizedSampler synth);

  const SynthesizedSampler& synth() const { return synth_; }

  /// One batch of magnitude samples. Returns the valid-lane mask (bit i set
  /// iff lane i hit a DDG leaf; ~always all-ones at cryptographic
  /// precision). `out` must hold kBatch entries.
  std::uint64_t sample_magnitudes(RandomBitSource& rng,
                                  std::span<std::uint32_t> out);

  /// One batch of signed samples (consumes one extra word for signs).
  std::uint64_t sample_batch(RandomBitSource& rng, std::span<std::int32_t> out);

  /// Random words consumed per batch (PRNG-cost accounting: n + 1 sign).
  int words_per_batch() const { return synth_.precision + 1; }

 private:
  SynthesizedSampler synth_;
  std::vector<std::uint64_t> in_;
  std::vector<std::uint64_t> out_words_;
};

/// IntSampler adapter: batches internally, serves one sample at a time,
/// discards invalid lanes (a restart, exactly like the reference sampler).
class BufferedBitslicedSampler final : public IntSampler {
 public:
  explicit BufferedBitslicedSampler(SynthesizedSampler synth)
      : core_(std::move(synth)) {}

  std::int32_t sample(RandomBitSource& rng) override;
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  const char* name() const override { return "bitsliced-ct(this work)"; }
  bool constant_time() const override { return true; }

 private:
  void refill(RandomBitSource& rng);

  BitslicedSampler core_;
  std::vector<std::int32_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace cgs::ct
