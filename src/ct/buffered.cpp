#include "ct/buffered.h"
// Adapters are header-only; this TU anchors the target.
