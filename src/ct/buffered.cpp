#include "ct/buffered.h"

#include "common/check.h"

namespace cgs::ct {

void BitslicedBlockSource::fill_base(std::span<std::int32_t> out) {
  // Invalid lanes (a DDG restart; ~never at cryptographic precision) are
  // dropped. Consecutive all-invalid batches mean a pathological netlist —
  // fail loudly rather than spin (same guard as the engine workers).
  constexpr int kMaxEmptyBatches = 1000;
  int empty_streak = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t before = pos;
    std::int32_t batch[BitslicedSampler::kBatch];
    const std::uint64_t valid = core_.sample_batch(*rng_, batch);
    for (int lane = 0; lane < BitslicedSampler::kBatch && pos < out.size();
         ++lane)
      if ((valid >> lane) & 1u) out[pos++] = batch[lane];
    empty_streak = pos == before ? empty_streak + 1 : 0;
    CGS_CHECK_MSG(empty_streak < kMaxEmptyBatches,
                  "block source produced no valid lanes for "
                      << kMaxEmptyBatches << " consecutive batches");
  }
}

}  // namespace cgs::ct
