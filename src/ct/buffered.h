#pragma once
// IntSampler adapters: the Alg.1 reference sampler behind the common
// interface, plus a generic batching adapter for anything that produces
// 64-sample batches.

#include <memory>

#include "common/sampler.h"
#include "ddg/kysampler.h"

namespace cgs::ct {

/// The column-scanning Knuth-Yao sampler (Alg. 1) as an IntSampler. Not
/// constant time — it is the correctness oracle and a baseline.
class ReferenceKySampler final : public IntSampler {
 public:
  explicit ReferenceKySampler(const gauss::ProbMatrix& matrix)
      : sampler_(matrix) {}

  std::int32_t sample(RandomBitSource& rng) override {
    return sampler_.sample(rng);
  }
  std::uint32_t sample_magnitude(RandomBitSource& rng) override {
    return sampler_.sample_magnitude(rng);
  }
  const char* name() const override { return "knuth-yao-reference"; }
  bool constant_time() const override { return false; }

 private:
  ddg::KnuthYaoSampler sampler_;
};

}  // namespace cgs::ct
