#pragma once
// IntSampler / BlockSource adapters: the Alg.1 reference sampler behind the
// common interface, plus a single-stream block source over the 64-lane
// bit-sliced core for contexts that want batch refills without spinning up
// a SamplerEngine.

#include <memory>

#include "common/blocksource.h"
#include "common/sampler.h"
#include "ct/bitsliced_sampler.h"
#include "ddg/kysampler.h"

namespace cgs::ct {

/// The column-scanning Knuth-Yao sampler (Alg. 1) as an IntSampler. Not
/// constant time — it is the correctness oracle and a baseline.
class ReferenceKySampler final : public IntSampler {
 public:
  explicit ReferenceKySampler(const gauss::ProbMatrix& matrix)
      : sampler_(matrix) {}

  std::int32_t sample(RandomBitSource& rng) override {
    return sampler_.sample(rng);
  }
  std::uint32_t sample_magnitude(RandomBitSource& rng) override {
    return sampler_.sample_magnitude(rng);
  }
  const char* name() const override { return "knuth-yao-reference"; }
  bool constant_time() const override { return false; }

 private:
  ddg::KnuthYaoSampler sampler_;
};

/// BlockSource over one interpreted 64-lane bit-sliced core: each base
/// refill runs ceil(n/64) netlist passes and compacts the valid lanes,
/// exactly like an engine worker but single-stream and allocation-light.
/// `rng` (not owned) feeds both the netlist path bits and the word supply.
class BitslicedBlockSource final : public BlockSource {
 public:
  BitslicedBlockSource(SynthesizedSampler synth, RandomBitSource& rng)
      : core_(std::move(synth)), rng_(&rng) {}

  void fill_base(std::span<std::int32_t> out) override;
  void fill_words(std::span<std::uint64_t> out) override {
    rng_->fill_words(out);
  }
  std::size_t preferred_block() const override {
    return 8 * BitslicedSampler::kBatch;
  }
  const char* name() const override { return "bitsliced-block"; }
  bool constant_time() const override { return true; }

 private:
  BitslicedSampler core_;
  RandomBitSource* rng_;
};

}  // namespace cgs::ct
