#include "ct/compiled_sampler.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bf/codegen.h"
#include "common/check.h"

namespace cgs::ct {

namespace {

std::string unique_stem() {
  static std::atomic<unsigned> counter{0};
  char buf[128];
  std::snprintf(buf, sizeof buf, "/tmp/cgs_kernel_%d_%u", getpid(),
                counter.fetch_add(1));
  return buf;
}

int run_quiet(const std::string& cmd) {
  return std::system((cmd + " > /dev/null 2>&1").c_str());
}

}  // namespace

bool CompiledKernel::is_available() {
  static const bool ok = [] {
    return run_quiet("cc --version") == 0 || run_quiet("gcc --version") == 0;
  }();
  return ok;
}

CompiledKernel::CompiledKernel(const SynthesizedSampler& synth)
    : num_inputs_(static_cast<std::size_t>(synth.netlist.num_inputs())),
      num_outputs_(synth.netlist.outputs().size()) {
  const std::string stem = unique_stem();
  const std::string c_path = stem + ".c";
  so_path_ = stem + ".so";
  const auto write_source = [&](bool with_wide) {
    std::ofstream out(c_path);
    CGS_CHECK_MSG(out.good(), "cannot write kernel source");
    out << bf::emit_c(synth.netlist, "cgs_kernel");
    if (with_wide)
      out << "\n" << bf::emit_c_wide(synth.netlist, "cgs_kernel_w4");
  };
  const std::string compiler =
      run_quiet("cc --version") == 0 ? "cc" : "gcc";
  // The kernel is compiled on the host it runs on — exactly the case
  // -march=native exists for (the wide form roughly doubles on AVX2).
  // Fallback ladder: native with the 256-lane form -> generic with it ->
  // scalar-only source (a host compiler without GCC vector extensions
  // rejects the wide function; the 64-lane kernel must still serve).
  const std::string flags = " -O2 -shared -fPIC -w -o ";
  const std::string native_cmd =
      compiler + " -march=native" + flags + so_path_ + " " + c_path;
  const std::string generic_cmd = compiler + flags + so_path_ + " " + c_path;
  write_source(/*with_wide=*/true);
  if (run_quiet(native_cmd) != 0 && run_quiet(generic_cmd) != 0) {
    write_source(/*with_wide=*/false);
    CGS_CHECK_MSG(std::system(generic_cmd.c_str()) == 0,
                  "kernel compilation failed");
  }
  std::remove(c_path.c_str());

  handle_ = dlopen(so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  CGS_CHECK_MSG(handle_ != nullptr, "dlopen failed");
  fn_ = reinterpret_cast<Fn>(dlsym(handle_, "cgs_kernel"));
  CGS_CHECK_MSG(fn_ != nullptr, "kernel symbol missing");
  // Absent only if the host compiler rejects vector extensions — the
  // scalar form still serves, callers check has_wide().
  fn_wide_ = reinterpret_cast<Fn>(dlsym(handle_, "cgs_kernel_w4"));
}

CompiledKernel::~CompiledKernel() {
  if (handle_) dlclose(handle_);
  if (!so_path_.empty()) std::remove(so_path_.c_str());
}

void CompiledKernel::eval(std::span<const std::uint64_t> in,
                          std::span<std::uint64_t> out) const {
  CGS_DCHECK(in.size() == num_inputs_ && out.size() == num_outputs_);
  fn_(in.data(), out.data());
}

void CompiledKernel::eval_wide(std::span<const std::uint64_t> in,
                               std::span<std::uint64_t> out) const {
  CGS_CHECK_MSG(fn_wide_ != nullptr, "kernel has no wide form");
  CGS_DCHECK(in.size() == 4 * num_inputs_ && out.size() == 4 * num_outputs_);
  fn_wide_(in.data(), out.data());
}

CompiledBitslicedSampler::CompiledBitslicedSampler(SynthesizedSampler synth)
    : synth_(std::move(synth)),
      kernel_(std::make_shared<const CompiledKernel>(synth_)),
      in_(static_cast<std::size_t>(synth_.precision)),
      out_words_(synth_.netlist.outputs().size()) {}

CompiledBitslicedSampler::CompiledBitslicedSampler(
    SynthesizedSampler synth, std::shared_ptr<const CompiledKernel> kernel)
    : synth_(std::move(synth)),
      kernel_(std::move(kernel)),
      in_(static_cast<std::size_t>(synth_.precision)),
      out_words_(synth_.netlist.outputs().size()) {
  CGS_CHECK_MSG(kernel_ != nullptr, "null shared kernel");
  // A kernel built from a different netlist would read/write past the
  // buffers sized above (eval only DCHECKs, compiled out in release).
  CGS_CHECK_MSG(kernel_->num_inputs() == in_.size() &&
                    kernel_->num_outputs() == out_words_.size(),
                "shared kernel dimensions disagree with sampler netlist");
}

std::uint64_t CompiledBitslicedSampler::sample_magnitudes(
    RandomBitSource& rng, std::span<std::uint32_t> out) {
  CGS_CHECK(out.size() >= kBatch);
  rng.fill_words(in_);
  kernel_->eval(in_, out_words_);
  const int m = synth_.num_output_bits;
  for (int lane = 0; lane < kBatch; ++lane) {
    std::uint32_t v = 0;
    for (int iota = 0; iota < m; ++iota)
      v |= static_cast<std::uint32_t>(
               (out_words_[static_cast<std::size_t>(iota)] >> lane) & 1u)
           << iota;
    out[static_cast<std::size_t>(lane)] = v;
  }
  return synth_.has_valid_bit ? out_words_[static_cast<std::size_t>(m)]
                              : ~std::uint64_t(0);
}

std::uint64_t CompiledBitslicedSampler::sample_batch(
    RandomBitSource& rng, std::span<std::int32_t> out) {
  std::uint32_t mags[kBatch];
  const std::uint64_t valid = sample_magnitudes(rng, mags);
  const std::uint64_t signs = rng.next_word();
  for (int lane = 0; lane < kBatch; ++lane) {
    const auto mag = static_cast<std::int32_t>(mags[lane]);
    const std::int32_t s = -static_cast<std::int32_t>((signs >> lane) & 1u);
    out[static_cast<std::size_t>(lane)] = (mag ^ s) - s;
  }
  return valid;
}

WideCompiledSampler::WideCompiledSampler(
    SynthesizedSampler synth, std::shared_ptr<const CompiledKernel> kernel)
    : synth_(std::move(synth)),
      kernel_(std::move(kernel)),
      in_(4 * static_cast<std::size_t>(synth_.precision)),
      out_words_(4 * synth_.netlist.outputs().size()) {
  CGS_CHECK_MSG(kernel_ != nullptr && kernel_->has_wide(),
                "WideCompiledSampler needs a kernel with the wide form");
  CGS_CHECK_MSG(kernel_->num_inputs() * 4 == in_.size() &&
                    kernel_->num_outputs() * 4 == out_words_.size(),
                "shared kernel dimensions disagree with sampler netlist");
}

namespace {

// kSpread[b] holds the 8 bits of byte b spread one-per-byte (bit i ->
// byte i, value 0 or 1): the lane unpack becomes m table lookups per 8
// lanes instead of m shift/mask/or chains per lane.
constexpr std::array<std::uint64_t, 256> make_spread_table() {
  std::array<std::uint64_t, 256> t{};
  for (int b = 0; b < 256; ++b) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      if ((b >> i) & 1) v |= std::uint64_t{1} << (8 * i);
    t[static_cast<std::size_t>(b)] = v;
  }
  return t;
}
constexpr std::array<std::uint64_t, 256> kSpread = make_spread_table();

}  // namespace

void WideCompiledSampler::sample_magnitudes(
    RandomBitSource& rng, std::span<std::uint32_t> out,
    std::span<std::uint64_t> valid_mask) {
  CGS_CHECK(out.size() >= kBatch && valid_mask.size() >= 4);
  rng.fill_words(in_);
  kernel_->eval_wide(in_, out_words_);
  const int m = synth_.num_output_bits;
  for (int group = 0; group < 4; ++group) {
    if (m <= 8) {
      // Byte-parallel transpose: magnitudes fit a byte, so 8 lanes at a
      // time accumulate as the 8 bytes of one word.
      for (int chunk = 0; chunk < 8; ++chunk) {
        std::uint64_t acc = 0;
        for (int iota = 0; iota < m; ++iota)
          acc |= kSpread[(out_words_[static_cast<std::size_t>(4 * iota +
                                                              group)] >>
                          (8 * chunk)) &
                         0xff]
                 << iota;
        for (int j = 0; j < 8; ++j)
          out[static_cast<std::size_t>(64 * group + 8 * chunk + j)] =
              static_cast<std::uint32_t>((acc >> (8 * j)) & 0xff);
      }
    } else {
      for (int lane = 0; lane < 64; ++lane) {
        std::uint32_t v = 0;
        for (int iota = 0; iota < m; ++iota)
          v |= static_cast<std::uint32_t>(
                   (out_words_[static_cast<std::size_t>(4 * iota + group)] >>
                    lane) &
                   1u)
               << iota;
        out[static_cast<std::size_t>(64 * group + lane)] = v;
      }
    }
    valid_mask[static_cast<std::size_t>(group)] =
        synth_.has_valid_bit
            ? out_words_[static_cast<std::size_t>(4 * m + group)]
            : ~std::uint64_t(0);
  }
}

void WideCompiledSampler::sample_batch(RandomBitSource& rng,
                                       std::span<std::int32_t> out,
                                       std::span<std::uint64_t> valid_mask) {
  std::uint32_t mags[kBatch];
  sample_magnitudes(rng, mags, valid_mask);
  for (int group = 0; group < 4; ++group) {
    const std::uint64_t signs = rng.next_word();
    for (int lane = 0; lane < 64; ++lane) {
      const auto mag = static_cast<std::int32_t>(mags[64 * group + lane]);
      const std::int32_t s = -static_cast<std::int32_t>((signs >> lane) & 1u);
      out[static_cast<std::size_t>(64 * group + lane)] = (mag ^ s) - s;
    }
  }
}

std::int32_t BufferedCompiledSampler::sample(RandomBitSource& rng) {
  while (pos_ >= buf_.size()) {
    buf_.clear();
    std::int32_t batch[CompiledBitslicedSampler::kBatch];
    const std::uint64_t valid = core_.sample_batch(rng, batch);
    for (int lane = 0; lane < CompiledBitslicedSampler::kBatch; ++lane)
      if ((valid >> lane) & 1u) buf_.push_back(batch[lane]);
    pos_ = 0;
  }
  return buf_[pos_++];
}

std::uint32_t BufferedCompiledSampler::sample_magnitude(RandomBitSource& rng) {
  const std::int32_t s = sample(rng);
  return static_cast<std::uint32_t>(s < 0 ? -s : s);
}

}  // namespace cgs::ct
