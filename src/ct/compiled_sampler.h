#pragma once
// Compiled execution of a synthesized sampler: emit the netlist as C (the
// paper's artifact was exactly such generated C), compile it with the host
// compiler into a shared object, and call it through a function pointer.
// ~10x faster than the interpreted netlist and what the Table-1/Table-2
// "this work" rows use when available. Falls back gracefully (is_available
// == false) when no host compiler can be found.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/sampler.h"
#include "ct/synthesis.h"

namespace cgs::ct {

class CompiledKernel {
 public:
  /// Emits, compiles and loads the kernel — both the 64-lane form and the
  /// 256-lane vector form (one compile, two symbols). Throws cgs::Error if
  /// the host compiler fails; use is_available for a soft probe.
  explicit CompiledKernel(const SynthesizedSampler& synth);
  ~CompiledKernel();

  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  void eval(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) const;

  /// 256-lane form: 4 words per netlist bit, group-major (word g of bit k
  /// at index 4*k + g). Spans must be 4x the scalar sizes.
  void eval_wide(std::span<const std::uint64_t> in,
                 std::span<std::uint64_t> out) const;
  bool has_wide() const { return fn_wide_ != nullptr; }

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_outputs() const { return num_outputs_; }

  /// True if a host compiler appears usable (cached probe).
  static bool is_available();

 private:
  using Fn = void (*)(const std::uint64_t*, std::uint64_t*);
  void* handle_ = nullptr;
  Fn fn_ = nullptr;
  Fn fn_wide_ = nullptr;
  std::size_t num_inputs_ = 0;
  std::size_t num_outputs_ = 0;
  std::string so_path_;
};

/// Drop-in replacement for BitslicedSampler running the compiled kernel.
class CompiledBitslicedSampler {
 public:
  static constexpr int kBatch = 64;

  explicit CompiledBitslicedSampler(SynthesizedSampler synth);

  /// Share an already-compiled kernel instead of emitting and compiling a
  /// fresh .so — the engine compiles once and hands the kernel to every
  /// worker. `kernel` must have been built from an identical netlist.
  CompiledBitslicedSampler(SynthesizedSampler synth,
                           std::shared_ptr<const CompiledKernel> kernel);

  const SynthesizedSampler& synth() const { return synth_; }

  std::uint64_t sample_magnitudes(RandomBitSource& rng,
                                  std::span<std::uint32_t> out);
  std::uint64_t sample_batch(RandomBitSource& rng, std::span<std::int32_t> out);

 private:
  SynthesizedSampler synth_;
  std::shared_ptr<const CompiledKernel> kernel_;
  std::vector<std::uint64_t> in_, out_words_;
};

/// 256-lane runner over the compiled kernel's vector form — the fastest
/// single-stream base-sample producer in the library (the engine's
/// compiled backend uses it when the kernel carries the wide symbol).
/// Mirrors WideBitslicedSampler's batch/mask interface.
class WideCompiledSampler {
 public:
  static constexpr int kBatch = 256;

  /// `kernel` must carry the wide form (has_wide()) and match the synth.
  WideCompiledSampler(SynthesizedSampler synth,
                      std::shared_ptr<const CompiledKernel> kernel);

  const SynthesizedSampler& synth() const { return synth_; }

  void sample_magnitudes(RandomBitSource& rng, std::span<std::uint32_t> out,
                         std::span<std::uint64_t> valid_mask);
  void sample_batch(RandomBitSource& rng, std::span<std::int32_t> out,
                    std::span<std::uint64_t> valid_mask);

 private:
  SynthesizedSampler synth_;
  std::shared_ptr<const CompiledKernel> kernel_;
  std::vector<std::uint64_t> in_, out_words_;  // 4 words per netlist bit
};

/// Buffered IntSampler over the compiled kernel (Table 1's "this work").
class BufferedCompiledSampler final : public IntSampler {
 public:
  explicit BufferedCompiledSampler(SynthesizedSampler synth)
      : core_(std::move(synth)) {}

  std::int32_t sample(RandomBitSource& rng) override;
  std::uint32_t sample_magnitude(RandomBitSource& rng) override;
  const char* name() const override { return "bitsliced-ct-compiled"; }
  bool constant_time() const override { return true; }

 private:
  CompiledBitslicedSampler core_;
  std::vector<std::int32_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace cgs::ct
