#include "ct/flat_baseline.h"

#include "bf/espresso_lite.h"
#include "common/bits.h"
#include "common/check.h"

namespace cgs::ct {

namespace {

// Full-width cube of a leaf: variable v is path bit b_v. 1^kappa 0 suffix,
// trailing don't-cares.
bf::Cube flat_cube(const Leaf& leaf, int n) {
  bf::Cube c(n);
  for (int v = 0; v < leaf.kappa; ++v) c.set_var(v, 1);
  c.set_var(leaf.kappa, 0);
  for (int u = 0; u < leaf.j; ++u)
    c.set_var(leaf.kappa + 1 + u, (leaf.suffix >> (leaf.j - 1 - u)) & 1u);
  return c;
}

}  // namespace

SynthesizedSampler synthesize_flat(const gauss::ProbMatrix& matrix,
                                   const FlatConfig& config) {
  const int n = matrix.precision();
  CGS_CHECK_MSG(n <= 128, "flat baseline cubes limited to 128 variables");
  const LeafList list = enumerate_leaves(matrix);

  std::uint32_t max_value = 0;
  for (const Leaf& leaf : list.leaves)
    max_value = std::max(max_value, leaf.value);
  const int m = sample_bit_width(max_value);

  SynthesizedSampler out;
  out.precision = n;
  out.num_output_bits = m;
  out.has_valid_bit = config.emit_valid_bit;
  out.stats.num_leaves = list.leaves.size();
  out.stats.max_kappa = list.max_kappa;
  out.stats.delta = list.delta;

  bf::NetlistBuilder b(n, config.cse);
  for (int iota = 0; iota < m; ++iota) {
    std::vector<bf::Cube> cover;
    for (const Leaf& leaf : list.leaves)
      if (bit_at(leaf.value, iota)) cover.push_back(flat_cube(leaf, n));
    out.stats.cubes_raw += cover.size();
    if (config.merge) cover = bf::merge_only(std::move(cover));
    out.stats.cubes_minimized += cover.size();
    b.add_output(b.sop(cover, /*base_input=*/0));
  }
  if (config.emit_valid_bit) {
    std::vector<bf::Cube> cover;
    for (const Leaf& leaf : list.leaves) cover.push_back(flat_cube(leaf, n));
    if (config.merge) cover = bf::merge_only(std::move(cover));
    b.add_output(b.sop(cover, /*base_input=*/0));
  }

  out.netlist = b.take();
  out.stats.netlist_ops = out.netlist.op_count();
  out.stats.all_exact = false;  // "simple minimization" is not exact
  return out;
}

}  // namespace cgs::ct
