#pragma once
// The comparison baseline of Table 2: the flat bit-sliced sampler in the
// style of [Karmakar et al., IEEE TC 2018]. Each output bit is one two-level
// SOP over all n input variables, one cube per DDG leaf (after adjacency
// merging — the "simple minimization"), with no sublist split and no one-hot
// chain. Runs on the same netlist interpreter as the split sampler so the
// Table-2 comparison isolates the paper's minimization strategy.

#include "bf/netlist.h"
#include "ct/leaf_enum.h"
#include "ct/synthesis.h"
#include "gauss/probmatrix.h"

namespace cgs::ct {

struct FlatConfig {
  bool merge = true;  // adjacency merging of leaf cubes ("simple" min.)
  bool cse = true;    // structural hashing during netlist build
  bool emit_valid_bit = true;
};

/// Build the flat sampler; the result plugs into the same BitslicedSampler.
SynthesizedSampler synthesize_flat(const gauss::ProbMatrix& matrix,
                                   const FlatConfig& config = {});

}  // namespace cgs::ct
