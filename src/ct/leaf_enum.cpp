#include "ct/leaf_enum.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace cgs::ct {

namespace {

// Minimal 256-bit unsigned integer: enough for path values at precision
// n <= 256. Little-endian limbs.
struct U256 {
  std::array<std::uint64_t, 4> w{};

  // *this = *this * 2 + add (add may be any 64-bit value, not just a bit)
  void shl1_add(std::uint64_t add) {
    unsigned __int128 carry = add;
    for (auto& limb : w) {
      const unsigned __int128 cur = (static_cast<unsigned __int128>(limb) << 1) + carry;
      limb = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    CGS_CHECK_MSG(carry == 0, "U256 overflow");
  }

  U256 sub_small(std::uint64_t d) const {
    U256 r = *this;
    std::size_t i = 0;
    while (d != 0) {
      CGS_CHECK(i < r.w.size());
      const std::uint64_t before = r.w[i];
      r.w[i] = before - d;
      d = (before < d) ? 1 : 0;
      ++i;
    }
    return r;
  }

  int bit(int i) const { return (w[std::size_t(i >> 6)] >> (i & 63)) & 1u; }
};

}  // namespace

std::vector<int> Leaf::bits() const {
  std::vector<int> b;
  b.reserve(static_cast<std::size_t>(level) + 1);
  for (int i = 0; i < kappa; ++i) b.push_back(1);
  b.push_back(0);
  for (int u = j - 1; u >= 0; --u) b.push_back((suffix >> u) & 1u);
  return b;
}

LeafList enumerate_leaves(const gauss::ProbMatrix& m) {
  const int n = m.precision();
  CGS_CHECK_MSG(n <= 250, "leaf enumeration limited to 250-bit precision");

  LeafList out;
  U256 H;  // H_c, updated per level
  double covered = 0.0;
  for (int c = 0; c < n; ++c) {
    const int h = m.column_weight(c);
    H.shl1_add(static_cast<std::uint64_t>(h));
    // Sample values in bottom-up leaf order: leaf with d_pre = h-t gets the
    // (h-t+1)-th highest set row. Collect the set rows (descending).
    std::vector<std::uint32_t> set_rows;
    set_rows.reserve(static_cast<std::size_t>(h));
    for (int row = static_cast<int>(m.rows()) - 1; row >= 0; --row)
      if (m.bit(static_cast<std::size_t>(row), c))
        set_rows.push_back(static_cast<std::uint32_t>(row));

    for (int t = 1; t <= h; ++t) {
      const U256 v = H.sub_small(static_cast<std::uint64_t>(t));
      // v is a (c+1)-bit string: bit c = b_0 (first drawn), bit 0 = b_c.
      int kappa = 0;
      while (kappa <= c && v.bit(c - kappa) == 1) ++kappa;
      CGS_CHECK_MSG(kappa <= c, "Theorem 1 violated: all-ones leaf string");
      const int j = c - kappa;
      CGS_CHECK_MSG(j <= 31, "suffix wider than 31 bits — Delta assumption broken");
      std::uint32_t suffix = 0;
      for (int u = 0; u < j; ++u)
        suffix |= static_cast<std::uint32_t>(v.bit(j - 1 - u)) << (j - 1 - u);
      // d_pre = h - t; sample = (d_pre + 1)-th highest set row.
      const std::uint32_t value = set_rows[static_cast<std::size_t>(h - t)];
      out.leaves.push_back(Leaf{c, kappa, j, suffix, value});
      out.max_kappa = std::max(out.max_kappa, kappa);
      out.delta = std::max(out.delta, j);
      covered += std::pow(0.5, c + 1);
    }
  }
  out.covered_probability = covered;
  return out;
}

}  // namespace cgs::ct
