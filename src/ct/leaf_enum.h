#pragma once
// Enumeration of the DDG-tree leaves as Theorem-1 strings. Every leaf of the
// tree is reached by exactly one bit string `1^kappa 0 s` (draw order) where
// `s` is the j-bit suffix; this module produces the full list L of the paper
// (§5.1) directly from the column weights, in O(total leaves) time, without
// materializing the tree.
//
// Derivation used here (matches Alg. 1): let V_c = value of the first c+1
// bits (b_0 = MSB) and H_c = h_0*2^c + h_1*2^(c-1) + ... + h_c. The walk
// hits a leaf at level c iff V_c in [H_c - h_c, H_c - 1]; the leaf is the
// (H_c - V_c)-th highest set row of column c. Earlier non-hit is automatic:
// V_c >= H_c - h_c implies V_{c'} >= H_{c'} for all c' < c.

#include <cstdint>
#include <vector>

#include "gauss/probmatrix.h"

namespace cgs::ct {

struct Leaf {
  int level = 0;           // c: leaf found after consuming c+1 bits
  int kappa = 0;           // leading ones (sublist index)
  int j = 0;               // suffix bit count = level - kappa
  std::uint32_t suffix = 0;  // j bits, MSB = b_{kappa+1}
  std::uint32_t value = 0;   // sample magnitude

  /// The full bit string in draw order: 1^kappa, 0, then the suffix.
  std::vector<int> bits() const;
};

struct LeafList {
  std::vector<Leaf> leaves;
  int max_kappa = -1;   // n' in the paper
  int delta = 0;        // max j over all leaves (the paper's Delta)
  double covered_probability = 0.0;  // sum of leaf weights 2^-(level+1)
};

/// Enumerate every leaf reachable within the matrix precision.
LeafList enumerate_leaves(const gauss::ProbMatrix& matrix);

}  // namespace cgs::ct
