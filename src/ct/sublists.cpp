#include "ct/sublists.h"

#include <algorithm>

#include "common/bits.h"
#include "common/check.h"

namespace cgs::ct {

namespace {

// Minterm block of a leaf inside a Delta-wide table: the suffix occupies the
// top j variable positions; the remaining Delta-j are don't-care expansion.
struct Block {
  std::uint64_t base;
  int span;
};

Block block_of(const Leaf& leaf, int delta) {
  CGS_CHECK(leaf.j <= delta);
  const int span = delta - leaf.j;
  return Block{static_cast<std::uint64_t>(leaf.suffix) << span, span};
}

}  // namespace

bf::TruthTable Sublist::output_bit_table(int iota) const {
  bf::TruthTable tt(delta);
  for (const Leaf& leaf : leaves) {
    const Block b = block_of(leaf, delta);
    const bool on = bit_at(leaf.value, iota) != 0;
    tt.set_block(b.base, b.span,
                 on ? bf::TruthTable::State::kOn : bf::TruthTable::State::kOff);
  }
  return tt;
}

bf::TruthTable Sublist::valid_table() const {
  bf::TruthTable tt(delta);
  // Everything starts DC; covered blocks become ON, the rest OFF.
  for (const Leaf& leaf : leaves) {
    const Block b = block_of(leaf, delta);
    tt.set_block(b.base, b.span, bf::TruthTable::State::kOn);
  }
  for (std::uint64_t m = 0; m < tt.size(); ++m)
    if (tt.state(m) == bf::TruthTable::State::kDc)
      tt.set(m, bf::TruthTable::State::kOff);
  return tt;
}

SublistSplit split_by_kappa(const LeafList& list) {
  SublistSplit out;
  out.delta = list.delta;
  out.sublists.resize(static_cast<std::size_t>(list.max_kappa) + 1);
  for (std::size_t k = 0; k < out.sublists.size(); ++k)
    out.sublists[k].kappa = static_cast<int>(k);

  std::uint32_t max_value = 0;
  for (const Leaf& leaf : list.leaves) {
    Sublist& sl = out.sublists[static_cast<std::size_t>(leaf.kappa)];
    sl.delta = std::max(sl.delta, leaf.j);
    sl.leaves.push_back(leaf);
    max_value = std::max(max_value, leaf.value);
  }
  out.num_output_bits = sample_bit_width(max_value);
  return out;
}

}  // namespace cgs::ct
