#pragma once
// The paper's §5.1 split: sort the leaf list L by the count kappa of
// trailing ones and group into sublists l_kappa. Each sublist's sample bits
// depend only on the next Delta_kappa suffix bits, so each f^{iota,kappa}
// becomes a tiny truth table the exact minimizer can handle.

#include <vector>

#include "bf/truthtable.h"
#include "ct/leaf_enum.h"

namespace cgs::ct {

struct Sublist {
  int kappa = 0;
  int delta = 0;                 // max suffix width within this sublist
  std::vector<Leaf> leaves;      // members (any order)

  /// Truth table over `delta` variables for output bit `iota` of the sample
  /// value. Variable Delta-1 (the minterm MSB) is b_{kappa+1}. Minterms not
  /// covered by any leaf are don't-cares.
  bf::TruthTable output_bit_table(int iota) const;

  /// Truth table of the "a leaf was hit" indicator (no don't-cares).
  bf::TruthTable valid_table() const;
};

struct SublistSplit {
  std::vector<Sublist> sublists;  // index == kappa; may contain empty ones
  int num_output_bits = 0;        // m: bits in the widest sample value
  int delta = 0;                  // global max
};

SublistSplit split_by_kappa(const LeafList& list);

}  // namespace cgs::ct
