#include "ct/synthesis.h"

#include <sstream>

#include "bf/espresso_lite.h"
#include "bf/quine_mccluskey.h"
#include "common/bits.h"
#include "common/check.h"

namespace cgs::ct {

namespace {

// Raw cube of a leaf inside its sublist's Delta-variable space. Variable v
// corresponds to minterm bit v; the suffix occupies the top j variables.
bf::Cube leaf_cube(const Leaf& leaf, int delta) {
  bf::Cube c(delta);
  for (int u = 0; u < leaf.j; ++u) {
    const int var = delta - 1 - u;  // b_{kappa+1+u}
    c.set_var(var, (leaf.suffix >> (leaf.j - 1 - u)) & 1u);
  }
  return c;
}

// Minimize one sublist output function according to the config.
std::vector<bf::Cube> minimize(const bf::TruthTable& tt,
                               std::vector<bf::Cube> raw,
                               const SynthesisConfig& cfg, bool* exact) {
  switch (cfg.mode) {
    case MinimizeMode::kNone:
      return raw;
    case MinimizeMode::kMergeOnly:
      return bf::merge_only(std::move(raw));
    case MinimizeMode::kHeuristic:
      return bf::espresso_lite(tt, std::move(raw));
    case MinimizeMode::kExact:
      if (tt.num_vars() > cfg.exact_max_vars) {
        *exact = false;
        return bf::espresso_lite(tt, std::move(raw));
      }
      auto res = bf::minimize_exact(tt, cfg.qm_node_budget);
      if (!res.exact) *exact = false;
      return std::move(res.cover);
  }
  CGS_CHECK(false);
  return raw;
}

}  // namespace

std::string SynthesisStats::describe() const {
  std::ostringstream os;
  os << "leaves=" << num_leaves << " n'=" << max_kappa << " Delta=" << delta
     << " cubes " << cubes_raw << "->" << cubes_minimized
     << " ops=" << netlist_ops << (all_exact ? " (exact)" : " (heuristic)");
  return os.str();
}

SynthesizedSampler synthesize(const gauss::ProbMatrix& matrix,
                              const SynthesisConfig& config) {
  const int n = matrix.precision();
  const LeafList list = enumerate_leaves(matrix);
  const SublistSplit split = split_by_kappa(list);

  SynthesizedSampler out;
  out.precision = n;
  out.num_output_bits = split.num_output_bits;
  out.has_valid_bit = config.emit_valid_bit;
  out.stats.num_leaves = list.leaves.size();
  out.stats.max_kappa = list.max_kappa;
  out.stats.delta = list.delta;

  const int m = split.num_output_bits;
  bf::NetlistBuilder b(n, config.cse);

  std::vector<std::int32_t> acc(static_cast<std::size_t>(m), b.const0());
  std::int32_t acc_valid = b.const0();
  std::int32_t prefix = b.const1();  // b_0 & ... & b_{kappa-1}

  for (const Sublist& sl : split.sublists) {
    const int kappa = sl.kappa;
    if (!sl.leaves.empty()) {
      const std::int32_t c_kappa = b.land(prefix, b.lnot(b.input(kappa)));
      // Variable v of the sublist space reads global input kappa+delta-v
      // (v = delta-1 is b_{kappa+1}).
      auto product = [&](const bf::Cube& cube) {
        std::int32_t p = b.const1();
        for (int v = sl.delta - 1; v >= 0; --v) {
          const int st = cube.var(v);
          if (st < 0) continue;
          const int input_idx = kappa + sl.delta - v;
          CGS_CHECK(input_idx < n);
          const std::int32_t lit =
              st ? b.input(input_idx) : b.lnot(b.input(input_idx));
          p = b.land(p, lit);
        }
        return p;
      };
      auto sop = [&](const std::vector<bf::Cube>& cover) {
        std::int32_t s = b.const0();
        for (const bf::Cube& cube : cover) s = b.lor(s, product(cube));
        return s;
      };

      for (int iota = 0; iota < m; ++iota) {
        const bf::TruthTable tt = sl.output_bit_table(iota);
        std::vector<bf::Cube> raw;
        for (const Leaf& leaf : sl.leaves)
          if (bit_at(leaf.value, iota)) raw.push_back(leaf_cube(leaf, sl.delta));
        out.stats.cubes_raw += raw.size();
        const std::vector<bf::Cube> cover =
            minimize(tt, std::move(raw), config, &out.stats.all_exact);
        out.stats.cubes_minimized += cover.size();
        acc[static_cast<std::size_t>(iota)] = b.lor(
            acc[static_cast<std::size_t>(iota)], b.land(c_kappa, sop(cover)));
      }

      if (config.emit_valid_bit) {
        const bf::TruthTable vt = sl.valid_table();
        std::vector<bf::Cube> raw;
        for (const Leaf& leaf : sl.leaves) raw.push_back(leaf_cube(leaf, sl.delta));
        bool ignore = true;
        const std::vector<bf::Cube> cover =
            minimize(vt, std::move(raw), config, &ignore);
        acc_valid = b.lor(acc_valid, b.land(c_kappa, sop(cover)));
      }
    }
    if (kappa + 1 < n) prefix = b.land(prefix, b.input(kappa));
  }

  for (int iota = 0; iota < m; ++iota)
    b.add_output(acc[static_cast<std::size_t>(iota)]);
  if (config.emit_valid_bit) b.add_output(acc_valid);

  out.netlist = b.take();
  out.stats.netlist_ops = out.netlist.op_count();
  return out;
}

}  // namespace cgs::ct
