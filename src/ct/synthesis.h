#pragma once
// The paper's Fig. 4 pipeline, end to end:
//
//   ProbMatrix --> enumerate_leaves (list L, Theorem 1 form)
//              --> split_by_kappa  (sublists l_0..l_n')
//              --> per-sublist exact minimization (f^{iota,kappa}_Delta)
//              --> one-hot c_kappa chain + OR recombination  (Eqn. 2)
//              --> straight-line Netlist (the constant-time sampler core)
//
// The result is data, not code: evaluate it 64 lanes at a time through
// Netlist::eval (see BitslicedSampler), or emit it as C via bf::emit_c.

#include <cstddef>
#include <string>

#include "bf/netlist.h"
#include "ct/sublists.h"
#include "gauss/probmatrix.h"

namespace cgs::ct {

enum class MinimizeMode {
  kExact,      // QM + branch-and-bound per sublist (paper: espresso -Dso -S1)
  kHeuristic,  // espresso-lite expand/irredundant
  kMergeOnly,  // adjacency merging only
  kNone,       // raw leaf cubes
};

struct SynthesisConfig {
  MinimizeMode mode = MinimizeMode::kExact;
  bool emit_valid_bit = true;   // extra output: 1 iff the walk hit a leaf
  bool cse = true;              // structural hashing in the netlist
  int exact_max_vars = 12;      // kExact falls back to heuristic above this
  std::size_t qm_node_budget = 200000;
};

struct SynthesisStats {
  std::size_t num_leaves = 0;
  int max_kappa = -1;
  int delta = 0;
  std::size_t cubes_raw = 0;        // before minimization
  std::size_t cubes_minimized = 0;  // after
  std::size_t netlist_ops = 0;
  bool all_exact = true;            // every sublist minimized exactly
  std::string describe() const;
};

struct SynthesizedSampler {
  bf::Netlist netlist;      // inputs b_0..b_{n-1}; outputs: sample bits
                            // iota = 0..m-1 (LSB first), then valid bit
  int precision = 0;        // n
  int num_output_bits = 0;  // m
  bool has_valid_bit = false;
  SynthesisStats stats;
};

/// Run the full pipeline on a probability matrix.
SynthesizedSampler synthesize(const gauss::ProbMatrix& matrix,
                              const SynthesisConfig& config = {});

}  // namespace cgs::ct
