#include "ct/wide_sampler.h"

#include "common/check.h"

namespace cgs::ct {

WideBitslicedSampler::WideBitslicedSampler(SynthesizedSampler synth)
    : synth_(std::move(synth)),
      in_(static_cast<std::size_t>(synth_.precision)),
      out_words_(synth_.netlist.outputs().size()),
      scratch_(synth_.netlist.nodes().size()) {}

void WideBitslicedSampler::sample_magnitudes(
    RandomBitSource& rng, std::span<std::uint32_t> out,
    std::span<std::uint64_t> valid_mask) {
  CGS_CHECK(out.size() >= kBatch && valid_mask.size() >= 4);
  for (auto& w : in_)
    w = Word256{rng.next_word(), rng.next_word(), rng.next_word(),
                rng.next_word()};
  synth_.netlist.eval_wide(in_.data(), out_words_.data(), scratch_.data());

  const int m = synth_.num_output_bits;
  for (int group = 0; group < 4; ++group) {
    for (int lane = 0; lane < 64; ++lane) {
      std::uint32_t v = 0;
      for (int iota = 0; iota < m; ++iota)
        v |= static_cast<std::uint32_t>(
                 (out_words_[static_cast<std::size_t>(iota)][group] >> lane) &
                 1u)
             << iota;
      out[static_cast<std::size_t>(64 * group + lane)] = v;
    }
    valid_mask[static_cast<std::size_t>(group)] =
        synth_.has_valid_bit ? out_words_[static_cast<std::size_t>(m)][group]
                             : ~std::uint64_t(0);
  }
}

void WideBitslicedSampler::sample_batch(RandomBitSource& rng,
                                        std::span<std::int32_t> out,
                                        std::span<std::uint64_t> valid_mask) {
  std::uint32_t mags[kBatch];
  sample_magnitudes(rng, mags, valid_mask);
  for (int group = 0; group < 4; ++group) {
    const std::uint64_t signs = rng.next_word();
    for (int lane = 0; lane < 64; ++lane) {
      const auto mag = static_cast<std::int32_t>(mags[64 * group + lane]);
      const std::int32_t s = -static_cast<std::int32_t>((signs >> lane) & 1u);
      out[static_cast<std::size_t>(64 * group + lane)] = (mag ^ s) - s;
    }
  }
}

}  // namespace cgs::ct
