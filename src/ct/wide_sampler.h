#pragma once
// 256-lane bit-sliced sampling via GCC vector extensions (compiles to AVX2
// where available, SSE pairs otherwise). The paper's §3.2 observes that the
// method rides processor word width — this is the natural widening of the
// 64-lane sampler, used by the batch-width ablation bench.

#include <cstdint>
#include <span>
#include <vector>

#include "common/randombits.h"
#include "ct/synthesis.h"

namespace cgs::ct {

/// Four 64-bit lanes per SIMD word; lane group g of input word k holds path
/// bit k of samples 64g..64g+63.
using Word256 = std::uint64_t __attribute__((vector_size(32)));

class WideBitslicedSampler {
 public:
  static constexpr int kBatch = 256;

  explicit WideBitslicedSampler(SynthesizedSampler synth);

  const SynthesizedSampler& synth() const { return synth_; }

  /// 256 magnitude samples; returns the number of valid lanes written to
  /// `valid_mask` (4 x 64-bit masks, one per lane group).
  void sample_magnitudes(RandomBitSource& rng, std::span<std::uint32_t> out,
                         std::span<std::uint64_t> valid_mask);

  /// 256 signed samples with per-group validity masks.
  void sample_batch(RandomBitSource& rng, std::span<std::int32_t> out,
                    std::span<std::uint64_t> valid_mask);

 private:
  SynthesizedSampler synth_;
  std::vector<Word256> in_, out_words_, scratch_;
};

}  // namespace cgs::ct
