#include "ddg/ddgtree.h"

#include <sstream>

#include "common/check.h"

namespace cgs::ddg {

DdgTree::DdgTree(const gauss::ProbMatrix& m) {
  std::size_t internal_prev = 1;  // the root
  for (int i = 0; i < m.precision(); ++i) {
    DdgLevel lvl;
    lvl.level = i;
    lvl.node_count = 2 * internal_prev;
    const int h = m.column_weight(i);
    CGS_CHECK_MSG(static_cast<std::size_t>(h) <= lvl.node_count,
                  "column weight exceeds level width — matrix invalid");
    // Leaf d is the (d+1)-th highest set row of column i (Alg.1 scans rows
    // from MAXROW down, decrementing d per set bit).
    lvl.leaf_values.reserve(static_cast<std::size_t>(h));
    for (int row = static_cast<int>(m.rows()) - 1;
         row >= 0 && lvl.leaf_values.size() < static_cast<std::size_t>(h);
         --row) {
      if (m.bit(static_cast<std::size_t>(row), i))
        lvl.leaf_values.push_back(static_cast<std::uint32_t>(row));
    }
    total_leaves_ += lvl.leaf_values.size();
    internal_prev = lvl.internal_count();
    levels_.push_back(std::move(lvl));
    if (internal_prev == 0) {
      complete_ = true;
      break;
    }
  }
}

std::string DdgTree::to_string(int max_levels) const {
  std::ostringstream os;
  for (const auto& lvl : levels_) {
    if (lvl.level >= max_levels) break;
    os << "L" << lvl.level << ": nodes=" << lvl.node_count << " leaves=[";
    for (std::size_t d = 0; d < lvl.leaf_values.size(); ++d) {
      if (d) os << ' ';
      os << lvl.leaf_values[d];
    }
    os << "] internal=" << lvl.internal_count() << '\n';
  }
  return os.str();
}

}  // namespace cgs::ddg
