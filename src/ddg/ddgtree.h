#pragma once
// Explicit DDG (discrete distribution generating) tree built from a
// probability matrix — the object in the paper's Fig. 1. The sampler itself
// never materializes this tree (it scans columns on the fly); the explicit
// form exists for tests, visualization, and the leaf enumerator's goldens.
//
// Level conventions follow the paper: children of the root live at level 0;
// level i corresponds to probability-matrix column i. Within a level, nodes
// are indexed by the Alg.1 counter d (0-based): d in [0, h_i) are leaves,
// with d mapping to the (d+1)-th highest set row of column i; the remaining
// nodes are internal.

#include <cstdint>
#include <string>
#include <vector>

#include "gauss/probmatrix.h"

namespace cgs::ddg {

struct DdgLevel {
  int level = 0;                       // == matrix column
  std::size_t node_count = 0;          // 2 * internal nodes of level-1
  std::vector<std::uint32_t> leaf_values;  // leaf_values[d] for d < h_i
  std::size_t internal_count() const { return node_count - leaf_values.size(); }
};

class DdgTree {
 public:
  explicit DdgTree(const gauss::ProbMatrix& matrix);

  const std::vector<DdgLevel>& levels() const { return levels_; }
  std::size_t total_leaves() const { return total_leaves_; }

  /// True if every node is eventually a leaf within the matrix precision
  /// (only possible when the truncated mass sums exactly to 1).
  bool complete() const { return complete_; }

  /// ASCII dump of the first `max_levels` levels (Fig. 1 style).
  std::string to_string(int max_levels = 8) const;

 private:
  std::vector<DdgLevel> levels_;
  std::size_t total_leaves_ = 0;
  bool complete_ = false;
};

}  // namespace cgs::ddg
