#include "ddg/kysampler.h"

#include "common/check.h"

namespace cgs::ddg {

namespace {

// Core of Alg. 1: one level step. `d` is the running distance counter
// (pre-update). Returns the sampled row if the walk hit a leaf this level.
std::optional<std::uint32_t> level_step(const gauss::ProbMatrix& m, int col,
                                        std::int64_t& d, int random_bit) {
  d = 2 * d + random_bit;
  for (int row = static_cast<int>(m.rows()) - 1; row >= 0; --row) {
    d -= m.bit(static_cast<std::size_t>(row), col);
    if (d == -1) return static_cast<std::uint32_t>(row);
  }
  return std::nullopt;
}

}  // namespace

WalkResult KnuthYaoSampler::walk(RandomBitSource& rng) const {
  std::int64_t d = 0;
  for (int col = 0; col < matrix_->precision(); ++col) {
    const int r = rng.next_bit();
    if (auto row = level_step(*matrix_, col, d, r)) {
      return WalkResult{*row, col + 1, true};
    }
  }
  return WalkResult{0, matrix_->precision(), false};
}

std::uint32_t KnuthYaoSampler::sample_magnitude(RandomBitSource& rng) const {
  for (;;) {
    const WalkResult w = walk(rng);
    if (w.hit) return w.value;
    ++restarts_;
  }
}

std::int32_t KnuthYaoSampler::sample(RandomBitSource& rng) const {
  const auto mag = static_cast<std::int32_t>(sample_magnitude(rng));
  const int sign = rng.next_bit();
  return sign ? -mag : mag;
}

std::optional<WalkResult> KnuthYaoSampler::walk_bits(
    const std::vector<int>& bits) const {
  std::int64_t d = 0;
  const int n = matrix_->precision();
  for (int col = 0; col < n && col < static_cast<int>(bits.size()); ++col) {
    CGS_DCHECK(bits[static_cast<std::size_t>(col)] == 0 ||
               bits[static_cast<std::size_t>(col)] == 1);
    if (auto row = level_step(*matrix_, col, d,
                              bits[static_cast<std::size_t>(col)])) {
      return WalkResult{*row, col + 1, true};
    }
  }
  return std::nullopt;
}

}  // namespace cgs::ddg
