#pragma once
// Algorithm 1 from the paper: column-scanning Knuth-Yao sampling. This is
// the non-constant-time *reference* sampler — the oracle every other sampler
// in the library is checked against, and the generator of ground truth for
// the Boolean-function synthesis.

#include <cstdint>
#include <optional>

#include "common/randombits.h"
#include "gauss/probmatrix.h"

namespace cgs::ddg {

/// Outcome of one random walk, including how many bits were consumed —
/// needed by the Theorem-1 tests and the leaf enumerator cross-check.
struct WalkResult {
  std::uint32_t value = 0;  // magnitude sample
  int bits_used = 0;        // c+1: levels visited until the leaf hit
  bool hit = false;         // false: walked past the last column (restart)
};

class KnuthYaoSampler {
 public:
  explicit KnuthYaoSampler(const gauss::ProbMatrix& matrix)
      : matrix_(&matrix) {}

  /// One walk; does not restart on a miss.
  WalkResult walk(RandomBitSource& rng) const;

  /// Magnitude sample with restart-on-miss (the practical sampler).
  std::uint32_t sample_magnitude(RandomBitSource& rng) const;

  /// Signed sample: magnitude plus a uniform sign bit. Folding makes this
  /// exact: P(0) is stored unscaled, P(v>0) stored as 2*D(v), and the sign
  /// halves it back.
  std::int32_t sample(RandomBitSource& rng) const;

  /// Deterministic walk over a caller-supplied bit string (b[0] consumed
  /// first). Returns nullopt if the string misses or is too short.
  std::optional<WalkResult> walk_bits(const std::vector<int>& bits) const;

  std::uint64_t restarts() const { return restarts_; }

 private:
  const gauss::ProbMatrix* matrix_;
  mutable std::uint64_t restarts_ = 0;
};

}  // namespace cgs::ddg
