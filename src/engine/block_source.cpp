#include "engine/block_source.h"

#include "common/check.h"

namespace cgs::engine {

EngineBlockSource::EngineBlockSource(SamplerEngine& engine,
                                     std::uint64_t word_seed,
                                     std::size_t block)
    : engine_(&engine), words_(word_seed), block_(block) {
  CGS_CHECK_MSG(block >= 1, "block source needs a positive block size");
}

void EngineBlockSource::fill_base(std::span<std::int32_t> out) {
  engine_->sample(out);
}

void EngineBlockSource::fill_words(std::span<std::uint64_t> out) {
  words_.fill_words(out);
}

const char* EngineBlockSource::name() const {
  switch (engine_->backend()) {
    case Backend::kCompiled: return "engine(compiled)";
    case Backend::kWide: return "engine(wide-256)";
    case Backend::kBitsliced: return "engine(bitsliced-64)";
    case Backend::kAuto: break;
  }
  return "engine";
}

}  // namespace cgs::engine
