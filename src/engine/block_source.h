#pragma once
// EngineBlockSource: the production BlockSource — base-sample refills are
// served by a SamplerEngine (one request fans out across every lane of the
// selected backend and, on multi-worker engines, every worker at once), and
// uniform words come from a dedicated ChaCha20 stream so rejection uniforms
// and nonces never perturb the engine's per-worker netlist streams. One
// instance per consumer thread; the engine itself may be shared (its
// sample() serializes internally) but sharing forfeits per-consumer
// determinism — the SigningService gives each worker a private engine.

#include <cstdint>

#include "common/blocksource.h"
#include "engine/engine.h"
#include "prng/chacha20.h"

namespace cgs::engine {

class EngineBlockSource final : public BlockSource {
 public:
  /// `engine` (not owned) must outlive the source. `word_seed` keys the
  /// auxiliary word stream; derive it from the same root seed as the
  /// engine's so the pair stays deterministic as a unit.
  EngineBlockSource(SamplerEngine& engine, std::uint64_t word_seed,
                    std::size_t block = 1024);

  void fill_base(std::span<std::int32_t> out) override;
  void fill_words(std::span<std::uint64_t> out) override;
  std::size_t preferred_block() const override { return block_; }
  const char* name() const override;
  bool constant_time() const override { return true; }

  SamplerEngine& engine() { return *engine_; }

 private:
  SamplerEngine* engine_;
  prng::ChaCha20Source words_;
  std::size_t block_;
};

}  // namespace cgs::engine
