#include "engine/engine.h"

#include <span>
#include <thread>

#include "common/check.h"
#include "common/randombits.h"
#include "ct/bitsliced_sampler.h"
#include "ct/compiled_sampler.h"
#include "ct/wide_sampler.h"
#include "prng/chacha20.h"
#include "prng/splitmix.h"

namespace cgs::engine {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kCompiled: return "compiled";
    case Backend::kWide: return "wide-256";
    case Backend::kBitsliced: return "bitsliced-64";
  }
  return "?";
}

namespace {

// Serves one 64-lane group its slice of a wide round's bulk word draw:
// the wide sampler interleaves 4 words per input bit (then 4 sign words),
// so group g's i-th word is slot 4i + g. Replaying through this adapter
// makes a narrow backend reproduce the wide backend's exact lane values —
// the engine's cross-backend stream identity.
class StridedWordSource final : public RandomBitSource {
 public:
  StridedWordSource(std::span<const std::uint64_t> words, int group)
      : words_(words), group_(static_cast<std::size_t>(group)) {}

  std::uint64_t next_word() override {
    const std::size_t slot = 4 * pos_++ + group_;
    CGS_CHECK_MSG(slot < words_.size(),
                  "engine: narrow batch drew past its wide-round words");
    return words_[slot];
  }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t group_;
  std::size_t pos_ = 0;
};

}  // namespace

// One worker = one PRNG stream + one backend instance's worth of buffers.
// The compiled kernel itself lives on the engine (stateless eval); the
// interpreted backends are per-worker because they carry scratch state.
struct SamplerEngine::Worker {
  Worker(SamplerEngine& engine, std::uint64_t seed)
      : rng(seed), engine_(engine) {
    const auto& synth = *engine.synth_;
    switch (engine.backend_) {
      case Backend::kCompiled:
        // The kernel's 256-lane vector form is ~the wide interpreter's
        // batch width at compiled speed; fall back to the 64-lane symbol
        // on host compilers without vector extensions.
        if (engine.kernel_->has_wide())
          wide_compiled =
              std::make_unique<ct::WideCompiledSampler>(synth, engine.kernel_);
        else
          compiled = std::make_unique<ct::CompiledBitslicedSampler>(
              synth, engine.kernel_);
        break;
      case Backend::kWide:
        wide = std::make_unique<ct::WideBitslicedSampler>(synth);
        break;
      case Backend::kBitsliced:
        interp = std::make_unique<ct::BitslicedSampler>(synth);
        break;
      case Backend::kAuto:
        CGS_CHECK_MSG(false, "engine: backend unresolved");
    }
  }

  ~Worker() { CGS_DCHECK(!thread.joinable()); }

  /// Pool loop: wait for a dispatched generation, run the assigned slice,
  /// report completion. Started only when the engine has > 1 worker.
  void run() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(engine_.pool_mu_);
      engine_.work_cv_.wait(lock, [&] {
        return engine_.stopping_ || engine_.generation_ != seen;
      });
      if (engine_.stopping_) return;
      seen = engine_.generation_;
      const std::span<std::int32_t> slice = task;
      lock.unlock();
      std::exception_ptr error;
      if (!slice.empty()) {
        // An escaped exception would std::terminate the process (and leave
        // pending_ stuck); hand it to the dispatching thread instead.
        try {
          fill(slice);
        } catch (...) {
          error = std::current_exception();
        }
      }
      lock.lock();
      if (error && !engine_.pool_error_) engine_.pool_error_ = error;
      if (--engine_.pending_ == 0) engine_.done_cv_.notify_one();
    }
  }

  /// Append valid signed samples until `out` is full. Invalid lanes (a DDG
  /// restart; ~never at cryptographic precision) are dropped, exactly like
  /// the buffered single-stream samplers.
  ///
  /// Every backend consumes the PRNG in the *wide* order — 4 interleaved
  /// words per input bit, then 4 sign words — so for a fixed seed the
  /// engine's sample stream is bit-identical across compiled / wide /
  /// bitsliced (the cross-backend differential grid in test_service holds
  /// this). The 64-lane backends get there by bulk-drawing one wide
  /// round's words and replaying group g's strided slice (words 4k + g)
  /// through four narrow batches.
  void fill(std::span<std::int32_t> out) {
    // At any real precision P(all 64 lanes invalid) is astronomically small,
    // so consecutive empty batches mean a pathological netlist — e.g. a
    // crafted cache file whose valid bit is never true, which passes every
    // static shape check. Fail loudly rather than spin forever.
    constexpr int kMaxEmptyBatches = 1000;
    int empty_streak = 0;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const std::size_t before = pos;
      if (wide || wide_compiled) {
        std::int32_t batch[ct::WideBitslicedSampler::kBatch];
        std::uint64_t mask[4];
        if (wide)
          wide->sample_batch(rng, batch, mask);
        else
          wide_compiled->sample_batch(rng, batch, mask);
        for (int lane = 0; lane < ct::WideBitslicedSampler::kBatch && pos < out.size(); ++lane)
          if ((mask[lane / 64] >> (lane % 64)) & 1u) out[pos++] = batch[lane];
      } else {
        // One wide round's randomness: per narrow batch the sampler draws
        // `precision` magnitude words plus one sign word.
        const auto per_group =
            static_cast<std::size_t>(engine_.synth_->precision) + 1;
        round_words.resize(4 * per_group);
        rng.fill_words(round_words);
        for (int group = 0; group < 4; ++group) {
          StridedWordSource src(round_words, group);
          std::int32_t batch[ct::BitslicedSampler::kBatch];
          const std::uint64_t valid = interp
                                          ? interp->sample_batch(src, batch)
                                          : compiled->sample_batch(src, batch);
          for (int lane = 0; lane < ct::BitslicedSampler::kBatch && pos < out.size(); ++lane)
            if ((valid >> lane) & 1u) out[pos++] = batch[lane];
        }
      }
      empty_streak = pos == before ? empty_streak + 1 : 0;
      CGS_CHECK_MSG(empty_streak < kMaxEmptyBatches,
                    "engine: sampler produced no valid lanes for "
                        << kMaxEmptyBatches << " consecutive batches");
    }
  }

  prng::ChaCha20Source rng;
  std::thread thread;                // pool thread (empty for worker 0 solo)
  std::span<std::int32_t> task;      // slice for the current generation
  std::vector<std::uint64_t> round_words;  // 64-lane wide-round replay buffer

 private:
  SamplerEngine& engine_;
  std::unique_ptr<ct::WideBitslicedSampler> wide;
  std::unique_ptr<ct::WideCompiledSampler> wide_compiled;
  std::unique_ptr<ct::BitslicedSampler> interp;
  std::unique_ptr<ct::CompiledBitslicedSampler> compiled;
};

SamplerEngine::SamplerEngine(
    std::shared_ptr<const ct::SynthesizedSampler> synth, EngineOptions options)
    : synth_(std::move(synth)), backend_(options.backend) {
  CGS_CHECK_MSG(synth_ != nullptr, "engine: null sampler");

  if (backend_ == Backend::kAuto || backend_ == Backend::kCompiled) {
    if (options.shared_kernel) {
      CGS_CHECK_MSG(
          options.shared_kernel->num_inputs() ==
                  static_cast<std::size_t>(synth_->precision) &&
              options.shared_kernel->num_outputs() ==
                  synth_->netlist.outputs().size(),
          "engine: shared kernel shape does not match the sampler netlist");
      kernel_ = options.shared_kernel;
      backend_ = Backend::kCompiled;
    } else if (ct::CompiledKernel::is_available()) {
      try {
        kernel_ = std::make_shared<const ct::CompiledKernel>(*synth_);
        backend_ = Backend::kCompiled;
      } catch (const Error&) {
        CGS_CHECK_MSG(backend_ != Backend::kCompiled,
                      "engine: compiled backend requested but unavailable");
        kernel_.reset();
      }
    } else {
      CGS_CHECK_MSG(backend_ != Backend::kCompiled,
                    "engine: compiled backend requested but no host compiler");
    }
    if (!kernel_) backend_ = Backend::kWide;
  }

  int threads = options.num_threads;
  if (threads <= 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  // SplitMix64 over the root seed: statistically independent 64-bit seeds
  // per worker, so the ChaCha20 streams never overlap keys.
  prng::SplitMix64Source seeder(options.root_seed);
  for (int i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>(*this, seeder.next_word()));
  if (workers_.size() > 1) {
    try {
      for (auto& w : workers_) w->thread = std::thread([worker = w.get()] {
        worker->run();
      });
    } catch (...) {
      // A failed spawn (thread exhaustion) must join the threads already
      // started: unwinding with joinable std::thread members would
      // std::terminate, and they wait on condvars this object owns.
      {
        std::lock_guard<std::mutex> lock(pool_mu_);
        stopping_ = true;
      }
      work_cv_.notify_all();
      for (auto& w : workers_)
        if (w->thread.joinable()) w->thread.join();
      throw;
    }
  }
}

SamplerEngine::~SamplerEngine() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void SamplerEngine::sample(std::span<std::int32_t> out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = out.size();
  if (n == 0) return;

  // Below one batch per worker the handshake cost dominates — and a worker
  // handed less than one batch still pays a full netlist eval (256 lanes on
  // the wide backend) to keep a fraction of it. Serve inline on the calling
  // thread (worker 0's stream — safe: no generation is in flight while mu_
  // is held, so its pool thread is parked).
  const std::size_t batch =
      backend_ == Backend::kWide ||
              (backend_ == Backend::kCompiled && kernel_->has_wide())
          ? ct::WideBitslicedSampler::kBatch
          : ct::BitslicedSampler::kBatch;
  const std::size_t num_workers = workers_.size();
  if (num_workers == 1 || n < num_workers * batch) {
    workers_[0]->fill(out);
    total_samples_ += n;
    return;
  }

  const std::size_t chunk = (n + num_workers - 1) / num_workers;
  {
    std::lock_guard<std::mutex> pool_lock(pool_mu_);
    for (std::size_t i = 0; i < num_workers; ++i) {
      const std::size_t begin = std::min(i * chunk, n);
      workers_[i]->task = out.subspan(begin, std::min(chunk, n - begin));
    }
    pending_ = num_workers;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> pool_lock(pool_mu_);
    done_cv_.wait(pool_lock, [&] { return pending_ == 0; });
    std::swap(error, pool_error_);
  }
  if (error) std::rethrow_exception(error);
  total_samples_ += n;
}

std::vector<std::int32_t> SamplerEngine::sample(std::size_t n) {
  std::vector<std::int32_t> out(n);
  sample(out);
  return out;
}

}  // namespace cgs::engine
