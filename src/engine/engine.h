#pragma once
// SamplerEngine: the online half of the offline/online split — a batch
// sampling service over one synthesized netlist. Auto-selection picks the
// fastest runtime backend available on this machine: the CompiledKernel
// (netlist emitted as C, host-compiled with -march=native when the flag
// exists; runs the 256-lane vector form when the host compiler accepts
// it, else the 64-lane symbol) when a host compiler exists, else the
// 256-lane WideBitslicedSampler (GCC vector extensions, always available
// on the gcc/clang toolchains this library targets). The 64-lane
// interpreted BitslicedSampler remains explicitly selectable for
// comparison runs. Bulk requests are served from N worker
// threads. Each worker owns an
// independent ChaCha20 stream whose key is derived from the engine's root
// seed and the worker index (SplitMix64 mixing), so output is fully
// deterministic for a fixed (root_seed, num_threads, request size) and no
// two workers ever share PRNG state. The compiled kernel is emitted and
// compiled once and shared by all workers (its eval is stateless); the
// interpreted backends are instantiated per worker.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ct/synthesis.h"

namespace cgs::ct {
class CompiledKernel;
}

namespace cgs::engine {

enum class Backend {
  kAuto,       // pick the fastest available at construction
  kCompiled,   // host-compiled netlist kernel (throws if unavailable)
  kWide,       // 256-lane vector-extension interpreter
  kBitsliced,  // 64-lane word interpreter
};

const char* backend_name(Backend b);

struct EngineOptions {
  Backend backend = Backend::kAuto;
  int num_threads = 0;          // 0 -> hardware concurrency (min 1)
  std::uint64_t root_seed = 0;  // per-worker streams derived from this
  /// Optional pre-compiled kernel for this synth (see SamplerEngine::
  /// kernel()): hosting the netlist C takes seconds for large supports, so
  /// services running several engines over one base compile once and share.
  /// Must have been built from the identical netlist; shape-checked.
  std::shared_ptr<const ct::CompiledKernel> shared_kernel;
};

class SamplerEngine {
 public:
  explicit SamplerEngine(std::shared_ptr<const ct::SynthesizedSampler> synth,
                         EngineOptions options = {});
  ~SamplerEngine();

  SamplerEngine(const SamplerEngine&) = delete;
  SamplerEngine& operator=(const SamplerEngine&) = delete;

  /// The backend actually selected (never kAuto).
  Backend backend() const { return backend_; }
  int num_threads() const { return static_cast<int>(workers_.size()); }
  const ct::SynthesizedSampler& synth() const { return *synth_; }
  /// The compiled kernel in use (null on interpreted backends) — hand it to
  /// another engine over the same synth via EngineOptions::shared_kernel.
  std::shared_ptr<const ct::CompiledKernel> kernel() const { return kernel_; }

  /// Fill `out` with signed base-Gaussian samples, the request split evenly
  /// across the persistent worker pool (requests smaller than one batch per
  /// worker are served inline on the calling thread). Each worker continues
  /// its own PRNG stream across calls. Concurrent calls are serialized
  /// internally.
  void sample(std::span<std::int32_t> out);
  std::vector<std::int32_t> sample(std::size_t n);

  /// Lifetime sample count (across all calls). Safe to poll from a
  /// monitoring thread while sample() runs.
  std::uint64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;
  friend struct Worker;

  std::shared_ptr<const ct::SynthesizedSampler> synth_;
  Backend backend_;
  std::shared_ptr<const ct::CompiledKernel> kernel_;  // shared by all workers
  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex mu_;  // serializes sample() calls
  std::atomic<std::uint64_t> total_samples_{0};

  // Persistent pool handshake (threads live for the engine's lifetime; a
  // spawn-per-request design would pay thread create+join on every call).
  std::mutex pool_mu_;
  std::condition_variable work_cv_, done_cv_;
  std::uint64_t generation_ = 0;  // bumped once per dispatched request
  std::size_t pending_ = 0;
  std::exception_ptr pool_error_;  // first worker failure, rethrown by sample()
  bool stopping_ = false;
};

}  // namespace cgs::engine
