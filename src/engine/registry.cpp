#include "engine/registry.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "gauss/probmatrix.h"
#include "serial/formats.h"

namespace cgs::engine {

namespace {

// Bump whenever ct::synthesize (or anything upstream of it: leaf
// enumeration, minimization, netlist building, the probability matrix) can
// produce a different netlist for the same (params, config) — the frame's
// kFormatVersion only guards the payload *encoding*, not the algorithm, so
// without this a warm cache would serve pre-fix netlists forever.
constexpr int kSynthesisRevision = 1;

}  // namespace

std::string cache_key(const gauss::GaussianParams& p,
                      const ct::SynthesisConfig& c) {
  std::ostringstream os;
  os << "r" << kSynthesisRevision << "-";
  os << "g" << p.sigma_num << "x" << p.sigma_den << "-s" << p.sigma_sq_num
     << "x" << p.sigma_sq_den << "-t" << p.tau << "-n" << p.precision
     << (p.normalization == gauss::Normalization::kDiscrete ? "-nd" : "-nc")
     << (p.rounding == gauss::Rounding::kTruncate ? "rt" : "rn") << "-m"
     << static_cast<int>(c.mode) << (c.emit_valid_bit ? "v1" : "v0")
     << (c.cse ? "c1" : "c0") << "-x" << c.exact_max_vars << "-q"
     << c.qm_node_budget;
  return os.str();
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("CGS_CACHE_DIR"); env && *env) return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return std::string(xdg) + "/cgs-samplers";
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/cgs-samplers";
  return ".cgs-cache";
}

SamplerRegistry::SamplerRegistry(Options options)
    : options_(std::move(options)) {
  if (options_.cache_dir.empty()) options_.cache_dir = default_cache_dir();
}

SamplerRegistry::SamplerPtr SamplerRegistry::get(
    const gauss::GaussianParams& params, const ct::SynthesisConfig& config,
    Source* source) {
  const std::string key = cache_key(params, config);

  std::promise<Entry> promise;
  std::shared_future<Entry> future;
  bool creator = false;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else {
      creator = true;
      epoch = epoch_;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    }
  }

  if (creator) {
    // Materialize outside the lock: a slow synthesis for one key must not
    // block lookups (or other syntheses) for different keys.
    try {
      promise.set_value(materialize(params, config, key));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      // Allow a later retry — but only drop OUR entry: if clear_memory()
      // ran meanwhile, the key may now hold another thread's fresh
      // in-flight future, which must survive.
      if (epoch == epoch_) cache_.erase(key);
    }
  }

  const Entry& entry = future.get();  // rethrows a materialization failure
  // Only the call that did the work reports disk/synthesis; everyone later
  // (or anyone who waited on the in-flight future) got it from memory.
  if (source) *source = creator ? entry.source : Source::kMemory;
  return entry.sampler;
}

SamplerRegistry::Entry SamplerRegistry::materialize(
    const gauss::GaussianParams& params, const ct::SynthesisConfig& config,
    const std::string& key) const {
  namespace fs = std::filesystem;
  const std::string path = options_.cache_dir + "/" + key + ".cgs";

  if (options_.use_disk) {
    if (auto bytes = serial::read_file(path)) {
      try {
        serial::SamplerFrame frame = serial::deserialize_sampler(*bytes);
        // The frame embeds the (params, config) it was synthesized for; a
        // valid file renamed under the wrong key (sync script, manual copy,
        // cache_key format change) must count as a miss, not silently serve
        // the wrong distribution.
        if (cache_key(frame.params, frame.config) == key) {
          auto sampler = std::make_shared<ct::SynthesizedSampler>(
              std::move(frame.sampler));
          return {std::move(sampler), Source::kDisk};
        }
      } catch (const Error&) {
        // Bad magic / version skew / checksum or shape corruption: treat as
        // a miss, re-synthesize below and overwrite the bad file.
      }
    }
  }

  const gauss::ProbMatrix matrix(params);
  auto sampler =
      std::make_shared<ct::SynthesizedSampler>(ct::synthesize(matrix, config));

  if (options_.use_disk) {
    std::error_code ec;
    fs::create_directories(options_.cache_dir, ec);
    // Persist best-effort: an unwritable cache directory degrades to
    // synthesize-per-process, never to an error.
    if (!ec)
      serial::write_file_atomic(path,
                                serial::serialize(params, config, *sampler));
  }
  return {std::move(sampler), Source::kSynthesized};
}

void SamplerRegistry::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  ++epoch_;
}

SamplerRegistry& SamplerRegistry::global() {
  static SamplerRegistry* instance = new SamplerRegistry();
  return *instance;
}

}  // namespace cgs::engine
