#include "engine/registry.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "gauss/probmatrix.h"
#include "serial/formats.h"

namespace cgs::engine {

namespace {

// Bump whenever ct::synthesize (or anything upstream of it: leaf
// enumeration, minimization, netlist building, the probability matrix) can
// produce a different netlist for the same (params, config) — the frame's
// kFormatVersion only guards the payload *encoding*, not the algorithm, so
// without this a warm cache would serve pre-fix netlists forever.
constexpr int kSynthesisRevision = 1;

// Same idea for recipes: bump when gauss::plan_recipe (or the default
// candidate base set it scores) changes, so a warm cache never serves a
// recipe the current planner would no longer produce.
constexpr int kRecipeRevision = 1;

// Canonical filename-safe rendering of a double: the IEEE-754 bit pattern
// in lowercase hex, with -0 collapsed to +0 so the two spellings of zero
// share one cache entry.
std::string hex_bits(double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v);
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << bits;
  return os.str();
}

// Approximate resident cost of a synthesized sampler: the netlist's node
// and output arrays plus its eval scratch dominate.
std::size_t sampler_footprint_bytes(const ct::SynthesizedSampler& s) {
  return sizeof(ct::SynthesizedSampler) +
         s.netlist.nodes().capacity() * sizeof(bf::Node) +
         s.netlist.outputs().capacity() * sizeof(std::int32_t) +
         s.netlist.nodes().size() * sizeof(std::uint64_t);
}

SamplerRegistry::Source to_source(
    store::BoundedCache<std::string, ct::SynthesizedSampler>::Outcome o) {
  using Outcome =
      store::BoundedCache<std::string, ct::SynthesizedSampler>::Outcome;
  switch (o) {
    case Outcome::kHit:
      return SamplerRegistry::Source::kMemory;
    case Outcome::kWarmStart:
      return SamplerRegistry::Source::kDisk;
    case Outcome::kBuilt:
      break;
  }
  return SamplerRegistry::Source::kSynthesized;
}

SamplerRegistry::Source to_source(
    store::BoundedCache<std::string, gauss::ConvolutionRecipe>::Outcome o) {
  using Outcome =
      store::BoundedCache<std::string, gauss::ConvolutionRecipe>::Outcome;
  switch (o) {
    case Outcome::kHit:
      return SamplerRegistry::Source::kMemory;
    case Outcome::kWarmStart:
      return SamplerRegistry::Source::kDisk;
    case Outcome::kBuilt:
      break;
  }
  return SamplerRegistry::Source::kSynthesized;
}

}  // namespace

std::string cache_key(const gauss::GaussianParams& p,
                      const ct::SynthesisConfig& c) {
  std::ostringstream os;
  os << "r" << kSynthesisRevision << "-";
  os << "g" << p.sigma_num << "x" << p.sigma_den << "-s" << p.sigma_sq_num
     << "x" << p.sigma_sq_den << "-t" << p.tau << "-n" << p.precision
     << (p.normalization == gauss::Normalization::kDiscrete ? "-nd" : "-nc")
     << (p.rounding == gauss::Rounding::kTruncate ? "rt" : "rn") << "-m"
     << static_cast<int>(c.mode) << (c.emit_valid_bit ? "v1" : "v0")
     << (c.cse ? "c1" : "c0") << "-x" << c.exact_max_vars << "-q"
     << c.qm_node_budget;
  return os.str();
}

std::string recipe_cache_key(double target_sigma, double target_center,
                             double eps, int base_precision) {
  CGS_CHECK_MSG(std::isfinite(target_sigma) && target_sigma > 0.0,
                "recipe key: sigma must be finite and positive");
  CGS_CHECK_MSG(std::isfinite(target_center), "recipe key: non-finite center");
  CGS_CHECK(eps > 0.0 && eps < 1.0 && base_precision >= 1);
  std::ostringstream os;
  os << "recipe-r" << kRecipeRevision << "-s" << hex_bits(target_sigma)
     << "-c" << hex_bits(target_center) << "-e" << hex_bits(eps) << "-p"
     << base_precision;
  return os.str();
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("CGS_CACHE_DIR"); env && *env) return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return std::string(xdg) + "/cgs-samplers";
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/cgs-samplers";
  return ".cgs-cache";
}

SamplerRegistry::SamplerRegistry(Options options)
    : options_(std::move(options)),
      netlists_(options_.netlist_cache),
      recipes_(options_.recipe_cache) {
  if (options_.cache_dir.empty()) options_.cache_dir = default_cache_dir();
}

SamplerRegistry::SamplerPtr SamplerRegistry::get(
    const gauss::GaussianParams& params, const ct::SynthesisConfig& config,
    Source* source) {
  const std::string key = cache_key(params, config);

  // Materialization runs outside the cache lock (single-flight per key): a
  // slow synthesis for one key never blocks lookups — or syntheses — for
  // different keys, and a synthesis that throws is evicted so the next
  // request retries instead of replaying the failure.
  auto pinned = netlists_.get_or_build(key, [&]() -> NetlistCache::Built {
    namespace fs = std::filesystem;
    const std::string path = options_.cache_dir + "/" + key + ".cgs";

    if (options_.use_disk) {
      if (auto bytes = serial::read_file(path)) {
        try {
          serial::SamplerFrame frame = serial::deserialize_sampler(*bytes);
          // The frame embeds the (params, config) it was synthesized for; a
          // valid file renamed under the wrong key (sync script, manual
          // copy, cache_key format change) must count as a miss, not
          // silently serve the wrong distribution.
          if (cache_key(frame.params, frame.config) == key) {
            auto sampler = std::make_shared<ct::SynthesizedSampler>(
                std::move(frame.sampler));
            const std::size_t cost = sampler_footprint_bytes(*sampler);
            return {std::move(sampler), cost, /*warm_start=*/true};
          }
        } catch (const Error&) {
          // Bad magic / version skew / checksum or shape corruption: treat
          // as a miss, re-synthesize below and overwrite the bad file.
        }
      }
    }

    const gauss::ProbMatrix matrix(params);
    auto sampler = std::make_shared<ct::SynthesizedSampler>(
        ct::synthesize(matrix, config));

    if (options_.use_disk) {
      std::error_code ec;
      fs::create_directories(options_.cache_dir, ec);
      // Persist best-effort: an unwritable cache directory degrades to
      // synthesize-per-process, never to an error.
      if (!ec)
        serial::write_file_atomic(
            path, serial::serialize(params, config, *sampler));
    }
    const std::size_t cost = sampler_footprint_bytes(*sampler);
    return {std::move(sampler), cost, /*warm_start=*/false};
  });

  if (source) *source = to_source(pinned.outcome());
  return pinned.value();
}

gauss::ConvolutionRecipe SamplerRegistry::get_recipe(double target_sigma,
                                                     double target_center,
                                                     double eps,
                                                     int base_precision,
                                                     Source* source) {
  const std::string key =
      recipe_cache_key(target_sigma, target_center, eps, base_precision);

  auto pinned = recipes_.get_or_build(key, [&]() -> RecipeCache::Built {
    namespace fs = std::filesystem;
    const std::string path = options_.cache_dir + "/" + key + ".cgs";
    const std::size_t cost = sizeof(gauss::ConvolutionRecipe) + key.size();
    if (options_.use_disk) {
      if (auto bytes = serial::read_file(path)) {
        try {
          gauss::ConvolutionRecipe cand = serial::deserialize_recipe(*bytes);
          // Like sampler frames: a valid frame misfiled under the wrong key
          // must count as a miss, not serve the wrong target.
          if (recipe_cache_key(cand.target_sigma, cand.target_center,
                               cand.eps, cand.base.precision) == key) {
            return {std::make_shared<gauss::ConvolutionRecipe>(
                        std::move(cand)),
                    cost, /*warm_start=*/true};
          }
        } catch (const Error&) {
          // Corrupted/foreign frame: replan below and overwrite.
        }
      }
    }

    const auto bases = gauss::default_recipe_bases(base_precision);
    auto recipe = std::make_shared<gauss::ConvolutionRecipe>(
        gauss::plan_recipe(target_sigma, target_center, bases, eps));
    if (options_.use_disk) {
      std::error_code ec;
      fs::create_directories(options_.cache_dir, ec);
      if (!ec) serial::write_file_atomic(path, serial::serialize(*recipe));
    }
    return {std::move(recipe), cost, /*warm_start=*/false};
  });

  if (source) *source = to_source(pinned.outcome());
  return *pinned;
}

obs::CacheStats SamplerRegistry::netlist_cache_stats() const {
  return netlists_.stats();
}

obs::CacheStats SamplerRegistry::recipe_cache_stats() const {
  return recipes_.stats();
}

void SamplerRegistry::clear_memory() {
  netlists_.clear();
  recipes_.clear();
}

SamplerRegistry& SamplerRegistry::global() {
  static SamplerRegistry* instance = new SamplerRegistry();
  return *instance;
}

}  // namespace cgs::engine
