#include "engine/registry.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "gauss/probmatrix.h"
#include "serial/formats.h"

namespace cgs::engine {

namespace {

// Bump whenever ct::synthesize (or anything upstream of it: leaf
// enumeration, minimization, netlist building, the probability matrix) can
// produce a different netlist for the same (params, config) — the frame's
// kFormatVersion only guards the payload *encoding*, not the algorithm, so
// without this a warm cache would serve pre-fix netlists forever.
constexpr int kSynthesisRevision = 1;

// Same idea for recipes: bump when gauss::plan_recipe (or the default
// candidate base set it scores) changes, so a warm cache never serves a
// recipe the current planner would no longer produce.
constexpr int kRecipeRevision = 1;

// Canonical filename-safe rendering of a double: the IEEE-754 bit pattern
// in lowercase hex, with -0 collapsed to +0 so the two spellings of zero
// share one cache entry.
std::string hex_bits(double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v);
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << bits;
  return os.str();
}

}  // namespace

std::string cache_key(const gauss::GaussianParams& p,
                      const ct::SynthesisConfig& c) {
  std::ostringstream os;
  os << "r" << kSynthesisRevision << "-";
  os << "g" << p.sigma_num << "x" << p.sigma_den << "-s" << p.sigma_sq_num
     << "x" << p.sigma_sq_den << "-t" << p.tau << "-n" << p.precision
     << (p.normalization == gauss::Normalization::kDiscrete ? "-nd" : "-nc")
     << (p.rounding == gauss::Rounding::kTruncate ? "rt" : "rn") << "-m"
     << static_cast<int>(c.mode) << (c.emit_valid_bit ? "v1" : "v0")
     << (c.cse ? "c1" : "c0") << "-x" << c.exact_max_vars << "-q"
     << c.qm_node_budget;
  return os.str();
}

std::string recipe_cache_key(double target_sigma, double target_center,
                             double eps, int base_precision) {
  CGS_CHECK_MSG(std::isfinite(target_sigma) && target_sigma > 0.0,
                "recipe key: sigma must be finite and positive");
  CGS_CHECK_MSG(std::isfinite(target_center), "recipe key: non-finite center");
  CGS_CHECK(eps > 0.0 && eps < 1.0 && base_precision >= 1);
  std::ostringstream os;
  os << "recipe-r" << kRecipeRevision << "-s" << hex_bits(target_sigma)
     << "-c" << hex_bits(target_center) << "-e" << hex_bits(eps) << "-p"
     << base_precision;
  return os.str();
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("CGS_CACHE_DIR"); env && *env) return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return std::string(xdg) + "/cgs-samplers";
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/cgs-samplers";
  return ".cgs-cache";
}

SamplerRegistry::SamplerRegistry(Options options)
    : options_(std::move(options)) {
  if (options_.cache_dir.empty()) options_.cache_dir = default_cache_dir();
}

SamplerRegistry::SamplerPtr SamplerRegistry::get(
    const gauss::GaussianParams& params, const ct::SynthesisConfig& config,
    Source* source) {
  const std::string key = cache_key(params, config);

  std::promise<Entry> promise;
  std::shared_future<Entry> future;
  bool creator = false;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
    } else {
      creator = true;
      epoch = epoch_;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    }
  }

  if (creator) {
    // Materialize outside the lock: a slow synthesis for one key must not
    // block lookups (or other syntheses) for different keys.
    try {
      promise.set_value(materialize(params, config, key));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      // Allow a later retry — but only drop OUR entry: if clear_memory()
      // ran meanwhile, the key may now hold another thread's fresh
      // in-flight future, which must survive.
      if (epoch == epoch_) cache_.erase(key);
    }
  }

  const Entry& entry = future.get();  // rethrows a materialization failure
  // Only the call that did the work reports disk/synthesis; everyone later
  // (or anyone who waited on the in-flight future) got it from memory.
  const Source src = creator ? entry.source : Source::kMemory;
  if (src == Source::kSynthesized)
    netlist_misses_.fetch_add(1, std::memory_order_relaxed);
  else
    netlist_hits_.fetch_add(1, std::memory_order_relaxed);
  if (source) *source = src;
  return entry.sampler;
}

SamplerRegistry::Entry SamplerRegistry::materialize(
    const gauss::GaussianParams& params, const ct::SynthesisConfig& config,
    const std::string& key) const {
  namespace fs = std::filesystem;
  const std::string path = options_.cache_dir + "/" + key + ".cgs";

  if (options_.use_disk) {
    if (auto bytes = serial::read_file(path)) {
      try {
        serial::SamplerFrame frame = serial::deserialize_sampler(*bytes);
        // The frame embeds the (params, config) it was synthesized for; a
        // valid file renamed under the wrong key (sync script, manual copy,
        // cache_key format change) must count as a miss, not silently serve
        // the wrong distribution.
        if (cache_key(frame.params, frame.config) == key) {
          auto sampler = std::make_shared<ct::SynthesizedSampler>(
              std::move(frame.sampler));
          return {std::move(sampler), Source::kDisk};
        }
      } catch (const Error&) {
        // Bad magic / version skew / checksum or shape corruption: treat as
        // a miss, re-synthesize below and overwrite the bad file.
      }
    }
  }

  const gauss::ProbMatrix matrix(params);
  auto sampler =
      std::make_shared<ct::SynthesizedSampler>(ct::synthesize(matrix, config));

  if (options_.use_disk) {
    std::error_code ec;
    fs::create_directories(options_.cache_dir, ec);
    // Persist best-effort: an unwritable cache directory degrades to
    // synthesize-per-process, never to an error.
    if (!ec)
      serial::write_file_atomic(path,
                                serial::serialize(params, config, *sampler));
  }
  return {std::move(sampler), Source::kSynthesized};
}

gauss::ConvolutionRecipe SamplerRegistry::get_recipe(double target_sigma,
                                                     double target_center,
                                                     double eps,
                                                     int base_precision,
                                                     Source* source) {
  const std::string key =
      recipe_cache_key(target_sigma, target_center, eps, base_precision);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = recipes_.find(key); it != recipes_.end()) {
      recipe_hits_.fetch_add(1, std::memory_order_relaxed);
      if (source) *source = Source::kMemory;
      return it->second;
    }
  }

  namespace fs = std::filesystem;
  const std::string path = options_.cache_dir + "/" + key + ".cgs";
  gauss::ConvolutionRecipe recipe;
  Source src = Source::kSynthesized;  // "planned" for recipes
  bool loaded = false;
  if (options_.use_disk) {
    if (auto bytes = serial::read_file(path)) {
      try {
        gauss::ConvolutionRecipe cand = serial::deserialize_recipe(*bytes);
        // Like sampler frames: a valid frame misfiled under the wrong key
        // must count as a miss, not serve the wrong target.
        if (recipe_cache_key(cand.target_sigma, cand.target_center, cand.eps,
                             cand.base.precision) == key) {
          recipe = std::move(cand);
          src = Source::kDisk;
          loaded = true;
        }
      } catch (const Error&) {
        // Corrupted/foreign frame: replan below and overwrite.
      }
    }
  }

  if (loaded)
    recipe_hits_.fetch_add(1, std::memory_order_relaxed);
  else
    recipe_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!loaded) {
    const auto bases = gauss::default_recipe_bases(base_precision);
    recipe = gauss::plan_recipe(target_sigma, target_center, bases, eps);
    if (options_.use_disk) {
      std::error_code ec;
      fs::create_directories(options_.cache_dir, ec);
      if (!ec) serial::write_file_atomic(path, serial::serialize(recipe));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = recipes_.emplace(key, recipe);
    // A concurrent planner may have won the race; both computed the same
    // deterministic recipe, so either value serves.
    (void)inserted;
  }
  if (source) *source = src;
  return recipe;
}

obs::CacheStats SamplerRegistry::netlist_cache_stats() const {
  obs::CacheStats stats;
  stats.hits = netlist_hits_.load(std::memory_order_relaxed);
  stats.misses = netlist_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.entries = cache_.size();
  return stats;
}

obs::CacheStats SamplerRegistry::recipe_cache_stats() const {
  obs::CacheStats stats;
  stats.hits = recipe_hits_.load(std::memory_order_relaxed);
  stats.misses = recipe_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.entries = recipes_.size();
  return stats;
}

void SamplerRegistry::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  recipes_.clear();
  ++epoch_;
}

SamplerRegistry& SamplerRegistry::global() {
  static SamplerRegistry* instance = new SamplerRegistry();
  return *instance;
}

}  // namespace cgs::engine
