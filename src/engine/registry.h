#pragma once
// The offline/online split the paper assumes but the library never had:
// Boolean-function synthesis (Quine–McCluskey exact minimization over a
// 128-bit probability matrix) is expensive and deterministic, so do it once
// and persist the resulting straight-line netlist. SamplerRegistry is the
// process-wide materialization point:
//
//   get(params, config)
//     -> in-process memo hit            (atomically deduplicated per key)
//     -> on-disk cache hit              (versioned checksummed frame,
//                                        serial/formats.h)
//     -> synthesize + persist           (atomic write, best effort)
//
// Keys are a canonical filename-safe rendering of every field of
// (GaussianParams, SynthesisConfig), so two configurations never alias.
// Corrupted, truncated or version-skewed cache files are rejected by the
// serial layer and silently fall back to re-synthesis (then overwritten).

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ct/synthesis.h"
#include "gauss/params.h"
#include "gauss/recipe.h"
#include "obs/metric.h"

namespace cgs::engine {

/// Canonical cache key: encodes every distribution and synthesis field,
/// filename-safe ([a-z0-9._-] only).
std::string cache_key(const gauss::GaussianParams& params,
                      const ct::SynthesisConfig& config = {});

/// Canonical key for an arbitrary-(sigma, c) recipe request against the
/// default candidate base set at `base_precision`. Doubles are keyed by
/// their IEEE-754 bit pattern (after collapsing -0 to +0), so two requests
/// alias exactly when the planner would see identical inputs; non-finite
/// or non-positive sigma throws. Filename-safe like cache_key().
std::string recipe_cache_key(double target_sigma, double target_center,
                             double eps = gauss::kDefaultSmoothingEps,
                             int base_precision = 64);

/// Cache directory resolution: $CGS_CACHE_DIR if set, else
/// $XDG_CACHE_HOME/cgs-samplers, else $HOME/.cache/cgs-samplers, else
/// ./.cgs-cache.
std::string default_cache_dir();

class SamplerRegistry {
 public:
  struct Options {
    std::string cache_dir;  // empty -> default_cache_dir()
    bool use_disk = true;   // false -> in-process memoization only
  };

  /// Where a get() result was materialized from.
  enum class Source { kMemory, kDisk, kSynthesized };

  SamplerRegistry() : SamplerRegistry(Options{}) {}
  explicit SamplerRegistry(Options options);

  using SamplerPtr = std::shared_ptr<const ct::SynthesizedSampler>;

  /// The sampler for (params, config): memoized, disk-backed, synthesized on
  /// first contact. Repeat calls return the same instance. Thread-safe;
  /// concurrent first calls for one key synthesize exactly once (other keys
  /// proceed in parallel). `source`, when non-null, reports where this call's
  /// result came from.
  SamplerPtr get(const gauss::GaussianParams& params,
                 const ct::SynthesisConfig& config = {},
                 Source* source = nullptr);

  const std::string& cache_dir() const { return options_.cache_dir; }

  /// The planned recipe for an arbitrary (sigma, center) target over the
  /// default candidate bases at `base_precision`: memoized, disk-backed
  /// (one small kRecipe frame per key, next to the sampler frames), planned
  /// on first contact. Misfiled or corrupted frames fall back to replanning
  /// exactly like sampler frames fall back to re-synthesis. Thread-safe.
  gauss::ConvolutionRecipe get_recipe(double target_sigma,
                                      double target_center,
                                      double eps = gauss::kDefaultSmoothingEps,
                                      int base_precision = 64,
                                      Source* source = nullptr);

  /// Drop the in-process memo (disk cache untouched). Mostly for tests and
  /// cache-hierarchy benches.
  void clear_memory();

  /// Netlist (synthesized-sampler) cache totals: a hit is a get() served
  /// from the memo or from a disk frame, a miss is a synthesis.
  obs::CacheStats netlist_cache_stats() const;
  /// Recipe cache totals: a hit is a get_recipe() served from the memo or
  /// a disk frame, a miss is a plan_recipe run.
  obs::CacheStats recipe_cache_stats() const;

  /// Process-wide instance (reads $CGS_CACHE_DIR at first use).
  static SamplerRegistry& global();

 private:
  struct Entry {
    SamplerPtr sampler;
    Source source;
  };

  Entry materialize(const gauss::GaussianParams& params,
                    const ct::SynthesisConfig& config,
                    const std::string& key) const;

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Entry>> cache_;
  // Bumped by clear_memory(); a failed creator only erases its own entry if
  // the map has not been wiped (and possibly repopulated) since it inserted.
  std::uint64_t epoch_ = 0;

  // Recipe memo: planning is cheap and deterministic, so plain values under
  // the same mutex (no in-flight future machinery needed — a duplicated
  // concurrent plan is harmless and both sides compute the same recipe).
  std::unordered_map<std::string, gauss::ConvolutionRecipe> recipes_;

  // Cache accounting (atomics: hits are counted after mu_ is dropped).
  std::atomic<std::uint64_t> netlist_hits_{0};
  std::atomic<std::uint64_t> netlist_misses_{0};
  std::atomic<std::uint64_t> recipe_hits_{0};
  std::atomic<std::uint64_t> recipe_misses_{0};
};

}  // namespace cgs::engine
