#pragma once
// The offline/online split the paper assumes but the library never had:
// Boolean-function synthesis (Quine–McCluskey exact minimization over a
// 128-bit probability matrix) is expensive and deterministic, so do it once
// and persist the resulting straight-line netlist. SamplerRegistry is the
// process-wide materialization point:
//
//   get(params, config)
//     -> in-process memo hit            (atomically deduplicated per key)
//     -> on-disk cache hit              (versioned checksummed frame,
//                                        serial/formats.h)
//     -> synthesize + persist           (atomic write, best effort)
//
// Keys are a canonical filename-safe rendering of every field of
// (GaussianParams, SynthesisConfig), so two configurations never alias.
// Corrupted, truncated or version-skewed cache files are rejected by the
// serial layer and silently fall back to re-synthesis (then overwritten).

#include <memory>
#include <string>

#include "ct/synthesis.h"
#include "gauss/params.h"
#include "gauss/recipe.h"
#include "obs/metric.h"
#include "store/bounded_cache.h"

namespace cgs::engine {

/// Canonical cache key: encodes every distribution and synthesis field,
/// filename-safe ([a-z0-9._-] only).
std::string cache_key(const gauss::GaussianParams& params,
                      const ct::SynthesisConfig& config = {});

/// Canonical key for an arbitrary-(sigma, c) recipe request against the
/// default candidate base set at `base_precision`. Doubles are keyed by
/// their IEEE-754 bit pattern (after collapsing -0 to +0), so two requests
/// alias exactly when the planner would see identical inputs; non-finite
/// or non-positive sigma throws. Filename-safe like cache_key().
std::string recipe_cache_key(double target_sigma, double target_center,
                             double eps = gauss::kDefaultSmoothingEps,
                             int base_precision = 64);

/// Cache directory resolution: $CGS_CACHE_DIR if set, else
/// $XDG_CACHE_HOME/cgs-samplers, else $HOME/.cache/cgs-samplers, else
/// ./.cgs-cache.
std::string default_cache_dir();

class SamplerRegistry {
 public:
  struct Options {
    std::string cache_dir;  // empty -> default_cache_dir()
    bool use_disk = true;   // false -> in-process memoization only
    /// Budget for the in-process netlist memo. Default unbounded (legacy
    /// behavior); under a budget an evicted netlist warm-starts from its
    /// per-key disk frame instead of a re-synthesis.
    store::CacheBudget netlist_cache;
    /// Budget for the in-process recipe memo (same warm-start path).
    store::CacheBudget recipe_cache;
  };

  /// Where a get() result was materialized from.
  enum class Source { kMemory, kDisk, kSynthesized };

  SamplerRegistry() : SamplerRegistry(Options{}) {}
  explicit SamplerRegistry(Options options);

  using SamplerPtr = std::shared_ptr<const ct::SynthesizedSampler>;

  /// The sampler for (params, config): memoized, disk-backed, synthesized on
  /// first contact. Repeat calls return the same instance. Thread-safe;
  /// concurrent first calls for one key synthesize exactly once (other keys
  /// proceed in parallel). `source`, when non-null, reports where this call's
  /// result came from.
  SamplerPtr get(const gauss::GaussianParams& params,
                 const ct::SynthesisConfig& config = {},
                 Source* source = nullptr);

  const std::string& cache_dir() const { return options_.cache_dir; }

  /// The planned recipe for an arbitrary (sigma, center) target over the
  /// default candidate bases at `base_precision`: memoized, disk-backed
  /// (one small kRecipe frame per key, next to the sampler frames), planned
  /// on first contact. Misfiled or corrupted frames fall back to replanning
  /// exactly like sampler frames fall back to re-synthesis. Thread-safe.
  gauss::ConvolutionRecipe get_recipe(double target_sigma,
                                      double target_center,
                                      double eps = gauss::kDefaultSmoothingEps,
                                      int base_precision = 64,
                                      Source* source = nullptr);

  /// Drop the in-process memo (disk cache untouched). Mostly for tests and
  /// cache-hierarchy benches.
  void clear_memory();

  /// Netlist (synthesized-sampler) cache totals: a hit is a get() served
  /// from the memo or from a disk frame, a miss is a synthesis.
  obs::CacheStats netlist_cache_stats() const;
  /// Recipe cache totals: a hit is a get_recipe() served from the memo or
  /// a disk frame, a miss is a plan_recipe run.
  obs::CacheStats recipe_cache_stats() const;

  /// Process-wide instance (reads $CGS_CACHE_DIR at first use).
  static SamplerRegistry& global();

 private:
  // Both memos ride the shared bounded-cache core: single-flight
  // deduplication (a failed synthesis is evicted, so the next request
  // retries instead of replaying the failure), 2Q eviction under a budget,
  // and hit/miss/eviction/warm-start accounting. The per-key disk frames
  // are the persistent layer: an evicted entry's next get() decodes the
  // frame (warm start) rather than re-synthesizing.
  using NetlistCache = store::BoundedCache<std::string, ct::SynthesizedSampler>;
  using RecipeCache = store::BoundedCache<std::string, gauss::ConvolutionRecipe>;

  Options options_;
  NetlistCache netlists_;
  RecipeCache recipes_;
};

}  // namespace cgs::engine
