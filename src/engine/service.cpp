#include "engine/service.h"

#include <algorithm>

#include "common/check.h"
#include "prng/splitmix.h"
#include "serial/serial.h"

namespace cgs::engine {

namespace {

// Cap the per-request staging buffers: a 100M-sample request should stream
// through bounded memory, not allocate two 400MB scratch vectors.
constexpr std::size_t kMaxChunk = std::size_t{1} << 20;

}  // namespace

GaussianService::GaussianService(SamplerRegistry& registry,
                                 ServiceOptions options)
    : registry_(&registry), options_(options) {
  CGS_CHECK(options_.base_precision >= 1);
}

gauss::ConvolutionRecipe GaussianService::plan(double sigma, double center) {
  return registry_->get_recipe(sigma, center, options_.smoothing_eps,
                               options_.base_precision);
}

GaussianService::Stream& GaussianService::stream_for(double sigma,
                                                     double center) {
  const std::string key = recipe_cache_key(
      sigma, center, options_.smoothing_eps, options_.base_precision);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = streams_.find(key); it != streams_.end()) return *it->second;
  }

  // Materialize outside the map lock: base synthesis for one target must
  // not block requests against already-warm targets.
  gauss::ConvolutionRecipe recipe = registry_->get_recipe(
      sigma, center, options_.smoothing_eps, options_.base_precision);
  auto synth = registry_->get(recipe.base);

  // Independent, order-insensitive seeds: mix the root seed with the
  // canonical key's hash, then split into the three per-stream seeds. Two
  // targets collide only if their keys do, i.e. never.
  const std::uint64_t key_hash = serial::fnv1a64(std::span(
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  prng::SplitMix64Source seeder(options_.root_seed ^ key_hash);
  const std::uint64_t seed1 = seeder.next_word();
  const std::uint64_t seed2 = seeder.next_word();
  const std::uint64_t rounding_seed = seeder.next_word();

  auto stream = std::make_unique<Stream>(std::move(recipe), rounding_seed);
  EngineOptions eng;
  eng.backend = options_.backend;
  eng.num_threads = options_.num_threads;
  eng.root_seed = seed1;
  // Hosting the netlist kernel can dominate stream bring-up (seconds for
  // large supports); reuse an earlier stream's compile over the same base,
  // and within the stream the second engine reuses the first one's.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = kernels_.find(synth.get()); it != kernels_.end())
      eng.shared_kernel = it->second;
  }
  stream->eng1 = std::make_unique<SamplerEngine>(synth, eng);
  EngineOptions eng2 = eng;
  eng2.root_seed = seed2;
  eng2.shared_kernel = stream->eng1->kernel();
  stream->eng2 = std::make_unique<SamplerEngine>(synth, eng2);

  std::lock_guard<std::mutex> lock(mu_);
  if (auto kernel = stream->eng1->kernel()) kernels_[synth.get()] = kernel;
  auto [it, inserted] = streams_.emplace(key, std::move(stream));
  // A concurrent first request for the same target may have won the race;
  // its stream (identical by construction) serves both callers.
  (void)inserted;
  return *it->second;
}

void GaussianService::sample(double sigma, double center,
                             std::span<std::int32_t> out) {
  if (out.empty()) return;
  samples_served_.fetch_add(out.size(), std::memory_order_relaxed);
  Stream& s = stream_for(sigma, center);
  std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t pos = 0; pos < out.size(); pos += kMaxChunk) {
    const std::size_t n = std::min(kMaxChunk, out.size() - pos);
    const std::span<std::int32_t> dst = out.subspan(pos, n);
    s.buf1.resize(n);
    s.buf2.resize(n);
    s.eng1->sample(s.buf1);
    s.eng2->sample(s.buf2);
    s.convolver.combine(s.buf1, s.buf2, s.rounding, dst);
  }
}

std::vector<std::int32_t> GaussianService::sample(double sigma, double center,
                                                  std::size_t n) {
  std::vector<std::int32_t> out(n);
  sample(sigma, center, out);
  return out;
}

std::size_t GaussianService::num_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

}  // namespace cgs::engine
