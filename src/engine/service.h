#pragma once
// GaussianService: arbitrary-(sigma, center) batch sampling on top of the
// registry + engine stack. A request for any target (sigma, c) — not just
// the synthesized configurations — is served by planning a recipe once
// (pick a base sigma_0 >= eta_eps(Z) from the registry's candidate set, a
// convolution stride k, and an integer-shift + randomized-rounding stage
// for the center), then combining bulk samples from TWO SamplerEngine
// streams vectorized:
//
//     x = x1 + k * x2 + floor(c) + Bernoulli(frac(c))
//
// instead of the scalar two-draws-per-sample ConvolutionSampler path. Every
// distinct target materializes one Stream (recipe + two engines + a
// dedicated rounding PRNG), created lazily and reused across requests.
// Output is fully deterministic for a fixed (root_seed, num_threads,
// target, request sizes): per-stream seeds are derived from the root seed
// and the canonical recipe key, so targets never share PRNG state and the
// order targets are first requested in does not matter.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "conv/convolution.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "gauss/recipe.h"
#include "prng/chacha20.h"

namespace cgs::engine {

struct ServiceOptions {
  Backend backend = Backend::kAuto;
  int num_threads = 0;          // 0 -> hardware concurrency (min 1)
  std::uint64_t root_seed = 0;  // per-stream seeds derived from this
  double smoothing_eps = gauss::kDefaultSmoothingEps;
  int base_precision = 64;      // precision of the candidate base samplers
};

class GaussianService {
 public:
  /// `registry` (not owned) supplies base samplers and cached recipes; it
  /// must outlive the service.
  explicit GaussianService(SamplerRegistry& registry,
                           ServiceOptions options = {});

  /// The recipe that does / would serve this target (plans and caches it,
  /// but does not spin up engines).
  gauss::ConvolutionRecipe plan(double sigma, double center = 0.0);

  /// Fill `out` with samples from (approximately) D_{sigma', center}, where
  /// sigma' = plan(sigma, center).achieved_sigma >= sigma. First call for a
  /// target synthesizes/loads its base sampler and starts its engines;
  /// later calls continue the same streams. Thread-safe; requests for
  /// different targets proceed in parallel.
  void sample(double sigma, double center, std::span<std::int32_t> out);
  std::vector<std::int32_t> sample(double sigma, double center,
                                   std::size_t n);

  /// Number of distinct targets materialized so far.
  std::size_t num_streams() const;

  /// Lifetime count of samples handed out across every target.
  std::uint64_t samples_served() const {
    return samples_served_.load(std::memory_order_relaxed);
  }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Stream {
    gauss::ConvolutionRecipe recipe;
    conv::BatchConvolver convolver;
    std::unique_ptr<SamplerEngine> eng1, eng2;  // the two base streams
    prng::ChaCha20Source rounding;              // Bernoulli(frac) words
    std::vector<std::int32_t> buf1, buf2;
    std::mutex mu;  // serializes requests per target

    Stream(gauss::ConvolutionRecipe r, std::uint64_t rounding_seed)
        : recipe(std::move(r)),
          convolver(recipe.k, recipe.shift_int, recipe.shift_frac),
          rounding(rounding_seed) {}
  };

  Stream& stream_for(double sigma, double center);

  SamplerRegistry* registry_;
  ServiceOptions options_;
  mutable std::mutex mu_;  // guards streams_ and kernels_ map shape
  std::map<std::string, std::unique_ptr<Stream>> streams_;  // by recipe key
  // Compiled kernels shared across every stream over one base sampler
  // (keyed by the registry-memoized synth instance): hosting the netlist C
  // takes seconds per compile, and two targets often share a ladder rung.
  std::map<const void*, std::shared_ptr<const ct::CompiledKernel>> kernels_;
  std::atomic<std::uint64_t> samples_served_{0};
};

}  // namespace cgs::engine
