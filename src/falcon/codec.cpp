#include "falcon/codec.h"

#include <cstdlib>

#include "common/check.h"

namespace cgs::falcon {

void BitWriter::put(int bit) {
  if (bit_pos_ == 0) bytes_.push_back(0);
  if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_pos_));
  bit_pos_ = (bit_pos_ + 1) % 8;
}

void BitWriter::put_bits(std::uint32_t value, int count) {
  for (int i = count - 1; i >= 0; --i) put((value >> i) & 1u);
}

const std::vector<std::uint8_t>& BitWriter::bytes() { return bytes_; }

int BitReader::get() {
  const std::size_t byte = pos_ / 8;
  if (byte >= bytes_->size()) return -1;
  const int bit = ((*bytes_)[byte] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return bit;
}

std::optional<std::uint32_t> BitReader::get_bits(int count) {
  std::uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    const int b = get();
    if (b < 0) return std::nullopt;
    v = (v << 1) | static_cast<std::uint32_t>(b);
  }
  return v;
}

std::vector<std::uint8_t> compress_s1(const IPoly& s1) {
  BitWriter w;
  for (std::int32_t c : s1) {
    CGS_CHECK_MSG(c > -2048 && c < 2048, "coefficient out of codec range");
    const std::uint32_t mag = static_cast<std::uint32_t>(std::abs(c));
    w.put(c < 0 ? 1 : 0);
    w.put_bits(mag & 0x7f, 7);
    // High part in unary: (mag >> 7) zeros, then a one.
    for (std::uint32_t k = 0; k < (mag >> 7); ++k) w.put(0);
    w.put(1);
  }
  return w.bytes();
}

std::optional<IPoly> decompress_s1(const std::vector<std::uint8_t>& bytes,
                                   std::size_t n) {
  BitReader r(bytes);
  IPoly s1(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int sign = r.get();
    if (sign < 0) return std::nullopt;
    const auto low = r.get_bits(7);
    if (!low) return std::nullopt;
    std::uint32_t high = 0;
    for (;;) {
      const int b = r.get();
      if (b < 0 || high > 16) return std::nullopt;
      if (b == 1) break;
      ++high;
    }
    const auto mag = static_cast<std::int32_t>((high << 7) | *low);
    if (sign && mag == 0) return std::nullopt;  // canonical: no minus zero
    s1[i] = sign ? -mag : mag;
  }
  return s1;
}

}  // namespace cgs::falcon
