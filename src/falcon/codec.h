#pragma once
// Signature compression (Falcon's Golomb-Rice-style coding of s1): sign
// bit, 7 literal low bits, then the high part in unary. Also a bit-level
// reader/writer pair reused by the examples.

#include <cstdint>
#include <optional>
#include <vector>

#include "falcon/poly.h"

namespace cgs::falcon {

class BitWriter {
 public:
  void put(int bit);
  void put_bits(std::uint32_t value, int count);  // MSB first
  const std::vector<std::uint8_t>& bytes();       // flushes padding zeros

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_pos_ = 0;  // bits used in the last byte
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(&bytes) {}
  /// -1 on exhaustion.
  int get();
  std::optional<std::uint32_t> get_bits(int count);

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

/// Compress a signature polynomial. Coefficients must be in (-2048, 2048),
/// which the signature norm bound guarantees with huge margin.
std::vector<std::uint8_t> compress_s1(const IPoly& s1);

/// Decompress; nullopt on malformed input.
std::optional<IPoly> decompress_s1(const std::vector<std::uint8_t>& bytes,
                                   std::size_t n);

}  // namespace cgs::falcon
