#include "falcon/ffsampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cgs::falcon {

std::unique_ptr<FfNode> FalconTree::build(const CVec& g00, const CVec& g01,
                                          const CVec& g11, double sigma_sig) {
  const std::size_t m = g00.size();
  auto node = std::make_unique<FfNode>();
  // LDL*: G = [[1,0],[l10,1]] diag(d00,d11) [[1,l10*],[0,1]] with
  // l10 = g10/g00 = adj(g01)/g00 and d11 = g11 - l10 g01 (g00 self-adjoint).
  node->l10 = div_fft(adj_fft(g01), g00);
  const CVec d11 = sub_fft(g11, mul_fft(node->l10, g01));

  if (m == 1) {
    const double d0 = g00[0].real();
    const double d1 = d11[0].real();
    CGS_CHECK_MSG(d0 > 0 && d1 > 0, "LDL diagonal not positive definite");
    node->sigma0 = sigma_sig / std::sqrt(d0);
    node->sigma1 = sigma_sig / std::sqrt(d1);
    node->isq0 = 1.0 / (2.0 * node->sigma0 * node->sigma0);
    node->isq1 = 1.0 / (2.0 * node->sigma1 * node->sigma1);
    min_sigma_ = std::min({min_sigma_, node->sigma0, node->sigma1});
    max_sigma_ = std::max({max_sigma_, node->sigma0, node->sigma1});
    return node;
  }

  // Recurse: a self-adjoint diagonal d (dim m) becomes the 2x2 Gram
  // [[d_0, d_1], [adj(d_1), d_0]] over dim m/2.
  CVec a0, a1;
  split_fft(g00, a0, a1);
  node->child0 = build(a0, a1, a0, sigma_sig);
  CVec b0, b1;
  split_fft(d11, b0, b1);
  node->child1 = build(b0, b1, b0, sigma_sig);
  return node;
}

FalconTree::FalconTree(const KeyPair& kp) {
  const std::size_t n = kp.params.n;
  IPoly neg_f(n), neg_f_cap(n);
  for (std::size_t i = 0; i < n; ++i) {
    neg_f[i] = -kp.f[i];
    neg_f_cap[i] = -kp.f_cap[i];
  }
  b00_ = fft(to_doubles(kp.g));
  b01_ = fft(to_doubles(neg_f));
  b10_ = fft(to_doubles(kp.g_cap));
  b11_ = fft(to_doubles(neg_f_cap));

  const CVec g00 = add_fft(mul_fft(b00_, adj_fft(b00_)),
                           mul_fft(b01_, adj_fft(b01_)));
  const CVec g01 = add_fft(mul_fft(b00_, adj_fft(b10_)),
                           mul_fft(b01_, adj_fft(b11_)));
  const CVec g11 = add_fft(mul_fft(b10_, adj_fft(b10_)),
                           mul_fft(b11_, adj_fft(b11_)));
  root_ = build(g00, g01, g11, kp.params.sigma_sig);
  CGS_CHECK_MSG(min_sigma_ >= kp.params.sigma_min &&
                    max_sigma_ <= kp.params.sigma_max,
                "tree leaf sigma escaped the base-sampler envelope");
}

FalconTree FalconTree::from_parts(std::unique_ptr<FfNode> root, CVec b00,
                                  CVec b01, CVec b10, CVec b11,
                                  double min_sigma, double max_sigma) {
  CGS_CHECK(root != nullptr);
  FalconTree tree;
  tree.root_ = std::move(root);
  tree.b00_ = std::move(b00);
  tree.b01_ = std::move(b01);
  tree.b10_ = std::move(b10);
  tree.b11_ = std::move(b11);
  tree.min_sigma_ = min_sigma;
  tree.max_sigma_ = max_sigma;
  return tree;
}

void FfScratch::prepare(std::size_t dim) {
  if (n == dim) return;
  levels.clear();
  for (std::size_t m = dim; m >= 2; m /= 2) {
    Level level;
    level.t0.resize(m / 2);
    level.t1.resize(m / 2);
    level.z0.resize(m / 2);
    level.z1.resize(m / 2);
    levels.push_back(std::move(level));
  }
  t0.resize(dim);
  t1.resize(dim);
  z0.resize(dim);
  z1.resize(dim);
  sig_t0.resize(dim);
  sig_t1.resize(dim);
  sig_s0f.resize(dim);
  sig_s1f.resize(dim);
  n = dim;
}

namespace {

// The whole bottom of the tree, inlined: at m == 2 a split produces two
// scalars (zeta_{2,0} = i, so the odd part is just a conjugate rotation),
// the children are leaf pairs, and the merge of two real samples (a, b)
// is the spectrum {a + ib, a - ib}. Spelling this out removes four
// split/merge calls plus two recursion frames for every m == 2 node —
// half the nodes of the tree.
inline void ffsamp_node2(cplx* t0, const cplx* t1, const FfNode& node,
                         SamplerZ& sz, cplx* z0, cplx* z1) {
  const auto leaf_pair = [&sz](const FfNode& leaf, cplx ta, cplx tb,
                               double& a, double& b) {
    b = static_cast<double>(sz.sample(tb.real(), leaf.sigma1, leaf.isq1));
    const cplx ta_adj = ta + cmul(tb - b, leaf.l10[0]);
    a = static_cast<double>(sz.sample(ta_adj.real(), leaf.sigma0,
                                      leaf.isq0));
  };
  cplx d = (t1[0] - t1[1]) * 0.5;
  double a1, b1;
  leaf_pair(*node.child1, (t1[0] + t1[1]) * 0.5, cplx(d.imag(), -d.real()),
            a1, b1);
  z1[0] = cplx(a1, b1);
  z1[1] = cplx(a1, -b1);
  t0[0] += cmul(t1[0] - z1[0], node.l10[0]);
  t0[1] += cmul(t1[1] - z1[1], node.l10[1]);
  d = (t0[0] - t0[1]) * 0.5;
  double a0, b0;
  leaf_pair(*node.child0, (t0[0] + t0[1]) * 0.5, cplx(d.imag(), -d.real()),
            a0, b0);
  z0[0] = cplx(a0, b0);
  z0[1] = cplx(a0, -b0);
}

// Recursive nearest-plane sampling over preallocated per-level buffers:
// (t0, t1) is the target pair (t0 is clobbered in place for the adjusted
// target), integer outputs land in (z0, z1) as FFT-domain spectra. The
// children of one node run sequentially, so one Level per depth suffices.
void ffsamp_rec(std::span<cplx> t0, std::span<cplx> t1, const FfNode& node,
                SamplerZ& sz, FfScratch& scratch, std::size_t depth,
                std::span<cplx> z0, std::span<cplx> z1) {
  const std::size_t m = t0.size();
  if (m == 1) {
    const double s1 = static_cast<double>(
        sz.sample(t1[0].real(), node.sigma1, node.isq1));
    const cplx t0_adj = t0[0] + cmul(t1[0] - s1, node.l10[0]);
    const double s0 = static_cast<double>(
        sz.sample(t0_adj.real(), node.sigma0, node.isq0));
    z0[0] = cplx(s0, 0);
    z1[0] = cplx(s1, 0);
    return;
  }
  if (m == 2) {
    ffsamp_node2(t0.data(), t1.data(), node, sz, z0.data(), z1.data());
    return;
  }
  if (m == 4) {
    // One more level inlined with literal twiddles (zeta_{4,0} and
    // zeta_{4,1} are (+-sqrt2/2, sqrt2/2)): the m == 4 nodes are a quarter
    // of the tree, and their split/merge bodies are four complex ops each.
    constexpr double kR = 0.70710678118654752440;  // sqrt(2)/2
    constexpr cplx w0{kR, kR}, w1{-kR, kR};
    cplx a[2], b[2];
    a[0] = (t1[0] + t1[2]) * 0.5;
    a[1] = (t1[1] + t1[3]) * 0.5;
    b[0] = cmul_conj((t1[0] - t1[2]) * 0.5, w0);
    b[1] = cmul_conj((t1[1] - t1[3]) * 0.5, w1);
    cplx za[2], zb[2];
    ffsamp_node2(a, b, *node.child1, sz, za, zb);
    z1[0] = za[0] + cmul(w0, zb[0]);
    z1[1] = za[1] + cmul(w1, zb[1]);
    z1[2] = za[0] - cmul(w0, zb[0]);
    z1[3] = za[1] - cmul(w1, zb[1]);
    for (std::size_t k = 0; k < 4; ++k)
      t0[k] += cmul(t1[k] - z1[k], node.l10[k]);
    a[0] = (t0[0] + t0[2]) * 0.5;
    a[1] = (t0[1] + t0[3]) * 0.5;
    b[0] = cmul_conj((t0[0] - t0[2]) * 0.5, w0);
    b[1] = cmul_conj((t0[1] - t0[3]) * 0.5, w1);
    ffsamp_node2(a, b, *node.child0, sz, za, zb);
    z0[0] = za[0] + cmul(w0, zb[0]);
    z0[1] = za[1] + cmul(w1, zb[1]);
    z0[2] = za[0] - cmul(w0, zb[0]);
    z0[3] = za[1] - cmul(w1, zb[1]);
    return;
  }
  FfScratch::Level& lv = scratch.levels[depth];
  split_fft(t1, std::span<cplx>(lv.t0), std::span<cplx>(lv.t1));
  ffsamp_rec(lv.t0, lv.t1, *node.child1, sz, scratch, depth + 1, lv.z0,
             lv.z1);
  merge_fft(lv.z0, lv.z1, z1);

  // t0 <- t0 + (t1 - z1) l10, in place.
  for (std::size_t k = 0; k < m; ++k)
    t0[k] += cmul(t1[k] - z1[k], node.l10[k]);
  split_fft(t0, std::span<cplx>(lv.t0), std::span<cplx>(lv.t1));
  ffsamp_rec(lv.t0, lv.t1, *node.child0, sz, scratch, depth + 1, lv.z0,
             lv.z1);
  merge_fft(lv.z0, lv.z1, z0);
}

std::vector<std::int32_t> round_ifft(std::span<const cplx> z) {
  const std::vector<double> c = ifft(z);
  std::vector<std::int32_t> r(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double v = std::nearbyint(c[i]);
    CGS_CHECK_MSG(std::fabs(v - c[i]) < 0.4,
                  "ffSampling output drifted from integrality");
    r[i] = static_cast<std::int32_t>(v);
  }
  return r;
}

}  // namespace

void ff_sampling_fft(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, FfScratch& scratch) {
  CGS_CHECK(t0.size() == t1.size());
  scratch.prepare(t0.size());
  std::copy(t0.begin(), t0.end(), scratch.t0.begin());
  std::copy(t1.begin(), t1.end(), scratch.t1.begin());
  ffsamp_rec(scratch.t0, scratch.t1, tree.root(), samplerz, scratch, 0,
             scratch.z0, scratch.z1);
}

FfSample ff_sampling(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, FfScratch& scratch) {
  ff_sampling_fft(t0, t1, tree, samplerz, scratch);
  return FfSample{round_ifft(scratch.z0), round_ifft(scratch.z1)};
}

}  // namespace cgs::falcon
