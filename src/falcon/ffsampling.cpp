#include "falcon/ffsampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cgs::falcon {

std::unique_ptr<FfNode> FalconTree::build(const CVec& g00, const CVec& g01,
                                          const CVec& g11, double sigma_sig) {
  const std::size_t m = g00.size();
  auto node = std::make_unique<FfNode>();
  // LDL*: G = [[1,0],[l10,1]] diag(d00,d11) [[1,l10*],[0,1]] with
  // l10 = g10/g00 = adj(g01)/g00 and d11 = g11 - l10 g01 (g00 self-adjoint).
  node->l10 = div_fft(adj_fft(g01), g00);
  const CVec d11 = sub_fft(g11, mul_fft(node->l10, g01));

  if (m == 1) {
    const double d0 = g00[0].real();
    const double d1 = d11[0].real();
    CGS_CHECK_MSG(d0 > 0 && d1 > 0, "LDL diagonal not positive definite");
    node->sigma0 = sigma_sig / std::sqrt(d0);
    node->sigma1 = sigma_sig / std::sqrt(d1);
    min_sigma_ = std::min({min_sigma_, node->sigma0, node->sigma1});
    max_sigma_ = std::max({max_sigma_, node->sigma0, node->sigma1});
    return node;
  }

  // Recurse: a self-adjoint diagonal d (dim m) becomes the 2x2 Gram
  // [[d_0, d_1], [adj(d_1), d_0]] over dim m/2.
  CVec a0, a1;
  split_fft(g00, a0, a1);
  node->child0 = build(a0, a1, a0, sigma_sig);
  CVec b0, b1;
  split_fft(d11, b0, b1);
  node->child1 = build(b0, b1, b0, sigma_sig);
  return node;
}

FalconTree::FalconTree(const KeyPair& kp) {
  const std::size_t n = kp.params.n;
  IPoly neg_f(n), neg_f_cap(n);
  for (std::size_t i = 0; i < n; ++i) {
    neg_f[i] = -kp.f[i];
    neg_f_cap[i] = -kp.f_cap[i];
  }
  b00_ = fft(to_doubles(kp.g));
  b01_ = fft(to_doubles(neg_f));
  b10_ = fft(to_doubles(kp.g_cap));
  b11_ = fft(to_doubles(neg_f_cap));

  const CVec g00 = add_fft(mul_fft(b00_, adj_fft(b00_)),
                           mul_fft(b01_, adj_fft(b01_)));
  const CVec g01 = add_fft(mul_fft(b00_, adj_fft(b10_)),
                           mul_fft(b01_, adj_fft(b11_)));
  const CVec g11 = add_fft(mul_fft(b10_, adj_fft(b10_)),
                           mul_fft(b11_, adj_fft(b11_)));
  root_ = build(g00, g01, g11, kp.params.sigma_sig);
  CGS_CHECK_MSG(min_sigma_ >= kp.params.sigma_min &&
                    max_sigma_ <= kp.params.sigma_max,
                "tree leaf sigma escaped the base-sampler envelope");
}

namespace {

// Recursive nearest-plane sampling; returns FFT-domain z0, z1 (integers
// embedded as complex spectra).
std::pair<CVec, CVec> ffsamp_rec(const CVec& t0, const CVec& t1,
                                 const FfNode& node, SamplerZ& sz,
                                 RandomBitSource& rng) {
  const std::size_t m = t0.size();
  if (m == 1) {
    const double z1 =
        static_cast<double>(sz.sample(t1[0].real(), node.sigma1, rng));
    const cplx t0_adj = t0[0] + (t1[0] - z1) * node.l10[0];
    const double z0 =
        static_cast<double>(sz.sample(t0_adj.real(), node.sigma0, rng));
    return {CVec{cplx(z0, 0)}, CVec{cplx(z1, 0)}};
  }
  CVec t1a, t1b;
  split_fft(t1, t1a, t1b);
  const auto [z1a, z1b] = ffsamp_rec(t1a, t1b, *node.child1, sz, rng);
  const CVec z1 = merge_fft(z1a, z1b);

  const CVec t0_adj = add_fft(t0, mul_fft(sub_fft(t1, z1), node.l10));
  CVec t0a, t0b;
  split_fft(t0_adj, t0a, t0b);
  const auto [z0a, z0b] = ffsamp_rec(t0a, t0b, *node.child0, sz, rng);
  return {merge_fft(z0a, z0b), z1};
}

std::vector<std::int32_t> round_ifft(const CVec& z) {
  const std::vector<double> c = ifft(z);
  std::vector<std::int32_t> r(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double v = std::nearbyint(c[i]);
    CGS_CHECK_MSG(std::fabs(v - c[i]) < 0.4,
                  "ffSampling output drifted from integrality");
    r[i] = static_cast<std::int32_t>(v);
  }
  return r;
}

}  // namespace

FfSample ff_sampling(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, RandomBitSource& rng) {
  const auto [z0, z1] = ffsamp_rec(t0, t1, tree.root(), samplerz, rng);
  return FfSample{round_ifft(z0), round_ifft(z1)};
}

}  // namespace cgs::falcon
