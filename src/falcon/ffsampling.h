#pragma once
// The Falcon tree (ffLDL* decomposition of the secret basis Gram matrix in
// FFT representation) and fast-Fourier nearest-plane sampling over it.

#include <memory>

#include "falcon/fft.h"
#include "falcon/keygen.h"
#include "falcon/samplerz.h"

namespace cgs::falcon {

/// One node of the LDL tree over ring dimension m: l10 steers the
/// nearest-plane recursion; leaves (m == 1) carry the per-coordinate
/// Gaussian widths.
struct FfNode {
  CVec l10;
  std::unique_ptr<FfNode> child0, child1;  // for d00 / d11, dim m/2
  double sigma0 = 0.0, sigma1 = 0.0;       // leaf widths (m == 1 only)
  double isq0 = 0.0, isq1 = 0.0;  // 1/(2 sigma^2), precomputed for the ~2N
                                  // SamplerZ parabola setups per signature
};

class FalconTree {
 public:
  /// Build from a key pair; throws if a leaf width escapes
  /// [sigma_min, sigma_max] (keygen guarantees it does not).
  explicit FalconTree(const KeyPair& kp);

  /// Reassemble a tree from previously-computed parts (the disk codec's
  /// decode path — falcon/state_codec.h). The caller vouches that the
  /// parts came from a real build; no numeric re-derivation happens here,
  /// which is what makes a warm start bit-identical to the tree that was
  /// evicted.
  static FalconTree from_parts(std::unique_ptr<FfNode> root, CVec b00,
                               CVec b01, CVec b10, CVec b11, double min_sigma,
                               double max_sigma);

  const FfNode& root() const { return *root_; }

  /// Basis rows in FFT: b = [[g, -f], [G, -F]].
  const CVec& b00() const { return b00_; }
  const CVec& b01() const { return b01_; }
  const CVec& b10() const { return b10_; }
  const CVec& b11() const { return b11_; }

  double min_leaf_sigma() const { return min_sigma_; }
  double max_leaf_sigma() const { return max_sigma_; }

 private:
  FalconTree() = default;  // from_parts fills every member

  std::unique_ptr<FfNode> build(const CVec& g00, const CVec& g01,
                                const CVec& g11, double sigma_sig);

  std::unique_ptr<FfNode> root_;
  CVec b00_, b01_, b10_, b11_;
  double min_sigma_ = 1e9, max_sigma_ = 0.0;
};

/// Per-consumer scratch for the ffSampling recursion: split/merge buffers
/// for every recursion level, so a signature performs no heap allocation
/// inside the nearest-plane descent. This is the block context threaded
/// through the recursion — one instance per signing thread, reused across
/// signatures (not thread-safe; pair it with that thread's SamplerZ).
struct FfScratch {
  /// Buffers for the sub-problems of one level (dim m/2 each): the child's
  /// target pair and its integer outputs.
  struct Level {
    CVec t0, t1, z0, z1;
  };

  /// (Re)size for ring dimension n; idempotent, called by ff_sampling.
  void prepare(std::size_t n);

  std::vector<Level> levels;  // levels[l] holds dim n >> (l + 1)
  CVec t0, t1, z0, z1;        // top-level working copies and outputs
  CVec sig_t0, sig_t1, sig_s0f, sig_s1f;  // sign_with's per-signature
                                          // targets and s spectra
  std::size_t n = 0;
};

/// ffSampling: z ~ lattice Gaussian around target (t0, t1) (FFT domain).
/// Randomness — proposals and rejection uniforms both — is pulled from the
/// SamplerZ's block rings; `scratch` carries the recursion's working
/// memory and receives the results: scratch.z0/.z1 hold the FFT-domain
/// spectra of the integer vectors (exact images of integers up to FFT
/// rounding). The signer consumes the spectra directly — s = (t - z) B is
/// a pointwise FFT computation — so the hot path never round-trips z
/// through coefficient space.
void ff_sampling_fft(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, FfScratch& scratch);

/// Coefficient-domain form: runs ff_sampling_fft, then rounds the spectra
/// back to integer vectors (with an integrality drift check). Kept for
/// tests and direct lattice-sampling callers.
struct FfSample {
  std::vector<std::int32_t> z0, z1;
};
FfSample ff_sampling(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, FfScratch& scratch);

}  // namespace cgs::falcon
