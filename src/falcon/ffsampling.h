#pragma once
// The Falcon tree (ffLDL* decomposition of the secret basis Gram matrix in
// FFT representation) and fast-Fourier nearest-plane sampling over it.

#include <memory>

#include "falcon/fft.h"
#include "falcon/keygen.h"
#include "falcon/samplerz.h"

namespace cgs::falcon {

/// One node of the LDL tree over ring dimension m: l10 steers the
/// nearest-plane recursion; leaves (m == 1) carry the per-coordinate
/// Gaussian widths.
struct FfNode {
  CVec l10;
  std::unique_ptr<FfNode> child0, child1;  // for d00 / d11, dim m/2
  double sigma0 = 0.0, sigma1 = 0.0;       // leaf widths (m == 1 only)
};

class FalconTree {
 public:
  /// Build from a key pair; throws if a leaf width escapes
  /// [sigma_min, sigma_max] (keygen guarantees it does not).
  explicit FalconTree(const KeyPair& kp);

  const FfNode& root() const { return *root_; }

  /// Basis rows in FFT: b = [[g, -f], [G, -F]].
  const CVec& b00() const { return b00_; }
  const CVec& b01() const { return b01_; }
  const CVec& b10() const { return b10_; }
  const CVec& b11() const { return b11_; }

  double min_leaf_sigma() const { return min_sigma_; }
  double max_leaf_sigma() const { return max_sigma_; }

 private:
  std::unique_ptr<FfNode> build(const CVec& g00, const CVec& g01,
                                const CVec& g11, double sigma_sig);

  std::unique_ptr<FfNode> root_;
  CVec b00_, b01_, b10_, b11_;
  double min_sigma_ = 1e9, max_sigma_ = 0.0;
};

/// ffSampling: z ~ lattice Gaussian around target (t0, t1) (FFT domain).
/// Returns integer vectors z0, z1 (coefficient domain).
struct FfSample {
  std::vector<std::int32_t> z0, z1;
};
FfSample ff_sampling(const CVec& t0, const CVec& t1, const FalconTree& tree,
                     SamplerZ& samplerz, RandomBitSource& rng);

}  // namespace cgs::falcon
