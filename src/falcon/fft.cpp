#include "falcon/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace cgs::falcon {

namespace {

bool is_pow2(std::size_t m) { return m != 0 && (m & (m - 1)) == 0; }

CVec fft_rec(const CVec& f) {
  const std::size_t m = f.size();
  if (m == 1) return f;
  CVec even(m / 2), odd(m / 2);
  for (std::size_t i = 0; i < m / 2; ++i) {
    even[i] = f[2 * i];
    odd[i] = f[2 * i + 1];
  }
  const CVec e = fft_rec(even);
  const CVec o = fft_rec(odd);
  CVec out(m);
  for (std::size_t k = 0; k < m / 2; ++k) {
    const cplx w = root_of_unity(m, k);
    out[k] = e[k] + w * o[k];
    out[k + m / 2] = e[k] - w * o[k];
  }
  return out;
}

CVec ifft_rec(const CVec& s) {
  const std::size_t m = s.size();
  if (m == 1) return s;
  CVec e(m / 2), o(m / 2);
  for (std::size_t k = 0; k < m / 2; ++k) {
    const cplx w = root_of_unity(m, k);
    e[k] = (s[k] + s[k + m / 2]) * 0.5;
    o[k] = (s[k] - s[k + m / 2]) * 0.5 / w;
  }
  const CVec fe = ifft_rec(e);
  const CVec fo = ifft_rec(o);
  CVec f(m);
  for (std::size_t i = 0; i < m / 2; ++i) {
    f[2 * i] = fe[i];
    f[2 * i + 1] = fo[i];
  }
  return f;
}

}  // namespace

cplx root_of_unity(std::size_t m, std::size_t k) {
  const double ang =
      std::numbers::pi * (2.0 * static_cast<double>(k) + 1.0) /
      static_cast<double>(m);
  return {std::cos(ang), std::sin(ang)};
}

CVec fft(std::span<const double> coeffs) {
  CGS_CHECK(is_pow2(coeffs.size()));
  CVec f(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) f[i] = coeffs[i];
  return fft_rec(f);
}

std::vector<double> ifft(std::span<const cplx> spectrum) {
  CGS_CHECK(is_pow2(spectrum.size()));
  const CVec f = ifft_rec(CVec(spectrum.begin(), spectrum.end()));
  std::vector<double> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) out[i] = f[i].real();
  return out;
}

void split_fft(std::span<const cplx> f, CVec& f0, CVec& f1) {
  const std::size_t m = f.size();
  CGS_CHECK(is_pow2(m) && m >= 2);
  f0.resize(m / 2);
  f1.resize(m / 2);
  for (std::size_t k = 0; k < m / 2; ++k) {
    const cplx w = root_of_unity(m, k);
    f0[k] = (f[k] + f[k + m / 2]) * 0.5;
    f1[k] = (f[k] - f[k + m / 2]) * 0.5 / w;
  }
}

CVec merge_fft(std::span<const cplx> f0, std::span<const cplx> f1) {
  const std::size_t half = f0.size();
  CGS_CHECK(f1.size() == half);
  CVec f(2 * half);
  for (std::size_t k = 0; k < half; ++k) {
    const cplx w = root_of_unity(2 * half, k);
    f[k] = f0[k] + w * f1[k];
    f[k + half] = f0[k] - w * f1[k];
  }
  return f;
}

CVec mul_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * b[i];
  return r;
}

CVec add_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

CVec sub_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

CVec adj_fft(std::span<const cplx> a) {
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = std::conj(a[i]);
  return r;
}

CVec div_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] / b[i];
  return r;
}

}  // namespace cgs::falcon
