#include "falcon/fft.h"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace cgs::falcon {

namespace {

bool is_pow2(std::size_t m) { return m != 0 && (m & (m - 1)) == 0; }

// Precomputed butterfly schedule for ring size m. The negacyclic recursion
// evaluates both the even and the odd half over the *same* root set, so —
// unlike the cyclic FFT — every block of a level shares one twiddle array:
// level l holds root_of_unity(s, k) for s = 2 << l, k < s/2, split into
// separate re/im arrays (with __restrict pointers below, the split form is
// what lets the butterfly loops vectorize). bitrev pairs the iterative
// bottom-up traversal with the recursive even/odd definition.
//
// The old implementation recomputed cos/sin per butterfly — n log n trig
// calls per transform, which dominated the whole signing path. The tables
// hold identical values, so results match the recursive form butterfly for
// butterfly.
struct FftPlan {
  std::vector<std::vector<double>> twr, twi;  // per level, k < s/2
  std::vector<std::uint32_t> bitrev;
};

const FftPlan& plan_for(std::size_t m) {
  // Lock-free lookup once published: signing threads hit this on every
  // split/merge, so the hot path is one acquire load per call.
  static std::array<std::atomic<const FftPlan*>, 64> plans{};
  static std::mutex build_mu;
  static std::vector<std::unique_ptr<const FftPlan>> owner;

  const int logm = std::countr_zero(m);
  if (const FftPlan* p = plans[logm].load(std::memory_order_acquire))
    return *p;
  std::lock_guard<std::mutex> lock(build_mu);
  if (const FftPlan* p = plans[logm].load(std::memory_order_acquire))
    return *p;

  auto plan = std::make_unique<FftPlan>();
  for (std::size_t s = 2; s <= m; s <<= 1) {
    std::vector<double> re(s / 2), im(s / 2);
    for (std::size_t k = 0; k < s / 2; ++k) {
      const cplx w = root_of_unity(s, k);
      re[k] = w.real();
      im[k] = w.imag();
    }
    plan->twr.push_back(std::move(re));
    plan->twi.push_back(std::move(im));
  }
  plan->bitrev.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < logm; ++b) r |= ((i >> b) & 1u) << (logm - 1 - b);
    plan->bitrev[i] = static_cast<std::uint32_t>(r);
  }

  const FftPlan* raw = plan.get();
  owner.push_back(std::move(plan));
  plans[logm].store(raw, std::memory_order_release);
  return *raw;
}

// std::complex<double> is layout-compatible with double[2] (re, im) by
// [complex.numbers.general]; the butterfly kernels run on the raw doubles
// with __restrict so the compiler vectorizes across lanes.
double* as_doubles(cplx* p) { return reinterpret_cast<double*>(p); }
const double* as_doubles(const cplx* p) {
  return reinterpret_cast<const double*>(p);
}

}  // namespace

cplx root_of_unity(std::size_t m, std::size_t k) {
  const double ang =
      std::numbers::pi * (2.0 * static_cast<double>(k) + 1.0) /
      static_cast<double>(m);
  return {std::cos(ang), std::sin(ang)};
}

CVec fft(std::span<const double> coeffs) {
  const std::size_t m = coeffs.size();
  CGS_CHECK(is_pow2(m));
  CVec f(m);
  if (m == 1) {
    f[0] = coeffs[0];
    return f;
  }
  const FftPlan& plan = plan_for(m);
  for (std::size_t i = 0; i < m; ++i) f[i] = coeffs[plan.bitrev[i]];
  double* const fd = as_doubles(f.data());
  std::size_t level = 0;
  for (std::size_t s = 2; s <= m; s <<= 1, ++level) {
    const double* __restrict wr = plan.twr[level].data();
    const double* __restrict wi = plan.twi[level].data();
    const std::size_t half = s / 2;
    for (std::size_t o = 0; o < m; o += s) {
      double* __restrict pa = fd + 2 * o;
      double* __restrict pb = fd + 2 * (o + half);
      for (std::size_t k = 0; k < half; ++k) {
        const double ar = pa[2 * k], ai = pa[2 * k + 1];
        const double xr = pb[2 * k], xi = pb[2 * k + 1];
        const double br = wr[k] * xr - wi[k] * xi;
        const double bi = wr[k] * xi + wi[k] * xr;
        pa[2 * k] = ar + br;
        pa[2 * k + 1] = ai + bi;
        pb[2 * k] = ar - br;
        pb[2 * k + 1] = ai - bi;
      }
    }
  }
  return f;
}

std::vector<double> ifft(std::span<const cplx> spectrum) {
  const std::size_t m = spectrum.size();
  CGS_CHECK(is_pow2(m));
  std::vector<double> out(m);
  if (m == 1) {
    out[0] = spectrum[0].real();
    return out;
  }
  const FftPlan& plan = plan_for(m);
  CVec f(spectrum.begin(), spectrum.end());
  double* const fd = as_doubles(f.data());
  std::size_t level = plan.twr.size();
  for (std::size_t s = m; s >= 2; s >>= 1) {
    --level;
    const double* __restrict wr = plan.twr[level].data();
    const double* __restrict wi = plan.twi[level].data();
    const std::size_t half = s / 2;
    for (std::size_t o = 0; o < m; o += s) {
      double* __restrict pa = fd + 2 * o;
      double* __restrict pb = fd + 2 * (o + half);
      for (std::size_t k = 0; k < half; ++k) {
        const double ar = pa[2 * k], ai = pa[2 * k + 1];
        const double br = pb[2 * k], bi = pb[2 * k + 1];
        const double dr = (ar - br) * 0.5, di = (ai - bi) * 0.5;
        pa[2 * k] = (ar + br) * 0.5;
        pa[2 * k + 1] = (ai + bi) * 0.5;
        // d * conj(w), |w| == 1.
        pb[2 * k] = dr * wr[k] + di * wi[k];
        pb[2 * k + 1] = di * wr[k] - dr * wi[k];
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) out[i] = f[plan.bitrev[i]].real();
  return out;
}

void split_fft(std::span<const cplx> f, std::span<cplx> f0,
               std::span<cplx> f1) {
  const std::size_t m = f.size();
  CGS_CHECK(is_pow2(m) && m >= 2);
  CGS_CHECK(f0.size() == m / 2 && f1.size() == m / 2);
  const FftPlan& plan = plan_for(m);
  const double* __restrict wr = plan.twr.back().data();
  const double* __restrict wi = plan.twi.back().data();
  const double* __restrict pa = as_doubles(f.data());
  const double* __restrict pb = as_doubles(f.data() + m / 2);
  double* __restrict q0 = as_doubles(f0.data());
  double* __restrict q1 = as_doubles(f1.data());
  for (std::size_t k = 0; k < m / 2; ++k) {
    const double ar = pa[2 * k], ai = pa[2 * k + 1];
    const double br = pb[2 * k], bi = pb[2 * k + 1];
    const double dr = (ar - br) * 0.5, di = (ai - bi) * 0.5;
    q0[2 * k] = (ar + br) * 0.5;
    q0[2 * k + 1] = (ai + bi) * 0.5;
    q1[2 * k] = dr * wr[k] + di * wi[k];
    q1[2 * k + 1] = di * wr[k] - dr * wi[k];
  }
}

void split_fft(std::span<const cplx> f, CVec& f0, CVec& f1) {
  f0.resize(f.size() / 2);
  f1.resize(f.size() / 2);
  split_fft(f, std::span<cplx>(f0), std::span<cplx>(f1));
}

void merge_fft(std::span<const cplx> f0, std::span<const cplx> f1,
               std::span<cplx> out) {
  const std::size_t half = f0.size();
  CGS_CHECK(f1.size() == half && out.size() == 2 * half);
  // plan_for indexes by log2: a non-power-of-two size would silently pick
  // the wrong plan and read past its twiddle table.
  CGS_CHECK(is_pow2(2 * half));
  const FftPlan& plan = plan_for(2 * half);
  const double* __restrict wr = plan.twr.back().data();
  const double* __restrict wi = plan.twi.back().data();
  const double* __restrict q0 = as_doubles(f0.data());
  const double* __restrict q1 = as_doubles(f1.data());
  double* __restrict pa = as_doubles(out.data());
  double* __restrict pb = as_doubles(out.data() + half);
  for (std::size_t k = 0; k < half; ++k) {
    const double xr = q1[2 * k], xi = q1[2 * k + 1];
    const double br = wr[k] * xr - wi[k] * xi;
    const double bi = wr[k] * xi + wi[k] * xr;
    pa[2 * k] = q0[2 * k] + br;
    pa[2 * k + 1] = q0[2 * k + 1] + bi;
    pb[2 * k] = q0[2 * k] - br;
    pb[2 * k + 1] = q0[2 * k + 1] - bi;
  }
}

CVec merge_fft(std::span<const cplx> f0, std::span<const cplx> f1) {
  CVec f(2 * f0.size());
  merge_fft(f0, f1, f);
  return f;
}

CVec mul_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = cmul(a[i], b[i]);
  return r;
}

CVec add_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

CVec sub_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

CVec adj_fft(std::span<const cplx> a) {
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = std::conj(a[i]);
  return r;
}

CVec div_fft(std::span<const cplx> a, std::span<const cplx> b) {
  CGS_CHECK(a.size() == b.size());
  CVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] / b[i];
  return r;
}

}  // namespace cgs::falcon
