#pragma once
// Negacyclic complex FFT over R[x]/(x^m+1), m a power of two: the numeric
// backbone of Falcon's keygen (Babai reduction), ffLDL tree and ffSampling.
// Polynomials of size m are evaluated at the m odd 2m-th roots of unity
// zeta_k = exp(i pi (2k+1)/m); the full complex spectrum is kept (no
// Hermitian packing) for clarity.

#include <complex>
#include <span>
#include <vector>

namespace cgs::falcon {

using cplx = std::complex<double>;
using CVec = std::vector<cplx>;

/// Forward FFT of real coefficients (size must be a power of two).
CVec fft(std::span<const double> coeffs);

/// Inverse FFT back to real coefficients (imaginary parts discarded; they
/// are ~1e-12 for genuinely real polynomials).
std::vector<double> ifft(std::span<const CVec::value_type> spectrum);

/// FFT-domain split: spectrum of f (size m) -> spectra of f0, f1 (size m/2)
/// where f(x) = f0(x^2) + x f1(x^2).
void split_fft(std::span<const cplx> f, CVec& f0, CVec& f1);
/// Allocation-free form: f0, f1 must be sized m/2 and must not alias f
/// (ffSampling hot path; the kernels assume distinct buffers).
void split_fft(std::span<const cplx> f, std::span<cplx> f0,
               std::span<cplx> f1);

/// Inverse of split_fft.
CVec merge_fft(std::span<const cplx> f0, std::span<const cplx> f1);
/// Allocation-free form: out must be sized 2 * f0.size() and must not
/// alias f0 or f1.
void merge_fft(std::span<const cplx> f0, std::span<const cplx> f1,
               std::span<cplx> out);

/// Pointwise helpers.
CVec mul_fft(std::span<const cplx> a, std::span<const cplx> b);
CVec add_fft(std::span<const cplx> a, std::span<const cplx> b);
CVec sub_fft(std::span<const cplx> a, std::span<const cplx> b);
/// Adjoint f*(x) = f(1/x): complex conjugate per evaluation point.
CVec adj_fft(std::span<const cplx> a);
/// a / b pointwise (b must be nonzero everywhere).
CVec div_fft(std::span<const cplx> a, std::span<const cplx> b);

/// The k-th evaluation point zeta_k for ring size m.
cplx root_of_unity(std::size_t m, std::size_t k);

/// Explicit complex multiply for finite operands: std::complex operator*
/// lowers to the __muldc3 inf/nan fix-up without -ffast-math, several
/// times the cost of the four real multiplies. Spectra here are finite by
/// construction, so hot loops (butterflies, ffSampling pointwise stages)
/// use the plain formula.
inline cplx cmul(cplx a, cplx b) {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

/// a * conj(b) (adjoint products, inverse butterflies with |b| == 1).
inline cplx cmul_conj(cplx a, cplx b) {
  return {a.real() * b.real() + a.imag() * b.imag(),
          a.imag() * b.real() - a.real() * b.imag()};
}

}  // namespace cgs::falcon
