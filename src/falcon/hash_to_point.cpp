#include "falcon/hash_to_point.h"

#include "falcon/ntt.h"
#include "prng/keccak.h"

namespace cgs::falcon {

namespace {

// Accept 16-bit big-endian chunks below k*q with k = floor(2^16/q) = 5;
// reduce mod q. Rejection keeps the output exactly uniform.
constexpr std::uint32_t kLimit = 5 * kQ;  // 61445
constexpr std::size_t kRate = 136;        // SHAKE-256 rate in bytes

// A padded, squeeze-ready SHAKE-256 state over nonce || message (the
// first squeeze permutation not yet applied) — the one sponge
// implementation lives in prng::Shake.
std::array<std::uint64_t, 25> absorbed_state(
    std::span<const std::uint8_t> nonce, std::string_view message) {
  prng::Shake shake(prng::Shake::Variant::kShake256);
  shake.absorb(nonce);
  shake.absorb(message);
  return shake.finalize_state();
}

// Feed one freshly squeezed rate-block through the rejection sampler.
void consume_block(const std::uint8_t* block, std::size_t n,
                   std::vector<std::uint32_t>& c) {
  for (std::size_t off = 0; off + 1 < kRate && c.size() < n; off += 2) {
    const std::uint32_t v =
        (static_cast<std::uint32_t>(block[off]) << 8) | block[off + 1];
    if (v < kLimit) c.push_back(v % kQ);
  }
}

}  // namespace

std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> nonce,
                                         std::string_view message,
                                         std::size_t n) {
  std::array<std::uint64_t, 25> state = absorbed_state(nonce, message);
  std::vector<std::uint32_t> c;
  c.reserve(n);
  while (c.size() < n) {
    prng::keccak_f1600(state);
    consume_block(reinterpret_cast<const std::uint8_t*>(state.data()), n, c);
  }
  return c;
}

void hash_to_point_x4(
    const std::array<std::span<const std::uint8_t>, 4>& nonces,
    const std::array<std::string_view, 4>& messages, std::size_t n,
    std::array<std::vector<std::uint32_t>, 4>& out) {
  std::array<std::array<std::uint64_t, 25>, 4> states;
  for (int lane = 0; lane < 4; ++lane) {
    states[lane] = absorbed_state(nonces[lane], messages[lane]);
    out[lane].clear();
    out[lane].reserve(n);
  }
  std::array<prng::U64x4, 25> vs;
  for (int w = 0; w < 25; ++w)
    vs[w] = prng::U64x4{states[0][w], states[1][w], states[2][w],
                        states[3][w]};

  // Each pass permutes all four sponges; lanes that already have their n
  // coefficients simply discard their block (a lane's byte stream is the
  // same as its scalar SHAKE's, so rejection sampling consumes it
  // identically). The pass count is the max over lanes instead of the
  // sum — the amortization.
  for (;;) {
    bool any_pending = false;
    for (int lane = 0; lane < 4; ++lane)
      any_pending |= out[lane].size() < n;
    if (!any_pending) return;
    prng::keccak_f1600_x4(vs);
    std::uint8_t block[kRate];
    for (int lane = 0; lane < 4; ++lane) {
      if (out[lane].size() >= n) continue;
      for (std::size_t w = 0; w < (kRate + 7) / 8; ++w) {
        const std::uint64_t word = vs[w][lane];
        for (int b = 0; b < 8 && 8 * w + b < kRate; ++b)
          block[8 * w + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
      consume_block(block, n, out[lane]);
    }
  }
}

}  // namespace cgs::falcon
