#include "falcon/hash_to_point.h"

#include "falcon/ntt.h"
#include "prng/keccak.h"

namespace cgs::falcon {

std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> nonce,
                                         std::string_view message,
                                         std::size_t n) {
  prng::Shake shake(prng::Shake::Variant::kShake256);
  shake.absorb(nonce);
  shake.absorb(message);

  // Accept 16-bit big-endian chunks below k*q with k = floor(2^16/q) = 5;
  // reduce mod q. Rejection keeps the output exactly uniform.
  constexpr std::uint32_t kLimit = 5 * kQ;  // 61445
  std::vector<std::uint32_t> c;
  c.reserve(n);
  std::uint8_t chunk[2];
  while (c.size() < n) {
    shake.squeeze(std::span<std::uint8_t>(chunk, 2));
    const std::uint32_t v =
        (static_cast<std::uint32_t>(chunk[0]) << 8) | chunk[1];
    if (v < kLimit) c.push_back(v % kQ);
  }
  return c;
}

}  // namespace cgs::falcon
