#pragma once
// SHAKE-256 hash-to-point: message + nonce -> uniform polynomial mod q
// (rejection sampling of 16-bit chunks below 5*q, as in the Falcon spec).
// The x4 form drives four sponges through one 4-lane vectorized
// Keccak-f[1600] — the batched verification lane's hash amortization —
// and is bit-identical to four scalar calls.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cgs::falcon {

std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> nonce,
                                         std::string_view message,
                                         std::size_t n);

/// Four hash-to-points at once; out[k] == hash_to_point(nonces[k],
/// messages[k], n) exactly. Absorption (tens of bytes) stays scalar per
/// lane; the squeeze — where nearly every permutation lives — runs all
/// four states per Keccak pass.
void hash_to_point_x4(
    const std::array<std::span<const std::uint8_t>, 4>& nonces,
    const std::array<std::string_view, 4>& messages, std::size_t n,
    std::array<std::vector<std::uint32_t>, 4>& out);

}  // namespace cgs::falcon
