#pragma once
// SHAKE-256 hash-to-point: message + nonce -> uniform polynomial mod q
// (rejection sampling of 16-bit chunks below 5*q, as in the Falcon spec).

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace cgs::falcon {

std::vector<std::uint32_t> hash_to_point(std::span<const std::uint8_t> nonce,
                                         std::string_view message,
                                         std::size_t n);

}  // namespace cgs::falcon
