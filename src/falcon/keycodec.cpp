#include "falcon/keycodec.h"

#include <bit>
#include <cstdlib>

#include "common/check.h"
#include "falcon/codec.h"

namespace cgs::falcon {

namespace {

int log2_of(std::size_t n) {
  CGS_CHECK(n >= 2 && (n & (n - 1)) == 0);
  return std::countr_zero(n);
}

bool header_matches(std::uint8_t byte, std::uint8_t tag, std::size_t* n_out) {
  if ((byte & 0xf0) != tag) return false;
  const int logn = byte & 0x0f;
  if (logn < 1 || logn > 11) return false;
  *n_out = std::size_t(1) << logn;
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_public_key(const KeyPair& kp) {
  BitWriter w;
  w.put_bits(static_cast<std::uint32_t>(log2_of(kp.params.n)), 8);
  for (std::uint32_t c : kp.h) {
    CGS_CHECK(c < kQ);
    w.put_bits(c, 14);
  }
  return w.bytes();
}

std::optional<DecodedPublicKey> decode_public_key(
    const std::vector<std::uint8_t>& bytes) {
  BitReader r(bytes);
  const auto hdr = r.get_bits(8);
  std::size_t n = 0;
  if (!hdr || !header_matches(static_cast<std::uint8_t>(*hdr), 0x00, &n))
    return std::nullopt;
  DecodedPublicKey out;
  out.params = FalconParams::for_degree(n);
  out.h.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = r.get_bits(14);
    if (!v || *v >= kQ) return std::nullopt;
    out.h.push_back(*v);
  }
  return out;
}

std::vector<std::uint8_t> encode_secret_key(const KeyPair& kp) {
  // Width: enough for the largest |coefficient| over f,g,F,G plus sign.
  std::uint32_t max_mag = 1;
  for (const IPoly* p : {&kp.f, &kp.g, &kp.f_cap, &kp.g_cap})
    for (std::int32_t c : *p)
      max_mag = std::max(max_mag, static_cast<std::uint32_t>(std::abs(c)));
  const int width = std::bit_width(max_mag) + 1;  // sign bit
  CGS_CHECK(width <= 24);

  BitWriter w;
  w.put_bits(0x50u | static_cast<std::uint32_t>(log2_of(kp.params.n)), 8);
  w.put_bits(static_cast<std::uint32_t>(width), 8);
  for (const IPoly* p : {&kp.f, &kp.g, &kp.f_cap, &kp.g_cap}) {
    for (std::int32_t c : *p) {
      w.put(c < 0 ? 1 : 0);
      w.put_bits(static_cast<std::uint32_t>(std::abs(c)), width - 1);
    }
  }
  return w.bytes();
}

std::optional<DecodedSecretKey> decode_secret_key(
    const std::vector<std::uint8_t>& bytes) {
  BitReader r(bytes);
  const auto hdr = r.get_bits(8);
  std::size_t n = 0;
  if (!hdr || !header_matches(static_cast<std::uint8_t>(*hdr), 0x50, &n))
    return std::nullopt;
  const auto width = r.get_bits(8);
  if (!width || *width < 2 || *width > 24) return std::nullopt;

  DecodedSecretKey out;
  out.params = FalconParams::for_degree(n);
  for (IPoly* p : {&out.f, &out.g, &out.f_cap, &out.g_cap}) {
    p->resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int sign = r.get();
      const auto mag = r.get_bits(static_cast<int>(*width) - 1);
      if (sign < 0 || !mag) return std::nullopt;
      const auto v = static_cast<std::int32_t>(*mag);
      (*p)[i] = sign ? -v : v;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_signature(const Signature& sig,
                                           std::size_t n) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(0x30u | log2_of(n)));
  out.insert(out.end(), sig.nonce.begin(), sig.nonce.end());
  const auto s1 = compress_s1(sig.s1);
  out.insert(out.end(), s1.begin(), s1.end());
  return out;
}

std::optional<Signature> decode_signature(
    const std::vector<std::uint8_t>& bytes, std::size_t expected_n) {
  if (bytes.size() < 1 + 40) return std::nullopt;
  std::size_t n = 0;
  if (!header_matches(bytes[0], 0x30, &n) || n != expected_n)
    return std::nullopt;
  Signature sig;
  std::copy(bytes.begin() + 1, bytes.begin() + 41, sig.nonce.begin());
  const std::vector<std::uint8_t> body(bytes.begin() + 41, bytes.end());
  auto s1 = decompress_s1(body, n);
  if (!s1) return std::nullopt;
  sig.s1 = std::move(*s1);
  return sig;
}

}  // namespace cgs::falcon
