#pragma once
// Wire formats for keys and signatures, in the spirit of the Falcon
// specification: a header byte carrying log2(N), 14-bit packed public keys
// (q = 12289 < 2^14), fixed-width signed secret keys, and signatures as
// header || nonce || Golomb-Rice-compressed s1.

#include <optional>

#include "falcon/sign.h"

namespace cgs::falcon {

/// h packed at 14 bits per coefficient after a header byte 0x00 | logn.
std::vector<std::uint8_t> encode_public_key(const KeyPair& kp);

struct DecodedPublicKey {
  std::vector<std::uint32_t> h;
  FalconParams params;
};
std::optional<DecodedPublicKey> decode_public_key(
    const std::vector<std::uint8_t>& bytes);

/// f, g, F, G at a fixed signed width chosen from the maximum magnitude;
/// header byte 0x50 | logn, then the width, then the packed values.
std::vector<std::uint8_t> encode_secret_key(const KeyPair& kp);

struct DecodedSecretKey {
  IPoly f, g, f_cap, g_cap;
  FalconParams params;
};
std::optional<DecodedSecretKey> decode_secret_key(
    const std::vector<std::uint8_t>& bytes);

/// header 0x30 | logn, 40-byte nonce, compressed s1.
std::vector<std::uint8_t> encode_signature(const Signature& sig,
                                           std::size_t n);
std::optional<Signature> decode_signature(
    const std::vector<std::uint8_t>& bytes, std::size_t expected_n);

}  // namespace cgs::falcon
