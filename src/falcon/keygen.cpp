#include "falcon/keygen.h"

#include <cmath>

#include "cdt/cdt_samplers.h"
#include "cdt/cdt_table.h"
#include "common/check.h"
#include "falcon/fft.h"
#include "falcon/ntrusolve.h"

namespace cgs::falcon {

FalconParams FalconParams::for_degree(std::size_t n) {
  FalconParams p;
  p.n = n;
  // Falcon's signature width grows mildly with n; 165.736 (n=512) and
  // 168.389 (n=1024) are the official values, 163 extrapolates to 256.
  p.sigma_sig = n >= 1024 ? 168.389 : (n >= 512 ? 165.736 : 163.0);
  return p;
}

std::int64_t FalconParams::bound_sq() const {
  if (norm_bound_sq != 0) return norm_bound_sq;
  const double b = 1.1 * sigma_sig * std::sqrt(2.0 * static_cast<double>(n));
  return static_cast<std::int64_t>(b * b);
}

namespace {

// Gram-Schmidt norm of the NTRU basis candidate (Falcon keygen eq.):
// gamma = max(||(g,-f)||, ||(q fbar / (f fbar + g gbar), q gbar / ...)||).
double gs_norm_sq(const IPoly& f, const IPoly& g) {
  const double first = static_cast<double>(norm_sq_pair(f, g));
  const CVec ff = fft(to_doubles(f));
  const CVec gf = fft(to_doubles(g));
  const std::size_t n = f.size();
  double second = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = std::norm(ff[k]) + std::norm(gf[k]);
    // ||q f* / (f f* + g g*)||^2 contribution of slot k is q^2 |f_k|^2/d^2;
    // FFT Parseval: coefficient-domain norm = spectrum norm / n.
    second += static_cast<double>(kQ) * kQ * (std::norm(ff[k]) + std::norm(gf[k])) / (d * d);
  }
  second /= static_cast<double>(n);
  return std::max(first, second);
}

}  // namespace

KeyPair keygen(const FalconParams& params, RandomBitSource& rng,
               KeygenStats* stats) {
  const std::size_t n = params.n;
  CGS_CHECK(n >= 4 && (n & (n - 1)) == 0);

  // sigma_fg = 1.17 sqrt(q / 2n), as a rational for the table builder.
  const double sfg = 1.17 * std::sqrt(static_cast<double>(kQ) /
                                      (2.0 * static_cast<double>(n)));
  const auto gp = gauss::GaussianParams::from_sigma(
      static_cast<std::uint64_t>(std::lround(sfg * 1000.0)), 1000,
      /*tau=*/13, /*precision=*/64);
  const gauss::ProbMatrix matrix(gp);
  const cdt::CdtTable table(matrix);
  cdt::CdtBinarySearchSampler sampler(table);

  const NttContext ntt(n);
  const double gs_bound = 1.17 * 1.17 * static_cast<double>(kQ);

  KeygenStats local;
  KeygenStats& st = stats ? *stats : local;
  for (;;) {
    IPoly f(n), g(n);
    for (auto& c : f) c = sampler.sample(rng);
    for (auto& c : g) c = sampler.sample(rng);

    if (gs_norm_sq(f, g) > gs_bound) {
      ++st.fg_resamples;
      continue;
    }
    std::vector<std::uint32_t> f_inv;
    if (!ntt.try_invert(to_mod_q_poly(f), f_inv)) {
      ++st.fg_resamples;
      continue;
    }

    auto sol = ntru_solve(to_zpoly(f), to_zpoly(g), kQ);
    if (!sol) {
      ++st.ntru_failures;
      continue;
    }

    KeyPair kp;
    kp.params = params;
    kp.f = f;
    kp.g = g;
    kp.f_cap = from_zpoly(sol->f_cap);
    kp.g_cap = from_zpoly(sol->g_cap);
    kp.h = ntt.multiply(to_mod_q_poly(g), f_inv);
    return kp;
  }
}

}  // namespace cgs::falcon
