#pragma once
// Falcon key generation: sample small (f, g), require invertibility and a
// well-conditioned Gram–Schmidt norm, solve the NTRU equation for (F, G),
// publish h = g f^{-1} mod q.

#include <cstdint>

#include "common/randombits.h"
#include "falcon/poly.h"

namespace cgs::falcon {

struct FalconParams {
  std::size_t n = 512;       // ring degree (paper's N; power of two)
  double sigma_sig = 165.7;  // signature Gaussian width
  double sigma_min = 1.1;    // sanity floor for tree leaves
  double sigma_max = 1.95;   // leaf ceiling; must stay below the sigma=2 base
  std::int64_t norm_bound_sq = 0;  // beta^2; 0 = derive from sigma_sig

  static FalconParams for_degree(std::size_t n);
  std::int64_t bound_sq() const;
};

struct KeyPair {
  FalconParams params;
  IPoly f, g;        // secret short pair
  IPoly f_cap, g_cap;  // F, G from NTRUSolve
  std::vector<std::uint32_t> h;  // public key, coefficient domain [0,q)
};

struct KeygenStats {
  int fg_resamples = 0;     // rejected (f,g) candidates
  int ntru_failures = 0;    // gcd != 1 in NTRUSolve
};

/// Generate a key pair. Deterministic given the bit source.
KeyPair keygen(const FalconParams& params, RandomBitSource& rng,
               KeygenStats* stats = nullptr);

}  // namespace cgs::falcon
