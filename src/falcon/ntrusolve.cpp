#include "falcon/ntrusolve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "falcon/fft.h"

namespace cgs::falcon {

using bigint::BigInt;

namespace {

// Top-53-bit double image of a ZPoly: coeff >> (scale_bits - 53), where
// scale_bits >= 53 is shared across the whole polynomial.
std::vector<double> zp_to_doubles(const ZPoly& p, int scale_bits) {
  std::vector<double> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    int e = 0;
    const double m = p[i].to_double_scaled(e);  // p[i] ~ m * 2^e
    out[i] = std::ldexp(m, e - (scale_bits - 53));
  }
  return out;
}

}  // namespace

void reduce_against(const ZPoly& f, const ZPoly& g, ZPoly& F, ZPoly& G) {
  const std::size_t m = f.size();
  CGS_CHECK(g.size() == m && F.size() == m && G.size() == m);

  const int size = std::max({53, zp_max_bits(f), zp_max_bits(g)});
  const CVec fa = fft(zp_to_doubles(f, size));
  const CVec ga = fft(zp_to_doubles(g, size));
  // den = f f* + g g* (real, positive for f,g not both zero anywhere).
  const CVec den = add_fft(mul_fft(fa, adj_fft(fa)), mul_fft(ga, adj_fft(ga)));

  for (int iter = 0; iter < 400; ++iter) {
    const int cap = std::max({53, zp_max_bits(F), zp_max_bits(G)});
    const int shift = std::max(0, cap - size);
    const CVec Fa = fft(zp_to_doubles(F, cap));
    const CVec Ga = fft(zp_to_doubles(G, cap));
    const CVec num =
        add_fft(mul_fft(Fa, adj_fft(fa)), mul_fft(Ga, adj_fft(ga)));
    const std::vector<double> k_real = ifft(div_fft(num, den));

    ZPoly k(m, BigInt(0));
    bool any = false;
    for (std::size_t i = 0; i < m; ++i) {
      const double r = std::nearbyint(k_real[i]);
      if (r != 0.0) {
        CGS_CHECK_MSG(std::fabs(r) < 9e18, "Babai step out of int64 range");
        k[i] = BigInt(static_cast<std::int64_t>(r));
        any = true;
      }
    }
    if (!any) return;

    const ZPoly fk = zp_mul(f, k);
    const ZPoly gk = zp_mul(g, k);
    for (std::size_t i = 0; i < m; ++i) {
      F[i] -= fk[i].shifted_left(shift);
      G[i] -= gk[i].shifted_left(shift);
    }
  }
  // Babai with double steering occasionally stops making progress on the
  // last few bits; that is fine — the result is still an exact solution,
  // just marginally longer. Callers validate f G - g F == q regardless.
}

namespace {

std::optional<NtruSolution> solve_rec(const ZPoly& f, const ZPoly& g,
                                      std::int64_t q) {
  const std::size_t m = f.size();
  if (m == 1) {
    BigInt u, v;
    const BigInt d = BigInt::xgcd(f[0], g[0], u, v);
    if (!(d == BigInt(1))) return std::nullopt;
    // u f + v g = 1  =>  f (u q) - g (-v q) = q.
    NtruSolution s;
    s.f_cap = {(-v) * BigInt(q)};
    s.g_cap = {u * BigInt(q)};
    reduce_against(f, g, s.f_cap, s.g_cap);
    return s;
  }

  const ZPoly fn = zp_field_norm(f);
  const ZPoly gn = zp_field_norm(g);
  auto sub = solve_rec(fn, gn, q);
  if (!sub) return std::nullopt;

  // Lift: F = F'(x^2) g(-x), G = G'(x^2) f(-x) gives f G - g F = q because
  // f(x) f(-x) = N(f)(x^2).
  NtruSolution s;
  s.f_cap = zp_mul(zp_lift(sub->f_cap), zp_conjugate(g));
  s.g_cap = zp_mul(zp_lift(sub->g_cap), zp_conjugate(f));
  reduce_against(f, g, s.f_cap, s.g_cap);
  return s;
}

}  // namespace

std::optional<NtruSolution> ntru_solve(const ZPoly& f, const ZPoly& g,
                                       std::int64_t q) {
  CGS_CHECK(!f.empty() && f.size() == g.size());
  CGS_CHECK((f.size() & (f.size() - 1)) == 0);
  auto s = solve_rec(f, g, q);
  if (!s) return std::nullopt;
  // Exact verification of the NTRU equation.
  const ZPoly lhs = zp_sub(zp_mul(f, s->g_cap), zp_mul(g, s->f_cap));
  if (!(lhs[0] == BigInt(q))) return std::nullopt;
  for (std::size_t i = 1; i < lhs.size(); ++i)
    if (!lhs[i].is_zero()) return std::nullopt;
  return s;
}

}  // namespace cgs::falcon
