#pragma once
// NTRUSolve: given small f, g in Z[x]/(x^N+1), find F, G with
// f G - g F = q. The field-norm recursion of Falcon's keygen: project to
// half-size rings via N(.), solve at the bottom with integer XGCD, lift
// back up and Babai-reduce at every level with scaled-double FFT precision
// (exact arithmetic throughout; doubles only steer the reduction).

#include <optional>

#include "falcon/zpoly.h"

namespace cgs::falcon {

struct NtruSolution {
  ZPoly f_cap;  // F
  ZPoly g_cap;  // G
};

/// Returns nullopt when the resultants share a factor (caller resamples
/// f, g). On success, f G - g F == q exactly (verified internally).
std::optional<NtruSolution> ntru_solve(const ZPoly& f, const ZPoly& g,
                                       std::int64_t q);

/// Babai-style length reduction of (F, G) against (f, g): repeatedly
/// subtracts k*(f,g) with k = round((F f* + G g*) / (f f* + g g*)).
/// Exposed for tests; ntru_solve calls it at every level.
void reduce_against(const ZPoly& f, const ZPoly& g, ZPoly& F, ZPoly& G);

}  // namespace cgs::falcon
