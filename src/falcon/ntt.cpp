#include "falcon/ntt.h"

#include "common/check.h"

namespace cgs::falcon {

namespace {

constexpr std::uint64_t kQ64 = kQ;

std::uint32_t mul_mod(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) % kQ64);
}

// Smallest primitive root of q (q - 1 = 2^12 * 3): g is primitive iff
// g^((q-1)/2) != 1 and g^((q-1)/3) != 1.
std::uint32_t primitive_root() {
  for (std::uint32_t g = 2;; ++g) {
    if (pow_mod_q(g, (kQ - 1) / 2) != 1 && pow_mod_q(g, (kQ - 1) / 3) != 1)
      return g;
  }
}

}  // namespace

std::uint32_t pow_mod_q(std::uint32_t base, std::uint32_t exp) {
  std::uint64_t r = 1, b = base % kQ64;
  while (exp) {
    if (exp & 1u) r = (r * b) % kQ64;
    b = (b * b) % kQ64;
    exp >>= 1;
  }
  return static_cast<std::uint32_t>(r);
}

NttContext::NttContext(std::size_t n) : n_(n) {
  CGS_CHECK(n >= 2 && (n & (n - 1)) == 0 && n <= 2048);
  const std::uint32_t g = primitive_root();
  const std::uint32_t psi =
      pow_mod_q(g, (kQ - 1) / static_cast<std::uint32_t>(2 * n));
  CGS_CHECK(pow_mod_q(psi, static_cast<std::uint32_t>(n)) == kQ - 1);
  psi_.resize(2 * n);
  psi_inv_.resize(2 * n);
  const std::uint32_t psi_i = pow_mod_q(psi, static_cast<std::uint32_t>(2 * n) - 1);
  psi_[0] = psi_inv_[0] = 1;
  for (std::size_t i = 1; i < 2 * n; ++i) {
    psi_[i] = mul_mod(psi_[i - 1], psi);
    psi_inv_[i] = mul_mod(psi_inv_[i - 1], psi_i);
  }
  n_inv_ = pow_mod_q(static_cast<std::uint32_t>(n), kQ - 2);
}

void NttContext::forward(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  // Pre-twist by psi^i turns negacyclic into cyclic, then iterative
  // Cooley-Tukey with omega = psi^2.
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], psi_[i]);
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t step = 2 * n_ / len;  // exponent stride for omega
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::uint32_t w = psi_[2 * k * step / 2];  // omega^k = psi^(2k n/len)
        const std::uint32_t u = a[i + k];
        const std::uint32_t v = mul_mod(a[i + k + len / 2], w);
        a[i + k] = (u + v) % kQ;
        a[i + k + len / 2] = (u + kQ - v) % kQ;
      }
    }
  }
}

void NttContext::inverse(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::uint32_t w = psi_inv_[2 * k * n_ / len];
        const std::uint32_t u = a[i + k];
        const std::uint32_t v = mul_mod(a[i + k + len / 2], w);
        a[i + k] = (u + v) % kQ;
        a[i + k + len / 2] = (u + kQ - v) % kQ;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = mul_mod(mul_mod(a[i], n_inv_), psi_inv_[i]);
}

std::vector<std::uint32_t> NttContext::multiply(
    std::vector<std::uint32_t> a, std::vector<std::uint32_t> b) const {
  forward(a);
  forward(b);
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], b[i]);
  inverse(a);
  return a;
}

bool NttContext::try_invert(const std::vector<std::uint32_t>& a,
                            std::vector<std::uint32_t>& inv) const {
  std::vector<std::uint32_t> t = a;
  forward(t);
  for (auto& v : t) {
    if (v == 0) return false;
    v = pow_mod_q(v, kQ - 2);
  }
  inverse(t);
  inv = std::move(t);
  return true;
}

}  // namespace cgs::falcon
