#include "falcon/ntt.h"

#include <bit>
#include <map>
#include <mutex>

#include "common/check.h"

namespace cgs::falcon {

namespace {

constexpr std::uint64_t kQ64 = kQ;

std::uint32_t mul_mod(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) % kQ64);
}

// Smallest primitive root of q (q - 1 = 2^12 * 3): g is primitive iff
// g^((q-1)/2) != 1 and g^((q-1)/3) != 1.
std::uint32_t primitive_root() {
  for (std::uint32_t g = 2;; ++g) {
    if (pow_mod_q(g, (kQ - 1) / 2) != 1 && pow_mod_q(g, (kQ - 1) / 3) != 1)
      return g;
  }
}

}  // namespace

std::uint32_t pow_mod_q(std::uint32_t base, std::uint32_t exp) {
  std::uint64_t r = 1, b = base % kQ64;
  while (exp) {
    if (exp & 1u) r = (r * b) % kQ64;
    b = (b * b) % kQ64;
    exp >>= 1;
  }
  return static_cast<std::uint32_t>(r);
}

NttContext::NttContext(std::size_t n) : n_(n) {
  CGS_CHECK(n >= 2 && (n & (n - 1)) == 0 && n <= 2048);
  const std::uint32_t g = primitive_root();
  const std::uint32_t psi =
      pow_mod_q(g, (kQ - 1) / static_cast<std::uint32_t>(2 * n));
  CGS_CHECK(pow_mod_q(psi, static_cast<std::uint32_t>(n)) == kQ - 1);
  psi_.resize(2 * n);
  psi_inv_.resize(2 * n);
  const std::uint32_t psi_i = pow_mod_q(psi, static_cast<std::uint32_t>(2 * n) - 1);
  psi_[0] = psi_inv_[0] = 1;
  for (std::size_t i = 1; i < 2 * n; ++i) {
    psi_[i] = mul_mod(psi_[i - 1], psi);
    psi_inv_[i] = mul_mod(psi_inv_[i - 1], psi_i);
  }
  n_inv_ = pow_mod_q(static_cast<std::uint32_t>(n), kQ - 2);

  // Fast-path tables: psi^brv(i) (and inverses) with Shoup companions.
  const int log_n = std::countr_zero(n);
  const auto brv = [log_n](std::size_t i) {
    std::size_t r = 0;
    for (int b = 0; b < log_n; ++b) r |= ((i >> b) & 1u) << (log_n - 1 - b);
    return r;
  };
  const auto shoup = [](std::uint32_t w) { return shoup_factor(w); };
  psi_rev_.resize(n);
  psi_rev_shoup_.resize(n);
  psi_inv_rev_.resize(n);
  psi_inv_rev_shoup_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    psi_rev_[i] = psi_[brv(i)];
    psi_rev_shoup_[i] = shoup(psi_rev_[i]);
    psi_inv_rev_[i] = psi_inv_[brv(i)];
    psi_inv_rev_shoup_[i] = shoup(psi_inv_rev_[i]);
  }
  n_inv_shoup_ = shoup(n_inv_);
}

namespace {

// Shoup modular multiplication by a precomputed twiddle: two multiplies
// and one conditional correction, no division. Requires x < q and
// w_shoup = floor(w * 2^32 / q).
inline std::uint32_t mul_mod_shoup(std::uint32_t x, std::uint32_t w,
                                   std::uint32_t w_shoup) {
  const auto hi =
      static_cast<std::uint32_t>((std::uint64_t{x} * w_shoup) >> 32);
  std::uint32_t r = x * w - hi * kQ;  // mod 2^32; lands in [0, 2q)
  if (r >= kQ) r -= kQ;
  return r;
}

inline std::uint32_t add_mod(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t s = a + b;
  return s >= kQ ? s - kQ : s;
}

inline std::uint32_t sub_mod(std::uint32_t a, std::uint32_t b) {
  return a >= b ? a - b : a + kQ - b;
}

}  // namespace

std::uint32_t NttContext::shoup_factor(std::uint32_t w) {
  return static_cast<std::uint32_t>((std::uint64_t{w} << 32) / kQ64);
}

void NttContext::pointwise_shoup(std::vector<std::uint32_t>& a,
                                 const std::vector<std::uint32_t>& w,
                                 const std::vector<std::uint32_t>& ws) const {
  CGS_CHECK(a.size() == n_ && w.size() == n_ && ws.size() == n_);
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = mul_mod_shoup(a[i], w[i], ws[i]);
}

void NttContext::forward_br(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  std::uint32_t* __restrict p = a.data();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t w = psi_rev_[m + i];
      const std::uint32_t ws = psi_rev_shoup_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = p[j];
        const std::uint32_t v = mul_mod_shoup(p[j + t], w, ws);
        p[j] = add_mod(u, v);
        p[j + t] = sub_mod(u, v);
      }
    }
  }
}

void NttContext::inverse_br(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  std::uint32_t* __restrict p = a.data();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint32_t w = psi_inv_rev_[h + i];
      const std::uint32_t ws = psi_inv_rev_shoup_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint32_t u = p[j];
        const std::uint32_t v = p[j + t];
        p[j] = add_mod(u, v);
        p[j + t] = mul_mod_shoup(sub_mod(u, v), w, ws);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (std::size_t i = 0; i < n_; ++i)
    p[i] = mul_mod_shoup(p[i], n_inv_, n_inv_shoup_);
}

void NttContext::forward(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  // Pre-twist by psi^i turns negacyclic into cyclic, then iterative
  // Cooley-Tukey with omega = psi^2.
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], psi_[i]);
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t step = 2 * n_ / len;  // exponent stride for omega
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::uint32_t w = psi_[2 * k * step / 2];  // omega^k = psi^(2k n/len)
        const std::uint32_t u = a[i + k];
        const std::uint32_t v = mul_mod(a[i + k + len / 2], w);
        a[i + k] = (u + v) % kQ;
        a[i + k + len / 2] = (u + kQ - v) % kQ;
      }
    }
  }
}

void NttContext::inverse(std::vector<std::uint32_t>& a) const {
  CGS_CHECK(a.size() == n_);
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::uint32_t w = psi_inv_[2 * k * n_ / len];
        const std::uint32_t u = a[i + k];
        const std::uint32_t v = mul_mod(a[i + k + len / 2], w);
        a[i + k] = (u + v) % kQ;
        a[i + k + len / 2] = (u + kQ - v) % kQ;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i)
    a[i] = mul_mod(mul_mod(a[i], n_inv_), psi_inv_[i]);
}

std::vector<std::uint32_t> NttContext::multiply(
    std::vector<std::uint32_t> a, std::vector<std::uint32_t> b) const {
  forward(a);
  forward(b);
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], b[i]);
  inverse(a);
  return a;
}

void NttContext::pointwise(std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) const {
  CGS_CHECK(a.size() == n_ && b.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) a[i] = mul_mod(a[i], b[i]);
}

std::shared_ptr<const NttContext> shared_ntt_context(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const NttContext>> contexts;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = contexts[n];
  if (!slot) slot = std::make_shared<const NttContext>(n);
  return slot;
}

bool NttContext::try_invert(const std::vector<std::uint32_t>& a,
                            std::vector<std::uint32_t>& inv) const {
  std::vector<std::uint32_t> t = a;
  forward(t);
  for (auto& v : t) {
    if (v == 0) return false;
    v = pow_mod_q(v, kQ - 2);
  }
  inverse(t);
  inv = std::move(t);
  return true;
}

}  // namespace cgs::falcon
