#pragma once
// Number-theoretic transform mod q = 12289 over Z_q[x]/(x^N+1): used for
// public-key arithmetic (h = g/f, s1 = c - s2 h) and invertibility checks.
// q - 1 = 2^12 * 3, so negacyclic transforms exist for all N <= 2048.

#include <cstdint>
#include <memory>
#include <vector>

namespace cgs::falcon {

inline constexpr std::uint32_t kQ = 12289;

/// Modular exponentiation mod q.
std::uint32_t pow_mod_q(std::uint32_t base, std::uint32_t exp);

class NttContext {
 public:
  explicit NttContext(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward negacyclic NTT (values in [0,q)).
  void forward(std::vector<std::uint32_t>& a) const;
  /// In-place inverse.
  void inverse(std::vector<std::uint32_t>& a) const;

  /// c = a * b in the ring (all in coefficient domain).
  std::vector<std::uint32_t> multiply(std::vector<std::uint32_t> a,
                                      std::vector<std::uint32_t> b) const;

  /// a[i] = a[i] * b[i] mod q — NTT-domain pointwise product, for callers
  /// that keep one operand pre-transformed (e.g. a cached public key).
  void pointwise(std::vector<std::uint32_t>& a,
                 const std::vector<std::uint32_t>& b) const;

  // Fast path (the VerificationService's batched hot loop): merged-psi
  // Cooley-Tukey/Gentleman-Sande butterflies with Shoup precomputed
  // twiddles — two multiplies and a conditional correction per modmul
  // instead of a division — and no separate pre-twist or bit-reversal
  // passes. forward_br takes natural order to the bit-reversed NTT
  // domain; inverse_br takes bit-reversed back to natural. Pointwise
  // products are order-agnostic, so a key cached via forward_br composes
  // directly: inverse_br(pointwise(forward_br(a), h_br)) is exactly
  // multiply(a, h) — held differentially in test_falcon_fft.

  /// In-place forward, natural order in, bit-reversed NTT domain out.
  void forward_br(std::vector<std::uint32_t>& a) const;
  /// In-place inverse, bit-reversed NTT domain in, natural order out.
  void inverse_br(std::vector<std::uint32_t>& a) const;

  /// The Shoup companion floor(w * 2^32 / q) of a fixed multiplicand —
  /// precompute once for a cached operand (e.g. a public key), then
  /// pointwise_shoup multiplies divisionlessly.
  static std::uint32_t shoup_factor(std::uint32_t w);
  /// a[i] = a[i] * w[i] mod q with ws[i] = shoup_factor(w[i]).
  void pointwise_shoup(std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& w,
                       const std::vector<std::uint32_t>& ws) const;

  /// Inverse of `a` in the ring if it exists (all NTT slots nonzero).
  bool try_invert(const std::vector<std::uint32_t>& a,
                  std::vector<std::uint32_t>& inv) const;

 private:
  std::size_t n_;
  std::vector<std::uint32_t> psi_;      // psi^i, psi a primitive 2n-th root
  std::vector<std::uint32_t> psi_inv_;  // psi^-i
  std::uint32_t n_inv_;
  // Fast-path tables: psi powers in bit-reversed order plus their Shoup
  // companions floor(w * 2^32 / q).
  std::vector<std::uint32_t> psi_rev_, psi_rev_shoup_;
  std::vector<std::uint32_t> psi_inv_rev_, psi_inv_rev_shoup_;
  std::uint32_t n_inv_shoup_;
};

/// One immutable NttContext per degree, shared process-wide. The twiddle
/// tables are a pure function of n, so every Verifier / VerificationService
/// tenant at the same degree shares one context instead of paying the
/// psi-power setup per key (and per-instance table memory) in a
/// multi-tenant verify lane.
std::shared_ptr<const NttContext> shared_ntt_context(std::size_t n);

/// Centered representative in (-q/2, q/2].
inline std::int32_t center_mod_q(std::uint32_t v) {
  const auto x = static_cast<std::int32_t>(v % kQ);
  return x > static_cast<std::int32_t>(kQ / 2) ? x - static_cast<std::int32_t>(kQ) : x;
}

/// Map a signed value into [0, q).
inline std::uint32_t to_mod_q(std::int64_t v) {
  const std::int64_t m = v % static_cast<std::int64_t>(kQ);
  return static_cast<std::uint32_t>(m < 0 ? m + kQ : m);
}

}  // namespace cgs::falcon
