#pragma once
// Number-theoretic transform mod q = 12289 over Z_q[x]/(x^N+1): used for
// public-key arithmetic (h = g/f, s1 = c - s2 h) and invertibility checks.
// q - 1 = 2^12 * 3, so negacyclic transforms exist for all N <= 2048.

#include <cstdint>
#include <vector>

namespace cgs::falcon {

inline constexpr std::uint32_t kQ = 12289;

/// Modular exponentiation mod q.
std::uint32_t pow_mod_q(std::uint32_t base, std::uint32_t exp);

class NttContext {
 public:
  explicit NttContext(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward negacyclic NTT (values in [0,q)).
  void forward(std::vector<std::uint32_t>& a) const;
  /// In-place inverse.
  void inverse(std::vector<std::uint32_t>& a) const;

  /// c = a * b in the ring (all in coefficient domain).
  std::vector<std::uint32_t> multiply(std::vector<std::uint32_t> a,
                                      std::vector<std::uint32_t> b) const;

  /// Inverse of `a` in the ring if it exists (all NTT slots nonzero).
  bool try_invert(const std::vector<std::uint32_t>& a,
                  std::vector<std::uint32_t>& inv) const;

 private:
  std::size_t n_;
  std::vector<std::uint32_t> psi_;      // psi^i, psi a primitive 2n-th root
  std::vector<std::uint32_t> psi_inv_;  // psi^-i
  std::uint32_t n_inv_;
};

/// Centered representative in (-q/2, q/2].
inline std::int32_t center_mod_q(std::uint32_t v) {
  const auto x = static_cast<std::int32_t>(v % kQ);
  return x > static_cast<std::int32_t>(kQ / 2) ? x - static_cast<std::int32_t>(kQ) : x;
}

/// Map a signed value into [0, q).
inline std::uint32_t to_mod_q(std::int64_t v) {
  const std::int64_t m = v % static_cast<std::int64_t>(kQ);
  return static_cast<std::uint32_t>(m < 0 ? m + kQ : m);
}

}  // namespace cgs::falcon
