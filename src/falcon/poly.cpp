#include "falcon/poly.h"

#include "common/check.h"

namespace cgs::falcon {

std::int64_t norm_sq(const IPoly& a) {
  std::int64_t s = 0;
  for (std::int32_t v : a) s += static_cast<std::int64_t>(v) * v;
  return s;
}

std::int64_t norm_sq_pair(const IPoly& a, const IPoly& b) {
  return norm_sq(a) + norm_sq(b);
}

std::vector<double> to_doubles(const IPoly& a) {
  std::vector<double> r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i];
  return r;
}

ZPoly to_zpoly(const IPoly& a) {
  ZPoly r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = bigint::BigInt(a[i]);
  return r;
}

IPoly from_zpoly(const ZPoly& a) {
  IPoly r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t v = a[i].to_int64();
    CGS_CHECK_MSG(v >= INT32_MIN && v <= INT32_MAX,
                  "coefficient too large for IPoly");
    r[i] = static_cast<std::int32_t>(v);
  }
  return r;
}

std::vector<std::uint32_t> to_mod_q_poly(const IPoly& a) {
  std::vector<std::uint32_t> r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = to_mod_q(a[i]);
  return r;
}

IPoly centered(const std::vector<std::uint32_t>& a) {
  IPoly r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = center_mod_q(a[i]);
  return r;
}

}  // namespace cgs::falcon
