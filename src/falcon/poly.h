#pragma once
// Small helpers for integer ring polynomials (the coefficient-domain side
// of Falcon): norms, conversions between signed ints, mod-q vectors,
// doubles and BigInt polys.

#include <cstdint>
#include <vector>

#include "falcon/ntt.h"
#include "falcon/zpoly.h"

namespace cgs::falcon {

using IPoly = std::vector<std::int32_t>;

/// Squared Euclidean norm (exact in int64 for Falcon-scale vectors).
std::int64_t norm_sq(const IPoly& a);

/// Concatenated-norm of a pair.
std::int64_t norm_sq_pair(const IPoly& a, const IPoly& b);

std::vector<double> to_doubles(const IPoly& a);
ZPoly to_zpoly(const IPoly& a);
IPoly from_zpoly(const ZPoly& a);  // throws if a coefficient overflows

/// Signed -> [0, q) vector.
std::vector<std::uint32_t> to_mod_q_poly(const IPoly& a);
/// [0, q) -> centered signed vector.
IPoly centered(const std::vector<std::uint32_t>& a);

}  // namespace cgs::falcon
