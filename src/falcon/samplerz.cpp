#include "falcon/samplerz.h"

#include "common/check.h"

namespace cgs::falcon {

namespace {

std::size_t ring_size(const BlockSource& src) {
  const std::size_t block = src.preferred_block();
  return block < 1 ? 1 : block;
}

}  // namespace

SamplerZ::SamplerZ(BlockSource& source, double sigma_base)
    : src_(&source),
      sigma_base_(sigma_base),
      inv_2sb2_(1.0 / (2.0 * sigma_base * sigma_base)),
      base_ring_(ring_size(source)),
      word_ring_(ring_size(source)),
      base_pos_(base_ring_.size()),
      word_pos_(word_ring_.size()) {
  CGS_CHECK(sigma_base > 0);
}

SamplerZ::SamplerZ(IntSampler& base, double sigma_base)
    : shim_(std::make_unique<ScalarBlockSource>(base)),
      src_(shim_.get()),
      sigma_base_(sigma_base),
      inv_2sb2_(1.0 / (2.0 * sigma_base * sigma_base)),
      base_ring_(1),
      word_ring_(1),
      base_pos_(1),
      word_pos_(1) {
  CGS_CHECK(sigma_base > 0);
}

void SamplerZ::bind(RandomBitSource& rng) {
  CGS_CHECK_MSG(shim_ != nullptr,
                "bind() is only valid on the scalar-shim SamplerZ");
  shim_->bind(rng);
}

std::int32_t SamplerZ::sample(double c, double sigma) {
  return sample(c, sigma, 1.0 / (2.0 * sigma * sigma));
}

std::int32_t SamplerZ::sample(double c, double sigma, RandomBitSource& rng) {
  bind(rng);
  return sample(c, sigma);
}

}  // namespace cgs::falcon
