#include "falcon/samplerz.h"

#include <cmath>

#include "common/check.h"

namespace cgs::falcon {

SamplerZ::SamplerZ(IntSampler& base, double sigma_base)
    : base_(&base), sigma_base_(sigma_base) {
  CGS_CHECK(sigma_base > 0);
}

std::int32_t SamplerZ::sample(double c, double sigma, RandomBitSource& rng) {
  CGS_CHECK_MSG(sigma <= sigma_base_ && sigma > 0,
                "SamplerZ needs sigma <= sigma_base");
  const double s = std::floor(c);
  const double r = c - s;  // fractional center in [0, 1)

  // Propose y ~ D_{Z, sigma_base}; accept with probability
  //   exp(g(y) - g_max),  g(y) = y^2/(2 sb^2) - (y - r)^2/(2 sigma^2),
  // which shapes the output into D_{Z, r, sigma}. g is a downward parabola
  // (sigma <= sb), so g_max is at the vertex.
  const double a = 1.0 / (2.0 * sigma_base_ * sigma_base_) -
                   1.0 / (2.0 * sigma * sigma);  // < 0 (or 0 when equal)
  const double b = r / (sigma * sigma);
  const double c0 = -r * r / (2.0 * sigma * sigma);
  const double g_max = (a < 0.0) ? (c0 - b * b / (4.0 * a)) : c0;

  for (;;) {
    ++base_calls_;
    const double y = static_cast<double>(base_->sample(rng));
    const double g = a * y * y + b * y + c0;
    const double accept_p = std::exp(g - g_max);
    // Uniform in [0,1) from 53 random bits.
    const double u =
        std::ldexp(static_cast<double>(rng.next_word() >> 11), -53);
    if (u < accept_p)
      return static_cast<std::int32_t>(s) + static_cast<std::int32_t>(y);
    ++rejections_;
  }
}

}  // namespace cgs::falcon
