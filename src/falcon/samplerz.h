#pragma once
// SamplerZ: the integer Gaussian with arbitrary center c and width
// sigma' <= sigma_base that ffSampling calls ~2N times per signature. It is
// a rejection sampler whose *proposals* come from the pluggable base
// sampler — exactly the experiment of Table 1: swapping the base sampler
// between byte-scan CDT / binary CDT / linear CDT / the bit-sliced
// constant-time sampler changes only this inner loop.

#include <cstdint>

#include "common/randombits.h"
#include "common/sampler.h"

namespace cgs::falcon {

class SamplerZ {
 public:
  /// `base` (not owned) samples D_{Z, sigma_base} (signed, centered at 0).
  SamplerZ(IntSampler& base, double sigma_base);

  /// One sample from D_{Z, c, sigma}; requires sigma <= sigma_base.
  std::int32_t sample(double c, double sigma, RandomBitSource& rng);

  std::uint64_t base_calls() const { return base_calls_; }
  std::uint64_t rejections() const { return rejections_; }

 private:
  IntSampler* base_;
  double sigma_base_;
  std::uint64_t base_calls_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace cgs::falcon
