#pragma once
// SamplerZ: the integer Gaussian with arbitrary center c and width
// sigma' <= sigma_base that ffSampling calls ~2N times per signature. It is
// a rejection sampler whose *proposals* come from a pluggable supply —
// exactly the experiment of Table 1: swapping the base sampler between
// byte-scan CDT / binary CDT / linear CDT / the bit-sliced constant-time
// sampler changes only this inner loop.
//
// Batch-first since PR 3: proposals and rejection uniforms are drained
// from prefetched rings refilled one BlockSource block at a time, so the
// bit-sliced backends amortize a whole netlist pass (64-256 lanes, or an
// engine fan-out) per refill instead of paying the scalar pull per
// proposal. The legacy scalar path survives as a ScalarBlockSource shim
// (preferred block 1 — identical draw order to the historical loop), which
// is how the CDT variants still plug in.
//
// Threading contract: a SamplerZ is single-consumer. The stats counters
// are plain per-instance fields — the SigningService gives every worker
// its own SamplerZ and aggregates base_calls()/rejections() on demand
// while no request is in flight, so there is no shared mutable state to
// race on (and no atomics on the hot path).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/blocksource.h"
#include "common/check.h"
#include "common/randombits.h"
#include "common/sampler.h"

namespace cgs::falcon {

class SamplerZ {
 public:
  /// Batch-aware: `source` (not owned) supplies base samples from
  /// D_{Z, sigma_base} (signed, centered at 0) and uniform words, pulled
  /// in blocks of its preferred size.
  SamplerZ(BlockSource& source, double sigma_base);

  /// Legacy scalar shim: `base` (not owned) is wrapped in an internal
  /// ScalarBlockSource; randomness must be bound per call through
  /// sample(c, sigma, rng) or bind().
  SamplerZ(IntSampler& base, double sigma_base);

  SamplerZ(const SamplerZ&) = delete;
  SamplerZ& operator=(const SamplerZ&) = delete;

  /// One sample from D_{Z, c, sigma}; requires sigma <= sigma_base.
  std::int32_t sample(double c, double sigma);

  /// Hot-path form with the caller's precomputed 1/(2 sigma^2) — the tree
  /// leaves carry it so the ~2N parabola setups per signature skip the
  /// divisions. Inline (header-defined) so the ffSampling leaves fold the
  /// whole rejection loop into the recursion.
  std::int32_t sample(double c, double sigma, double inv_two_sigma_sq) {
    CGS_CHECK_MSG(sigma <= sigma_base_ && sigma > 0,
                  "SamplerZ needs sigma <= sigma_base");
    const double s = std::floor(c);
    const double r = c - s;  // fractional center in [0, 1)

    // Propose y ~ D_{Z, sigma_base}; accept with probability
    //   exp(g(y) - g_max),  g(y) = y^2/(2 sb^2) - (y - r)^2/(2 sigma^2),
    // which shapes the output into D_{Z, r, sigma}. g is a downward
    // parabola (sigma <= sb), so g_max is at the vertex.
    const double isq = inv_two_sigma_sq;
    const double a = inv_2sb2_ - isq;  // < 0 (or 0 when equal)
    const double b = r * (2.0 * isq);  // r / sigma^2
    const double c0 = -r * r * isq;
    const double g_max = (a < 0.0) ? (c0 - b * b / (4.0 * a)) : c0;

    for (;;) {
      ++base_calls_;
      const double y = static_cast<double>(next_base());
      const double g = a * y * y + b * y + c0;
      const double accept_p = exp_neg(g_max - g);
      // Uniform in [0,1) from 53 random bits (0x1p-53 multiply == ldexp
      // for a power-of-two scale, without the libm call).
      const double u = static_cast<double>(next_word() >> 11) * 0x1.0p-53;
      if (u < accept_p)
        return static_cast<std::int32_t>(s) + static_cast<std::int32_t>(y);
      ++rejections_;
    }
  }

  /// Legacy entry: binds `rng` into the scalar shim, then samples. Only
  /// valid on shim-constructed instances.
  std::int32_t sample(double c, double sigma, RandomBitSource& rng);

  /// Rebind the scalar shim's bit source (shim-constructed instances only).
  void bind(RandomBitSource& rng);

  /// One uniform word off the word ring — nonces ride the same prefetched
  /// supply as the rejection uniforms.
  std::uint64_t next_word() {
    if (word_pos_ == word_ring_.size()) {
      src_->fill_words(word_ring_);
      word_pos_ = 0;
    }
    return word_ring_[word_pos_++];
  }

  BlockSource& source() { return *src_; }
  double sigma_base() const { return sigma_base_; }

  std::uint64_t base_calls() const { return base_calls_; }
  std::uint64_t rejections() const { return rejections_; }

 private:
  std::int32_t next_base() {
    if (base_pos_ == base_ring_.size()) {
      src_->fill_base(base_ring_);
      base_pos_ = 0;
    }
    return base_ring_[base_pos_++];
  }

  /// exp(-x) for x >= 0 without the libm round trip: split x = k ln2 + r
  /// (Cody-Waite two-term reduction, so the reduced argument keeps full
  /// precision out to the k <= ~75 this sampler ever sees), evaluate a
  /// degree-16 Taylor Horner chain for exp(-r) on r in [0, ln2)
  /// (truncation error ln2^17/17! ~= 5.5e-18, below one ulp of the
  /// result), scale by a bit-assembled 2^-k. Total error a few ulps —
  /// the same order as the std::exp it replaces, and far below the
  /// 2^-53 quantization of the uniform the result is compared against.
  /// x <= 0 returns 1 (accept), matching the std::exp clamp semantics.
  static double exp_neg(double x) {
    if (!(x > 0.0)) return 1.0;
    constexpr double kInvLn2 = 1.4426950408889634074;
    // ln2 split with 27 zero low bits in the high part: kd (integral,
    // < 2^10 here) times kLn2Hi is exact, so r carries no cancellation
    // error from the reduction.
    constexpr double kLn2Hi = 0x1.62e42fefa38p-1;
    constexpr double kLn2Lo = 0x1.ef35793c7673p-45;
    const double kd = std::floor(x * kInvLn2);
    if (kd >= 1022.0) return 0.0;  // below every representable uniform
    const double t = -((x - kd * kLn2Hi) - kd * kLn2Lo);  // in (-ln2, 0]
    double p = 1.0 + t * (1.0 / 16.0);
    p = 1.0 + t * (1.0 / 15.0) * p;
    p = 1.0 + t * (1.0 / 14.0) * p;
    p = 1.0 + t * (1.0 / 13.0) * p;
    p = 1.0 + t * (1.0 / 12.0) * p;
    p = 1.0 + t * (1.0 / 11.0) * p;
    p = 1.0 + t * (1.0 / 10.0) * p;
    p = 1.0 + t * (1.0 / 9.0) * p;
    p = 1.0 + t * (1.0 / 8.0) * p;
    p = 1.0 + t * (1.0 / 7.0) * p;
    p = 1.0 + t * (1.0 / 6.0) * p;
    p = 1.0 + t * (1.0 / 5.0) * p;
    p = 1.0 + t * (1.0 / 4.0) * p;
    p = 1.0 + t * (1.0 / 3.0) * p;
    p = 1.0 + t * (1.0 / 2.0) * p;
    p = 1.0 + t * p;
    // 2^-k assembled from the exponent field (k in [0, 1021]).
    const std::uint64_t bits = (1023ull - static_cast<std::uint64_t>(kd))
                               << 52;
    double scale;
    std::memcpy(&scale, &bits, sizeof scale);
    return p * scale;
  }

  std::unique_ptr<ScalarBlockSource> shim_;  // legacy path only
  BlockSource* src_;
  double sigma_base_;
  double inv_2sb2_;  // 1/(2 sigma_base^2)
  // Prefetched rings: pos == size means empty (refill on next pull).
  std::vector<std::int32_t> base_ring_;
  std::vector<std::uint64_t> word_ring_;
  std::size_t base_pos_ = 0;
  std::size_t word_pos_ = 0;
  std::uint64_t base_calls_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace cgs::falcon
