#include "falcon/sign.h"

#include "common/check.h"

namespace cgs::falcon {

Signature sign_with(const KeyPair& kp, const FalconTree& tree,
                    std::string_view message, SamplerZ& sz,
                    FfScratch& scratch, SignStats* stats) {
  const std::size_t n = kp.params.n;
  Signature sig;
  // 40 nonce bytes from 5 words of the block supply.
  for (std::size_t i = 0; i < sig.nonce.size(); i += 8) {
    std::uint64_t w = sz.next_word();
    for (std::size_t b = 0; b < 8; ++b, w >>= 8)
      sig.nonce[i + b] = static_cast<std::uint8_t>(w);
  }

  const std::vector<std::uint32_t> c = hash_to_point(sig.nonce, message, n);
  std::vector<double> c_real(n);
  for (std::size_t i = 0; i < n; ++i) c_real[i] = static_cast<double>(c[i]);
  const CVec c_fft = fft(c_real);

  // t = (c, 0) B^-1 = (c (-F)/q, c f/q); b11 = FFT(-F), b01 = FFT(-f).
  // Targets and s spectra live in the per-thread scratch — the batched
  // path signs thousands of messages per second, so per-signature
  // allocations are kept off the hot path.
  scratch.prepare(n);
  const double inv_q = 1.0 / static_cast<double>(kQ);
  CVec& t0 = scratch.sig_t0;
  CVec& t1 = scratch.sig_t1;
  for (std::size_t k = 0; k < n; ++k) {
    t0[k] = cmul(c_fft[k], tree.b11()[k]) * inv_q;
    t1[k] = -cmul(c_fft[k], tree.b01()[k]) * inv_q;
  }

  const std::int64_t bound = kp.params.bound_sq();
  const std::uint64_t base_before = sz.base_calls();
  std::uint64_t attempts = 0;
  CVec& s0_fft = scratch.sig_s0f;
  CVec& s1_fft = scratch.sig_s1f;
  for (;;) {
    ++attempts;
    // z stays in FFT domain: the spectra in scratch.z0/.z1 are exact
    // images of the sampled integers (up to FFT rounding, absorbed by the
    // nearbyint below), so s = (t - z) B needs no z round-trip through
    // coefficient space.
    ff_sampling_fft(t0, t1, tree, sz, scratch);
    for (std::size_t k = 0; k < n; ++k) {
      const cplx d0 = t0[k] - scratch.z0[k];
      const cplx d1 = t1[k] - scratch.z1[k];
      s0_fft[k] = cmul(d0, tree.b00()[k]) + cmul(d1, tree.b10()[k]);
      s1_fft[k] = cmul(d0, tree.b01()[k]) + cmul(d1, tree.b11()[k]);
    }
    // ||s0||^2 via Parseval (rows of the negacyclic transform are
    // orthogonal with norm sqrt(n)) — s0 itself is only ever used for the
    // norm check, so it never leaves the FFT domain. The spectrum images a
    // near-integer vector, so the float energy sits within ~1e-3 of the
    // rounded-integer norm; attempts inside a +-2 guard band of the bound
    // fall back to the exact rounded check (typical norms sit at ~0.7x
    // the bound, so the band is ~never entered).
    double s0_energy = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      s0_energy += s0_fft[k].real() * s0_fft[k].real() +
                   s0_fft[k].imag() * s0_fft[k].imag();
    s0_energy /= static_cast<double>(n);
    const std::vector<double> s1_r = ifft(s1_fft);
    IPoly s1(n);
    for (std::size_t i = 0; i < n; ++i)
      s1[i] = static_cast<std::int32_t>(std::nearbyint(s1_r[i]));
    const double total = s0_energy + static_cast<double>(norm_sq(s1));
    bool accept;
    if (total <= static_cast<double>(bound) - 2.0) {
      accept = true;
    } else if (total > static_cast<double>(bound) + 2.0) {
      accept = false;
    } else {
      const std::vector<double> s0_r = ifft(s0_fft);
      IPoly s0(n);
      for (std::size_t i = 0; i < n; ++i)
        s0[i] = static_cast<std::int32_t>(std::nearbyint(s0_r[i]));
      accept = norm_sq_pair(s0, s1) <= bound;
    }
    if (accept) {
      sig.s1 = std::move(s1);
      break;
    }
  }
  if (stats) {
    stats->attempts += attempts;
    stats->base_samples += sz.base_calls() - base_before;
    stats->samplerz_calls += 2 * n * attempts;
  }
  return sig;
}

Signer::Signer(const KeyPair& kp, IntSampler& base, double sigma_base)
    : kp_(&kp),
      tree_(std::make_shared<const FalconTree>(kp)),
      samplerz_(base, sigma_base),
      legacy_(true) {}

Signer::Signer(const KeyPair& kp, BlockSource& source, double sigma_base)
    : kp_(&kp),
      tree_(std::make_shared<const FalconTree>(kp)),
      samplerz_(source, sigma_base),
      legacy_(false) {}

Signer::Signer(std::shared_ptr<const FalconTree> tree, const KeyPair& kp,
               BlockSource& source, double sigma_base)
    : kp_(&kp),
      tree_(std::move(tree)),
      samplerz_(source, sigma_base),
      legacy_(false) {
  CGS_CHECK_MSG(tree_ != nullptr, "Signer needs a tree");
}

Signature Signer::sign(std::string_view message, SignStats* stats) {
  CGS_CHECK_MSG(!legacy_,
                "IntSampler-constructed Signer needs sign(message, rng)");
  return sign_with(*kp_, *tree_, message, samplerz_, scratch_, stats);
}

Signature Signer::sign(std::string_view message, RandomBitSource& rng,
                       SignStats* stats) {
  CGS_CHECK_MSG(legacy_,
                "BlockSource-constructed Signer draws its own randomness; "
                "use sign(message)");
  samplerz_.bind(rng);
  return sign_with(*kp_, *tree_, message, samplerz_, scratch_, stats);
}

}  // namespace cgs::falcon
