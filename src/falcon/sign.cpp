#include "falcon/sign.h"

#include "common/check.h"

namespace cgs::falcon {

Signer::Signer(const KeyPair& kp, IntSampler& base, double sigma_base)
    : kp_(&kp), tree_(kp), samplerz_(base, sigma_base) {}

Signature Signer::sign(std::string_view message, RandomBitSource& rng,
                       SignStats* stats) {
  const std::size_t n = kp_->params.n;
  Signature sig;
  for (auto& b : sig.nonce) b = static_cast<std::uint8_t>(rng.next_word());

  const std::vector<std::uint32_t> c = hash_to_point(sig.nonce, message, n);
  std::vector<double> c_real(n);
  for (std::size_t i = 0; i < n; ++i) c_real[i] = static_cast<double>(c[i]);
  const CVec c_fft = fft(c_real);

  // t = (c, 0) B^-1 = (c (-F)/q, c f/q); b11 = FFT(-F), b01 = FFT(-f).
  const double inv_q = 1.0 / static_cast<double>(kQ);
  CVec t0(n), t1(n);
  for (std::size_t k = 0; k < n; ++k) {
    t0[k] = c_fft[k] * tree_.b11()[k] * inv_q;
    t1[k] = -c_fft[k] * tree_.b01()[k] * inv_q;
  }

  const std::int64_t bound = kp_->params.bound_sq();
  const std::uint64_t base_before = samplerz_.base_calls();
  std::uint64_t attempts = 0;
  for (;;) {
    ++attempts;
    const FfSample z = ff_sampling(t0, t1, tree_, samplerz_, rng);
    // s = (t - z) B, evaluated in FFT.
    const CVec z0_fft = fft(to_doubles(z.z0));
    const CVec z1_fft = fft(to_doubles(z.z1));
    CVec s0_fft(n), s1_fft(n);
    for (std::size_t k = 0; k < n; ++k) {
      const cplx d0 = t0[k] - z0_fft[k];
      const cplx d1 = t1[k] - z1_fft[k];
      s0_fft[k] = d0 * tree_.b00()[k] + d1 * tree_.b10()[k];
      s1_fft[k] = d0 * tree_.b01()[k] + d1 * tree_.b11()[k];
    }
    const std::vector<double> s0_r = ifft(s0_fft);
    const std::vector<double> s1_r = ifft(s1_fft);
    IPoly s0(n), s1(n);
    for (std::size_t i = 0; i < n; ++i) {
      s0[i] = static_cast<std::int32_t>(std::nearbyint(s0_r[i]));
      s1[i] = static_cast<std::int32_t>(std::nearbyint(s1_r[i]));
    }
    if (norm_sq_pair(s0, s1) <= bound) {
      sig.s1 = std::move(s1);
      break;
    }
  }
  if (stats) {
    stats->attempts += attempts;
    stats->base_samples += samplerz_.base_calls() - base_before;
    stats->samplerz_calls += 2 * n * attempts;
  }
  return sig;
}

}  // namespace cgs::falcon
