#pragma once
// Falcon signing: hash-to-point, ffSampling over the secret basis, norm
// check, signature compression. The base Gaussian supply is injected —
// this is the knob Table 1 turns — either as a legacy scalar IntSampler or
// as a batch BlockSource (engine-backed in production; see
// falcon/signing_service.h for the multi-key, multi-thread front end).

#include <array>
#include <memory>
#include <string_view>

#include "common/blocksource.h"
#include "falcon/codec.h"
#include "falcon/ffsampling.h"
#include "falcon/hash_to_point.h"

namespace cgs::falcon {

struct Signature {
  std::array<std::uint8_t, 40> nonce{};
  IPoly s1;  // second half of the short vector; s0 is recomputed by verify
};

struct SignStats {
  std::uint64_t attempts = 0;       // ffSampling passes (norm-check retries)
  std::uint64_t samplerz_calls = 0;
  std::uint64_t base_samples = 0;   // draws from the base Gaussian sampler
};

/// Core signing step shared by Signer and SigningService: one signature
/// over a prebuilt tree. All randomness — proposals, rejection uniforms
/// and the nonce — is pulled from `sz`'s block rings; `scratch` is the
/// per-thread recursion context.
Signature sign_with(const KeyPair& kp, const FalconTree& tree,
                    std::string_view message, SamplerZ& sz,
                    FfScratch& scratch, SignStats* stats = nullptr);

class Signer {
 public:
  /// Legacy scalar path: `base` (not owned) is the sigma=2 base sampler
  /// under test; randomness arrives per call via sign(message, rng).
  Signer(const KeyPair& kp, IntSampler& base, double sigma_base = 2.0);

  /// Batch path: everything (proposals, uniforms, nonces) rides `source`
  /// (not owned); use sign(message) — no per-call rng.
  Signer(const KeyPair& kp, BlockSource& source, double sigma_base = 2.0);

  /// Batch path over a pre-built tree shared with other signers (the
  /// SigningService hands every worker the same cached tree).
  Signer(std::shared_ptr<const FalconTree> tree, const KeyPair& kp,
         BlockSource& source, double sigma_base = 2.0);

  /// Block-source form; only valid on the BlockSource constructors.
  Signature sign(std::string_view message, SignStats* stats = nullptr);

  /// Legacy form; only valid on the IntSampler constructor.
  Signature sign(std::string_view message, RandomBitSource& rng,
                 SignStats* stats = nullptr);

  const FalconTree& tree() const { return *tree_; }
  const KeyPair& key() const { return *kp_; }

 private:
  const KeyPair* kp_;
  std::shared_ptr<const FalconTree> tree_;
  SamplerZ samplerz_;
  FfScratch scratch_;
  bool legacy_;
};

}  // namespace cgs::falcon
