#pragma once
// Falcon signing: hash-to-point, ffSampling over the secret basis, norm
// check, signature compression. The base Gaussian sampler is injected —
// this is the knob Table 1 turns.

#include <array>
#include <string_view>

#include "falcon/codec.h"
#include "falcon/ffsampling.h"
#include "falcon/hash_to_point.h"

namespace cgs::falcon {

struct Signature {
  std::array<std::uint8_t, 40> nonce{};
  IPoly s1;  // second half of the short vector; s0 is recomputed by verify
};

struct SignStats {
  std::uint64_t attempts = 0;       // ffSampling passes (norm-check retries)
  std::uint64_t samplerz_calls = 0;
  std::uint64_t base_samples = 0;   // draws from the base Gaussian sampler
};

class Signer {
 public:
  /// `base` (not owned) is the sigma=2 base sampler under test.
  Signer(const KeyPair& kp, IntSampler& base, double sigma_base = 2.0);

  Signature sign(std::string_view message, RandomBitSource& rng,
                 SignStats* stats = nullptr);

  const FalconTree& tree() const { return tree_; }
  const KeyPair& key() const { return *kp_; }

 private:
  const KeyPair* kp_;
  FalconTree tree_;
  SamplerZ samplerz_;
};

}  // namespace cgs::falcon
