#include "falcon/signing_service.h"

#include <cstring>
#include <exception>
#include <thread>

#include "common/check.h"
#include "falcon/state_codec.h"
#include "gauss/params.h"
#include "prng/splitmix.h"
#include "serial/serial.h"

namespace cgs::falcon {

namespace {

// The registry netlist is the sigma=2 Falcon base; every tree leaf width
// keygen admits sits below it (params.sigma_max < 2).
constexpr double kSigmaBase = 2.0;

}  // namespace

// Fingerprint of the tree's actual inputs: the secret basis (f, g, F, G)
// plus the degree. Collisions are checked against a stored (f, g) copy, so
// a (astronomically unlikely) 64-bit clash degrades to a CGS_CHECK, never
// to signing under the wrong tree.
std::uint64_t key_fingerprint(const KeyPair& kp) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8 + 16 * kp.params.n);
  const auto append = [&bytes](const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + len);
  };
  const std::uint64_t n = kp.params.n;
  append(&n, sizeof n);
  for (const IPoly* poly : {&kp.f, &kp.g, &kp.f_cap, &kp.g_cap})
    append(poly->data(), poly->size() * sizeof(std::int32_t));
  return serial::fnv1a64(bytes);
}

SigningService::SigningService(engine::SamplerRegistry& registry,
                               SigningOptions options)
    : options_(options), trees_(options.tree_cache) {
  CGS_CHECK_MSG(options_.precision >= 1 && options_.block >= 1,
                "signing service needs positive precision and block size");
  int threads = options_.num_threads;
  if (threads <= 0)
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  options_.num_threads = threads;

  const auto synth =
      registry.get(gauss::GaussianParams::sigma_2(options_.precision));

  // SplitMix64 over the root seed: independent (engine, word) seed pairs
  // per worker, so streams never overlap and adding workers only extends
  // the derivation sequence.
  prng::SplitMix64Source seeder(options_.root_seed);
  std::shared_ptr<const ct::CompiledKernel> shared_kernel;
  for (int t = 0; t < threads; ++t) {
    const std::uint64_t engine_seed = seeder.next_word();
    const std::uint64_t word_seed = seeder.next_word();
    auto worker = std::make_unique<Worker>();
    engine::EngineOptions eng;
    eng.backend = options_.backend;
    eng.num_threads = 1;  // the service owns the fan-out, not the engine
    eng.root_seed = engine_seed;
    eng.shared_kernel = shared_kernel;  // compile once, share across workers
    worker->engine = std::make_unique<engine::SamplerEngine>(synth, eng);
    if (t == 0) shared_kernel = worker->engine->kernel();
    worker->source = std::make_unique<engine::EngineBlockSource>(
        *worker->engine, word_seed, options_.block);
    worker->samplerz =
        std::make_unique<SamplerZ>(*worker->source, kSigmaBase);
    workers_.push_back(std::move(worker));
  }
}

engine::Backend SigningService::backend() const {
  return workers_.front()->engine->backend();
}

SigningService::TreeCache::Pinned SigningService::tree_for(const KeyPair& kp) {
  const std::uint64_t fp = key_fingerprint(kp);
  store::KvStore* kv = options_.key_state;
  auto pinned = trees_.get_or_build(fp, [&]() -> TreeCache::Built {
    const std::string state_key = tree_state_key(fp);
    if (kv) {
      if (const auto bytes = kv->get(state_key)) {
        try {
          TreeRecord rec = decode_tree(*bytes);
          // The stored (f, g) must match the key in hand — a stale record
          // (re-keyed tenant) or a fingerprint collision falls through to
          // a rebuild, which then overwrites the record.
          if (rec.f == kp.f && rec.g == kp.g) {
            auto entry = std::make_shared<TreeEntry>(
                TreeEntry{kp.f, kp.g, std::move(rec.tree)});
            const std::size_t cost =
                tree_footprint_bytes(*entry->tree) + sizeof(TreeEntry) +
                2 * kp.params.n * sizeof(std::int32_t);
            return {std::move(entry), cost, /*warm_start=*/true};
          }
        } catch (const serial::SerialError&) {
          // Corrupt record: rebuild (and overwrite it below).
        }
      }
    }
    auto tree = std::make_shared<const FalconTree>(kp);
    if (kv) kv->put(state_key, encode_tree(kp, *tree));  // best-effort
    auto entry =
        std::make_shared<TreeEntry>(TreeEntry{kp.f, kp.g, std::move(tree)});
    const std::size_t cost = tree_footprint_bytes(*entry->tree) +
                             sizeof(TreeEntry) +
                             2 * kp.params.n * sizeof(std::int32_t);
    return {std::move(entry), cost, /*warm_start=*/false};
  });
  CGS_CHECK_MSG(pinned->f == kp.f && pinned->g == kp.g,
                "key fingerprint collision in the tree cache");
  return pinned;
}

std::vector<SigningService::Worker*> SigningService::checkout(
    std::size_t want) {
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [this] {
    for (const auto& w : workers_)
      if (!w->busy) return true;
    return false;
  });
  std::vector<Worker*> taken;
  for (const auto& w : workers_) {
    if (taken.size() == want) break;
    if (!w->busy) {
      w->busy = true;
      taken.push_back(w.get());
    }
  }
  return taken;
}

void SigningService::checkin(std::span<Worker* const> taken) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (Worker* w : taken) {
      // Publish the live SamplerZ counters now that no thread drives them.
      w->base_calls = w->samplerz->base_calls();
      w->rejections = w->samplerz->rejections();
      w->busy = false;
    }
  }
  pool_cv_.notify_all();
}

std::vector<Signature> SigningService::sign_many(
    const KeyPair& kp, std::span<const std::string_view> messages,
    SignStats* stats) {
  // The pin keeps this key's tree in the cache for the whole batch —
  // eviction pressure from other tenants defers around in-flight work.
  const TreeCache::Pinned entry = tree_for(kp);
  const FalconTree& tree = *entry->tree;
  std::vector<Signature> out(messages.size());
  if (messages.empty()) return out;

  // Take whatever is free, at most one worker per message — the pool lock
  // is never held across the signing itself, so a batch on another key
  // only ever waits for one worker to come back, not for a whole batch.
  // An uncontended caller gets workers 0..k-1 in index order and message
  // i pinned to worker i % k — the deterministic single-caller contract.
  const std::vector<Worker*> taken =
      checkout(std::min(workers_.size(), messages.size()));
  struct CheckinGuard {
    SigningService* svc;
    std::span<Worker* const> taken;
    ~CheckinGuard() { svc->checkin(taken); }
  } guard{this, taken};
  const std::size_t k = taken.size();
  std::vector<SignStats> call_stats(k);
  std::vector<std::exception_ptr> errors(k);
  const auto run_slice = [&](std::size_t t) {
    try {
      Worker& w = *taken[t];
      for (std::size_t i = t; i < messages.size(); i += k)
        out[i] = sign_with(kp, tree, messages[i], *w.samplerz, w.scratch,
                           &call_stats[t]);
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  // Threads are spawned per request (worker *state* persists; only the
  // OS threads are fresh). Spawn cost is ~100us per thread against
  // multi-ms batch slices, so a parked pool (as SamplerEngine keeps) only
  // starts paying for itself under many-thread, tiny-batch workloads —
  // revisit if that shape shows up.
  std::vector<std::thread> threads;
  threads.reserve(k > 0 ? k - 1 : 0);
  for (std::size_t t = 1; t < k; ++t) threads.emplace_back(run_slice, t);
  run_slice(0);
  for (auto& th : threads) th.join();

  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (std::size_t t = 0; t < k; ++t) {
      const SignStats& cs = call_stats[t];
      Worker& w = *taken[t];
      w.totals.attempts += cs.attempts;
      w.totals.samplerz_calls += cs.samplerz_calls;
      w.totals.base_samples += cs.base_samples;
      if (stats) {
        stats->attempts += cs.attempts;
        stats->samplerz_calls += cs.samplerz_calls;
        stats->base_samples += cs.base_samples;
      }
    }
  }
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
  return out;
}

Signature SigningService::sign(const KeyPair& kp, std::string_view message,
                               SignStats* stats) {
  const std::string_view one[] = {message};
  return std::move(sign_many(kp, one, stats).front());
}

SignStats SigningService::stats() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  SignStats total;
  for (const auto& w : workers_) {
    total.attempts += w->totals.attempts;
    total.samplerz_calls += w->totals.samplerz_calls;
    total.base_samples += w->totals.base_samples;
  }
  return total;
}

std::uint64_t SigningService::base_calls() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  std::uint64_t total = 0;
  // Idle workers read the live counter (equal to the snapshot); a busy
  // worker's in-flight delta lands at its check-in.
  for (const auto& w : workers_)
    total += w->busy ? w->base_calls : w->samplerz->base_calls();
  return total;
}

std::uint64_t SigningService::rejections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  std::uint64_t total = 0;
  for (const auto& w : workers_)
    total += w->busy ? w->rejections : w->samplerz->rejections();
  return total;
}

std::size_t SigningService::num_cached_trees() const { return trees_.size(); }

obs::CacheStats SigningService::tree_cache_stats() const {
  return trees_.stats();
}

}  // namespace cgs::falcon
