#pragma once
// SigningService: the batch-first Falcon signing front end, mirroring
// engine::GaussianService one layer up. The offline artifacts (synthesized
// sigma=2 netlist via the registry, per-key ffLDL trees) are materialized
// once and cached; the online path is a pool of stateful workers, each
// owning a private engine-backed BlockSource, SamplerZ and ffSampling
// scratch, so sign_many() fans a batch of messages out across threads with
// zero shared mutable sampling state.
//
// Determinism: worker seeds are derived from (root_seed, worker index) via
// SplitMix64 and message i is pinned to worker i % num_threads, so for a
// fixed (root_seed, num_threads) the same sequence of sign_many() calls
// produces bit-identical signatures regardless of scheduling. Two workers
// never share PRNG state; each worker's streams simply continue across
// calls and keys.
//
// Stats: every worker accumulates into its own counters (its SamplerZ is
// single-consumer by contract); stats()/base_calls()/rejections()
// aggregate on demand under the request lock, so there is no data race
// and no atomic traffic on the signing hot path.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "engine/block_source.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "falcon/sign.h"

namespace cgs::falcon {

struct SigningOptions {
  engine::Backend backend = engine::Backend::kAuto;
  int num_threads = 0;          // 0 -> hardware concurrency (min 1)
  std::uint64_t root_seed = 0;  // per-worker streams derived from this
  int precision = 128;          // base sampler probability precision
  std::size_t block = 1024;     // base samples prefetched per ring refill
};

class SigningService {
 public:
  /// `registry` (not owned) supplies the synthesized sigma=2 base sampler;
  /// it must outlive the service.
  explicit SigningService(engine::SamplerRegistry& registry,
                          SigningOptions options = {});

  /// Sign every message in `messages` with `kp`, the batch split across
  /// the worker pool. Returns signatures in message order. Thread-safe
  /// (concurrent calls serialize). `stats`, when non-null, accumulates
  /// this call's totals.
  std::vector<Signature> sign_many(const KeyPair& kp,
                                   std::span<const std::string_view> messages,
                                   SignStats* stats = nullptr);

  /// Single-message convenience (still batch-fed under the hood).
  Signature sign(const KeyPair& kp, std::string_view message,
                 SignStats* stats = nullptr);

  /// Lifetime totals aggregated across all workers.
  SignStats stats() const;
  std::uint64_t base_calls() const;
  std::uint64_t rejections() const;

  /// Number of distinct keys whose ffLDL tree is cached.
  std::size_t num_cached_trees() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  engine::Backend backend() const;
  const SigningOptions& options() const { return options_; }

 private:
  struct Worker {
    std::unique_ptr<engine::SamplerEngine> engine;
    std::unique_ptr<engine::EngineBlockSource> source;
    std::unique_ptr<SamplerZ> samplerz;
    FfScratch scratch;
    SignStats totals;  // lifetime; owned by this worker's thread during a
                       // request, read under req_mu_ otherwise
  };
  struct TreeEntry {
    IPoly f, g;  // fingerprint collision guard (the tree's actual inputs)
    std::shared_ptr<const FalconTree> tree;
  };

  std::shared_ptr<const FalconTree> tree_for(const KeyPair& kp);

  SigningOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex req_mu_;  // serializes sign_many (workers are stateful)
  mutable std::mutex tree_mu_;
  std::map<std::uint64_t, TreeEntry> trees_;
};

}  // namespace cgs::falcon
