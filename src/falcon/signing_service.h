#pragma once
// SigningService: the batch-first Falcon signing front end, mirroring
// engine::GaussianService one layer up. The offline artifacts (synthesized
// sigma=2 netlist via the registry, per-key ffLDL trees) are materialized
// once and cached; the online path is a pool of stateful workers, each
// owning a private engine-backed BlockSource, SamplerZ and ffSampling
// scratch, so sign_many() fans a batch of messages out across threads with
// zero shared mutable sampling state.
//
// Concurrency: sign_many() holds the pool lock only to check workers out
// and back in, never across the signing work itself, so two concurrent
// batches (e.g. the serve::Dispatcher's per-key lanes) overlap: each call
// takes whatever workers are free — at least one, up to one per message —
// and runs its batch on those while other calls run on the rest.
//
// Determinism: worker seeds are derived from (root_seed, worker index) via
// SplitMix64 and message i is pinned to checked-out worker i % k. A
// NON-OVERLAPPING caller always finds every worker free, so it checks out
// workers 0..min(T, batch)-1 in index order and, for a fixed (root_seed,
// num_threads), the same sequence of sign_many() calls produces
// bit-identical signatures regardless of scheduling — the original
// single-caller contract. Overlapping callers split the pool by arrival
// order, which is inherently scheduling-dependent; every signature is
// still a valid draw from the signing distribution, just not a replayable
// one. Two workers never share PRNG state; each worker's streams simply
// continue across calls and keys.
//
// Stats: every worker accumulates into its own counters (its SamplerZ is
// single-consumer by contract) and publishes them into service-level
// totals at check-in, so stats()/base_calls()/rejections() read under the
// pool lock without racing in-flight work — they reflect completed
// sign_many() calls.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "engine/block_source.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "falcon/sign.h"
#include "obs/metric.h"
#include "store/bounded_cache.h"
#include "store/kvstore.h"

namespace cgs::falcon {

/// Stable 64-bit fingerprint of a key pair's secret basis (f, g, F, G) and
/// degree — the identity the tree cache and the serving layer's shard
/// router key on. Collision handling is the cache's job (it stores the
/// actual (f, g) and checks), not the fingerprint's.
std::uint64_t key_fingerprint(const KeyPair& kp);

struct SigningOptions {
  engine::Backend backend = engine::Backend::kAuto;
  int num_threads = 0;          // 0 -> hardware concurrency (min 1)
  std::uint64_t root_seed = 0;  // per-worker streams derived from this
  int precision = 128;          // base sampler probability precision
  std::size_t block = 1024;     // base samples prefetched per ring refill
  /// Budget for the per-key ffLDL tree cache. Default unbounded — the
  /// legacy every-key-resident behavior.
  store::CacheBudget tree_cache;
  /// Optional persistent key-state store (not owned; must outlive the
  /// service). When set, built trees are written through and an evicted
  /// key warm-starts from a decode instead of an O(n log n) rebuild.
  store::KvStore* key_state = nullptr;
};

class SigningService {
 public:
  /// `registry` (not owned) supplies the synthesized sigma=2 base sampler;
  /// it must outlive the service.
  explicit SigningService(engine::SamplerRegistry& registry,
                          SigningOptions options = {});

  /// Sign every message in `messages` with `kp`, the batch split across
  /// the worker pool. Returns signatures in message order. Thread-safe;
  /// concurrent calls overlap on disjoint worker subsets (each call checks
  /// out at least one free worker, so a call on one key never waits for a
  /// whole batch on another key to finish — only for one worker to free
  /// up). `stats`, when non-null, accumulates this call's totals.
  std::vector<Signature> sign_many(const KeyPair& kp,
                                   std::span<const std::string_view> messages,
                                   SignStats* stats = nullptr);

  /// Single-message convenience (still batch-fed under the hood).
  Signature sign(const KeyPair& kp, std::string_view message,
                 SignStats* stats = nullptr);

  /// Lifetime totals aggregated across all workers.
  SignStats stats() const;
  std::uint64_t base_calls() const;
  std::uint64_t rejections() const;

  /// Number of distinct keys whose ffLDL tree is cached.
  std::size_t num_cached_trees() const;

  /// ffLDL tree cache hit/miss/size totals (a miss is a tree build —
  /// the expensive per-key setup the cache exists to amortize).
  obs::CacheStats tree_cache_stats() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  engine::Backend backend() const;
  const SigningOptions& options() const { return options_; }

 private:
  struct Worker {
    std::unique_ptr<engine::SamplerEngine> engine;
    std::unique_ptr<engine::EngineBlockSource> source;
    std::unique_ptr<SamplerZ> samplerz;
    FfScratch scratch;
    bool busy = false;  // guarded by pool_mu_
    // Published-at-check-in lifetime counters, read under pool_mu_. The
    // live SamplerZ counters belong to the checked-out thread and are only
    // snapshotted here once the worker is returned.
    SignStats totals;
    std::uint64_t base_calls = 0;
    std::uint64_t rejections = 0;
  };
  struct TreeEntry {
    IPoly f, g;  // fingerprint collision guard (the tree's actual inputs)
    std::shared_ptr<const FalconTree> tree;
  };
  using TreeCache = store::BoundedCache<std::uint64_t, TreeEntry>;

  /// The (pinned) tree entry for kp: memory hit, KvStore warm start, or
  /// build — in that order. sign_many holds the pin for its whole batch,
  /// so a hot tree is never evicted mid-batch.
  TreeCache::Pinned tree_for(const KeyPair& kp);

  /// Blocks until at least one worker is free, then takes up to `want` of
  /// them in index order. Never holds pool_mu_ while signing runs.
  std::vector<Worker*> checkout(std::size_t want);
  void checkin(std::span<Worker* const> taken);

  SigningOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex pool_mu_;  // guards Worker::busy + published counters
  std::condition_variable pool_cv_;
  TreeCache trees_;
};

}  // namespace cgs::falcon
