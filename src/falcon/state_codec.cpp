#include "falcon/state_codec.h"

#include <bit>
#include <cmath>

#include "common/check.h"
#include "serial/serial.h"

namespace cgs::falcon {

namespace {

// Degrees the system ever runs (decode bound — a corrupt size field must
// not turn into a multi-gigabyte allocation before the checksum is even
// consulted by a caller that skipped unwrap).
constexpr std::uint64_t kMaxDegree = 1u << 14;

void put_double(serial::Writer& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double get_double(serial::Reader& r) {
  const double v = std::bit_cast<double>(r.u64());
  if (!std::isfinite(v))
    throw serial::SerialError("state_codec: non-finite double");
  return v;
}

// std::complex<double> is array-of-two-doubles layout-compatible, so a
// CVec serializes as one 2n-double bulk array (decode still validates
// finiteness per coordinate — a corrupt spectrum must not parse).
void put_cvec(serial::Writer& w, const CVec& v) {
  w.f64_bits(std::span<const double>(
      reinterpret_cast<const double*>(v.data()), 2 * v.size()));
}

CVec get_cvec(serial::Reader& r, std::size_t n) {
  const std::vector<double> d = r.f64_bits(2 * n);
  for (double x : d)
    if (!std::isfinite(x))
      throw serial::SerialError("state_codec: non-finite double");
  CVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cplx(d[2 * i], d[2 * i + 1]);
  return v;
}

void put_ipoly(serial::Writer& w, const IPoly& p) {
  w.u32s(std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(p.data()), p.size()));
}

IPoly get_ipoly(serial::Reader& r, std::size_t n) {
  const std::vector<std::uint32_t> raw = r.u32s(n);
  IPoly p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::int32_t>(raw[i]);
  return p;
}

void put_u32vec(serial::Writer& w, const std::vector<std::uint32_t>& v) {
  w.u32s(v);
}

std::vector<std::uint32_t> get_u32vec(serial::Reader& r, std::size_t n) {
  return r.u32s(n);
}

std::uint64_t checked_degree(serial::Reader& r) {
  const std::uint64_t n = r.u64();
  if (n == 0 || n > kMaxDegree || (n & (n - 1)) != 0)
    throw serial::SerialError("state_codec: degree not a small power of two");
  return n;
}

// Node layout mirrors the tree shape exactly: a node over dim m writes its
// l10 spectrum, then either the four leaf widths (m == 1) or its two dim
// m/2 children — no per-node size fields, the recursion IS the schema.
void put_node(serial::Writer& w, const FfNode& node, std::size_t m) {
  CGS_CHECK_MSG(node.l10.size() == m, "state_codec: tree node dim mismatch");
  put_cvec(w, node.l10);
  if (m == 1) {
    put_double(w, node.sigma0);
    put_double(w, node.sigma1);
    put_double(w, node.isq0);
    put_double(w, node.isq1);
    return;
  }
  CGS_CHECK_MSG(node.child0 && node.child1,
                "state_codec: interior tree node missing children");
  put_node(w, *node.child0, m / 2);
  put_node(w, *node.child1, m / 2);
}

std::unique_ptr<FfNode> get_node(serial::Reader& r, std::size_t m) {
  auto node = std::make_unique<FfNode>();
  node->l10 = get_cvec(r, m);
  if (m == 1) {
    node->sigma0 = get_double(r);
    node->sigma1 = get_double(r);
    node->isq0 = get_double(r);
    node->isq1 = get_double(r);
    if (node->sigma0 <= 0.0 || node->sigma1 <= 0.0)
      throw serial::SerialError("state_codec: non-positive leaf sigma");
    return node;
  }
  node->child0 = get_node(r, m / 2);
  node->child1 = get_node(r, m / 2);
  return node;
}

std::size_t node_bytes(const FfNode& node) {
  std::size_t total = sizeof(FfNode) + node.l10.capacity() * sizeof(cplx);
  if (node.child0) total += node_bytes(*node.child0);
  if (node.child1) total += node_bytes(*node.child1);
  return total;
}

void put_params(serial::Writer& w, const FalconParams& params) {
  w.u64(params.n);
  put_double(w, params.sigma_sig);
  put_double(w, params.sigma_min);
  put_double(w, params.sigma_max);
  w.u64(static_cast<std::uint64_t>(params.norm_bound_sq));
}

FalconParams get_params(serial::Reader& r) {
  FalconParams params;
  params.n = static_cast<std::size_t>(checked_degree(r));
  params.sigma_sig = get_double(r);
  params.sigma_min = get_double(r);
  params.sigma_max = get_double(r);
  params.norm_bound_sq = static_cast<std::int64_t>(r.u64());
  return params;
}

}  // namespace

std::vector<std::uint8_t> encode_tree(const KeyPair& kp,
                                      const FalconTree& tree) {
  const std::size_t n = kp.params.n;
  CGS_CHECK(kp.f.size() == n && kp.g.size() == n && tree.b00().size() == n);
  serial::Writer w;
  w.reserve(tree_footprint_bytes(tree) + 16 * n);  // one allocation, not
                                                   // doubling growth
  w.u64(n);
  put_ipoly(w, kp.f);
  put_ipoly(w, kp.g);
  put_cvec(w, tree.b00());
  put_cvec(w, tree.b01());
  put_cvec(w, tree.b10());
  put_cvec(w, tree.b11());
  put_double(w, tree.min_leaf_sigma());
  put_double(w, tree.max_leaf_sigma());
  put_node(w, tree.root(), n);
  return serial::wrap(serial::TypeTag::kFalconTree, w.take());
}

TreeRecord decode_tree(std::span<const std::uint8_t> frame) {
  serial::Reader r(serial::unwrap(frame, serial::TypeTag::kFalconTree));
  const auto n = static_cast<std::size_t>(checked_degree(r));
  TreeRecord rec;
  rec.f = get_ipoly(r, n);
  rec.g = get_ipoly(r, n);
  CVec b00 = get_cvec(r, n);
  CVec b01 = get_cvec(r, n);
  CVec b10 = get_cvec(r, n);
  CVec b11 = get_cvec(r, n);
  const double min_sigma = get_double(r);
  const double max_sigma = get_double(r);
  if (min_sigma <= 0.0 || min_sigma > max_sigma)
    throw serial::SerialError("state_codec: implausible leaf sigma range");
  std::unique_ptr<FfNode> root = get_node(r, n);
  r.finish();
  rec.tree = std::make_shared<FalconTree>(FalconTree::from_parts(
      std::move(root), std::move(b00), std::move(b01), std::move(b10),
      std::move(b11), min_sigma, max_sigma));
  return rec;
}

std::size_t tree_footprint_bytes(const FalconTree& tree) {
  return sizeof(FalconTree) +
         (tree.b00().capacity() + tree.b01().capacity() +
          tree.b10().capacity() + tree.b11().capacity()) *
             sizeof(cplx) +
         node_bytes(tree.root());
}

std::vector<std::uint8_t> encode_ntt_key(const NttKeyRecord& rec) {
  const std::size_t n = rec.params.n;
  CGS_CHECK(rec.h.size() == n && rec.h_ntt.size() == n &&
            rec.h_ntt_shoup.size() == n);
  serial::Writer w;
  w.reserve(ntt_key_footprint_bytes(n));
  put_params(w, rec.params);
  put_u32vec(w, rec.h);
  put_u32vec(w, rec.h_ntt);
  put_u32vec(w, rec.h_ntt_shoup);
  return serial::wrap(serial::TypeTag::kNttKey, w.take());
}

NttKeyRecord decode_ntt_key(std::span<const std::uint8_t> frame) {
  serial::Reader r(serial::unwrap(frame, serial::TypeTag::kNttKey));
  NttKeyRecord rec;
  rec.params = get_params(r);
  const std::size_t n = rec.params.n;
  rec.h = get_u32vec(r, n);
  rec.h_ntt = get_u32vec(r, n);
  rec.h_ntt_shoup = get_u32vec(r, n);
  r.finish();
  return rec;
}

std::size_t ntt_key_footprint_bytes(std::size_t n) {
  return 3 * n * sizeof(std::uint32_t) + sizeof(FalconParams) + 64;
}

namespace {

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[i] = kDigits[v & 0xf];
  return s;
}

}  // namespace

std::string tree_state_key(std::uint64_t fingerprint) {
  return "ffldl-" + hex16(fingerprint);
}

std::string ntt_state_key(std::uint64_t fingerprint) {
  return "ntt-" + hex16(fingerprint);
}

}  // namespace cgs::falcon
