#pragma once
// Disk codecs for per-key offline state: the ffLDL tree a signing tenant
// needs and the NTT-domain public key a verifying tenant needs. Both are
// pure precomputations over key material, so persisting them (via
// store::KvStore) turns a post-eviction cache miss from a rebuild —
// O(n log n) FFTs for the tree, a forward NTT plus Shoup companions for
// the key — into one decode.
//
// Bit-exactness contract: every double is serialized as its IEEE-754 bit
// pattern and every integer verbatim, so decode(encode(x)) reproduces x
// bit for bit. A warm-started tree signs identically to the tree that was
// evicted; a warm-started key accepts/rejects identically. The
// round-trip is asserted in tests/test_store.cpp.
//
// Identity: tree records carry the secret (f, g) they were built from and
// key records the public h — the same collision guards the in-memory
// caches keep — so a fingerprint collision (or a stale record from a
// re-generated key) is detected on load and falls back to a rebuild.
// Frames use the standard serial container (kFalconTree / kNttKey), so
// bit rot and truncation surface as SerialError before any field parses.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "falcon/ffsampling.h"
#include "falcon/keygen.h"

namespace cgs::falcon {

/// A decoded tree plus the secret pair it was derived from (the cache's
/// collision/staleness guard: reject the record if (f, g) differ from the
/// key pair in hand).
struct TreeRecord {
  IPoly f, g;
  std::shared_ptr<const FalconTree> tree;
};

/// Serialize kp's tree as a kFalconTree frame.
std::vector<std::uint8_t> encode_tree(const KeyPair& kp,
                                      const FalconTree& tree);

/// Decode a kFalconTree frame. Throws serial::SerialError on any
/// malformed, truncated or corrupted input (callers treat that as a cache
/// miss and rebuild).
TreeRecord decode_tree(std::span<const std::uint8_t> frame);

/// Approximate resident bytes of a tree (nodes + spectra + basis rows) —
/// the cost a BoundedCache byte budget charges for it.
std::size_t tree_footprint_bytes(const FalconTree& tree);

/// The NTT-domain verification state for one public key, exactly the
/// fields VerificationService caches per fingerprint.
struct NttKeyRecord {
  std::vector<std::uint32_t> h;          // collision guard on load
  std::vector<std::uint32_t> h_ntt;      // forward transform, bit-reversed
  std::vector<std::uint32_t> h_ntt_shoup;
  FalconParams params;
};

/// Serialize as a kNttKey frame.
std::vector<std::uint8_t> encode_ntt_key(const NttKeyRecord& rec);

/// Decode a kNttKey frame; throws serial::SerialError on bad input.
NttKeyRecord decode_ntt_key(std::span<const std::uint8_t> frame);

/// Approximate resident bytes of a cached NTT key of degree n.
std::size_t ntt_key_footprint_bytes(std::size_t n);

/// KvStore key for a tree record: "ffldl-" + 16 hex digits of the secret
/// key fingerprint.
std::string tree_state_key(std::uint64_t fingerprint);

/// KvStore key for an NTT key record: "ntt-" + 16 hex digits of the
/// public key fingerprint.
std::string ntt_state_key(std::uint64_t fingerprint);

}  // namespace cgs::falcon
