#include "falcon/verification_service.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "falcon/state_codec.h"
#include "serial/serial.h"

namespace cgs::falcon {

std::uint64_t public_key_fingerprint(std::span<const std::uint32_t> h,
                                     const FalconParams& params) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(16 + 4 * h.size());
  const auto append = [&bytes](const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + len);
  };
  const std::uint64_t n = params.n;
  append(&n, sizeof n);
  // The acceptance bound is part of the key's verification identity: the
  // same h under a tighter bound is a different verifier.
  const std::int64_t bound = params.bound_sq();
  append(&bound, sizeof bound);
  append(h.data(), h.size() * sizeof(std::uint32_t));
  return serial::fnv1a64(bytes);
}

VerificationService::VerificationService(VerificationOptions options)
    : options_(options), keys_(options.key_cache) {
  int threads = options_.num_threads;
  if (threads <= 0)
    threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  options_.num_threads = threads;
  CGS_CHECK_MSG(options_.min_batch_per_thread >= 1,
                "verification service needs min_batch_per_thread >= 1");
}

VerificationService::KeyCache::Pinned VerificationService::entry_for(
    const std::vector<std::uint32_t>& h, const FalconParams& params) {
  CGS_CHECK_MSG(h.size() == params.n,
                "public key length does not match the degree");
  const std::uint64_t fp = public_key_fingerprint(h, params);
  store::KvStore* kv = options_.key_state;
  auto pinned = keys_.get_or_build(fp, [&]() -> KeyCache::Built {
    const std::size_t cost = ntt_key_footprint_bytes(params.n);
    const std::string state_key = ntt_state_key(fp);
    if (kv) {
      if (const auto bytes = kv->get(state_key)) {
        try {
          NttKeyRecord rec = decode_ntt_key(*bytes);
          // The stored public material must match the key in hand — a
          // stale or colliding record falls through to a transform, which
          // then overwrites it.
          if (rec.h == h && rec.params.n == params.n &&
              rec.params.bound_sq() == params.bound_sq() &&
              rec.h_ntt.size() == params.n &&
              rec.h_ntt_shoup.size() == params.n) {
            auto entry = std::make_shared<KeyEntry>();
            entry->h = std::move(rec.h);
            entry->h_ntt = std::move(rec.h_ntt);
            entry->h_ntt_shoup = std::move(rec.h_ntt_shoup);
            entry->params = params;
            entry->ntt = shared_ntt_context(params.n);
            return {std::move(entry), cost, /*warm_start=*/true};
          }
        } catch (const serial::SerialError&) {
          // Corrupt record: re-transform (and overwrite it below).
        }
      }
    }
    auto entry = std::make_shared<KeyEntry>();
    entry->h = h;
    entry->params = params;
    entry->ntt = shared_ntt_context(params.n);
    entry->h_ntt = h;
    entry->ntt->forward_br(entry->h_ntt);  // cached in the bit-reversed domain
    entry->h_ntt_shoup.reserve(entry->h_ntt.size());
    for (const std::uint32_t w : entry->h_ntt)
      entry->h_ntt_shoup.push_back(NttContext::shoup_factor(w));
    if (kv) {
      NttKeyRecord rec{entry->h, entry->h_ntt, entry->h_ntt_shoup, params};
      kv->put(state_key, encode_ntt_key(rec));  // best-effort
    }
    return {std::move(entry), cost, /*warm_start=*/false};
  });
  CGS_CHECK_MSG(pinned->h == h && pinned->params.bound_sq() == params.bound_sq(),
                "public key fingerprint collision in the verify cache");
  return pinned;
}

bool VerificationService::verify_one(const KeyEntry& key,
                                     std::string_view message,
                                     const Signature& sig,
                                     std::vector<std::uint32_t>& scratch) {
  if (sig.s1.size() != key.params.n) return false;
  return verify_with_c(key, hash_to_point(sig.nonce, message, key.params.n),
                       sig, scratch);
}

bool VerificationService::verify_with_c(const KeyEntry& key,
                                        const std::vector<std::uint32_t>& c,
                                        const Signature& sig,
                                        std::vector<std::uint32_t>& scratch) {
  const std::size_t n = key.params.n;
  if (sig.s1.size() != n) return false;

  // s1 h with the key already in the (bit-reversed) NTT domain: one
  // Shoup-twiddle forward + one inverse instead of the scalar path's
  // two-forward-one-inverse with division-based modmuls; the pointwise
  // stage rides the key's precomputed Shoup companions.
  scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t x = sig.s1[i];
    scratch[i] = -static_cast<std::int32_t>(kQ) < x &&
                         x < static_cast<std::int32_t>(kQ)
                     ? static_cast<std::uint32_t>(
                           x < 0 ? x + static_cast<std::int32_t>(kQ) : x)
                     : to_mod_q(x);
  }
  key.ntt->forward_br(scratch);
  key.ntt->pointwise_shoup(scratch, key.h_ntt, key.h_ntt_shoup);
  key.ntt->inverse_br(scratch);

  // Fused pass: center s0 = c - s1 h and accumulate both halves of the
  // norm without materializing s0. Both operands live in [0, q), so the
  // difference folds and centers with two conditional subtracts — no
  // division. Exact in int64 at Falcon scale.
  std::int64_t norm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t d = c[i] + kQ - scratch[i];  // (0, 2q)
    if (d >= kQ) d -= kQ;
    const std::int64_t s0 =
        static_cast<std::int32_t>(d) -
        (d > kQ / 2 ? static_cast<std::int32_t>(kQ) : 0);
    const std::int64_t s1 = sig.s1[i];
    norm += s0 * s0 + s1 * s1;
  }
  return norm <= key.params.bound_sq();
}

bool VerificationService::verify(const std::vector<std::uint32_t>& h,
                                 const FalconParams& params,
                                 std::string_view message,
                                 const Signature& sig) {
  const auto key = entry_for(h, params);
  std::vector<std::uint32_t> scratch;
  const bool ok = verify_one(*key, message, sig, scratch);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.checked;
    ++(ok ? stats_.accepted : stats_.rejected);
  }
  return ok;
}

std::vector<std::uint8_t> VerificationService::verify_many(
    const std::vector<std::uint32_t>& h, const FalconParams& params,
    std::span<const std::string_view> messages,
    std::span<const Signature> sigs) {
  CGS_CHECK_MSG(messages.size() == sigs.size(),
                "verify_many: messages and signatures must pair up");
  const auto key = entry_for(h, params);
  std::vector<std::uint8_t> out(messages.size(), 0);
  if (messages.empty()) return out;

  // Fan out contiguous slices; each worker owns one scratch buffer for its
  // whole slice. Items are independent and the key entry is immutable, so
  // there is no cross-thread state beyond the disjoint result slots.
  const std::size_t want =
      std::max<std::size_t>(1, messages.size() / options_.min_batch_per_thread);
  const std::size_t k = std::min<std::size_t>(
      {want, static_cast<std::size_t>(options_.num_threads), messages.size()});
  const std::size_t n = params.n;
  const auto run_slice = [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint32_t> scratch;
    std::array<std::vector<std::uint32_t>, 4> cs;  // reused across groups
    std::size_t i = begin;
    // Groups of four ride the vectorized Keccak: one 4-lane permutation
    // pass squeezes all four hash-to-points (bit-identical to scalar).
    for (; i + 4 <= end; i += 4) {
      bool lanes_ok = true;
      for (std::size_t k = 0; k < 4; ++k)
        lanes_ok &= sigs[i + k].s1.size() == n;
      if (!lanes_ok) {
        // A malformed-degree item opts its group of four out of the
        // vectorized hash (degree-mismatch is an instant reject, no
        // hash needed); later groups keep the amortization.
        for (std::size_t k = 0; k < 4; ++k)
          out[i + k] =
              verify_one(*key, messages[i + k], sigs[i + k], scratch) ? 1 : 0;
        continue;
      }
      std::array<std::span<const std::uint8_t>, 4> nonces;
      std::array<std::string_view, 4> msgs;
      for (std::size_t k = 0; k < 4; ++k) {
        nonces[k] = std::span(sigs[i + k].nonce);
        msgs[k] = messages[i + k];
      }
      hash_to_point_x4(nonces, msgs, n, cs);
      for (std::size_t k = 0; k < 4; ++k)
        out[i + k] = verify_with_c(*key, cs[k], sigs[i + k], scratch) ? 1 : 0;
    }
    for (; i < end; ++i)
      out[i] = verify_one(*key, messages[i], sigs[i], scratch) ? 1 : 0;
  };
  if (k <= 1) {
    run_slice(0, messages.size());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(k - 1);
    const std::size_t chunk = (messages.size() + k - 1) / k;
    for (std::size_t t = 1; t < k; ++t)
      threads.emplace_back(run_slice, t * chunk,
                           std::min(messages.size(), (t + 1) * chunk));
    run_slice(0, std::min(messages.size(), chunk));
    for (auto& th : threads) th.join();
  }

  std::uint64_t accepted = 0;
  for (std::uint8_t v : out) accepted += v;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    stats_.checked += out.size();
    stats_.accepted += accepted;
    stats_.rejected += out.size() - accepted;
  }
  return out;
}

std::size_t VerificationService::num_cached_keys() const {
  return keys_.size();
}

obs::CacheStats VerificationService::key_cache_stats() const {
  return keys_.stats();
}

VerifyStats VerificationService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace cgs::falcon
