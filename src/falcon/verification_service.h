#pragma once
// VerificationService: the batch-first Falcon verification front end,
// mirroring SigningService one protocol step later. Verification needs only
// public material, so the service caches, per public-key fingerprint, the
// key already forward-transformed into the NTT domain: a scalar Verifier
// pays three size-n transforms per verify (NTT(s1), NTT(h), inverse);
// a cached key drops that to two, and the per-degree NttContext itself is
// the shared immutable instance from falcon/ntt.h, so a multi-tenant
// verify lane pays the twiddle setup exactly once per degree.
//
// verify_many() amortizes further across the batch: one scratch buffer per
// worker reused for every c - s1 h recomputation (no per-item allocation of
// the product or of s0 — centering, the norm accumulation and the bound
// check are fused into one pass over the coefficients), hash-to-point done
// exactly once per message, and the batch fanned out across a small thread
// pool (items are independent; results land in request order). Batched and
// scalar paths run the identical arithmetic, so accept/reject decisions are
// bit-for-bit the same as Verifier::verify — tests/test_verify.cpp holds
// the two differentially equal.
//
// Thread-safety: verify/verify_many may be called concurrently; the key
// cache is guarded, verification itself touches only immutable key state
// and per-call scratch.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "falcon/sign.h"
#include "obs/metric.h"
#include "store/bounded_cache.h"
#include "store/kvstore.h"

namespace cgs::falcon {

/// Stable 64-bit fingerprint of public verification material (degree plus
/// h) — what the verify lane shards by and the key cache keys on. As with
/// key_fingerprint, collision handling is the cache's job (it stores the
/// actual h and checks), not the fingerprint's.
std::uint64_t public_key_fingerprint(std::span<const std::uint32_t> h,
                                     const FalconParams& params);

struct VerifyStats {
  std::uint64_t checked = 0;   // signatures examined
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;   // verify_many calls
};

struct VerificationOptions {
  int num_threads = 0;  // verify_many fan-out; 0 -> hardware concurrency
  /// Batches smaller than this stay on the calling thread — spawning
  /// threads for a handful of sub-millisecond checks costs more than it
  /// saves.
  std::size_t min_batch_per_thread = 8;
  /// Budget for the NTT-domain key cache. Default unbounded — the legacy
  /// every-key-resident behavior.
  store::CacheBudget key_cache;
  /// Optional persistent key-state store (not owned; must outlive the
  /// service). When set, transformed keys are written through and an
  /// evicted key warm-starts from a decode instead of a forward NTT +
  /// Shoup precompute.
  store::KvStore* key_state = nullptr;
};

class VerificationService {
 public:
  explicit VerificationService(VerificationOptions options = {});

  /// Verify one signature against (h, params); the NTT-domain key is
  /// cached under its fingerprint on first use. Bit-for-bit the same
  /// decision as Verifier(h, params).verify(message, sig).
  bool verify(const std::vector<std::uint32_t>& h, const FalconParams& params,
              std::string_view message, const Signature& sig);

  /// Verify a batch under one key; out[i] == 1 iff (messages[i], sigs[i])
  /// verifies. messages and sigs must be the same length.
  std::vector<std::uint8_t> verify_many(
      const std::vector<std::uint32_t>& h, const FalconParams& params,
      std::span<const std::string_view> messages,
      std::span<const Signature> sigs);

  /// Number of distinct public keys cached in NTT form.
  std::size_t num_cached_keys() const;

  /// NTT-domain key cache hit/miss/size totals (a miss is a forward
  /// transform plus Shoup precomputation).
  obs::CacheStats key_cache_stats() const;

  /// Lifetime totals (reflects completed calls).
  VerifyStats stats() const;

  const VerificationOptions& options() const { return options_; }

 private:
  struct KeyEntry {
    std::vector<std::uint32_t> h;      // fingerprint collision guard
    std::vector<std::uint32_t> h_ntt;  // forward-transformed once
    std::vector<std::uint32_t> h_ntt_shoup;  // Shoup companions of h_ntt
    FalconParams params;
    std::shared_ptr<const NttContext> ntt;  // shared per-degree context
  };

  using KeyCache = store::BoundedCache<std::uint64_t, KeyEntry>;

  /// The (pinned) NTT-domain entry for (h, params): memory hit, KvStore
  /// warm start, or forward transform. Callers hold the pin for the whole
  /// verify/verify_many call, so a key in use is never evicted mid-batch.
  KeyCache::Pinned entry_for(const std::vector<std::uint32_t>& h,
                             const FalconParams& params);

  /// The fused scalar kernel both paths run: c - s1 h via the cached
  /// NTT-domain key, centering + norm accumulation in one pass. `scratch`
  /// is caller-owned working memory reused across a batch.
  static bool verify_one(const KeyEntry& key, std::string_view message,
                         const Signature& sig,
                         std::vector<std::uint32_t>& scratch);
  /// verify_one with the hash-to-point already computed (the batch path
  /// hashes four messages per vectorized Keccak pass).
  static bool verify_with_c(const KeyEntry& key,
                            const std::vector<std::uint32_t>& c,
                            const Signature& sig,
                            std::vector<std::uint32_t>& scratch);

  VerificationOptions options_;
  KeyCache keys_;
  mutable std::mutex stats_mu_;
  VerifyStats stats_;
};

}  // namespace cgs::falcon
