#include "falcon/verify.h"

#include "common/check.h"

namespace cgs::falcon {

Verifier::Verifier(std::vector<std::uint32_t> public_key_h,
                   FalconParams params)
    : h_(std::move(public_key_h)),
      params_(params),
      ntt_(shared_ntt_context(params.n)) {
  CGS_CHECK(h_.size() == params_.n);
}

bool Verifier::verify(std::string_view message, const Signature& sig) const {
  const std::size_t n = params_.n;
  if (sig.s1.size() != n) return false;

  const std::vector<std::uint32_t> c = hash_to_point(sig.nonce, message, n);
  const std::vector<std::uint32_t> s1h =
      ntt_->multiply(to_mod_q_poly(sig.s1), h_);
  IPoly s0(n);
  for (std::size_t i = 0; i < n; ++i)
    s0[i] = center_mod_q((c[i] + kQ - s1h[i]) % kQ);

  return norm_sq_pair(s0, sig.s1) <= params_.bound_sq();
}

}  // namespace cgs::falcon
