#pragma once
// Falcon verification: recompute s0 = c - s1 h mod q (centered) and accept
// iff ||(s0, s1)||^2 stays under the signature bound. Needs only the public
// key. The NttContext is the per-degree shared immutable instance
// (falcon/ntt.h), so standing up many Verifiers at one degree pays the
// twiddle setup once. For the batched, multi-tenant front end see
// falcon/verification_service.h.

#include <memory>
#include <string_view>

#include "falcon/sign.h"

namespace cgs::falcon {

class Verifier {
 public:
  Verifier(std::vector<std::uint32_t> public_key_h, FalconParams params);

  bool verify(std::string_view message, const Signature& sig) const;

 private:
  std::vector<std::uint32_t> h_;
  FalconParams params_;
  std::shared_ptr<const NttContext> ntt_;
};

}  // namespace cgs::falcon
