#pragma once
// Falcon verification: recompute s0 = c - s1 h mod q (centered) and accept
// iff ||(s0, s1)||^2 stays under the signature bound. Needs only the public
// key.

#include <string_view>

#include "falcon/sign.h"

namespace cgs::falcon {

class Verifier {
 public:
  Verifier(std::vector<std::uint32_t> public_key_h, FalconParams params);

  bool verify(std::string_view message, const Signature& sig) const;

 private:
  std::vector<std::uint32_t> h_;
  FalconParams params_;
  NttContext ntt_;
};

}  // namespace cgs::falcon
