#include "falcon/zpoly.h"

#include <algorithm>

#include "common/check.h"

namespace cgs::falcon {

using bigint::BigInt;

ZPoly zp_mul(const ZPoly& a, const ZPoly& b) {
  const std::size_t m = a.size();
  CGS_CHECK(b.size() == m);
  ZPoly c(m, BigInt(0));
  for (std::size_t i = 0; i < m; ++i) {
    if (a[i].is_zero()) continue;
    for (std::size_t j = 0; j < m; ++j) {
      if (b[j].is_zero()) continue;
      const BigInt prod = a[i] * b[j];
      const std::size_t k = i + j;
      if (k < m)
        c[k] += prod;
      else
        c[k - m] -= prod;  // x^m = -1
    }
  }
  return c;
}

ZPoly zp_add(const ZPoly& a, const ZPoly& b) {
  CGS_CHECK(a.size() == b.size());
  ZPoly c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

ZPoly zp_sub(const ZPoly& a, const ZPoly& b) {
  CGS_CHECK(a.size() == b.size());
  ZPoly c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

ZPoly zp_conjugate(const ZPoly& f) {
  ZPoly g = f;
  for (std::size_t i = 1; i < g.size(); i += 2) g[i] = -g[i];
  return g;
}

ZPoly zp_field_norm(const ZPoly& f) {
  CGS_CHECK(f.size() >= 2);
  const ZPoly prod = zp_mul(f, zp_conjugate(f));
  ZPoly norm(f.size() / 2);
  for (std::size_t i = 0; i < norm.size(); ++i) {
    // Odd coefficients of f * f(-x) vanish identically.
    CGS_DCHECK(prod[2 * i + 1].is_zero());
    norm[i] = prod[2 * i];
  }
  return norm;
}

ZPoly zp_lift(const ZPoly& f) {
  ZPoly g(2 * f.size(), BigInt(0));
  for (std::size_t i = 0; i < f.size(); ++i) g[2 * i] = f[i];
  return g;
}

int zp_max_bits(const ZPoly& f) {
  int bits = 0;
  for (const BigInt& c : f) bits = std::max(bits, c.bit_length());
  return bits;
}

bool zp_is_zero(const ZPoly& f) {
  return std::all_of(f.begin(), f.end(),
                     [](const BigInt& c) { return c.is_zero(); });
}

}  // namespace cgs::falcon
