#pragma once
// Exact polynomial arithmetic over Z[x]/(x^m+1) with BigInt coefficients —
// the language NTRUSolve speaks. Sizes here are small (m halves every
// recursion level) but coefficients grow to resultant scale, so everything
// is schoolbook over BigInt.

#include <vector>

#include "bigint/bigint.h"

namespace cgs::falcon {

using ZPoly = std::vector<bigint::BigInt>;

/// c = a * b mod x^m+1 (negacyclic schoolbook).
ZPoly zp_mul(const ZPoly& a, const ZPoly& b);

ZPoly zp_add(const ZPoly& a, const ZPoly& b);
ZPoly zp_sub(const ZPoly& a, const ZPoly& b);

/// f(-x): negate odd coefficients (the Galois conjugate of the tower).
ZPoly zp_conjugate(const ZPoly& f);

/// Field norm N(f) down one tower level: N(f)(x^2) = f(x) * f(-x); returns
/// the half-size polynomial of even coefficients.
ZPoly zp_field_norm(const ZPoly& f);

/// F'(x^2): spread a half-size polynomial back to full size (odd
/// coefficients zero).
ZPoly zp_lift(const ZPoly& f);

/// Largest coefficient magnitude in bits.
int zp_max_bits(const ZPoly& f);

/// All coefficients zero?
bool zp_is_zero(const ZPoly& f);

}  // namespace cgs::falcon
