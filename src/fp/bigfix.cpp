#include "fp/bigfix.h"

#include <cmath>
#include <cstdio>

namespace cgs::fp {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigFix::BigFix(int frac_limbs) : frac_limbs_(frac_limbs) {
  CGS_CHECK(frac_limbs >= 1 && frac_limbs <= 64);
  limbs_.assign(static_cast<std::size_t>(frac_limbs_) + 1, 0);
}

BigFix BigFix::from_uint(u64 v, int frac_limbs) {
  BigFix r(frac_limbs);
  r.limbs_.back() = v;
  return r;
}

BigFix BigFix::from_double(double v, int frac_limbs) {
  CGS_CHECK_MSG(v >= 0.0 && std::isfinite(v), "from_double needs finite v>=0");
  BigFix r(frac_limbs);
  double ip = 0;
  double fp = std::modf(v, &ip);
  CGS_CHECK(ip < 1.8446744073709552e19);  // fits one limb
  r.limbs_.back() = static_cast<u64>(ip);
  // Peel the fraction 64 bits at a time; doubles only carry ~53 bits but the
  // Newton seeds this feeds only need that much.
  for (int i = frac_limbs - 1; i >= 0; --i) {
    fp *= 18446744073709551616.0;  // 2^64
    double limb_ip = 0;
    fp = std::modf(fp, &limb_ip);
    r.limbs_[static_cast<std::size_t>(i)] = static_cast<u64>(limb_ip);
  }
  return r;
}

BigFix BigFix::from_limbs(int frac_limbs, std::vector<u64> limbs) {
  BigFix r(frac_limbs);
  CGS_CHECK_MSG(limbs.size() == static_cast<std::size_t>(frac_limbs) + 1,
                "from_limbs: wrong limb count");
  r.limbs_ = std::move(limbs);
  return r;
}

bool BigFix::is_zero() const {
  for (u64 l : limbs_)
    if (l != 0) return false;
  return true;
}

int BigFix::compare(const BigFix& o) const {
  CGS_CHECK(frac_limbs_ == o.frac_limbs_);
  for (int i = static_cast<int>(limbs_.size()) - 1; i >= 0; --i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (limbs_[k] != o.limbs_[k]) return limbs_[k] < o.limbs_[k] ? -1 : 1;
  }
  return 0;
}

BigFix BigFix::add(const BigFix& o) const {
  CGS_CHECK(frac_limbs_ == o.frac_limbs_);
  BigFix r(frac_limbs_);
  u128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u128 s = static_cast<u128>(limbs_[i]) + o.limbs_[i] + carry;
    r.limbs_[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  CGS_CHECK_MSG(carry == 0, "BigFix::add overflow");
  return r;
}

BigFix BigFix::sub(const BigFix& o) const {
  CGS_CHECK(frac_limbs_ == o.frac_limbs_);
  CGS_CHECK_MSG(o.compare(*this) <= 0, "BigFix::sub would go negative");
  BigFix r(frac_limbs_);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 oi = o.limbs_[i];
    const u64 li = limbs_[i];
    const u64 d = li - oi - borrow;
    borrow = (li < oi + (u128)borrow) ? 1 : 0;
    r.limbs_[i] = d;
  }
  return r;
}

BigFix BigFix::mul(const BigFix& o) const {
  CGS_CHECK(frac_limbs_ == o.frac_limbs_);
  const std::size_t n = limbs_.size();
  // Full 2n-limb product, then keep limbs [F, F+n) (floor toward zero).
  std::vector<u64> prod(2 * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (limbs_[i] == 0) continue;
    u128 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
                       prod[i + j] + carry;
      prod[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + n;
    while (carry != 0) {
      const u128 cur = static_cast<u128>(prod[k]) + carry;
      prod[k] = static_cast<u64>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  const std::size_t f = static_cast<std::size_t>(frac_limbs_);
  for (std::size_t i = f + n; i < 2 * n; ++i)
    CGS_CHECK_MSG(prod[i] == 0, "BigFix::mul overflow");
  BigFix r(frac_limbs_);
  for (std::size_t i = 0; i < n; ++i) r.limbs_[i] = prod[f + i];
  return r;
}

BigFix BigFix::mul_small(u64 k) const {
  BigFix r(frac_limbs_);
  u128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u128 cur = static_cast<u128>(limbs_[i]) * k + carry;
    r.limbs_[i] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  CGS_CHECK_MSG(carry == 0, "BigFix::mul_small overflow");
  return r;
}

BigFix BigFix::div_small(u64 d) const {
  CGS_CHECK(d != 0);
  BigFix r(frac_limbs_);
  u128 rem = 0;
  for (int i = static_cast<int>(limbs_.size()) - 1; i >= 0; --i) {
    const std::size_t k = static_cast<std::size_t>(i);
    const u128 cur = (rem << 64) | limbs_[k];
    r.limbs_[k] = static_cast<u64>(cur / d);
    rem = cur % d;
  }
  return r;
}

BigFix BigFix::half() const {
  BigFix r(frac_limbs_);
  u64 carry = 0;
  for (int i = static_cast<int>(limbs_.size()) - 1; i >= 0; --i) {
    const std::size_t k = static_cast<std::size_t>(i);
    r.limbs_[k] = (limbs_[k] >> 1) | (carry << 63);
    carry = limbs_[k] & 1u;
  }
  return r;
}

int BigFix::frac_bit(int i) const {
  CGS_CHECK(i >= 1 && i <= frac_bits());
  const int pos = frac_bits() - i;  // bit index from the bottom of fraction
  const std::size_t limb = static_cast<std::size_t>(pos / 64);
  return static_cast<int>((limbs_[limb] >> (pos % 64)) & 1u);
}

BigFix BigFix::truncated_to(int n) const {
  CGS_CHECK(n >= 0 && n <= frac_bits());
  BigFix r = *this;
  const int drop = frac_bits() - n;  // low fraction bits to clear
  for (int i = 0; i < drop; ++i) {
    const std::size_t limb = static_cast<std::size_t>(i / 64);
    r.limbs_[limb] &= ~(static_cast<u64>(1) << (i % 64));
  }
  return r;
}

BigFix BigFix::reciprocal() const {
  CGS_CHECK_MSG(!is_zero(), "reciprocal of zero");
  const double seed = 1.0 / to_double();
  BigFix y = from_double(seed, frac_limbs_);
  const BigFix two = from_uint(2, frac_limbs_);
  // Newton doubles correct bits per step: ~50 seed bits -> need
  // ceil(log2(frac_bits/50)) + margin iterations.
  for (int it = 0; it < 8; ++it) {
    const BigFix sy = mul(y);
    CGS_CHECK_MSG(sy < two, "reciprocal diverged");
    y = y.mul(two.sub(sy));
  }
  return y;
}

BigFix BigFix::sqrt() const {
  if (is_zero()) return BigFix(frac_limbs_);
  // Inverse-sqrt Newton: z <- z(3 - x z^2)/2, converges quadratically from a
  // double seed; finally sqrt(x) = x * z.
  const double xd = to_double();
  CGS_CHECK_MSG(xd > 0, "sqrt of value too small for double seeding");
  BigFix z = from_double(1.0 / std::sqrt(xd), frac_limbs_);
  const BigFix three = from_uint(3, frac_limbs_);
  for (int it = 0; it < 8; ++it) {
    const BigFix xzz = mul(z).mul(z);
    CGS_CHECK_MSG(xzz < three, "sqrt diverged");
    z = z.mul(three.sub(xzz)).half();
  }
  return mul(z);
}

BigFix BigFix::pi(int frac_limbs) {
  CGS_CHECK_MSG(frac_limbs <= 5, "pi constant stored to 320 fraction bits");
  BigFix p(5);
  p.limbs_ = {0x452821e638d01377ull, 0x082efa98ec4e6c89ull,
              0xa4093822299f31d0ull, 0x13198a2e03707344ull,
              0x243f6a8885a308d3ull, 3ull};
  if (frac_limbs == 5) return p;
  // Truncate to the requested width (drop low limbs).
  BigFix q(frac_limbs);
  for (int i = 0; i <= frac_limbs; ++i)
    q.limbs_[static_cast<std::size_t>(i)] =
        p.limbs_[static_cast<std::size_t>(i + 5 - frac_limbs)];
  return q;
}

double BigFix::to_double() const {
  double v = static_cast<double>(limbs_.back());
  double scale = 1.0;
  for (int i = frac_limbs_ - 1; i >= 0; --i) {
    scale /= 18446744073709551616.0;
    v += static_cast<double>(limbs_[static_cast<std::size_t>(i)]) * scale;
  }
  return v;
}

std::string BigFix::to_hex() const {
  char buf[32];
  std::string s;
  std::snprintf(buf, sizeof buf, "%llx.",
                static_cast<unsigned long long>(limbs_.back()));
  s += buf;
  for (int i = frac_limbs_ - 1; i >= 0; --i) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      limbs_[static_cast<std::size_t>(i)]));
    s += buf;
  }
  return s;
}

}  // namespace cgs::fp
