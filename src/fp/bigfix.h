#pragma once
// BigFix: unsigned fixed-point numbers with one 64-bit integer limb and a
// configurable number of 64-bit fraction limbs. This is the arithmetic the
// probability-matrix builder uses to evaluate exp(-v^2 / 2 sigma^2) and the
// normalization constant of D_sigma to well beyond the paper's n = 128 bits
// of precision (default: 320 fraction bits, leaving guard bits for the
// squaring ladder inside exp and the Newton reciprocal).
//
// Representation: value = (sum_i limb[i] * 2^(64 i)) / 2^(64 F), limbs little
// endian, limb[F] being the integer limb. All operations are exact except
// mul/reciprocal, which truncate below the last fraction limb.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace cgs::fp {

class BigFix {
 public:
  static constexpr int kDefaultFracLimbs = 5;  // 320 fraction bits

  /// Zero with the given fraction width.
  explicit BigFix(int frac_limbs = kDefaultFracLimbs);

  /// Integer value `v` with the given fraction width.
  static BigFix from_uint(std::uint64_t v, int frac_limbs = kDefaultFracLimbs);

  /// Approximate conversion from a non-negative double (used only to seed
  /// Newton iterations; never for final probabilities).
  static BigFix from_double(double v, int frac_limbs = kDefaultFracLimbs);

  int frac_limbs() const { return frac_limbs_; }
  int frac_bits() const { return 64 * frac_limbs_; }

  bool is_zero() const;

  /// Comparison: <0, 0, >0 like memcmp.
  int compare(const BigFix& o) const;
  bool operator==(const BigFix& o) const { return compare(o) == 0; }
  bool operator<(const BigFix& o) const { return compare(o) < 0; }
  bool operator<=(const BigFix& o) const { return compare(o) <= 0; }

  /// Exact addition; throws on integer-limb overflow.
  BigFix add(const BigFix& o) const;
  /// Exact subtraction; requires *this >= o.
  BigFix sub(const BigFix& o) const;
  /// Truncating multiplication (floor to the fraction width).
  BigFix mul(const BigFix& o) const;
  /// Exact multiplication by a small integer; throws on overflow.
  BigFix mul_small(std::uint64_t k) const;
  /// Exact long division by a small non-zero integer (floor).
  BigFix div_small(std::uint64_t d) const;
  /// Halve (exact shift right by one bit).
  BigFix half() const;

  /// Floor of the value as a uint64 (integer limb).
  std::uint64_t int_part() const { return limbs_.back(); }

  /// Fraction bit with weight 2^-i, i >= 1.
  int frac_bit(int i) const;

  /// Keep only the top `n` fraction bits (truncate the rest to zero) — this
  /// is exactly the paper's D^n_sigma truncation.
  BigFix truncated_to(int n) const;

  /// Newton-Raphson reciprocal 1/(*this); requires *this > 0. Accurate to
  /// within a few ULPs of the fraction width.
  BigFix reciprocal() const;

  /// Newton square root; requires *this >= 0.
  BigFix sqrt() const;

  /// pi to the full fraction width (frac_limbs <= 5).
  static BigFix pi(int frac_limbs = kDefaultFracLimbs);

  /// Raw limbs, little endian, fraction limbs first and the integer limb
  /// last — the exact in-memory representation, exposed for serialization.
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  /// Exact inverse of limbs(): rebuild from raw limbs. `limbs.size()` must
  /// equal `frac_limbs + 1`.
  static BigFix from_limbs(int frac_limbs, std::vector<std::uint64_t> limbs);

  /// Lossy conversion for diagnostics.
  double to_double() const;

  /// Hex rendering "I.FFFF..." for debugging/goldens.
  std::string to_hex() const;

 private:
  friend class BigFixTestPeer;
  int frac_limbs_;
  std::vector<std::uint64_t> limbs_;  // size frac_limbs_ + 1, little endian
};

}  // namespace cgs::fp
