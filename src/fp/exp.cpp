#include "fp/exp.h"

namespace cgs::fp {

BigFix exp_neg(const BigFix& x) {
  const int F = x.frac_limbs();
  // Halve until y <= 1/2 so the Taylor series converges fast and partial
  // sums stay positive.
  BigFix y = x;
  const BigFix half_one = BigFix::from_uint(1, F).half();
  int k = 0;
  while (half_one < y) {
    y = y.half();
    ++k;
    CGS_CHECK_MSG(k < 64, "exp_neg argument unreasonably large");
  }

  // e^{-y} = sum_t (-y)^t / t!. Terms decrease monotonically for y <= 1/2,
  // so the alternating partial sums bracket the limit and never go negative.
  BigFix acc = BigFix::from_uint(1, F);
  BigFix term = BigFix::from_uint(1, F);
  for (std::uint64_t t = 1; t < 4096; ++t) {
    term = term.mul(y).div_small(t);
    if (term.is_zero()) break;
    if (t & 1)
      acc = acc.sub(term);
    else
      acc = acc.add(term);
  }

  // Square back: e^{-x} = (e^{-y})^(2^k). Each squaring costs ~1 bit of
  // accuracy; BigFix carries enough guard bits for k <= 64.
  for (int i = 0; i < k; ++i) acc = acc.mul(acc);
  return acc;
}

BigFix gaussian_weight(std::uint64_t v, std::uint64_t sigma_sq_num,
                       std::uint64_t sigma_sq_den, int frac_limbs) {
  CGS_CHECK(sigma_sq_num != 0 && sigma_sq_den != 0);
  // x = v^2 * den / (2 * num); v^2 * den must fit 64 bits — true for every
  // parameter set in the paper (checked).
  const unsigned __int128 v2 =
      static_cast<unsigned __int128>(v) * v * sigma_sq_den;
  CGS_CHECK_MSG(v2 <= ~static_cast<std::uint64_t>(0),
                "v^2 * sigma_sq_den overflows; use a coarser rational");
  BigFix x = BigFix::from_uint(static_cast<std::uint64_t>(v2), frac_limbs);
  x = x.div_small(2).div_small(sigma_sq_num);
  return exp_neg(x);
}

}  // namespace cgs::fp
