#pragma once
// High-precision exp(-x) on BigFix, plus the Gaussian weight helper used by
// the probability-matrix builder.

#include <cstdint>

#include "fp/bigfix.h"

namespace cgs::fp {

/// exp(-x) for x >= 0, accurate to within a few ULPs of x's fraction width.
/// Strategy: halve x until y <= 1/2, alternating Taylor series on y, then
/// square back up. Result is in (0, 1].
BigFix exp_neg(const BigFix& x);

/// exp(-v^2 * den / (2 * num)) — the unnormalized weight of |sample| = v
/// under a discrete Gaussian with sigma^2 = num/den (exact rational).
BigFix gaussian_weight(std::uint64_t v, std::uint64_t sigma_sq_num,
                       std::uint64_t sigma_sq_den,
                       int frac_limbs = BigFix::kDefaultFracLimbs);

}  // namespace cgs::fp
