#include "gauss/params.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cgs::gauss {

GaussianParams GaussianParams::from_sigma(std::uint64_t num, std::uint64_t den,
                                          int tau, int precision) {
  CGS_CHECK(num != 0 && den != 0 && tau >= 1 && precision >= 1);
  // sigma^2 as an exact rational; overflow-check the squares.
  CGS_CHECK_MSG(num < (1ull << 32) && den < (1ull << 32),
                "sigma rational too wide to square exactly");
  GaussianParams p;
  p.sigma_num = num;
  p.sigma_den = den;
  p.sigma_sq_num = num * num;
  p.sigma_sq_den = den * den;
  p.tau = tau;
  p.precision = precision;
  return p;
}

GaussianParams GaussianParams::from_sigma_sq(std::uint64_t num,
                                             std::uint64_t den, int tau,
                                             int precision) {
  CGS_CHECK(num != 0 && den != 0 && tau >= 1 && precision >= 1);
  GaussianParams p;
  p.sigma_sq_num = num;
  p.sigma_sq_den = den;
  const double s = std::sqrt(static_cast<double>(num) / den);
  // Approximate rational for tail bound only: ceil via 1e6 denominator.
  p.sigma_den = 1000000;
  p.sigma_num = static_cast<std::uint64_t>(std::ceil(s * 1e6));
  p.tau = tau;
  p.precision = precision;
  return p;
}

GaussianParams GaussianParams::sigma_1(int precision) {
  return from_sigma(1, 1, 13, precision);
}
GaussianParams GaussianParams::sigma_2(int precision) {
  return from_sigma(2, 1, 13, precision);
}
GaussianParams GaussianParams::sigma_sqrt5(int precision) {
  return from_sigma_sq(5, 1, 13, precision);
}
GaussianParams GaussianParams::sigma_6_15543(int precision) {
  return from_sigma(615543, 100000, 13, precision);
}
GaussianParams GaussianParams::sigma_215(int precision) {
  return from_sigma(215, 1, 13, precision);
}

std::string GaussianParams::describe() const {
  std::ostringstream os;
  os << "D[sigma=" << sigma() << ", tau=" << tau << ", n=" << precision
     << ", support 0.." << max_value() << "]";
  return os.str();
}

}  // namespace cgs::gauss
