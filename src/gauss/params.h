#pragma once
// Parameter sets for discrete Gaussian samplers. sigma is carried as an
// exact rational (and sigma^2 as an exact rational) so that probabilities
// can be computed to 128+ bits — a double-precision sigma would poison the
// low bits of every table.

#include <cstdint>
#include <string>

namespace cgs::gauss {

/// How each probability row is cut to n bits. The paper says "calculated
/// only up to n-bit precision" without fixing the rounding; the choice
/// perturbs the low-order matrix bits and thereby the exact Delta constant
/// (see EXPERIMENTS.md), so both variants are provided.
enum class Rounding {
  kTruncate,  // floor to n bits (default)
  kNearest,   // round to nearest n-bit value (half up)
};

/// How the pmf is normalized before truncation.
enum class Normalization {
  /// Exact discrete sum over Z — the mathematically exact folded pmf and
  /// the library default (best distribution quality).
  kDiscrete,
  /// 1/(sigma*sqrt(2*pi)) — the paper's §3.1 definition (a continuous
  /// approximation of the discrete mass; what [32] and the paper tabulate).
  /// For small sigma this over-fills the DDG tree by ~2 e^{-2 pi^2 sigma^2};
  /// the unreachable bits are clipped (see ProbMatrix::clipped_bits).
  kContinuous,
};

struct GaussianParams {
  // sigma = sigma_num / sigma_den, sigma^2 = sigma_sq_num / sigma_sq_den.
  std::uint64_t sigma_num = 1;
  std::uint64_t sigma_den = 1;
  std::uint64_t sigma_sq_num = 1;
  std::uint64_t sigma_sq_den = 1;
  int tau = 13;        // tail cut: support is [0, floor(tau * sigma)]
  int precision = 128; // n: bits kept per probability
  Normalization normalization = Normalization::kDiscrete;
  Rounding rounding = Rounding::kTruncate;

  /// sigma = num/den (sigma^2 derived by squaring; num^2, den^2 must fit).
  static GaussianParams from_sigma(std::uint64_t num, std::uint64_t den,
                                   int tau = 13, int precision = 128);

  /// sigma^2 = num/den given directly (e.g. sigma = sqrt(5)); the rational
  /// sigma_num/sigma_den is then only an approximation used for the tail
  /// bound and diagnostics.
  static GaussianParams from_sigma_sq(std::uint64_t num, std::uint64_t den,
                                      int tau = 13, int precision = 128);

  /// Paper parameter sets.
  static GaussianParams sigma_1(int precision = 128);
  static GaussianParams sigma_2(int precision = 128);        // Falcon base
  static GaussianParams sigma_sqrt5(int precision = 128);    // Falcon alt
  static GaussianParams sigma_6_15543(int precision = 128);  // [21] compare
  static GaussianParams sigma_215(int precision = 128);      // large-sigma

  double sigma() const {
    return static_cast<double>(sigma_num) / static_cast<double>(sigma_den);
  }
  double sigma_sq() const {
    return static_cast<double>(sigma_sq_num) /
           static_cast<double>(sigma_sq_den);
  }

  /// Largest magnitude in the support: floor(tau * sigma).
  std::uint64_t max_value() const {
    return (static_cast<std::uint64_t>(tau) * sigma_num) / sigma_den;
  }

  /// Rows in the probability matrix (= max_value() + 1).
  std::size_t support_size() const { return max_value() + 1; }

  std::string describe() const;
};

}  // namespace cgs::gauss
