#include "gauss/probmatrix.h"

#include <sstream>

#include "fp/exp.h"

namespace cgs::gauss {

using fp::BigFix;

ProbMatrix::ProbMatrix(const GaussianParams& params)
    : params_(params), deficit_(BigFix::kDefaultFracLimbs) {
  const int n = params_.precision;
  CGS_CHECK_MSG(n <= 256, "precision beyond 256 bits not supported");
  const int F = BigFix::kDefaultFracLimbs;
  const std::size_t support = params_.support_size();

  // Weights, computed past the tail cut so the discrete normalizer is
  // numerically complete: exp(-v^2/2s^2) < 2^-320 once v > 21.1 * sigma.
  const std::uint64_t norm_max =
      (22 * params_.sigma_num) / params_.sigma_den + 2;
  std::vector<BigFix> weights;
  weights.reserve(norm_max + 1);
  BigFix sum(F);
  for (std::uint64_t v = 0; v <= norm_max; ++v) {
    BigFix w = fp::gaussian_weight(v, params_.sigma_sq_num,
                                   params_.sigma_sq_den, F);
    if (v >= 1) {
      sum = sum.add(w).add(w);  // folded: +/- v
    } else {
      sum = sum.add(w);
    }
    weights.push_back(std::move(w));
  }
  // Normalizer: the paper's definition uses the continuous constant
  // sigma*sqrt(2*pi) = sqrt(2*pi*sigma^2); kDiscrete uses the exact sum.
  BigFix inv_sum(F);
  if (params_.normalization == Normalization::kContinuous) {
    const BigFix two_pi_s2 = fp::BigFix::pi(F)
                                 .mul_small(2)
                                 .mul_small(params_.sigma_sq_num)
                                 .div_small(params_.sigma_sq_den);
    inv_sum = two_pi_s2.sqrt().reciprocal();
  } else {
    inv_sum = sum.reciprocal();
  }

  bits_.resize(support);
  exact_.reserve(support);
  for (std::size_t v = 0; v < support; ++v) {
    BigFix p = weights[v].mul(inv_sum);
    if (v >= 1) p = p.add(p);  // folded magnitude: 2*D(v)
    exact_.push_back(p);
    BigFix cut = p;
    if (params_.rounding == Rounding::kNearest) {
      // Half-up rounding: add 2^-(n+1), then floor. The feasibility pass
      // below absorbs any resulting over-mass.
      BigFix half_ulp = BigFix::from_uint(1, F);
      for (int i = 0; i <= n; ++i) half_ulp = half_ulp.half();
      cut = cut.add(half_ulp);
    }
    const BigFix trunc = cut.truncated_to(n);
    bits_[v].resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      bits_[v][static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(trunc.frac_bit(i + 1));
  }

  // DDG feasibility: the level-i node budget X_i = 2*X_{i-1} - h_i must stay
  // >= 0 (X_{-1} = 1). The continuous normalizer of the paper can over-fill
  // the tree by ~2 e^{-2 pi^2 sigma^2}; where that happens the deeper tree
  // levels are physically unreachable, so we clip the offending bits from
  // the bottom (largest-v, least-probable) rows — exactly the mass Alg. 1
  // could never return anyway.
  std::uint64_t budget = 1;  // X_{i-1}, saturating (cannot shrink once large)
  constexpr std::uint64_t kBudgetCap = std::uint64_t(1) << 62;
  for (int i = 0; i < n; ++i) {
    budget = std::min(kBudgetCap, budget * 2);
    std::uint64_t h = 0;
    for (std::size_t v = 0; v < support; ++v) h += bits_[v][static_cast<std::size_t>(i)];
    // Keep at least one internal node per level (h <= budget - 1): a tree
    // that completes would make the all-ones path a leaf, breaking the
    // Theorem-1 structure every consumer relies on.
    if (h + 1 > budget) {
      std::uint64_t excess = h + 1 - budget;
      clipped_bits_ += excess;
      for (std::size_t v = support; v-- > 0 && excess > 0;) {
        if (bits_[v][static_cast<std::size_t>(i)]) {
          bits_[v][static_cast<std::size_t>(i)] = 0;
          --excess;
          --h;
        }
      }
    }
    budget -= h;
  }

  // Rebuild exact fixed-point row probabilities from the (possibly clipped)
  // bits so every consumer (CDT tables, statistics) sees one distribution.
  probs_.reserve(support);
  BigFix total(F);
  const BigFix one = BigFix::from_uint(1, F);
  for (std::size_t v = 0; v < support; ++v) {
    BigFix p(F);
    BigFix weight = one.half();  // 2^-1
    for (int i = 0; i < n; ++i) {
      if (bits_[v][static_cast<std::size_t>(i)]) p = p.add(weight);
      weight = weight.half();
    }
    total = total.add(p);
    probs_.push_back(std::move(p));
  }
  CGS_CHECK_MSG(total <= one, "probability mass exceeds 1 after clipping");
  deficit_ = one.sub(total);

  h_.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t v = 0; v < support; ++v)
    for (int i = 0; i < n; ++i) h_[static_cast<std::size_t>(i)] += bits_[v][static_cast<std::size_t>(i)];
}

ProbMatrix ProbMatrix::from_parts(const GaussianParams& params,
                                  std::vector<std::vector<std::uint8_t>> bits,
                                  std::vector<fp::BigFix> probs,
                                  std::vector<fp::BigFix> exact,
                                  fp::BigFix deficit,
                                  std::uint64_t clipped_bits) {
  const std::size_t support = params.support_size();
  const auto n = static_cast<std::size_t>(params.precision);
  CGS_CHECK_MSG(bits.size() == support, "probmatrix: row count mismatch");
  for (const auto& row : bits)
    CGS_CHECK_MSG(row.size() == n, "probmatrix: column count mismatch");
  CGS_CHECK_MSG(probs.size() == support && exact.size() == support,
                "probmatrix: probability vector size mismatch");
  // Uniform fixed-point width: mixed-width entries would not fail here but
  // deep inside BigFix arithmetic, far from the deserialization site.
  const int F = deficit.frac_limbs();
  for (const auto& p : probs)
    CGS_CHECK_MSG(p.frac_limbs() == F, "probmatrix: mixed BigFix widths");
  for (const auto& e : exact)
    CGS_CHECK_MSG(e.frac_limbs() == F, "probmatrix: mixed BigFix widths");
  ProbMatrix m;
  m.params_ = params;
  m.bits_ = std::move(bits);
  // Column weights are derived state: recompute exactly as the primary
  // constructor does rather than trusting a serialized copy.
  m.h_.assign(n, 0);
  for (std::size_t v = 0; v < support; ++v)
    for (std::size_t i = 0; i < n; ++i) m.h_[i] += m.bits_[v][i];
  m.probs_ = std::move(probs);
  m.exact_ = std::move(exact);
  m.deficit_ = std::move(deficit);
  m.clipped_bits_ = clipped_bits;
  return m;
}

unsigned __int128 ProbMatrix::column_weight_prefix(int i) const {
  CGS_CHECK(i >= 0 && i < precision() && i < 120);
  unsigned __int128 H = 0;
  for (int j = 0; j <= i; ++j)
    H = 2 * H + static_cast<unsigned>(h_[static_cast<std::size_t>(j)]);
  return H;
}

double ProbMatrix::truncation_statistical_distance() const {
  // SD = 1/2 sum_v |p_trunc(v) - p_exact(v)| + 1/2 * (cut tail mass).
  // Truncation only ever lowers a row, so each |diff| = exact - trunc, and
  // the deficit equals exactly sum(diffs) + tail. Hence SD = deficit / 2.
  return deficit_.to_double() / 2.0;
}

std::string ProbMatrix::to_string(int max_cols) const {
  std::ostringstream os;
  const int n = std::min(precision(), max_cols);
  for (std::size_t v = 0; v < rows(); ++v) {
    os << "P" << v << (v < 10 ? "  " : " ");
    for (int i = 0; i < n; ++i) os << ' ' << int(bits_[v][static_cast<std::size_t>(i)]);
    os << '\n';
  }
  os << "h  ";
  for (int i = 0; i < n; ++i) os << ' ' << h_[static_cast<std::size_t>(i)];
  os << '\n';
  return os.str();
}

}  // namespace cgs::gauss
