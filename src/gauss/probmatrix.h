#pragma once
// The Knuth-Yao probability matrix: row v holds the n-bit truncation of the
// folded magnitude distribution P(|X| = v), i.e. D^n(0) for v = 0 and
// 2*D^n(v) for v >= 1 (paper §3.2). Column i carries weight 2^-(i+1) and
// corresponds to DDG-tree level i.

#include <cstdint>
#include <string>
#include <vector>

#include "fp/bigfix.h"
#include "gauss/params.h"

namespace cgs::gauss {

class ProbMatrix {
 public:
  /// Build from parameters: evaluates exp to high precision, normalizes by
  /// the (numerically complete) Gaussian mass over all of Z, truncates each
  /// row to `params.precision` bits.
  explicit ProbMatrix(const GaussianParams& params);

  /// Rebuild from serialized parts (src/serial) without re-running the
  /// high-precision pipeline. Validates shape consistency (row/column counts,
  /// limb widths) and recomputes the column weights from the bits (they are
  /// derived state and are never trusted from a file); the bit content
  /// itself is covered by the serial layer's checksum.
  static ProbMatrix from_parts(const GaussianParams& params,
                               std::vector<std::vector<std::uint8_t>> bits,
                               std::vector<fp::BigFix> probs,
                               std::vector<fp::BigFix> exact,
                               fp::BigFix deficit, std::uint64_t clipped_bits);

  const GaussianParams& params() const { return params_; }
  int precision() const { return params_.precision; }
  std::size_t rows() const { return bits_.size(); }

  /// Bit of row v at column i (weight 2^-(i+1)).
  int bit(std::size_t v, int i) const { return bits_[v][static_cast<std::size_t>(i)]; }

  /// Hamming weight of column i (the paper's h_i).
  int column_weight(int i) const { return h_[static_cast<std::size_t>(i)]; }

  /// H_i = h_0*2^i + h_1*2^(i-1) + ... + h_i, used by the leaf enumerator.
  /// (Fits in unsigned __int128 for n <= 120; we keep H as the running value
  /// via level recursion instead, so this returns the exact low 128 bits.)
  unsigned __int128 column_weight_prefix(int i) const;

  /// Truncated probability of row v as exact fixed point (n-bit value).
  const fp::BigFix& probability(std::size_t v) const { return probs_[v]; }

  /// 1 - sum of all truncated rows: the restart/miss mass. Bounded by
  /// support * 2^-n plus the tau tail.
  const fp::BigFix& deficit() const { return deficit_; }
  double deficit_double() const { return deficit_.to_double(); }

  /// Exact (pre-truncation) probability of magnitude v, for statistics.
  const fp::BigFix& exact_probability(std::size_t v) const {
    return exact_[v];
  }

  /// Statistical distance between the truncated and exact folded pmfs
  /// (including the cut tail as part of the distance).
  double truncation_statistical_distance() const;

  /// Probability bits cleared to keep the DDG tree feasible (non-zero only
  /// under the continuous normalization, and tiny: ~2 e^{-2 pi^2 sigma^2}).
  std::uint64_t clipped_bits() const { return clipped_bits_; }

  /// ASCII rendering of the matrix (Fig. 1 style) for small n.
  std::string to_string(int max_cols = 64) const;

 private:
  ProbMatrix() = default;

  GaussianParams params_;
  std::vector<std::vector<std::uint8_t>> bits_;  // [row][col]
  std::vector<int> h_;                           // column weights
  std::vector<fp::BigFix> probs_;                // truncated, exact fixed point
  std::vector<fp::BigFix> exact_;                // pre-truncation
  fp::BigFix deficit_;
  std::uint64_t clipped_bits_ = 0;
};

}  // namespace cgs::gauss
