#include "gauss/recipe.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "conv/convolution.h"

namespace cgs::gauss {

double smoothing_eta(double eps) {
  CGS_CHECK_MSG(eps > 0.0 && eps < 1.0, "smoothing eps must be in (0, 1)");
  const double pi = std::acos(-1.0);
  return std::sqrt(std::log(2.0 * (1.0 + 1.0 / eps)) / (2.0 * pi * pi));
}

std::string ConvolutionRecipe::describe() const {
  std::ostringstream os;
  os << "recipe[target sigma=" << target_sigma << " c=" << target_center
     << ": base sigma0=" << base.sigma() << " k=" << k
     << " -> sigma=" << achieved_sigma << " (+" << sigma_loss * 100.0
     << "%), shift=" << shift_int;
  if (shift_frac > 0.0) os << "+Bern(" << shift_frac << ")";
  os << "]";
  return os.str();
}

std::vector<GaussianParams> default_recipe_bases(int precision) {
  // Paper sets first, then the ladder rungs filling the coverage gaps; each
  // rung's reach is ~sigma_0^2/eta, so ~sqrt(3) spacing keeps windows
  // overlapping while the support (13 sigma_0 rows to synthesize) stays as
  // small as the target allows.
  return {GaussianParams::sigma_2(precision),
          GaussianParams::sigma_sqrt5(precision),
          GaussianParams::sigma_6_15543(precision),
          GaussianParams::from_sigma(12, 1, 13, precision),
          GaussianParams::from_sigma(21, 1, 13, precision),
          GaussianParams::from_sigma(36, 1, 13, precision),
          GaussianParams::from_sigma(64, 1, 13, precision),
          GaussianParams::from_sigma(115, 1, 13, precision),
          GaussianParams::sigma_215(precision)};
}

ConvolutionRecipe plan_recipe(double target_sigma, double target_center,
                              std::span<const GaussianParams> bases,
                              double eps) {
  CGS_CHECK_MSG(std::isfinite(target_sigma) && target_sigma > 0.0,
                "recipe target sigma must be finite and positive");
  CGS_CHECK_MSG(std::isfinite(target_center),
                "recipe target center must be finite");
  CGS_CHECK_MSG(!bases.empty(), "recipe planning needs candidate bases");
  const double eta = smoothing_eta(eps);

  ConvolutionRecipe best;
  bool found = false;
  for (const GaussianParams& base : bases) {
    const double sigma0 = base.sigma();
    int k;
    if (target_sigma <= sigma0) {
      k = 1;  // convolution cannot shrink sigma; minimal overshoot is k=1
    } else {
      try {
        k = conv::ConvolutionSampler::stride_for(sigma0, target_sigma);
      } catch (const Error&) {
        continue;  // stride beyond the overflow guard: base too small
      }
    }
    // sigma_0 must smooth the stride-k comb (sigma_0 >= eta_eps(kZ)); a
    // smaller k misses the target and a larger one is worse, so skip.
    if (static_cast<double>(k) * eta > sigma0) continue;
    // The combined support is (1+k) * max_value per sign; keep it well
    // inside int32 so x1 + k*x2 (+shift) can never wrap.
    const double reach = static_cast<double>(base.max_value()) *
                         (1.0 + static_cast<double>(k));
    if (reach > static_cast<double>(std::numeric_limits<std::int32_t>::max() / 4))
      continue;

    const double achieved = conv::ConvolutionSampler::combined_sigma(sigma0, k);
    const double loss = (achieved - target_sigma) / target_sigma;
    if (!found || loss < best.sigma_loss ||
        (loss == best.sigma_loss &&
         base.support_size() < best.base.support_size())) {
      best.base = base;
      best.k = k;
      best.achieved_sigma = achieved;
      best.sigma_loss = loss;
      found = true;
    }
  }
  CGS_CHECK_MSG(found, "no candidate base is eligible for target sigma="
                           << target_sigma << " (eta=" << eta << ")");

  best.target_sigma = target_sigma;
  best.target_center = target_center;
  best.eps = eps;
  const CenterSplit split = split_center(target_center);
  best.shift_int = split.shift_int;
  best.shift_frac = split.shift_frac;
  return best;
}

CenterSplit split_center(double center) {
  CGS_CHECK_MSG(std::isfinite(center), "center must be finite");
  double shift = std::floor(center);
  double frac = center - shift;
  if (frac >= 1.0) {  // floor rounding at representability edge
    shift += 1.0;
    frac = 0.0;
  }
  CGS_CHECK_MSG(
      std::fabs(shift) <
          static_cast<double>(std::numeric_limits<std::int32_t>::max() / 2),
      "center shift overflows int32");
  return {static_cast<std::int32_t>(shift), frac};
}

}  // namespace cgs::gauss
