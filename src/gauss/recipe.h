#pragma once
// Recipe selection for arbitrary-(sigma, c) sampling: given a target sigma
// and center, pick a synthesized base sigma_0 and a convolution stride k
// (Poppelmann-Ducas-Guneysu CHES'14 / Micciancio-Walter style, the schemes
// the paper's §3 positions its sampler as the base of) so that
//
//   x = x_1 + k * x_2,  x_1, x_2 ~ D_{sigma_0}
//
// has sigma_0 * sqrt(1 + k^2) >= target sigma. The choice is smoothing-
// parameter aware: k*x_2 lives on the sublattice kZ, and x_1 can only blur
// that k-spaced comb into a Gaussian when sigma_0 >= eta_eps(kZ) =
// k * eta_eps(Z) — by Poisson summation the residue-class ripple is
// ~2 exp(-2 pi^2 sigma_0^2 / k^2), so a (sigma_0, k) pair violating the
// bound produces a visibly spiky distribution (the stats/acceptance Renyi
// check catches exactly this) and is rejected outright. This caps each
// base's reach at roughly sigma_0^2 / eta, which is why the default
// candidate set is a geometric ladder rather than just the paper's sets.
// Non-integer centers are split into an integer shift plus a fractional
// part served by randomized rounding (a Bernoulli(frac) increment), which
// preserves the mean exactly and costs at most frac*(1-frac) <= 1/4 of
// extra variance — negligible against the sigma^2 of any target this
// layer serves.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gauss/params.h"

namespace cgs::gauss {

/// Smoothing parameter of Z in sigma units (Micciancio-Regev bound):
/// eta_eps(Z) <= sqrt(ln(2 (1 + 1/eps)) / (2 pi^2)), about 1.51 at
/// eps = 2^-64. A base smooths the stride-k comb iff sigma_0 >= k * eta.
double smoothing_eta(double eps);

/// Default smoothing slack for recipe planning.
inline constexpr double kDefaultSmoothingEps = 0x1p-64;

/// A planned (sigma, center) sampling recipe: everything the online layer
/// needs to serve the target from two base-sampler streams.
struct ConvolutionRecipe {
  GaussianParams base;             // the synthesized base distribution
  int k = 1;                       // convolution stride
  double target_sigma = 0.0;
  double target_center = 0.0;
  double eps = kDefaultSmoothingEps;  // smoothing slack used in planning
  double achieved_sigma = 0.0;     // base.sigma() * sqrt(1 + k^2), >= target
  double sigma_loss = 0.0;         // relative overshoot (achieved-target)/target
  std::int32_t shift_int = 0;      // floor(target_center)
  double shift_frac = 0.0;         // target_center - shift_int, in [0, 1)

  std::string describe() const;
};

/// How recipes carry a center: shift_int = floor(center) and shift_frac =
/// center - shift_int in [0, 1) (snapped at the floating-point
/// representability edge). One definition shared by the planner and the
/// serial validator, so a recipe frame whose shift fields disagree with
/// its own target_center can never load.
struct CenterSplit {
  std::int32_t shift_int = 0;
  double shift_frac = 0.0;
};
CenterSplit split_center(double center);

/// The candidate base set the planner (and the registry's recipe cache)
/// consider by default: the paper's parameter sets plus a geometric ladder
/// (~sqrt(3) steps) at the given precision, so consecutive bases' coverage
/// windows [sigma_0 sqrt(2), ~sigma_0^2/eta] overlap up to sigma ~ 3*10^4.
std::vector<GaussianParams> default_recipe_bases(int precision = 64);

/// Pick the (base, k) pair for the target: bases whose required stride
/// violates sigma_0 >= k * eta_eps(Z) (cannot smooth the comb) or whose
/// convolved support would overflow the 32-bit sample range are skipped;
/// among the rest the smallest relative sigma overshoot wins (ties go to the
/// smaller support, i.e. the cheaper synthesis). Throws cgs::Error when the
/// target is non-finite/non-positive or no candidate is eligible.
ConvolutionRecipe plan_recipe(double target_sigma, double target_center,
                              std::span<const GaussianParams> bases,
                              double eps = kDefaultSmoothingEps);

}  // namespace cgs::gauss
