#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/check.h"

namespace cgs::net {

Client::Client(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  CGS_CHECK_MSG(fd_ >= 0, "client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CGS_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "client: bad IPv4 address");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    CGS_CHECK_MSG(false, "client: connect() failed");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Client::send(std::span<const std::uint8_t> encoded) {
  return write_frame(fd_, encoded);
}

std::optional<std::vector<std::uint8_t>> Client::read() {
  return read_frame(fd_);
}

void Client::half_close() { ::shutdown(fd_, SHUT_WR); }

}  // namespace cgs::net
