#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "net/overload.h"

namespace cgs::net {

namespace {
using Clock = std::chrono::steady_clock;
using Kind = ClientError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& what) {
  throw ClientError(kind, what);
}
}  // namespace

const char* to_string(ClientError::Kind kind) {
  switch (kind) {
    case Kind::kConnect:
      return "connect";
    case Kind::kTimeout:
      return "timeout";
    case Kind::kPeerClosed:
      return "peer-closed";
    case Kind::kOverloaded:
      return "overloaded";
    case Kind::kProtocol:
      return "protocol";
  }
  return "unknown";
}

bool Client::wait(short events, Clock::time_point deadline) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd_, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (n > 0) return true;  // ready, or POLLERR/POLLHUP — let the I/O see it
    if (n == 0) return false;
    if (errno != EINTR) fail(Kind::kPeerClosed, "client: poll() failed");
  }
}

Client::Client(std::uint16_t port, ClientOptions options)
    : options_(std::move(options)) {
  if (options_.registry != nullptr)
    rtt_us_ = &options_.registry->histogram("cgs_client_rtt_us");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail(Kind::kConnect, "client: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    fail(Kind::kConnect, "client: bad IPv4 address " + options_.host);
  }
  const auto deadline = Clock::now() + options_.connect_timeout;
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    if (!wait(POLLOUT, deadline)) {
      ::close(fd_);
      fd_ = -1;
      fail(Kind::kConnect, "client: connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    fail(Kind::kConnect,
         std::string("client: connect failed: ") + std::strerror(saved));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(std::move(other.options_)),
      buf_(std::move(other.buf_)),
      rtt_us_(std::exchange(other.rtt_us_, nullptr)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = std::move(other.options_);
    buf_ = std::move(other.buf_);
    rtt_us_ = std::exchange(other.rtt_us_, nullptr);
  }
  return *this;
}

void Client::send(std::span<const std::uint8_t> encoded) {
  if (fd_ < 0) fail(Kind::kPeerClosed, "client: send on closed connection");
  const auto deadline = Clock::now() + options_.write_timeout;
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::write(fd_, encoded.data() + off, encoded.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait(POLLOUT, deadline))
        fail(Kind::kTimeout, "client: write deadline expired");
      continue;
    }
    fail(Kind::kPeerClosed, "client: peer closed during write");
  }
}

std::optional<std::vector<std::uint8_t>> Client::read() {
  if (fd_ < 0) fail(Kind::kPeerClosed, "client: read on closed connection");
  const auto deadline = Clock::now() + options_.read_timeout;
  for (;;) {
    // Serve from the buffer first — pipelined responses coalesce.
    if (buf_.size() >= 4) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= std::uint32_t{buf_[static_cast<std::size_t>(i)]} << (8 * i);
      if (len > kMaxFrameBytes)
        fail(Kind::kProtocol, "client: oversized length prefix");
      if (buf_.size() >= 4 + static_cast<std::size_t>(len)) {
        std::vector<std::uint8_t> frame(
            buf_.begin() + 4, buf_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
        buf_.erase(buf_.begin(),
                   buf_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
        return frame;
      }
    }
    std::uint8_t chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.insert(buf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      if (buf_.empty()) return std::nullopt;  // clean EOF at a boundary
      fail(Kind::kPeerClosed, "client: EOF inside a frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait(POLLIN, deadline))
        fail(Kind::kTimeout, "client: read deadline expired");
      continue;
    }
    fail(Kind::kPeerClosed, "client: peer reset the connection");
  }
}

std::vector<std::uint8_t> Client::request(
    std::span<const std::uint8_t> encoded) {
  const auto started = Clock::now();
  send(encoded);
  auto frame = read();
  if (rtt_us_ != nullptr) {
    const auto rtt = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - started);
    rtt_us_->record(static_cast<std::uint64_t>(rtt.count()));
  }
  if (!frame)
    fail(Kind::kPeerClosed, "client: stream ended instead of answering");
  if (is_overloaded(*frame)) {
    const OverloadedFrame shed = decode_overloaded(*frame);
    throw ClientError(Kind::kOverloaded,
                      "client: request shed by server (" + shed.reason + ")",
                      shed.retry_after_ms);
  }
  return std::move(*frame);
}

void Client::half_close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace cgs::net
