#pragma once
// Pipelining client for the framed protocol: a thin blocking wrapper over
// one TCP connection. Writes are immediate (pipeline as many requests as
// you like before reading a single response), reads pull one frame at a
// time, and half_close() tells the server the request stream is complete
// without an in-band terminator. Matching responses to requests is the
// message layer's job (request ids) — the transport makes no ordering
// promise beyond the socket's.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/framing.h"

namespace cgs::net {

class Client {
 public:
  /// Connect to host:port (IPv4 dotted quad; throws cgs::Error on
  /// failure). The loopback default pairs with EpollServer.
  explicit Client(std::uint16_t port, const std::string& host = "127.0.0.1");
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Write one already-encoded length-prefixed message; false on error.
  bool send(std::span<const std::uint8_t> encoded);

  /// Block for the next response frame (without the length prefix).
  /// nullopt on clean EOF; throws serial::SerialError on a torn message.
  std::optional<std::vector<std::uint8_t>> read();

  /// Half-close the write side: no more requests will follow.
  void half_close();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace cgs::net
