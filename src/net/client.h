#pragma once
// Pipelining client for the framed protocol, rebuilt around deadlines and
// a typed error taxonomy. One TCP connection; writes pipeline freely,
// read() pulls one frame at a time, request() is the send-one/read-one
// round trip that most callers (examples, cgs_stats) actually want.
//
// Every socket operation runs nonblocking under a poll() deadline from
// ClientOptions, and failures surface as ClientError with a Kind a caller
// can switch on: a connect refusal, a deadline expiry, the peer hanging
// up, or — the one the multi-reactor server makes interesting — a typed
// kOverloaded shed, which request() turns into kOverloaded carrying the
// server's retry-after hint. read() stays non-judgmental and hands shed
// frames back as bytes (net/overload.h::is_overloaded to test), so
// hygiene tests can observe exactly what the server put on the wire.

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/framing.h"
#include "obs/registry.h"

namespace cgs::net {

struct ClientOptions {
  std::string host = "127.0.0.1";  // IPv4 dotted quad
  std::chrono::milliseconds connect_timeout{5000};
  /// Deadline for one read() / the response half of request().
  std::chrono::milliseconds read_timeout{30000};
  /// Deadline for one send() to be fully handed to the kernel.
  std::chrono::milliseconds write_timeout{5000};
  /// Optional: when set, request() records its send-to-response round
  /// trip into a `cgs_client_rtt_us` histogram in this registry — the
  /// client-observed latency next to the server-side stage histograms.
  /// Must outlive the Client.
  obs::Registry* registry = nullptr;
};

class ClientError : public std::runtime_error {
 public:
  enum class Kind {
    kConnect,     // refused / unreachable / connect deadline
    kTimeout,     // read or write deadline expired, connection still up
    kPeerClosed,  // EOF or reset where a response was due
    kOverloaded,  // the server answered a typed kOverloaded shed
    kProtocol,    // framing violation (oversized length prefix)
  };
  ClientError(Kind kind, const std::string& what,
              std::uint32_t retry_after_ms = 0)
      : std::runtime_error(what),
        kind_(kind),
        retry_after_ms_(retry_after_ms) {}

  Kind kind() const { return kind_; }
  /// The server's back-off hint; meaningful for kOverloaded only.
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  Kind kind_;
  std::uint32_t retry_after_ms_;
};

const char* to_string(ClientError::Kind kind);

class Client {
 public:
  /// Connect to options.host:port within connect_timeout; throws
  /// ClientError(kConnect) on failure.
  explicit Client(std::uint16_t port, ClientOptions options = {});
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Write one already-encoded length-prefixed message. Throws
  /// ClientError(kTimeout) when the write deadline expires with bytes
  /// still queued, (kPeerClosed) when the peer is gone.
  void send(std::span<const std::uint8_t> encoded);

  /// Pull the next response frame (without the length prefix). nullopt on
  /// clean EOF at a frame boundary; throws kTimeout / kPeerClosed /
  /// kProtocol. Overload sheds come back as ordinary frames — callers
  /// that care use is_overloaded()/decode_overloaded().
  std::optional<std::vector<std::uint8_t>> read();

  /// send() one request and read() its response, throwing
  /// ClientError(kOverloaded, retry-after hint) when the server shed it
  /// and (kPeerClosed) when the stream ended instead of answering.
  std::vector<std::uint8_t> request(std::span<const std::uint8_t> encoded);

  /// Half-close the write side: no more requests will follow.
  void half_close();

  int fd() const { return fd_; }

 private:
  /// Wait for `events` (POLLIN/POLLOUT) until `deadline`; false on expiry.
  bool wait(short events, std::chrono::steady_clock::time_point deadline);

  int fd_ = -1;
  ClientOptions options_;
  std::vector<std::uint8_t> buf_;  // coalesced-but-unconsumed inbound bytes
  obs::Histogram* rtt_us_ = nullptr;  // resolved once from options.registry
};

}  // namespace cgs::net
