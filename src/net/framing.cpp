#include "net/framing.h"

#include <errno.h>
#include <unistd.h>

#include "common/check.h"
#include "serial/serial.h"

namespace cgs::net {

std::vector<std::uint8_t> length_prefixed(std::vector<std::uint8_t> payload) {
  CGS_CHECK_MSG(payload.size() <= kMaxFrameBytes - 4,
                "framed message exceeds kMaxFrameBytes");
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool write_frame(int fd, std::span<const std::uint8_t> encoded) {
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

// Pull exactly `len` bytes; 0 = clean EOF before any byte, -1 = error or
// torn read, 1 = got them all.
int read_exact(int fd, std::uint8_t* dst, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, dst + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return off == 0 ? 0 : -1;
    off += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint8_t prefix[4];
  switch (read_exact(fd, prefix, sizeof prefix)) {
    case 0: return std::nullopt;  // clean EOF between messages
    case -1: throw serial::SerialError("wire: torn length prefix");
    default: break;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{prefix[i]} << (8 * i);
  if (len > kMaxFrameBytes)
    throw serial::SerialError("wire: message length exceeds cap");
  std::vector<std::uint8_t> frame(len);
  if (len != 0 && read_exact(fd, frame.data(), len) != 1)
    throw serial::SerialError("wire: torn message body");
  return frame;
}

}  // namespace cgs::net
