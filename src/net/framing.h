#pragma once
// Transport framing shared by every socket front end: each message is a
// u32 LE length prefix followed by that many payload bytes (for this
// project the payload is always a serial frame, which carries its own
// magic/version/checksum — the prefix only tells the stream layer how many
// bytes to pull). Blocking helpers here serve clients and tests; the
// nonblocking epoll server (net/server.h) parses the same prefix out of
// its per-connection buffers.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cgs::net {

/// Hard cap on a single framed message (length prefix included). Bounds
/// what a malformed or hostile length prefix can make a reader allocate.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Prepend the u32 LE length prefix to a payload.
std::vector<std::uint8_t> length_prefixed(std::vector<std::uint8_t> payload);

/// Write the already-encoded length-prefixed bytes to a (blocking) fd;
/// false on any short write / error.
bool write_frame(int fd, std::span<const std::uint8_t> encoded);

/// Pull one length prefix plus payload from a (blocking) fd. nullopt on
/// clean EOF at a message boundary; throws serial::SerialError on a torn
/// message or an oversized length.
std::optional<std::vector<std::uint8_t>> read_frame(int fd);

}  // namespace cgs::net
