#include "net/overload.h"

#include "net/framing.h"
#include "serial/serial.h"

namespace cgs::net {

std::vector<std::uint8_t> encode_overloaded(const OverloadedFrame& frame) {
  serial::Writer w;
  w.u32(frame.retry_after_ms);
  w.str(frame.reason);
  if (frame.request_id != 0) w.u64(frame.request_id);
  return length_prefixed(serial::wrap(serial::TypeTag::kOverloaded, w.take()));
}

OverloadedFrame decode_overloaded(std::span<const std::uint8_t> frame) {
  const auto payload = serial::unwrap(frame, serial::TypeTag::kOverloaded);
  serial::Reader r(payload);
  OverloadedFrame out;
  out.retry_after_ms = r.u32();
  out.reason = r.str();
  if (r.remaining() != 0) out.request_id = r.u64();
  r.finish();
  return out;
}

bool is_overloaded(std::span<const std::uint8_t> frame) {
  try {
    return serial::peek_tag(frame) == serial::TypeTag::kOverloaded;
  } catch (const serial::SerialError&) {
    return false;
  }
}

}  // namespace cgs::net
