#pragma once
// The transport's typed overload answer. When the multi-reactor server
// (net/server.h) cannot take a request on — the connection cap tripped at
// accept, a connection exceeded its owed-responses or queued-write-bytes
// budget, or hygiene evicted it (idle / read-progress deadline) — it
// answers with a kOverloaded frame instead of silently closing. The frame
// carries a retry-after hint so a well-behaved client can back off, and a
// human-readable reason naming which limit tripped.
//
// This lives in net (not serve/wire.h) because the server *core* emits it:
// shedding is a transport decision, made before the application handler
// ever sees the frame.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cgs::net {

struct OverloadedFrame {
  /// How long the peer should wait before retrying (0 = "your call").
  std::uint32_t retry_after_ms = 0;
  /// Which limit tripped, e.g. "connection cap" or "idle timeout".
  std::string reason;
  /// The request this shed answers, when the shedder could read one — an
  /// application-layer shed (queue-full, tenant-full, deadline-expired)
  /// names the request so a pipelining client can settle it by id.
  /// OPTIONAL trailing field: 0 = absent, and the frame encodes
  /// byte-identically to the transport-level (id-less) encoding, so old
  /// peers interoperate unchanged.
  std::uint64_t request_id = 0;
};

/// Encode as a length-prefixed serial frame ready to write to a stream.
std::vector<std::uint8_t> encode_overloaded(const OverloadedFrame& frame);

/// Decode the serial-frame part (no length prefix). Throws
/// serial::SerialError on malformed input.
OverloadedFrame decode_overloaded(std::span<const std::uint8_t> frame);

/// True when `frame` (no length prefix) is a kOverloaded shed — the
/// header-only peek a client runs on every pipelined response before
/// handing it to the decoder it expected. Never throws: garbage is
/// simply not an overload frame.
bool is_overloaded(std::span<const std::uint8_t> frame);

}  // namespace cgs::net
