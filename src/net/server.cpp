#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "net/overload.h"

namespace cgs::net {

namespace {

// epoll user-data ids for the two non-connection fds. Connection ids carry
// (reactor index + 1) in bits 48+, so they never collide with these.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
// Timer-wheel key of the per-reactor loop-lag probe (same reserved-id
// space as the epoll ids above — never a connection id).
constexpr std::uint64_t kLoopProbeId = 2;
// How often each reactor re-files its loop-lag probe. The measured lag is
// "how long past the probe's deadline the loop reached its timer sweep",
// so a loop stuck in handlers (or starved of CPU) shows up within one
// probe period + one wheel tick.
constexpr std::uint64_t kLoopProbeIntervalUs = 250'000;

std::uint64_t ms_to_us(std::chrono::milliseconds ms) {
  return static_cast<std::uint64_t>(ms.count()) * 1000;
}

int make_listener(std::uint16_t port, int backlog, bool reuse_port,
                  std::uint16_t* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

void ServerOptions::validate() const {
  CGS_CHECK_MSG(limits.max_frame >= 4, "max_frame too small to frame");
  CGS_CHECK_MSG(limits.max_connections >= 1, "max_connections must be >= 1");
  CGS_CHECK_MSG(limits.max_owed_responses >= 1,
                "max_owed_responses must be >= 1");
  CGS_CHECK_MSG(limits.max_queued_write_bytes >= 64,
                "max_queued_write_bytes too small to hold a shed frame");
  CGS_CHECK_MSG(backlog >= 1, "backlog must be >= 1");
  CGS_CHECK_MSG(reactors >= 0, "reactors must be >= 0 (0 = auto)");
  CGS_CHECK_MSG(timeouts.idle.count() > 0 &&
                    timeouts.read_progress.count() > 0 &&
                    timeouts.shed_linger.count() > 0,
                "idle / read_progress / shed_linger timeouts must be > 0");
  CGS_CHECK_MSG(timeouts.drain.count() >= 0, "drain timeout must be >= 0");
}

std::uint64_t Server::now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Server::Server(Handler on_frame, ServerOptions options)
    : on_frame_(std::move(on_frame)), options_(options) {
  CGS_CHECK_MSG(on_frame_, "server needs a frame handler");
  options_.validate();
  owned_obs_ = options_.registry ? nullptr : std::make_unique<obs::Registry>();
  obs_ = options_.registry ? options_.registry : owned_obs_.get();
  events_ = &obs_->events();

  int n = options_.reactors;
  if (n <= 0)
    n = std::max(1u, std::thread::hardware_concurrency());

  // Listener setup. kReusePort/kAuto: one listening socket per reactor,
  // all bound to the same port with SO_REUSEPORT so the kernel spreads
  // accepts. kHandoff (or kAuto fallback): reactor 0 owns the only
  // listener and hands accepted fds round-robin.
  using AcceptMode = ServerOptions::AcceptMode;
  std::vector<int> listeners;
  const bool try_reuse = options_.accept_mode != AcceptMode::kHandoff;
  if (try_reuse) {
    const int fd =
        make_listener(options_.port, options_.backlog, true, &port_);
    if (fd >= 0) {
      listeners.push_back(fd);
      reuse_port_ = true;
      for (int i = 1; i < n; ++i) {
        std::uint16_t same = 0;
        const int extra = make_listener(port_, options_.backlog, true, &same);
        if (extra < 0) {
          // SO_REUSEPORT sharing is unavailable: fall back to hand-off.
          for (int l : listeners) ::close(l);
          listeners.clear();
          reuse_port_ = false;
          break;
        }
        listeners.push_back(extra);
      }
    }
    CGS_CHECK_MSG(!(options_.accept_mode == AcceptMode::kReusePort &&
                    !reuse_port_),
                  "server: SO_REUSEPORT listener setup failed");
  }
  if (!reuse_port_) {
    const int fd =
        make_listener(options_.port, options_.backlog, false, &port_);
    CGS_CHECK_MSG(fd >= 0, "server: listener bind/listen failed");
    listeners.push_back(fd);
  }

  for (int i = 0; i < n; ++i) {
    auto r = std::make_unique<Reactor>();
    r->server = this;
    r->index = i;
    r->listen_fd =
        reuse_port_ ? listeners[static_cast<std::size_t>(i)]
                    : (i == 0 ? listeners[0] : -1);
    r->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    CGS_CHECK_MSG(r->epoll_fd >= 0, "server: epoll_create1() failed");
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    CGS_CHECK_MSG(r->wake_fd >= 0, "server: eventfd() failed");
    epoll_event ev{};
    if (r->listen_fd >= 0) {
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerId;
      CGS_CHECK(::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->listen_fd, &ev) ==
                0);
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    CGS_CHECK(::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &ev) == 0);
    reactors_.push_back(std::move(r));
  }

  register_instruments();

  for (auto& r : reactors_) {
    Reactor* rp = r.get();
    rp->thread = std::thread([this, rp] { run(*rp); });
  }
}

Server::~Server() { shutdown(); }

void Server::wake(Reactor& r) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(r.wake_fd, &one, sizeof one);
}

void Server::register_instruments() {
  const auto sum = [this](std::atomic<std::uint64_t> ReactorStats::*field) {
    return [this, field] {
      std::uint64_t total = 0;
      for (const auto& r : reactors_)
        total += (r->stats.*field).load(std::memory_order_relaxed);
      return static_cast<double>(total);
    };
  };
  const auto counter = [this](std::string name, std::function<double()> fn) {
    obs_->counter_fn(name, std::move(fn));
    callback_metrics_.push_back(std::move(name));
  };
  const auto gauge = [this](std::string name, std::function<double()> fn) {
    obs_->gauge_fn(name, std::move(fn));
    callback_metrics_.push_back(std::move(name));
  };
  counter("cgs_net_connections_accepted_total", sum(&ReactorStats::accepted));
  counter("cgs_net_connections_closed_total", sum(&ReactorStats::closed));
  counter("cgs_net_bytes_read_total", sum(&ReactorStats::bytes_in));
  counter("cgs_net_bytes_written_total", sum(&ReactorStats::bytes_out));
  counter("cgs_net_frames_decoded_total",
          sum(&ReactorStats::frames_received));
  counter("cgs_net_frames_corrupt_total", sum(&ReactorStats::frames_corrupt));
  counter("cgs_net_idle_evictions_total", sum(&ReactorStats::idle_evictions));
  counter("cgs_net_read_timeout_evictions_total",
          sum(&ReactorStats::read_timeout_evictions));
  counter("cgs_net_overload_sheds_total",
          [this] { return static_cast<double>(stats().sheds_total()); });
  gauge("cgs_net_connections_open", [this] {
    return static_cast<double>(open_conns_.load(std::memory_order_relaxed));
  });
  gauge("cgs_net_write_buffer_high_water_bytes", [this] {
    std::int64_t hwm = 0;
    for (const auto& r : reactors_)
      hwm = std::max(hwm, r->stats.write_hwm.load(std::memory_order_relaxed));
    return static_cast<double>(hwm);
  });
  gauge("cgs_net_reactors",
        [this] { return static_cast<double>(reactors_.size()); });
  gauge("cgs_net_loop_lag_us", [this] {
    std::uint64_t worst = 0;
    for (const auto& r : reactors_)
      worst = std::max(worst,
                       r->stats.loop_lag_us.load(std::memory_order_relaxed));
    return static_cast<double>(worst);
  });
  write_stall_us_ = &obs_->histogram("cgs_net_write_stall_us");
}

ServerStats Server::stats() const {
  ServerStats s;
  for (const auto& r : reactors_) {
    const ReactorStats& rs = r->stats;
    s.connections_accepted += rs.accepted.load(std::memory_order_relaxed);
    s.connections_closed += rs.closed.load(std::memory_order_relaxed);
    s.frames_received += rs.frames_received.load(std::memory_order_relaxed);
    s.frames_sent += rs.frames_sent.load(std::memory_order_relaxed);
    s.frames_corrupt += rs.frames_corrupt.load(std::memory_order_relaxed);
    s.bytes_read += rs.bytes_in.load(std::memory_order_relaxed);
    s.bytes_written += rs.bytes_out.load(std::memory_order_relaxed);
    s.sheds_accept_cap += rs.sheds_accept.load(std::memory_order_relaxed);
    s.sheds_owed_cap += rs.sheds_owed.load(std::memory_order_relaxed);
    s.sheds_write_cap += rs.sheds_write.load(std::memory_order_relaxed);
    s.sheds_dropped_token += rs.sheds_dropped.load(std::memory_order_relaxed);
    s.idle_evictions += rs.idle_evictions.load(std::memory_order_relaxed);
    s.read_timeout_evictions +=
        rs.read_timeout_evictions.load(std::memory_order_relaxed);
  }
  s.open_connections = open_conns_.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------- reply plumbing ---

ResponseToken& ResponseToken::operator=(ResponseToken&& other) noexcept {
  if (this != &other) {
    if (server_ != nullptr)
      server_->shed_reply(conn_id_, "response dropped", nullptr);
    server_ = other.server_;
    conn_id_ = other.conn_id_;
    other.server_ = nullptr;
  }
  return *this;
}

ResponseToken::~ResponseToken() {
  if (server_ == nullptr) return;
  Server* s = server_;
  server_ = nullptr;
  const std::size_t ri = s->reactor_of(conn_id_);
  s->shed_reply(conn_id_, "response dropped",
                ri < s->reactors_.size()
                    ? &s->reactors_[ri]->stats.sheds_dropped
                    : nullptr);
}

bool ResponseToken::send(std::vector<std::uint8_t> encoded) {
  if (server_ == nullptr) return false;
  Server* s = server_;
  server_ = nullptr;
  return s->fulfil(conn_id_, std::move(encoded));
}

bool ResponseToken::shed(const std::string& reason) {
  if (server_ == nullptr) return false;
  Server* s = server_;
  server_ = nullptr;
  return s->shed_reply(conn_id_, reason, nullptr);
}

std::vector<std::uint8_t> Server::overload_frame(
    const std::string& reason) const {
  OverloadedFrame frame;
  frame.retry_after_ms = static_cast<std::uint32_t>(
      options_.timeouts.overload_retry_after.count());
  frame.reason = reason;
  return encode_overloaded(frame);
}

bool Server::fulfil(std::uint64_t conn_id, std::vector<std::uint8_t> encoded,
                    bool counts_as_sent) {
  const std::size_t ri = reactor_of(conn_id);
  if (ri >= reactors_.size()) return false;
  Reactor& r = *reactors_[ri];
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.conns.find(conn_id);
    if (it == r.conns.end()) return false;
    Connection& conn = *it->second;
    conn.out_bytes += encoded.size();
    r.stats.write_hwm.store(
        std::max(r.stats.write_hwm.load(std::memory_order_relaxed),
                 static_cast<std::int64_t>(conn.out_bytes)),
        std::memory_order_relaxed);
    conn.out.push_back(Outgoing{std::move(encoded), now_us()});
    if (conn.owed > 0) --conn.owed;
    if (counts_as_sent)
      r.stats.frames_sent.fetch_add(1, std::memory_order_relaxed);
  }
  wake(r);
  return true;
}

bool Server::shed_reply(std::uint64_t conn_id, const std::string& reason,
                        std::atomic<std::uint64_t>* stat) {
  if (stat != nullptr) stat->fetch_add(1, std::memory_order_relaxed);
  return fulfil(conn_id, overload_frame(reason));
}

// ------------------------------------------------------------- shutdown ---

std::size_t Server::shutdown() {
  // The whole teardown runs under shutdown_mu_, so a concurrent second
  // caller blocks until the first has joined every reactor; force_closed_
  // is only read after the threads that feed it are gone.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return force_closed_;
  shut_down_ = true;
  for (auto& r : reactors_) {
    {
      std::lock_guard<std::mutex> lock(r->mu);
      r->draining = true;
    }
    wake(*r);
  }
  force_closed_ = 0;
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
    force_closed_ += r->force_closed;
    if (r->listen_fd >= 0) ::close(r->listen_fd);
    ::close(r->wake_fd);
    ::close(r->epoll_fd);
  }
  // The callback instruments read `this`; drop them so a scrape of an
  // external registry after this server dies never chases a dangling
  // pointer. stats() remains for the final numbers.
  for (const std::string& name : callback_metrics_) obs_->unregister(name);
  callback_metrics_.clear();
  return force_closed_;
}

// ------------------------------------------------------------ accepting ---

void Server::handle_accept(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(r.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or a transient accept error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.limits.sndbuf_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.limits.sndbuf_bytes,
                   sizeof options_.limits.sndbuf_bytes);
    if (!reuse_port_ && reactors_.size() > 1) {
      // Hand-off mode: spread accepted fds round-robin; the owning
      // reactor adopts them on its next loop iteration.
      const std::size_t target =
          handoff_rr_.fetch_add(1, std::memory_order_relaxed) %
          reactors_.size();
      if (target != static_cast<std::size_t>(r.index)) {
        Reactor& t = *reactors_[target];
        {
          std::lock_guard<std::mutex> lock(t.mu);
          if (t.draining) {
            ::close(fd);
            continue;
          }
          t.handoff.push_back(fd);
        }
        wake(t);
        continue;
      }
    }
    adopt(r, fd);
  }
}

void Server::handle_handoff(Reactor& r) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    fds.swap(r.handoff);
  }
  for (int fd : fds) adopt(r, fd);
}

void Server::adopt(Reactor& r, int fd) {
  const std::size_t open =
      open_conns_.fetch_add(1, std::memory_order_relaxed);
  const bool over_cap = open >= options_.limits.max_connections;
  std::uint64_t id;
  Connection* conn_ptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    id = (static_cast<std::uint64_t>(r.index) + 1) << 48 | (2 + r.next_conn++);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity_us = now_us();
    conn_ptr = conn.get();
    r.conns.emplace(id, std::move(conn));
  }
  r.stats.accepted.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(r.mu);
    ::close(fd);
    r.conns.erase(id);
    r.stats.closed.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.conns.find(id) == r.conns.end()) return;  // raced away
  Connection& conn = *conn_ptr;
  if (over_cap) {
    // The connection cap tripped: answer kOverloaded and shed cleanly.
    // The conn stays registered (reads discarded) until the frame flushed
    // and the peer hung up, or the linger deadline passes.
    begin_shed_locked(r, conn, "connection cap", r.stats.sheds_accept);
    flush(r, id, conn);
    maybe_close(r, id, conn);
  }
  auto it = r.conns.find(id);
  if (it != r.conns.end() && !it->second->timer_armed) {
    it->second->timer_armed = true;
    r.wheel.schedule(id, conn.shed_close
                             ? conn.shed_deadline_us
                             : conn.last_activity_us +
                                   ms_to_us(options_.timeouts.idle));
  }
}

// --------------------------------------------------------------- reading ---

void Server::handle_readable(Reactor& r, std::uint64_t conn_id) {
  // Pull everything available, then reassemble frames. The read buffer,
  // fd and peer_eof flag are loop-thread-owned (only this thread reads,
  // parses or erases connections), so the socket drain and reassembly run
  // without mu — senders on other threads aren't serialized behind one
  // connection's inbound burst. mu is taken only for the shared debt /
  // out-queue state; delivery happens after that, so the handler is free
  // to settle its token inline.
  Connection* conn_ptr = nullptr;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.conns.find(conn_id);
    if (it == r.conns.end()) return;
    conn_ptr = it->second.get();
  }
  Connection& conn = *conn_ptr;

  bool close_hard = false;
  std::uint64_t got = 0;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      got += static_cast<std::uint64_t>(n);
      if (!conn.shed_close)
        conn.in.insert(conn.in.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_hard = true;  // ECONNRESET and friends
    break;
  }
  if (got > 0) {
    r.stats.bytes_in.fetch_add(got, std::memory_order_relaxed);
    conn.last_activity_us = now_us();
  }
  std::vector<std::vector<std::uint8_t>> complete;
  std::size_t pos = 0;
  while (!close_hard && conn.in.size() - pos >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= std::uint32_t{conn.in[pos + static_cast<std::size_t>(i)]}
             << (8 * i);
    if (len > options_.limits.max_frame) {
      r.stats.frames_corrupt.fetch_add(1, std::memory_order_relaxed);
      close_hard = true;  // framing corruption: cannot resync
      break;
    }
    if (conn.in.size() - pos < 4 + static_cast<std::size_t>(len)) break;
    complete.emplace_back(
        conn.in.begin() + static_cast<std::ptrdiff_t>(pos + 4),
        conn.in.begin() + static_cast<std::ptrdiff_t>(pos + 4 + len));
    pos += 4 + len;
  }
  if (pos > 0)
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(pos));
  // Slowloris bookkeeping: a nonempty buffer is a frame in progress — the
  // read-progress deadline runs from its first byte until it completes.
  bool read_deadline_started = false;
  if (conn.in.empty()) {
    conn.read_started_us = 0;
  } else if (conn.read_started_us == 0) {
    conn.read_started_us = now_us();
    read_deadline_started = true;
  }
  if (close_hard) {
    std::lock_guard<std::mutex> lock(r.mu);
    close_connection(r, conn_id);
    return;
  }
  // Admission per frame: over either per-connection budget the frame is
  // answered kOverloaded right here and never reaches the handler; under
  // budget it becomes a delivery owing one response.
  std::vector<std::vector<std::uint8_t>> deliver;
  bool queued_shed = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // The armed wheel entry may point at the (much later) idle deadline;
    // a frame that just started reading needs its read-progress deadline
    // filed now. A duplicate entry is fine — fires re-derive the real
    // deadline and stale ones re-schedule.
    if (read_deadline_started && !conn.shed_close)
      r.wheel.schedule(conn_id,
                       conn.read_started_us +
                           ms_to_us(options_.timeouts.read_progress));
    r.stats.frames_received.fetch_add(complete.size(),
                                      std::memory_order_relaxed);
    for (auto& frame : complete) {
      if (conn.shed_close) continue;  // raced in before the shed; dropping
      if (conn.owed >= options_.limits.max_owed_responses) {
        conn.out.push_back(
            Outgoing{overload_frame("owed-responses cap"), now_us()});
        conn.out_bytes += conn.out.back().bytes.size();
        r.stats.sheds_owed.fetch_add(1, std::memory_order_relaxed);
        r.stats.frames_sent.fetch_add(1, std::memory_order_relaxed);
        queued_shed = true;
      } else if (conn.out_bytes >= options_.limits.max_queued_write_bytes) {
        conn.out.push_back(
            Outgoing{overload_frame("queued-write-bytes cap"), now_us()});
        conn.out_bytes += conn.out.back().bytes.size();
        r.stats.sheds_write.fetch_add(1, std::memory_order_relaxed);
        r.stats.frames_sent.fetch_add(1, std::memory_order_relaxed);
        queued_shed = true;
      } else {
        ++conn.owed;
        deliver.push_back(std::move(frame));
      }
    }
    if (conn.peer_eof) {
      // Half-closed: nothing more to read — drop EPOLLIN so the EOF
      // condition doesn't spin the loop; EPOLLOUT re-arms on demand.
      epoll_event ev{};
      ev.events = conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
      ev.data.u64 = conn_id;
      ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
    }
    if (queued_shed) flush(r, conn_id, conn);
    maybe_close(r, conn_id, conn);
  }
  for (auto& frame : deliver)
    on_frame_(ResponseToken(this, conn_id), std::move(frame));
}

// --------------------------------------------------------------- writing ---

// mu held across the write() calls — cross-thread sends queue behind one
// flush sweep. Responses here are small (a frame or two per request) so
// the writes are cheap; if large streamed responses ever appear, swap the
// out-queue out under the lock and write unlocked (the loop thread owns
// the fds), mirroring how handle_readable treats reads.
void Server::flush(Reactor& r, std::uint64_t conn_id, Connection& conn) {
  bool wrote = false;
  while (!conn.out.empty()) {
    const Outgoing& front = conn.out.front();
    while (conn.out_offset < front.bytes.size()) {
      const ssize_t n = ::write(conn.fd, front.bytes.data() + conn.out_offset,
                                front.bytes.size() - conn.out_offset);
      if (n >= 0) {
        r.stats.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
        conn.out_offset += static_cast<std::size_t>(n);
        conn.out_bytes -= static_cast<std::size_t>(n);
        wrote = true;
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (wrote) conn.last_activity_us = now_us();
        if (!conn.want_write) {
          conn.want_write = true;
          epoll_event ev{};
          // Draining or shedding means reading stays stopped regardless.
          const bool no_read = conn.peer_eof || r.draining;
          ev.events = (no_read ? 0u : EPOLLIN) | EPOLLOUT;
          ev.data.u64 = conn_id;
          ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
        }
        return;
      }
      conn.owed = 0;  // peer is gone; nothing left to deliver
      conn.out.clear();
      conn.out_offset = 0;
      conn.out_bytes = 0;
      conn.peer_eof = true;
      return;
    }
    const std::uint64_t done = now_us();
    write_stall_us_->record(done > front.enqueued_us
                                ? done - front.enqueued_us
                                : 0);
    conn.out.pop_front();
    conn.out_offset = 0;
  }
  if (wrote) conn.last_activity_us = now_us();
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = conn.peer_eof || r.draining ? 0u : EPOLLIN;
    ev.data.u64 = conn_id;
    ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }
}

void Server::handle_writable(Reactor& r, std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.conns.find(conn_id);
  if (it == r.conns.end()) return;
  flush(r, conn_id, *it->second);
  maybe_close(r, conn_id, *it->second);
}

// ------------------------------------------------------ hygiene / timers ---

// mu held. Queue the typed shed answer and put the connection into
// shed_close: reads are discarded from here on, the conn closes once the
// frame flushed and the peer hung up, or at the linger deadline.
void Server::begin_shed_locked(Reactor& r, Connection& conn,
                               const std::string& why,
                               std::atomic<std::uint64_t>& stat) {
  if (conn.shed_close) return;
  conn.shed_close = true;
  conn.shed_deadline_us =
      now_us() + ms_to_us(options_.timeouts.shed_linger);
  conn.owed = 0;  // nothing further will be delivered or answered
  conn.out.push_back(Outgoing{overload_frame(why), now_us()});
  conn.out_bytes += conn.out.back().bytes.size();
  stat.fetch_add(1, std::memory_order_relaxed);
  r.stats.frames_sent.fetch_add(1, std::memory_order_relaxed);
  // Every shed is a structured event too — emit() is wait-free, so it is
  // safe under r.mu.
  events_->emit(obs::EventKind::kOverloadShed,
                static_cast<std::uint64_t>(r.index),
                static_cast<std::uint64_t>(
                    options_.timeouts.overload_retry_after.count()),
                why);
}

void Server::handle_timers(Reactor& r) {
  const std::uint64_t now = now_us();
  std::lock_guard<std::mutex> lock(r.mu);
  r.wheel.advance(now, [&](std::uint64_t conn_id) {
    if (conn_id == kLoopProbeId) {
      // Loop-lag probe: how far past its deadline did the loop get here?
      // (Quantized to the wheel tick, ~10ms — the health threshold sits
      // far above that noise floor.)
      r.stats.loop_lag_us.store(
          now > r.probe_deadline_us ? now - r.probe_deadline_us : 0,
          std::memory_order_relaxed);
      r.probe_deadline_us = now + kLoopProbeIntervalUs;
      r.wheel.schedule(kLoopProbeId, r.probe_deadline_us);
      return;
    }
    auto it = r.conns.find(conn_id);
    if (it == r.conns.end()) return;  // stale entry: conn already gone
    Connection& conn = *it->second;
    conn.timer_armed = false;
    // Re-derive the connection's actual deadline — the wheel entry is a
    // hint, activity since it was filed pushes the real deadline out.
    const std::uint64_t idle_us = ms_to_us(options_.timeouts.idle);
    std::uint64_t deadline;
    bool reading_stalled = false;
    if (conn.shed_close) {
      deadline = conn.shed_deadline_us;
    } else if (conn.read_started_us != 0) {
      deadline =
          conn.read_started_us + ms_to_us(options_.timeouts.read_progress);
      reading_stalled = true;
    } else if (conn.owed == 0 && conn.out.empty()) {
      deadline = conn.last_activity_us + idle_us;  // truly idle
    } else {
      deadline = now + idle_us;  // busy serving: just re-check later
    }
    if (deadline > now) {
      conn.timer_armed = true;
      r.wheel.schedule(conn_id, deadline);
      return;
    }
    if (conn.shed_close) {
      // Linger expired: the peer never read its shed frame. Cut it off.
      close_connection(r, conn_id);
      return;
    }
    begin_shed_locked(r, conn,
                      reading_stalled ? "read-progress timeout"
                                      : "idle timeout",
                      reading_stalled ? r.stats.read_timeout_evictions
                                      : r.stats.idle_evictions);
    flush(r, conn_id, conn);
    auto again = r.conns.find(conn_id);
    if (again != r.conns.end()) {
      maybe_close(r, conn_id, *again->second);
      auto still = r.conns.find(conn_id);
      if (still != r.conns.end() && !still->second->timer_armed) {
        still->second->timer_armed = true;
        r.wheel.schedule(conn_id, still->second->shed_deadline_us);
      }
    }
  });
}

// --------------------------------------------------------------- closing ---

// mu held. A connection is done once no more requests can arrive — the
// peer half-closed, a drain stopped us reading, or it is shedding — every
// delivered frame has been answered, and the answer bytes have left the
// socket buffer.
void Server::maybe_close(Reactor& r, std::uint64_t conn_id, Connection& conn) {
  const bool drained =
      conn.out.empty() && conn.owed == 0 && (conn.peer_eof || r.draining);
  const bool shed_done =
      conn.shed_close && conn.out.empty() && conn.peer_eof;
  if (drained || shed_done) close_connection(r, conn_id);
}

// mu held.
void Server::close_connection(Reactor& r, std::uint64_t conn_id) {
  auto it = r.conns.find(conn_id);
  if (it == r.conns.end()) return;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  r.conns.erase(it);
  r.stats.closed.fetch_add(1, std::memory_order_relaxed);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
}

// mu held. Stop accepting and reading; what is already in flight (owed
// responses, queued writes, shed frames) still completes.
void Server::apply_drain(Reactor& r) {
  if (r.listen_fd >= 0)
    ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, r.listen_fd, nullptr);
  for (int fd : r.handoff) ::close(fd);  // accepted, never adopted
  r.handoff.clear();
  for (auto& [id, conn] : r.conns) {
    epoll_event ev{};
    ev.events = conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
    ev.data.u64 = id;
    ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  // Connections that owe nothing and hold no bytes are done now — with
  // reading stopped there is nothing left to wait for.
  for (auto it = r.conns.begin(); it != r.conns.end();) {
    auto cur = it++;
    maybe_close(r, cur->first, *cur->second);
  }
}

// ------------------------------------------------------------- the loop ---

void Server::run(Reactor& r) {
  bool drain_applied = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  epoll_event events[64];
  {
    // File the loop-lag probe. It keeps the wheel non-empty, so the loop
    // always wakes at wheel-tick granularity — that steady heartbeat is
    // exactly what makes the lag measurement meaningful.
    std::lock_guard<std::mutex> lock(r.mu);
    r.probe_deadline_us = now_us() + kLoopProbeIntervalUs;
    r.wheel.schedule(kLoopProbeId, r.probe_deadline_us);
  }
  for (;;) {
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(r.mu);
      if (r.draining) {
        if (!drain_applied) {
          drain_applied = true;
          drain_deadline =
              std::chrono::steady_clock::now() + options_.timeouts.drain;
          apply_drain(r);
        }
        if (r.conns.empty()) return;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drain_deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
          // Deadline: whoever still owes or holds bytes gets cut off.
          r.force_closed = r.conns.size();
          r.stats.closed.fetch_add(r.conns.size(),
                                   std::memory_order_relaxed);
          open_conns_.fetch_sub(r.conns.size(), std::memory_order_relaxed);
          for (auto& [id, conn] : r.conns) {
            ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
            ::close(conn->fd);
          }
          r.conns.clear();
          return;
        }
        timeout_ms = static_cast<int>(left.count()) + 1;
      }
      // The timer wheel needs periodic sweeps while anything is filed;
      // one tick of latency on a deadline is within its contract.
      if (r.wheel.size() > 0) {
        const int tick_ms =
            std::max(1, static_cast<int>(r.wheel.tick_us() / 1000));
        timeout_ms = timeout_ms < 0 ? tick_ms : std::min(timeout_ms, tick_ms);
      }
    }

    const int n = ::epoll_wait(r.epoll_fd, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd itself failed; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        handle_accept(r);
      } else if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(r.wake_fd, &drained, sizeof drained) > 0) {
        }
        handle_handoff(r);
        // A wake means "some connection has new queued output" (or a
        // drain started): flush everything with pending bytes.
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto it = r.conns.begin(); it != r.conns.end();) {
          auto cur = it++;
          if (!cur->second->out.empty()) flush(r, cur->first, *cur->second);
          maybe_close(r, cur->first, *cur->second);
        }
      } else if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // EPOLLHUP without EPOLLIN data left: peer fully gone.
        if (events[i].events & EPOLLIN) {
          handle_readable(r, id);
        } else {
          std::lock_guard<std::mutex> lock(r.mu);
          close_connection(r, id);
        }
      } else {
        if (events[i].events & EPOLLIN) handle_readable(r, id);
        if (events[i].events & EPOLLOUT) handle_writable(r, id);
      }
    }
    handle_timers(r);
  }
}

}  // namespace cgs::net
