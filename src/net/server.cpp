#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/check.h"

namespace cgs::net {

namespace {

// epoll user-data ids for the two non-connection fds.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EpollServer::EpollServer(FrameHandler on_frame, ServerOptions options)
    : on_frame_(std::move(on_frame)),
      options_(options),
      owned_obs_(options.registry ? nullptr : new obs::Registry()),
      obs_(options.registry ? options.registry : owned_obs_.get()),
      conns_accepted_(obs_->counter("cgs_net_connections_accepted_total")),
      conns_closed_(obs_->counter("cgs_net_connections_closed_total")),
      bytes_in_(obs_->counter("cgs_net_bytes_read_total")),
      bytes_out_(obs_->counter("cgs_net_bytes_written_total")),
      frames_decoded_(obs_->counter("cgs_net_frames_decoded_total")),
      frames_corrupt_(obs_->counter("cgs_net_frames_corrupt_total")),
      write_buffer_hwm_(obs_->gauge("cgs_net_write_buffer_high_water_bytes")),
      write_stall_us_(obs_->histogram("cgs_net_write_stall_us")) {
  CGS_CHECK_MSG(on_frame_, "epoll server needs a frame handler");
  CGS_CHECK_MSG(options_.max_frame >= 4, "max_frame too small to frame");
  obs_->gauge_fn("cgs_net_connections_open", [this] {
    return static_cast<double>(active_connections());
  });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  CGS_CHECK_MSG(listen_fd_ >= 0, "epoll server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  CGS_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0,
      "epoll server: bind() failed");
  CGS_CHECK_MSG(::listen(listen_fd_, options_.backlog) == 0,
                "epoll server: listen() failed");
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CGS_CHECK_MSG(epoll_fd_ >= 0, "epoll server: epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  CGS_CHECK_MSG(wake_fd_ >= 0, "epoll server: eventfd() failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  CGS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.u64 = kWakeId;
  CGS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  loop_ = std::thread([this] { run(); });
}

EpollServer::~EpollServer() { shutdown(); }

void EpollServer::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

bool EpollServer::send(std::uint64_t conn_id,
                       std::vector<std::uint8_t> encoded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return false;
    Connection& conn = *it->second;
    conn.out_bytes += encoded.size();
    write_buffer_hwm_.max_of(static_cast<std::int64_t>(conn.out_bytes));
    conn.out.push_back(Outgoing{std::move(encoded), now_us()});
    if (conn.owed > 0) --conn.owed;
    ++frames_sent_;
  }
  wake();
  return true;
}

std::size_t EpollServer::shutdown() {
  // The whole teardown runs under shutdown_mu_, so a concurrent second
  // caller blocks until the first has joined the loop — force_closed_ is
  // only ever read after the thread that writes it is gone.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shut_down_) return force_closed_;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  wake();
  if (loop_.joinable()) loop_.join();
  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  // The one callback instrument reads `this`; drop it so a scrape of an
  // external registry after this server dies never chases a dangling
  // pointer (the owned counters stay, frozen).
  obs_->unregister("cgs_net_connections_open");
  return force_closed_;
}

std::size_t EpollServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

std::uint64_t EpollServer::frames_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_received_;
}

std::uint64_t EpollServer::frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_sent_;
}

void EpollServer::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or a transient accept error
    }
    std::uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_conn_id_++;
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conns_.emplace(id, std::move(conn));
    }
    conns_accepted_.add(1);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ::close(fd);
      conns_.erase(id);
      conns_closed_.add(1);
    }
  }
}

void EpollServer::handle_readable(std::uint64_t conn_id) {
  // Pull everything available, then reassemble frames. The read buffer,
  // fd and peer_eof flag are loop-thread-owned (only this thread reads,
  // parses or erases connections), so the socket drain and reassembly
  // run without mu_ — senders on other threads aren't serialized behind
  // one connection's inbound burst. mu_ is taken only for the shared
  // debt/counter state; delivery happens after that, so the handler is
  // free to call send() inline.
  auto found = conns_.end();
  {
    std::lock_guard<std::mutex> lock(mu_);
    found = conns_.find(conn_id);
  }
  if (found == conns_.end()) return;
  Connection& conn = *found->second;

  bool close_hard = false;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      bytes_in_.add(static_cast<std::uint64_t>(n));
      conn.in.insert(conn.in.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_hard = true;  // ECONNRESET and friends
    break;
  }
  std::vector<std::vector<std::uint8_t>> complete;
  std::size_t pos = 0;
  while (!close_hard && conn.in.size() - pos >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= std::uint32_t{conn.in[pos + static_cast<std::size_t>(i)]}
             << (8 * i);
    if (len > options_.max_frame) {
      frames_corrupt_.add(1);
      close_hard = true;  // framing corruption: cannot resync
      break;
    }
    if (conn.in.size() - pos < 4 + static_cast<std::size_t>(len)) break;
    complete.emplace_back(conn.in.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                          conn.in.begin() +
                              static_cast<std::ptrdiff_t>(pos + 4 + len));
    pos += 4 + len;
  }
  if (pos > 0)
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(pos));
  if (close_hard) {
    close_connection(conn_id);
    return;
  }
  frames_decoded_.add(complete.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn.owed += complete.size();
    frames_received_ += complete.size();
    if (conn.peer_eof) {
      // Half-closed: nothing more to read — drop EPOLLIN so the EOF
      // condition doesn't spin the loop; EPOLLOUT re-arms on demand.
      epoll_event ev{};
      ev.events = conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
      ev.data.u64 = conn_id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    }
    maybe_close(conn_id, conn);
  }
  for (auto& frame : complete) on_frame_(conn_id, std::move(frame));
}

// mu_ held across the write() calls — cross-thread send()s queue behind
// one flush sweep. Responses here are small (a frame or two per request)
// so the writes are cheap; if large streamed responses ever appear,
// swap the out-queue out under the lock and write unlocked (the loop
// thread owns the fds), mirroring how handle_readable treats reads.
void EpollServer::flush(std::uint64_t conn_id, Connection& conn) {
  while (!conn.out.empty()) {
    const Outgoing& front = conn.out.front();
    while (conn.out_offset < front.bytes.size()) {
      const ssize_t n = ::write(conn.fd, front.bytes.data() + conn.out_offset,
                                front.bytes.size() - conn.out_offset);
      if (n >= 0) {
        bytes_out_.add(static_cast<std::uint64_t>(n));
        conn.out_offset += static_cast<std::size_t>(n);
        conn.out_bytes -= static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          epoll_event ev{};
          // A drain means reading stays stopped, whatever peer_eof says.
          ev.events =
              (conn.peer_eof || draining_ ? 0u : EPOLLIN) | EPOLLOUT;
          ev.data.u64 = conn_id;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
        }
        return;
      }
      conn.owed = 0;  // peer is gone; nothing left to deliver
      conn.out.clear();
      conn.out_offset = 0;
      conn.out_bytes = 0;
      conn.peer_eof = true;
      return;
    }
    const std::uint64_t done = now_us();
    write_stall_us_.record(done > front.enqueued_us
                               ? done - front.enqueued_us
                               : 0);
    conn.out.pop_front();
    conn.out_offset = 0;
  }
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = conn.peer_eof || draining_ ? 0u : EPOLLIN;
    ev.data.u64 = conn_id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }
}

void EpollServer::handle_writable(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  flush(conn_id, *it->second);
  maybe_close(conn_id, *it->second);
}

// mu_ held. A connection is done once no more requests can arrive —
// the peer half-closed, or a drain stopped us reading — every delivered
// frame has been answered, and the answer bytes have left the socket
// buffer.
void EpollServer::maybe_close(std::uint64_t conn_id, Connection& conn) {
  if ((conn.peer_eof || draining_) && conn.owed == 0 && conn.out.empty()) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conns_.erase(conn_id);
    conns_closed_.add(1);
  }
}

void EpollServer::close_connection(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  conns_closed_.add(1);
}

void EpollServer::run() {
  bool drain_applied = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  epoll_event events[64];
  for (;;) {
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) {
        if (!drain_applied) {
          // Stop accepting and stop reading; what is already in flight
          // (owed responses, queued writes) still completes.
          drain_applied = true;
          drain_deadline =
              std::chrono::steady_clock::now() + options_.drain_timeout;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          for (auto& [id, conn] : conns_) {
            epoll_event ev{};
            ev.events =
                conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
            ev.data.u64 = id;
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
          }
          // Connections that owe nothing and hold no bytes are done now
          // — with reading stopped there is nothing left to wait for
          // (e.g. accepted-but-never-read connections whose frames the
          // drain cut off).
          for (auto it = conns_.begin(); it != conns_.end();) {
            auto cur = it++;
            maybe_close(cur->first, *cur->second);
          }
        }
        if (conns_.empty()) return;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            drain_deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
          // Deadline: whoever still owes or holds bytes gets cut off.
          force_closed_ = conns_.size();
          conns_closed_.add(conns_.size());
          for (auto& [id, conn] : conns_) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
            ::close(conn->fd);
          }
          conns_.clear();
          return;
        }
        timeout_ms = static_cast<int>(left.count()) + 1;
      }
    }

    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd itself failed; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        handle_accept();
      } else if (id == kWakeId) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        // A wake means "some connection has new queued output" (or a
        // drain started): flush everything with pending bytes.
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
          auto cur = it++;
          if (!cur->second->out.empty()) flush(cur->first, *cur->second);
          maybe_close(cur->first, *cur->second);
        }
      } else if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // EPOLLHUP without EPOLLIN data left: peer fully gone.
        if (events[i].events & EPOLLIN) {
          handle_readable(id);
        } else {
          close_connection(id);
        }
      } else {
        if (events[i].events & EPOLLIN) handle_readable(id);
        if (events[i].events & EPOLLOUT) handle_writable(id);
      }
    }
  }
}

}  // namespace cgs::net
