#pragma once
// Multi-reactor socket front door. N event-loop threads ("reactors"), each
// owning a private epoll set, share one listening port via SO_REUSEPORT so
// the kernel spreads incoming connections across them and one core is no
// longer the ceiling; where SO_REUSEPORT binding fails (or kHandoff is
// forced), reactor 0 accepts and hands fds to its peers round-robin. Each
// reactor reassembles u32-length-prefixed frames (net/framing.h) from its
// connections' read buffers and hands every complete frame to the
// application handler; responses queue per connection and flush under
// EPOLLOUT backpressure.
//
//            ┌─ reactor 0: epoll ── conns ── timer wheel ─┐
//   accept ──┼─ reactor 1: epoll ── conns ── timer wheel ─┼── Handler
//  (REUSEPORT│      ...                                   │ (ResponseToken,
//   or hand- └─ reactor N: epoll ── conns ── timer wheel ─┘   frame)
//    off)
//
// ## The reply debt: ResponseToken
//
// The protocol is request/response — every frame delivered to the handler
// owes its connection exactly one reply. The handler receives that debt as
// a move-only ResponseToken: fulfil it with send() from any thread (the
// token routes itself to the owning reactor; no global lock — the reactor
// index lives in the connection id's high bits), or shed() it explicitly.
// A token destroyed unfulfilled auto-replies a typed kOverloaded frame, so
// a handler that drops a request on the floor (exception, shutdown race)
// still settles the debt and the peer still hears an answer. Tokens must
// be settled before the Server is destroyed.
//
// Debt tracking is what makes shutdown() a true drain: stop accepting,
// stop reading, deliver every owed response, flush, then close — the
// drain deadline force-closes only stragglers.
//
// ## Connection hygiene and overload
//
// Every limit answers with a kOverloaded frame (retry-after hint + reason,
// net/overload.h) before the connection sheds — never a silent close:
//   - limits.max_connections: accepted-over-cap connections get the frame,
//     then close once it flushed and the peer hung up (or the linger
//     deadline passed).
//   - limits.max_owed_responses / limits.max_queued_write_bytes: a frame
//     arriving over either per-connection budget is answered kOverloaded
//     directly instead of reaching the handler.
//   - timeouts.idle / timeouts.read_progress: a connection that owes
//     nothing and stays silent past `idle`, or trickles a partial frame
//     for longer than `read_progress` (slowloris), is evicted with the
//     frame. Deadlines ride a per-reactor timer wheel; activity never
//     touches it (the wheel entry re-derives the real deadline on fire).
// Framing corruption (length prefix beyond max_frame, socket error) still
// closes hard — a corrupted stream cannot be resynchronized, let alone
// answered.
//
// Payload validation (magic, version, checksum) remains the message
// layer's job (serial::unwrap); the core never looks inside a frame.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/framing.h"
#include "net/timer_wheel.h"
#include "obs/registry.h"

namespace cgs::net {

/// Per-connection and server-wide resource caps. Every cap answers with a
/// typed kOverloaded frame when it trips (see header comment).
struct ServerLimits {
  /// Open connections across all reactors (shed conns count until gone).
  std::size_t max_connections = 4096;
  /// Per connection: responses owed (delivered frames not yet answered).
  std::uint64_t max_owed_responses = 256;
  /// Per connection: queued-but-unsent response bytes.
  std::size_t max_queued_write_bytes = 8u << 20;
  /// Hard cap on a single frame (length prefix included).
  std::uint32_t max_frame = kMaxFrameBytes;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Mostly a
  /// test knob — a small send buffer makes write backpressure observable.
  int sndbuf_bytes = 0;
};

/// Connection deadlines (timer-wheel granularity, ~10ms).
struct ServerTimeouts {
  /// Evict a connection that owes nothing and has been silent this long.
  std::chrono::milliseconds idle{30000};
  /// A started frame (partial bytes buffered) must complete within this —
  /// the slowloris deadline.
  std::chrono::milliseconds read_progress{10000};
  /// How long shutdown() waits for owed responses and unflushed writes
  /// before force-closing the remaining connections.
  std::chrono::milliseconds drain{30000};
  /// How long a shed connection may linger waiting for the peer to read
  /// its kOverloaded frame and hang up.
  std::chrono::milliseconds shed_linger{2000};
  /// The retry-after hint carried by every kOverloaded frame.
  std::chrono::milliseconds overload_retry_after{250};
};

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral (see port())
  int backlog = 128;
  /// Event-loop threads. 0 = hardware_concurrency (at least 1).
  int reactors = 0;
  /// How the reactors share the listener. kAuto tries SO_REUSEPORT (one
  /// listening socket per reactor, kernel load-balanced) and falls back to
  /// kHandoff (reactor 0 accepts, hands fds round-robin) when the second
  /// bind fails; the explicit values force one path (tests cover both).
  enum class AcceptMode { kAuto, kReusePort, kHandoff };
  AcceptMode accept_mode = AcceptMode::kAuto;
  ServerLimits limits;
  ServerTimeouts timeouts;
  /// Registry for the server's transport metrics (cgs_net_*). The counters
  /// are per-reactor atomics aggregated through callback instruments at
  /// collect() time; the server unregisters them all at shutdown (scrape
  /// before shutdown — Server::stats() stays available after). nullptr ->
  /// the server owns a private registry, which must then outlive nothing.
  obs::Registry* registry = nullptr;

  /// Throws cgs::Error on an inconsistent configuration; the constructor
  /// calls this, callers may too (e.g. to validate config files early).
  void validate() const;
};

/// Aggregated transport counters (sum over reactors), available before and
/// after shutdown.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;   // delivered + shed
  std::uint64_t frames_sent = 0;       // responses + shed answers
  std::uint64_t frames_corrupt = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t sheds_accept_cap = 0;  // kOverloaded at accept (conn cap)
  std::uint64_t sheds_owed_cap = 0;    // kOverloaded per frame (owed cap)
  std::uint64_t sheds_write_cap = 0;   // kOverloaded per frame (write cap)
  std::uint64_t sheds_dropped_token = 0;  // auto-replies from dead tokens
  std::uint64_t idle_evictions = 0;
  std::uint64_t read_timeout_evictions = 0;  // slowloris
  std::size_t open_connections = 0;
  std::uint64_t sheds_total() const {
    return sheds_accept_cap + sheds_owed_cap + sheds_write_cap +
           sheds_dropped_token + idle_evictions + read_timeout_evictions;
  }
};

class Server;

/// The reply debt for one delivered frame. Move-only; fulfil exactly once
/// with send() or shed() from any thread. Destroying a live token sheds
/// automatically (kOverloaded, "response dropped"), so every code path —
/// including exceptions between delivery and reply — answers the peer.
class ResponseToken {
 public:
  ResponseToken() = default;
  ResponseToken(ResponseToken&& other) noexcept
      : server_(other.server_), conn_id_(other.conn_id_) {
    other.server_ = nullptr;
  }
  ResponseToken& operator=(ResponseToken&& other) noexcept;
  ResponseToken(const ResponseToken&) = delete;
  ResponseToken& operator=(const ResponseToken&) = delete;
  ~ResponseToken();

  /// Queue the encoded (length-prefixed) response and wake the owning
  /// reactor. False when the connection is already gone (the response is
  /// dropped — a dead socket deserves nothing else); the debt is settled
  /// either way and the token goes invalid.
  bool send(std::vector<std::uint8_t> encoded);

  /// Settle with a typed kOverloaded frame instead of a response — the
  /// application-level shed (e.g. dispatcher queue full).
  bool shed(const std::string& reason);

  /// True until the debt is settled (send/shed/moved-from).
  bool valid() const { return server_ != nullptr; }
  /// The connection this token answers to (reactor index in bits 48+).
  std::uint64_t conn_id() const { return conn_id_; }

 private:
  friend class Server;
  ResponseToken(Server* server, std::uint64_t conn_id)
      : server_(server), conn_id_(conn_id) {}
  Server* server_ = nullptr;
  std::uint64_t conn_id_ = 0;
};

/// Invoked on the owning reactor's loop thread for every complete frame
/// (without the length prefix). Must not block; settle the token now or
/// hand it to another thread to settle later.
using Handler =
    std::function<void(ResponseToken token, std::vector<std::uint8_t> frame)>;

class Server {
 public:
  /// Binds, listens and starts the reactor threads; throws cgs::Error when
  /// socket setup or option validation fails. The handler may be invoked
  /// as soon as this returns.
  explicit Server(Handler on_frame, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves option port 0 to the kernel's pick; all
  /// reactors share it).
  std::uint16_t port() const { return port_; }
  /// Resolved reactor count.
  int reactors() const { return static_cast<int>(reactors_.size()); }
  /// True when the reactors share the port via SO_REUSEPORT; false in
  /// accept-and-hand-off fallback mode.
  bool reuse_port() const { return reuse_port_; }

  /// Graceful drain: stop accepting and reading, deliver every owed
  /// response, flush, close, join every reactor. Returns the number of
  /// connections force-closed by the drain deadline (0 = fully clean).
  /// Idempotent; the destructor calls it.
  std::size_t shutdown();

  std::size_t active_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }
  /// Aggregate counters; valid (and frozen) after shutdown too.
  ServerStats stats() const;
  std::uint64_t frames_received() const { return stats().frames_received; }
  std::uint64_t frames_sent() const { return stats().frames_sent; }

  /// The registry the cgs_net_* instruments live in (the private one when
  /// none was supplied in options).
  obs::Registry& obs_registry() { return *obs_; }
  const obs::Registry& obs_registry() const { return *obs_; }

 private:
  friend class ResponseToken;

  /// One queued response plus when it entered the queue — the write-stall
  /// histogram measures enqueue -> last byte handed to the kernel.
  struct Outgoing {
    std::vector<std::uint8_t> bytes;
    std::uint64_t enqueued_us = 0;
  };
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;  // unparsed inbound bytes
    std::deque<Outgoing> out;      // queued responses
    std::size_t out_offset = 0;    // sent bytes of out.front()
    std::size_t out_bytes = 0;     // total queued unsent bytes
    std::uint64_t owed = 0;        // live tokens for this connection
    bool peer_eof = false;
    bool want_write = false;  // EPOLLOUT currently armed
    bool shed_close = false;  // closing: flush out, discard reads
    bool timer_armed = false;
    std::uint64_t last_activity_us = 0;  // last byte in or out
    std::uint64_t read_started_us = 0;   // partial frame began; 0 = none
    std::uint64_t shed_deadline_us = 0;  // shed_close force-close point
  };
  /// Per-reactor monotonically increasing counters; aggregated by
  /// Server::stats() and the cgs_net_* callback instruments. Padded so two
  /// reactors' hot counters never share a cache line.
  struct alignas(64) ReactorStats {
    std::atomic<std::uint64_t> accepted{0}, closed{0}, frames_received{0},
        frames_sent{0}, frames_corrupt{0}, bytes_in{0}, bytes_out{0},
        sheds_accept{0}, sheds_owed{0}, sheds_write{0}, sheds_dropped{0},
        idle_evictions{0}, read_timeout_evictions{0};
    std::atomic<std::int64_t> write_hwm{0};
    /// Last measured loop lag (us): how late the loop reached its timer
    /// sweep relative to the recurring wheel probe's deadline. Exposed as
    /// the cgs_net_loop_lag_us gauge (worst reactor) and in health frames.
    std::atomic<std::uint64_t> loop_lag_us{0};
  };
  struct Reactor {
    Server* server = nullptr;
    int index = 0;
    int epoll_fd = -1;
    int listen_fd = -1;  // -1 in handoff mode for reactors != 0
    int wake_fd = -1;
    std::thread thread;
    TimerWheel wheel;
    ReactorStats stats;

    std::mutex mu;  // guards conns, handoff, draining
    std::map<std::uint64_t, std::unique_ptr<Connection>> conns;
    std::uint64_t next_conn = 0;
    std::vector<int> handoff;  // fds from the acceptor (handoff mode)
    std::uint64_t probe_deadline_us = 0;  // loop-lag probe (mu held)
    bool draining = false;
    /// Connections this reactor force-closed at the drain deadline;
    /// written by the loop thread on exit, read after join().
    std::size_t force_closed = 0;
  };

  static std::uint64_t now_us();
  std::size_t reactor_of(std::uint64_t conn_id) const {
    return static_cast<std::size_t>((conn_id >> 48) - 1);
  }

  // Reactor loop and its pieces (all run on that reactor's thread).
  void run(Reactor& r);
  void handle_accept(Reactor& r);
  void adopt(Reactor& r, int fd);  // register an accepted fd with r
  void handle_handoff(Reactor& r);
  void handle_readable(Reactor& r, std::uint64_t conn_id);
  void handle_writable(Reactor& r, std::uint64_t conn_id);
  void handle_timers(Reactor& r);
  void flush(Reactor& r, std::uint64_t conn_id, Connection& conn);
  void maybe_close(Reactor& r, std::uint64_t conn_id, Connection& conn);
  void close_connection(Reactor& r, std::uint64_t conn_id);
  void apply_drain(Reactor& r);
  static void wake(Reactor& r);

  /// Mark a connection shedding: queue the kOverloaded frame, stop
  /// delivering, arm the linger deadline. mu held by caller.
  void begin_shed_locked(Reactor& r, Connection& conn, const std::string& why,
                         std::atomic<std::uint64_t>& stat);
  std::vector<std::uint8_t> overload_frame(const std::string& reason) const;

  // Cross-thread reply paths (ResponseToken).
  bool fulfil(std::uint64_t conn_id, std::vector<std::uint8_t> encoded,
              bool counts_as_sent = true);
  bool shed_reply(std::uint64_t conn_id, const std::string& reason,
                  std::atomic<std::uint64_t>* stat);

  void register_instruments();

  Handler on_frame_;
  ServerOptions options_;
  std::unique_ptr<obs::Registry> owned_obs_;  // when no external registry
  obs::Registry* obs_ = nullptr;
  obs::EventLog* events_ = nullptr;   // registry-owned; sheds emit here
  obs::Histogram* write_stall_us_ = nullptr;  // owned instrument, survives
  std::vector<std::string> callback_metrics_;  // unregistered at shutdown

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::uint16_t port_ = 0;
  bool reuse_port_ = false;
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::size_t> handoff_rr_{0};  // round-robin accept cursor
  std::size_t force_closed_ = 0;  // written by shutdown() before readers

  std::mutex shutdown_mu_;  // serializes shutdown() callers
  bool shut_down_ = false;
};

}  // namespace cgs::net
