#pragma once
// EpollServer: the reusable event-loop core every socket front end runs
// on. One thread owns an epoll set over a loopback TCP listener and all
// accepted connections (everything nonblocking); per-connection read
// buffers reassemble u32-length-prefixed frames (net/framing.h) and each
// complete frame is handed to the application's FrameHandler; per-
// connection write queues absorb responses from any thread via send(),
// flushed by the loop under EPOLLOUT backpressure.
//
//                     ┌──────────────── event loop ────────────────┐
//   accept ──────────>│ conn read buf ──frames──> FrameHandler     │
//   client bytes ────>│ conn write buf <─send()─  (app, any thread)│
//                     └───────── EPOLLIN/EPOLLOUT/eventfd ─────────┘
//
// Contract: the protocol is request/response — every frame delivered to
// the handler owes the connection exactly one send() (the handler itself
// may return immediately and fulfil the send from another thread later;
// it must never block the loop). The server tracks that debt per
// connection, which is what makes shutdown a *drain*: stop accepting,
// stop reading, then keep the loop alive until every owed response has
// been sent and flushed (or the drain deadline forces the stragglers
// closed). A connection closes cleanly once the peer half-closed, no
// response is owed, and its write buffer is empty.
//
// A frame whose length prefix exceeds max_frame, or a read/write error,
// closes that connection hard — framing corruption is not resynchronizable
// — without disturbing its neighbours. Payload validation (magic, version,
// checksum) is the message layer's job (serial::unwrap); the core never
// looks inside a frame.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/framing.h"
#include "obs/registry.h"

namespace cgs::net {

struct ServerOptions {
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral (see port())
  int backlog = 64;
  std::uint32_t max_frame = kMaxFrameBytes;
  /// How long shutdown() waits for owed responses and unflushed writes
  /// before force-closing the remaining connections.
  std::chrono::milliseconds drain_timeout{30000};
  /// Registry for the server's transport metrics (cgs_net_*: connection
  /// churn, byte/frame counters, write-buffer high-water, write-stall
  /// latency). nullptr -> the server owns a private registry. An external
  /// registry must outlive the server; the server unregisters its one
  /// callback gauge (open connections) at shutdown.
  obs::Registry* registry = nullptr;
};

/// Invoked on the event-loop thread for every complete frame (without the
/// length prefix). Must not block; must arrange exactly one
/// send(conn_id, ...) per frame, now or from another thread later.
using FrameHandler =
    std::function<void(std::uint64_t conn_id, std::vector<std::uint8_t> frame)>;

class EpollServer {
 public:
  /// Binds, listens and starts the loop thread; throws cgs::Error when the
  /// socket setup fails. The handler may be invoked as soon as this
  /// returns.
  explicit EpollServer(FrameHandler on_frame, ServerOptions options = {});
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// The bound port (resolves option port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// Queue one encoded (length-prefixed) response for a connection and
  /// wake the loop to flush it. Thread-safe. False when the connection is
  /// already gone (peer vanished mid-flight) — the response is dropped,
  /// which is what a dead socket deserves.
  bool send(std::uint64_t conn_id, std::vector<std::uint8_t> encoded);

  /// Graceful drain: stop accepting and reading, deliver every owed
  /// response, flush, close, join the loop. Returns the number of
  /// connections force-closed by the drain deadline (0 = fully clean).
  /// Idempotent; the destructor calls it.
  std::size_t shutdown();

  std::size_t active_connections() const;
  std::uint64_t frames_received() const;
  std::uint64_t frames_sent() const;

  /// The registry the cgs_net_* instruments live in (the private one when
  /// none was supplied in options).
  obs::Registry& obs_registry() { return *obs_; }
  const obs::Registry& obs_registry() const { return *obs_; }

 private:
  /// One queued response plus when it entered the queue — the write-stall
  /// histogram measures enqueue -> last byte handed to the kernel.
  struct Outgoing {
    std::vector<std::uint8_t> bytes;
    std::uint64_t enqueued_us = 0;
  };
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;          // unparsed inbound bytes
    std::deque<Outgoing> out;              // queued responses
    std::size_t out_offset = 0;            // sent bytes of out.front()
    std::size_t out_bytes = 0;             // total queued unsent bytes
    std::uint64_t owed = 0;                // frames delivered - responses sent
    bool peer_eof = false;
    bool want_write = false;               // EPOLLOUT currently armed
  };

  void run();
  void handle_accept();
  void handle_readable(std::uint64_t conn_id);
  void handle_writable(std::uint64_t conn_id);
  void flush(std::uint64_t conn_id, Connection& conn);
  void maybe_close(std::uint64_t conn_id, Connection& conn);
  void close_connection(std::uint64_t conn_id);
  void wake();

  FrameHandler on_frame_;
  ServerOptions options_;
  // Registry first, instruments after: the references below bind into it
  // during member initialization.
  std::unique_ptr<obs::Registry> owned_obs_;  // when no external registry
  obs::Registry* obs_ = nullptr;
  obs::Counter& conns_accepted_;
  obs::Counter& conns_closed_;
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& frames_decoded_;
  obs::Counter& frames_corrupt_;
  obs::Gauge& write_buffer_hwm_;     // worst queued-bytes level seen
  obs::Histogram& write_stall_us_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread loop_;

  mutable std::mutex mu_;  // guards conns_, draining_, counters
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  bool draining_ = false;
  std::size_t force_closed_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_sent_ = 0;

  std::mutex shutdown_mu_;  // serializes shutdown() callers
  bool shut_down_ = false;
};

}  // namespace cgs::net
