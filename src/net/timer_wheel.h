#pragma once
// A hashed timer wheel for connection deadlines. Each reactor owns one and
// drives it from its event loop: schedule() files a (key, deadline) entry
// into the slot its deadline hashes to, advance() sweeps every slot between
// the last sweep and `now` and hands expired entries to the callback.
// Entries whose deadline lies beyond one wheel revolution simply stay in
// their slot and are re-filed on the sweep that reaches them — the classic
// "rounds" scheme, without storing a round counter.
//
// Cancellation is lazy: the wheel never removes an entry early. The owner
// cancels by making the callback a no-op — here, the reactor re-derives a
// connection's *actual* deadline when an entry fires and either evicts or
// re-schedules, so a connection keeps exactly one live entry and stale
// fires cost one map lookup. That is what makes schedule() O(1) with no
// per-activity bookkeeping on the hot read/write paths.
//
// Single-threaded by design (the owning reactor's loop); no locks.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cgs::net {

class TimerWheel {
 public:
  /// `tick_us` is the wheel's resolution (a deadline fires up to one tick
  /// late); `slots` x `tick_us` is one revolution.
  explicit TimerWheel(std::uint64_t tick_us = 10'000, std::size_t slots = 512)
      : tick_us_(tick_us), slots_(slots) {
    CGS_CHECK_MSG(tick_us_ > 0 && slots_.size() >= 2,
                  "timer wheel needs a positive tick and >= 2 slots");
  }

  /// File `key` to fire at `deadline_us` (absolute, same clock as
  /// advance()). A deadline already in the past fires on the next sweep.
  void schedule(std::uint64_t key, std::uint64_t deadline_us) {
    slots_[slot_of(deadline_us)].push_back(Entry{key, deadline_us});
    ++size_;
  }

  /// Sweep up to `now_us`: every entry with deadline <= now is removed and
  /// handed to `cb(key)`; later entries in swept slots are re-filed.
  template <typename Fn>
  void advance(std::uint64_t now_us, Fn&& cb) {
    if (size_ == 0) {
      last_sweep_us_ = now_us;
      return;
    }
    // Sweep at most one full revolution — beyond that every slot has been
    // visited once and re-filed entries must not be visited again this
    // call (their deadline is in the future by definition of re-filing).
    const std::uint64_t first_tick = last_sweep_us_ / tick_us_;
    std::uint64_t last_tick = now_us / tick_us_;
    if (last_tick - first_tick >= slots_.size())
      last_tick = first_tick + slots_.size() - 1;
    for (std::uint64_t t = first_tick; t <= last_tick; ++t) {
      std::vector<Entry>& slot = slots_[t % slots_.size()];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].deadline_us <= now_us) {
          --size_;
          cb(slot[i].key);
        } else {
          slot[keep++] = slot[i];
        }
      }
      slot.resize(keep);
    }
    last_sweep_us_ = now_us;
  }

  std::size_t size() const { return size_; }
  std::uint64_t tick_us() const { return tick_us_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t deadline_us = 0;
  };

  std::size_t slot_of(std::uint64_t deadline_us) const {
    return static_cast<std::size_t>(deadline_us / tick_us_) % slots_.size();
  }

  std::uint64_t tick_us_;
  std::vector<std::vector<Entry>> slots_;
  std::uint64_t last_sweep_us_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cgs::net
