#pragma once
// obs::EventLog: a fixed-size lock-free ring of structured, timestamped
// events — the discrete happenings a time-series scrape cannot show
// (an overload shed, a cache eviction, a KvStore compaction or torn-tail
// recovery, a keygen starting). Emitters are hot paths (reactor loops,
// cache eviction under a lock), so emit() is wait-free: one fetch_add to
// claim a slot plus a seqlock write; a reader that catches a slot
// mid-write skips it. The ring keeps the most recent `capacity` events;
// per-kind counters are kept separately and never wrap, so "how many
// sheds ever" survives even when the shed events themselves have been
// overwritten.
//
// Events are drained via the scrape path: obs::json_text emits the ring
// as an "events" array and obs::prometheus_text emits the per-kind
// counters as labeled cgs_events_total series.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace cgs::obs {

enum class EventKind : std::uint8_t {
  kOverloadShed = 0,   // a: reactor index, b: retry_after_ms
  kCacheEviction,      // a: entries after eviction, b: bytes after eviction
  kKvCompaction,       // a: file bytes after, b: live entries
  kTornTailRecovery,   // a: bytes truncated, b: bytes kept
  kKeygenStart,        // a: degree, b: 0
  kSeriesFold,         // a: folded value/count, b: series cap
};
inline constexpr std::size_t kNumEventKinds = 6;

inline const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kOverloadShed:
      return "overload_shed";
    case EventKind::kCacheEviction:
      return "cache_eviction";
    case EventKind::kKvCompaction:
      return "kv_compaction";
    case EventKind::kTornTailRecovery:
      return "torn_tail_recovery";
    case EventKind::kKeygenStart:
      return "keygen_start";
    case EventKind::kSeriesFold:
      return "series_fold";
  }
  return "unknown";
}

/// One structured event. `a`/`b` are kind-specific numeric arguments
/// (documented per kind above); `detail` is a short source tag ("ffldl",
/// "sign lane 2") truncated to the inline buffer — events never allocate.
struct Event {
  std::uint64_t seq = 0;  // 1-based global emit order; 0 = empty slot
  std::uint64_t ts_us = 0;
  EventKind kind = EventKind::kOverloadShed;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char detail[48] = {};
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity),
        ring_(std::make_unique<Slot[]>(capacity_)) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Record one event. Wait-free; safe from any thread, including under
  /// subsystem locks (it takes none of its own). An emit that collides
  /// with a writer still inside the same slot (a full ring wrap during
  /// one write) drops the ring entry but still counts.
  void emit(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
            std::string_view detail = {}) {
    counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot& slot = ring_[(seq - 1) % capacity_];
    std::uint32_t v = slot.version.load(std::memory_order_relaxed);
    if (v & 1u) return;  // writer inside after a full wrap: drop ours
    if (!slot.version.compare_exchange_strong(v, v + 1,
                                              std::memory_order_acquire))
      return;
    slot.event.seq = seq;
    slot.event.ts_us = now_us();
    slot.event.kind = kind;
    slot.event.a = a;
    slot.event.b = b;
    const std::size_t n =
        detail.size() < sizeof slot.event.detail - 1
            ? detail.size()
            : sizeof slot.event.detail - 1;
    std::memcpy(slot.event.detail, detail.data(), n);
    slot.event.detail[n] = '\0';
    slot.version.store(v + 2, std::memory_order_release);
  }

  /// Copies of the retained events, oldest first. Lock-free: a slot being
  /// overwritten concurrently is skipped.
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& slot = ring_[i];
      const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1u) continue;
      Event e = slot.event;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      if (e.seq != 0) out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const Event& x, const Event& y) { return x.seq < y.seq; });
    return out;
  }

  /// Lifetime count of `kind` events (unaffected by ring overwrites).
  std::uint64_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    return head_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  static std::uint64_t now_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  // Seqlock slot, same discipline as obs::Tracer's slow ring: even
  // version = stable, odd = writer inside.
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> version{0};
    Event event;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::array<std::atomic<std::uint64_t>, kNumEventKinds> counts_{};
};

}  // namespace cgs::obs
