#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"

namespace cgs::obs {

namespace {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string format_double(double v) {
  // Integral values (the common case: counts, byte totals) print without
  // a fractional part so golden tests and humans see "42", not "42.0".
  // Range-check before the cast: a negative or huge double to uint64_t
  // is undefined behavior.
  if (v >= 0 && v < 1e18 && v == static_cast<std::uint64_t>(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Upper bound (us) of histogram bucket `i`: bucket 0 holds exactly 0us,
/// bucket k holds [2^(k-1), 2^k) integer us, so its inclusive `le` bound
/// is 2^k - 1. Bucket 64 is the overflow bucket and maps to +Inf.
std::string bucket_le(std::size_t i) {
  if (i == 0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64,
                (i >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << i) - 1));
  return buf;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  std::string out;
  for (const Sample& s : registry.collect()) {
    out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
    if (!s.is_histogram) {
      out += s.name + " " + format_double(s.value) + "\n";
      continue;
    }
    // Cumulative buckets; collapse trailing empties into the final +Inf
    // line so an idle histogram is 3 lines, not 67.
    std::size_t last_nonzero = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i)
      if (s.buckets[i] != 0) last_nonzero = i;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= last_nonzero && i + 1 < s.buckets.size();
         ++i) {
      cumulative += s.buckets[i];
      out += s.name + "_bucket{le=\"" + bucket_le(i) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += s.name + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += s.name + "_sum " + std::to_string(s.sum_us) + "\n";
    out += s.name + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

std::string json_text(const Registry& registry) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("metrics");
  for (const Sample& s : registry.collect()) {
    w.begin_object();
    w.field("name", s.name);
    w.field("type", kind_name(s.kind));
    if (s.is_histogram) {
      w.field("count", static_cast<std::size_t>(s.count));
      w.field("sum_us", static_cast<std::size_t>(s.sum_us));
      w.field("p50_us", bucket_quantile(s.buckets, 0.50));
      w.field("p95_us", bucket_quantile(s.buckets, 0.95));
      w.field("p99_us", bucket_quantile(s.buckets, 0.99));
    } else {
      w.field("value", s.value);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace cgs::obs
