#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"

namespace cgs::obs {

namespace {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string format_double(double v) {
  // Integral values (the common case: counts, byte totals) print without
  // a fractional part so golden tests and humans see "42", not "42.0".
  // Range-check before the cast: a negative or huge double to uint64_t
  // is undefined behavior.
  if (v >= 0 && v < 1e18 && v == static_cast<std::uint64_t>(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Upper bound (us) of histogram bucket `i`: bucket 0 holds exactly 0us,
/// bucket k holds [2^(k-1), 2^k) integer us, so its inclusive `le` bound
/// is 2^k - 1. Bucket 64 is the overflow bucket and maps to +Inf.
std::string bucket_le(std::size_t i) {
  if (i == 0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64,
                (i >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << i) - 1));
  return buf;
}

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, id);
  return buf;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  std::string out;
  for (const Sample& s : registry.collect()) {
    // A labeled sample belongs to the family whose (unlabeled) global
    // sample — and TYPE line — immediately precedes it in collect order.
    if (s.labels.empty())
      out += "# TYPE " + s.name + " " + kind_name(s.kind) + "\n";
    if (!s.is_histogram) {
      if (s.labels.empty())
        out += s.name + " " + format_double(s.value) + "\n";
      else
        out += s.name + "{" + s.labels + "} " + format_double(s.value) + "\n";
      continue;
    }
    // Cumulative buckets; collapse trailing empties into the final +Inf
    // line so an idle histogram is 3 lines, not 67. Labels (if any) ride
    // in front of `le` on every series of the expansion.
    const std::string lbl = s.labels.empty() ? "" : s.labels + ",";
    const std::string suffix =
        s.labels.empty() ? "" : "{" + s.labels + "}";
    std::size_t last_nonzero = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i)
      if (s.buckets[i] != 0) last_nonzero = i;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= last_nonzero && i + 1 < s.buckets.size();
         ++i) {
      cumulative += s.buckets[i];
      out += s.name + "_bucket{" + lbl + "le=\"" + bucket_le(i) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += s.name + "_bucket{" + lbl + "le=\"+Inf\"} " +
           std::to_string(s.count) + "\n";
    out += s.name + "_sum" + suffix + " " + std::to_string(s.sum_us) + "\n";
    out += s.name + "_count" + suffix + " " + std::to_string(s.count) + "\n";
    // Exemplars as comment lines (plain-Prometheus parsers skip unknown
    // comments; goldens are untouched because an exemplar-free histogram
    // emits none).
    for (std::size_t i = 0; i < s.exemplars.size(); ++i) {
      if (s.exemplars[i] == 0) continue;
      out += "# exemplar " + s.name + "_bucket{" + lbl + "le=\"" +
             bucket_le(i) + "\"} trace_id=\"" + hex_id(s.exemplars[i]) +
             "\"\n";
    }
  }
  // Structured events: lifetime per-kind counters (the ring itself is
  // JSON-only). Only present once something has been emitted.
  if (const EventLog* events = registry.events_or_null();
      events != nullptr && events->total() != 0) {
    out += "# TYPE cgs_obs_events_total counter\n";
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
      const auto kind = static_cast<EventKind>(k);
      const std::uint64_t n = events->count(kind);
      if (n == 0) continue;
      out += std::string("cgs_obs_events_total{kind=\"") +
             event_kind_name(kind) + "\"} " + std::to_string(n) + "\n";
    }
  }
  return out;
}

std::string json_text(const Registry& registry) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("metrics");
  for (const Sample& s : registry.collect()) {
    w.begin_object();
    w.field("name", s.name);
    if (!s.labels.empty()) w.field("labels", s.labels);
    w.field("type", kind_name(s.kind));
    if (s.is_histogram) {
      w.field("count", static_cast<std::size_t>(s.count));
      w.field("sum_us", static_cast<std::size_t>(s.sum_us));
      w.field("p50_us", bucket_quantile(s.buckets, 0.50));
      w.field("p95_us", bucket_quantile(s.buckets, 0.95));
      w.field("p99_us", bucket_quantile(s.buckets, 0.99));
      // Highest-bucket exemplar: the trace id behind the worst latency.
      for (std::size_t i = s.exemplars.size(); i-- > 0;) {
        if (s.exemplars[i] != 0) {
          w.field("tail_exemplar_trace_id", hex_id(s.exemplars[i]));
          break;
        }
      }
    } else {
      w.field("value", s.value);
    }
    w.end_object();
  }
  w.end_array();
  if (const EventLog* events = registry.events_or_null();
      events != nullptr && events->total() != 0) {
    w.begin_array("events");
    for (const Event& e : events->snapshot()) {
      w.begin_object();
      w.field("seq", static_cast<std::size_t>(e.seq));
      w.field("ts_us", static_cast<std::size_t>(e.ts_us));
      w.field("kind", event_kind_name(e.kind));
      w.field("a", static_cast<std::size_t>(e.a));
      w.field("b", static_cast<std::size_t>(e.b));
      w.field("detail", std::string(e.detail));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace cgs::obs
