#pragma once
// Exposition formats for an obs::Registry snapshot. Two exporters, one
// registry walk each:
//
//   prometheus_text — the Prometheus text exposition format (# TYPE line
//     per metric; histograms expand into cumulative _bucket{le="..."}
//     series plus _sum/_count). This is what kStatsResponse carries and
//     what `cgs_stats` prints, so a real Prometheus scraper pointed at a
//     bridge ingests it unchanged.
//
//   json_text — the same snapshot in the bench_util.h JSON idiom
//     (cgs::JsonWriter), with histograms summarized to count/sum/p50/
//     p95/p99 — handy for dashboards and for diffing against BENCH_*.json
//     artifacts.

#include <string>

#include "obs/registry.h"

namespace cgs::obs {

std::string prometheus_text(const Registry& registry);
std::string json_text(const Registry& registry);

}  // namespace cgs::obs
