#include "obs/labels.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "common/check.h"

namespace cgs::obs {

namespace {

bool valid_label_key(const std::string& key) {
  if (key.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(key.front())) return false;
  for (char c : key)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

void append_escaped(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

LabelSet& LabelSet::set(const std::string& key, std::string value) {
  CGS_CHECK_MSG(valid_label_key(key),
                "obs: invalid label key (want [a-zA-Z_][a-zA-Z0-9_]*)");
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), key,
      [](const auto& p, const std::string& k) { return p.first < k; });
  if (it != pairs_.end() && it->first == key)
    it->second = std::move(value);
  else
    pairs_.insert(it, {key, std::move(value)});
  render();
  return *this;
}

void LabelSet::render() {
  canonical_.clear();
  for (const auto& [k, v] : pairs_) {
    if (!canonical_.empty()) canonical_ += ',';
    canonical_ += k;
    canonical_ += "=\"";
    append_escaped(canonical_, v);
    canonical_ += '"';
  }
}

std::string tenant_label(std::uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fingerprint);
  return buf;
}

// ---------------------------------------------------------------------------
// CounterFamily

CounterFamily::CounterFamily(std::string name, Counter& global,
                             FamilyOptions options)
    : name_(std::move(name)), global_(global), options_(std::move(options)) {
  CGS_CHECK_MSG(options_.max_series > 0, "obs: family needs max_series >= 1");
}

CounterFamily::~CounterFamily() = default;

void CounterFamily::add(const LabelSet& labels, std::uint64_t n) {
  global_.add(n);
  const std::string& key = labels.canonical();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (auto it = cells_.find(key); it != cells_.end()) {
      it->second->touches.fetch_add(1, std::memory_order_relaxed);
      it->second->value.fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node& node = cell_locked(key);
  node.touches.fetch_add(1, std::memory_order_relaxed);
  node.value.fetch_add(n, std::memory_order_relaxed);
}

CounterFamily::Node& CounterFamily::cell_locked(const std::string& key) {
  if (auto it = cells_.find(key); it != cells_.end()) return *it->second;
  if (cells_.size() >= options_.max_series) make_room_locked();
  probation_.push_back(key);
  return *cells_.emplace(key, std::make_unique<Node>()).first->second;
}

void CounterFamily::make_room_locked() {
  // Lazy promotion: probation cells that earned a second touch since the
  // last admission move to protected before a victim is chosen, so a hot
  // tenant is never folded just because promotions are deferred.
  for (auto it = probation_.begin(); it != probation_.end();) {
    Node& node = *cells_.find(*it)->second;
    if (node.touches.load(std::memory_order_relaxed) >=
        options_.promote_touches) {
      auto next = std::next(it);
      protected_.splice(protected_.end(), probation_, it);
      it = next;
    } else {
      ++it;
    }
  }
  std::list<std::string>& queue = probation_.empty() ? protected_ : probation_;
  const std::string victim = queue.front();
  auto it = cells_.find(victim);
  // Fold, never drop: the unique lock excludes adders, so this transfer
  // is exact and the sum-to-global invariant survives eviction.
  const std::uint64_t v = it->second->value.load(std::memory_order_relaxed);
  other_.fetch_add(v, std::memory_order_relaxed);
  queue.pop_front();
  cells_.erase(it);
  folds_.fetch_add(1, std::memory_order_relaxed);
  if (options_.events != nullptr)
    options_.events->emit(EventKind::kSeriesFold, v, options_.max_series,
                          name_);
}

std::vector<CounterFamily::LabeledValue> CounterFamily::collect() const {
  std::vector<LabeledValue> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(cells_.size() + 1);
    for (const auto& [labels, node] : cells_)
      out.push_back(
          {labels, node->value.load(std::memory_order_relaxed)});
  }
  if (const std::uint64_t o = other_.load(std::memory_order_relaxed); o != 0)
    out.push_back({options_.overflow.canonical(), o});
  std::sort(out.begin(), out.end(),
            [](const LabeledValue& a, const LabeledValue& b) {
              return a.labels < b.labels;
            });
  return out;
}

std::size_t CounterFamily::series() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cells_.size();
}

std::uint64_t CounterFamily::folds() const {
  return folds_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramFamily

HistogramFamily::HistogramFamily(std::string name, Histogram& global,
                                 FamilyOptions options)
    : name_(std::move(name)), global_(global), options_(std::move(options)) {
  CGS_CHECK_MSG(options_.max_series > 0, "obs: family needs max_series >= 1");
}

HistogramFamily::~HistogramFamily() = default;

void HistogramFamily::record(const LabelSet& labels, std::uint64_t us,
                             std::uint64_t exemplar_id) {
  global_.record(us, exemplar_id);
  const std::string& key = labels.canonical();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (auto it = cells_.find(key); it != cells_.end()) {
      it->second->touches.fetch_add(1, std::memory_order_relaxed);
      it->second->hist.record(us);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node& node = cell_locked(key);
  node.touches.fetch_add(1, std::memory_order_relaxed);
  node.hist.record(us);
}

HistogramFamily::Node& HistogramFamily::cell_locked(const std::string& key) {
  if (auto it = cells_.find(key); it != cells_.end()) return *it->second;
  if (cells_.size() >= options_.max_series) make_room_locked();
  probation_.push_back(key);
  return *cells_.emplace(key, std::make_unique<Node>()).first->second;
}

void HistogramFamily::make_room_locked() {
  for (auto it = probation_.begin(); it != probation_.end();) {
    Node& node = *cells_.find(*it)->second;
    if (node.touches.load(std::memory_order_relaxed) >=
        options_.promote_touches) {
      auto next = std::next(it);
      protected_.splice(protected_.end(), probation_, it);
      it = next;
    } else {
      ++it;
    }
  }
  std::list<std::string>& queue = probation_.empty() ? protected_ : probation_;
  const std::string victim = queue.front();
  auto it = cells_.find(victim);
  const Histogram& h = it->second->hist;
  const std::uint64_t folded = h.count();
  other_.merge_from(h.snapshot(), h.sum());
  queue.pop_front();
  cells_.erase(it);
  folds_.fetch_add(1, std::memory_order_relaxed);
  if (options_.events != nullptr)
    options_.events->emit(EventKind::kSeriesFold, folded, options_.max_series,
                          name_);
}

std::vector<HistogramFamily::LabeledHistogram> HistogramFamily::collect()
    const {
  std::vector<LabeledHistogram> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(cells_.size() + 1);
    for (const auto& [labels, node] : cells_) {
      LabeledHistogram h;
      h.labels = labels;
      h.buckets = node->hist.snapshot();
      for (std::uint64_t b : h.buckets) h.count += b;
      h.sum_us = node->hist.sum();
      out.push_back(std::move(h));
    }
  }
  if (other_.count() != 0) {
    LabeledHistogram h;
    h.labels = options_.overflow.canonical();
    h.buckets = other_.snapshot();
    for (std::uint64_t b : h.buckets) h.count += b;
    h.sum_us = other_.sum();
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const LabeledHistogram& a, const LabeledHistogram& b) {
              return a.labels < b.labels;
            });
  return out;
}

std::size_t HistogramFamily::series() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cells_.size();
}

std::uint64_t HistogramFamily::folds() const {
  return folds_.load(std::memory_order_relaxed);
}

}  // namespace cgs::obs
