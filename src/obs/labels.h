#pragma once
// Bounded-cardinality labeled instruments. A labeled family is one metric
// name fanned out over label sets — cgs_tenant_sign_requests_total
// {tenant="1f9a..."} — with two properties a naive map-of-counters lacks:
//
//   1. The labeled series always sum to the family's global (unlabeled)
//      series. Every add() lands in both the per-label cell and the
//      global instrument, and eviction FOLDS a cell into the `other`
//      overflow cell instead of dropping it, so no observation is ever
//      lost from the sum. (The sum is exact at quiescence; mid-storm a
//      scrape may see the global ahead of the cells by the handful of
//      adds in flight.)
//
//   2. Cardinality is bounded. A 10^5-tenant churn storm must not grow
//      the registry without limit, so admission is 2Q-style, echoing
//      store::BoundedCache: a first-seen label set lands in a probation
//      FIFO; a second touch earns promotion to the protected queue;
//      under pressure the probation FIFO is folded into `other` first,
//      so a one-shot sweep of cold tenants can never displace the hot
//      top-K. Live series count stays <= max_series (+ the overflow
//      cell).
//
// Hot-path cost: one shared-lock acquisition + hashed lookup + relaxed
// fetch_add. Admission/eviction/fold take the unique lock, which excludes
// concurrent adders — that exclusion is what makes folds exact.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <list>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "obs/metric.h"

namespace cgs::obs {

/// An ordered set of label key/value pairs with a canonical Prometheus
/// rendering (`key="value"` joined by commas, keys sorted, values
/// escaped). The canonical string doubles as the family's cell key.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv) {
    for (auto& [k, v] : kv) set(k, v);
  }

  /// Set (or replace) one label. Key must match the Prometheus label
  /// grammar [a-zA-Z_][a-zA-Z0-9_]*; throws cgs::Error otherwise. Values
  /// are arbitrary and escaped at render time.
  LabelSet& set(const std::string& key, std::string value);

  /// `key="value",...` sorted by key, values escaped (\\, \", \n).
  const std::string& canonical() const { return canonical_; }

  bool empty() const { return pairs_.empty(); }

 private:
  void render();

  std::vector<std::pair<std::string, std::string>> pairs_;  // key-sorted
  std::string canonical_;
};

struct FamilyOptions {
  /// Live labeled series cap (the overflow cell is extra). The top-K knob:
  /// K hot tenants keep their own series, everyone else folds to `other`.
  std::size_t max_series = 32;
  /// Touches that promote a probation cell to the protected queue.
  std::uint64_t promote_touches = 2;
  /// Labels of the overflow cell evicted series fold into.
  LabelSet overflow = LabelSet{{"tenant", "other"}};
  /// Optional: folds are reported here as kSeriesFold events. The
  /// registry wires its own event log in when the caller leaves this
  /// null (see Registry::counter_family).
  EventLog* events = nullptr;
};

/// Labeled counter family. add() bumps the per-label cell AND the global
/// counter the family wraps. Cell references are never handed out —
/// eviction folds cells away, so the only stable handle is the family.
class CounterFamily {
 public:
  CounterFamily(std::string name, Counter& global, FamilyOptions options);
  CounterFamily(const CounterFamily&) = delete;
  CounterFamily& operator=(const CounterFamily&) = delete;
  ~CounterFamily();

  void add(const LabelSet& labels, std::uint64_t n = 1);

  struct LabeledValue {
    std::string labels;  // canonical rendering
    std::uint64_t value = 0;
  };
  /// Every live cell plus (when non-zero) the overflow cell, sorted by
  /// canonical labels.
  std::vector<LabeledValue> collect() const;

  /// Live labeled series (overflow excluded). Always <= max_series.
  std::size_t series() const;
  /// Series evicted-and-folded into `other` so far.
  std::uint64_t folds() const;
  const std::string& name() const { return name_; }

 private:
  struct Node {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> touches{0};
  };

  Node& cell_locked(const std::string& key);
  void make_room_locked();

  const std::string name_;
  Counter& global_;
  const FamilyOptions options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Node>> cells_;
  std::list<std::string> probation_;   // FIFO: front = next fold victim
  std::list<std::string> protected_;   // promotion order: front = oldest
  std::atomic<std::uint64_t> other_{0};
  std::atomic<std::uint64_t> folds_{0};
};

/// Labeled histogram family: per-label full log2 histograms with the same
/// admission/fold policy as CounterFamily. record() also lands in the
/// wrapped global histogram (exemplar id included).
class HistogramFamily {
 public:
  HistogramFamily(std::string name, Histogram& global, FamilyOptions options);
  HistogramFamily(const HistogramFamily&) = delete;
  HistogramFamily& operator=(const HistogramFamily&) = delete;
  ~HistogramFamily();

  void record(const LabelSet& labels, std::uint64_t us,
              std::uint64_t exemplar_id = 0);

  struct LabeledHistogram {
    std::string labels;
    HistogramBuckets buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
  };
  std::vector<LabeledHistogram> collect() const;

  std::size_t series() const;
  std::uint64_t folds() const;
  const std::string& name() const { return name_; }

 private:
  struct Node {
    Histogram hist;
    std::atomic<std::uint64_t> touches{0};
  };

  Node& cell_locked(const std::string& key);
  void make_room_locked();

  const std::string name_;
  Histogram& global_;
  const FamilyOptions options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Node>> cells_;
  std::list<std::string> probation_;
  std::list<std::string> protected_;
  Histogram other_;
  std::atomic<std::uint64_t> folds_{0};
};

/// Hex rendering of a tenant fingerprint / key id for use as a label
/// value (16 lowercase hex digits — fixed width keeps scrapes greppable).
std::string tenant_label(std::uint64_t fingerprint);

}  // namespace cgs::obs
