#pragma once
// Lock-free observability primitives shared by every layer: Counter,
// Gauge, and a log2-bucketed latency Histogram. These are the instrument
// types obs::Registry hands out by name; subsystems keep references and
// hit them on their hot paths (each event is one relaxed fetch_add —
// cross-instrument consistency is not needed for monitoring), while the
// registry walks the same storage at scrape time for the Prometheus/JSON
// exporters (obs/export.h).
//
// The histogram covers 1us..2^63us in 64 power-of-two buckets plus a
// zero bucket: bucket index = bit_width(us), recording is a single
// lock-free increment plus a sum accumulation, and p50/p95/p99 come back
// from a bucket walk with ~2x worst-case resolution — plenty to tell
// "one linger" from "queue melt-down". Instruments are cache-line
// aligned so two adjacent instruments never false-share.

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace cgs::obs {

/// Monotonic event count. add() is wait-free; value() is a relaxed read.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, bytes buffered, high-water).
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Monotonic high-water update: the gauge only ever moves up.
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// 65 log2 buckets over microseconds: [0] holds 0us, [k] holds
/// [2^(k-1), 2^k) us.
using HistogramBuckets = std::array<std::uint64_t, 65>;

/// Upper bound (us) of the bucket holding the q-quantile observation of a
/// bucket array (q in [0, 1]); 0 when empty. Resolution is the bucket
/// width (~2x).
inline double bucket_quantile(const HistogramBuckets& buckets, double q) {
  CGS_CHECK(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  // rank in [1, total]: the +1 makes q=0 the min and q=1 the max.
  const auto rank = static_cast<std::uint64_t>(q * (total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank)
      return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
  }
  return std::ldexp(1.0, 64);
}

/// Lock-free log2 latency histogram (microseconds) with a running sum.
/// Each bucket additionally keeps the most recent non-zero exemplar id
/// recorded into it (a trace id), so a scrape can link a tail bucket to
/// an actual slow request.
class alignas(64) Histogram {
 public:
  void record(std::uint64_t us, std::uint64_t exemplar_id = 0) {
    // bit_width(us) is in [0, 64] for any u64, but clamp explicitly so a
    // future widening of the input type (or a narrower bucket array) can
    // never index past the overflow bucket — us >= 2^63 lands in [64].
    int bucket = std::bit_width(us);
    if (bucket > 64) bucket = 64;
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(us, std::memory_order_relaxed);
    if (exemplar_id != 0)
      exemplars_[static_cast<std::size_t>(bucket)].store(
          exemplar_id, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// One coherent-enough copy of the buckets (relaxed reads — monitoring
  /// data). Callers wanting several quantiles take one snapshot and walk
  /// it, not one merge per quantile.
  HistogramBuckets snapshot() const {
    HistogramBuckets snap{};
    merge_into(snap);
    return snap;
  }

  double quantile(double q) const { return bucket_quantile(snapshot(), q); }

  void merge_into(HistogramBuckets& acc) const {
    for (std::size_t i = 0; i < acc.size(); ++i)
      acc[i] += buckets_[i].load(std::memory_order_relaxed);
  }

  /// Fold a whole bucket array (plus its sum) into this histogram in one
  /// pass — used when a labeled family evicts a per-tenant series into
  /// its `other` overflow cell without losing a single observation.
  void merge_from(const HistogramBuckets& buckets, std::uint64_t sum) {
    for (std::size_t i = 0; i < buckets.size(); ++i)
      if (buckets[i] != 0)
        buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

  /// Per-bucket latest exemplar ids (0 = none recorded). Same indexing as
  /// snapshot(); reuses HistogramBuckets as a plain u64 array.
  HistogramBuckets exemplar_snapshot() const {
    HistogramBuckets snap{};
    for (std::size_t i = 0; i < snap.size(); ++i)
      snap[i] = exemplars_[i].load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
  std::array<std::atomic<std::uint64_t>, 65> exemplars_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time view of a bounded keyed cache — the shape every per-key
/// cache (ffLDL trees, NTT keys, recipes, netlists) reports. A `hit` is a
/// lookup served from memory; a `miss` ran the builder, and `warm_starts`
/// counts the misses the builder satisfied by decoding the persistent
/// store (store::KvStore / a registry disk frame) instead of recomputing.
/// `evictions` counts entries dropped under capacity pressure and `bytes`
/// is the cache's approximate resident cost under its byte budget.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  std::uint64_t evictions = 0;
  std::uint64_t warm_starts = 0;
  std::size_t bytes = 0;
};

}  // namespace cgs::obs
