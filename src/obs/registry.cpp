#include "obs/registry.h"

#include <algorithm>

namespace cgs::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

}  // namespace

Registry::Slot& Registry::slot_for(const std::string& name, Kind kind,
                                   bool callback) {
  CGS_CHECK_MSG(valid_metric_name(name),
                "obs: invalid metric name (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    CGS_CHECK_MSG(it->second.kind == kind,
                  "obs: metric re-registered with a different kind");
    if (callback) {
      CGS_CHECK_MSG(static_cast<bool>(it->second.fn),
                    "obs: callback name collides with an owned instrument");
    } else {
      CGS_CHECK_MSG(!it->second.fn,
                    "obs: owned instrument name collides with a callback");
    }
    return it->second;
  }
  Slot slot;
  slot.kind = kind;
  return slots_.emplace(name, std::move(slot)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/false);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kGauge, /*callback=*/false);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kHistogram, /*callback=*/false);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>();
  return *slot.histogram;
}

CounterFamily& Registry::counter_family(const std::string& name,
                                        FamilyOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/false);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  if (!slot.counter_family) {
    if (options.events == nullptr) {
      if (!events_) events_ = std::make_unique<EventLog>();
      options.events = events_.get();
    }
    slot.counter_family = std::make_unique<CounterFamily>(
        name, *slot.counter, std::move(options));
  }
  return *slot.counter_family;
}

HistogramFamily& Registry::histogram_family(const std::string& name,
                                            FamilyOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kHistogram, /*callback=*/false);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>();
  if (!slot.histogram_family) {
    if (options.events == nullptr) {
      if (!events_) events_ = std::make_unique<EventLog>();
      options.events = events_.get();
    }
    slot.histogram_family = std::make_unique<HistogramFamily>(
        name, *slot.histogram, std::move(options));
  }
  return *slot.histogram_family;
}

WindowedCounter& Registry::windowed_counter(const std::string& name,
                                            WindowOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/false);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  if (!slot.windowed_counter)
    slot.windowed_counter =
        std::make_unique<WindowedCounter>(*slot.counter, options);
  return *slot.windowed_counter;
}

WindowedHistogram& Registry::windowed_histogram(const std::string& name,
                                                WindowOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kHistogram, /*callback=*/false);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>();
  if (!slot.windowed_histogram)
    slot.windowed_histogram =
        std::make_unique<WindowedHistogram>(*slot.histogram, options);
  return *slot.windowed_histogram;
}

EventLog& Registry::events() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!events_) events_ = std::make_unique<EventLog>();
  return *events_;
}

const EventLog* Registry::events_or_null() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.get();
}

void Registry::gauge_fn(const std::string& name, std::function<double()> fn) {
  CGS_CHECK_MSG(static_cast<bool>(fn), "obs: null gauge callback");
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kGauge, /*callback=*/true);
  slot.fn = std::move(fn);
}

void Registry::counter_fn(const std::string& name,
                          std::function<double()> fn) {
  CGS_CHECK_MSG(static_cast<bool>(fn), "obs: null counter callback");
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/true);
  slot.fn = std::move(fn);
}

void Registry::unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(name);
}

void Registry::unregister_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.lower_bound(prefix);
  while (it != slots_.end() && it->first.compare(0, prefix.size(), prefix) == 0)
    it = slots_.erase(it);
}

std::vector<Sample> Registry::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    Sample s;
    s.name = name;
    s.kind = slot.kind;
    if (slot.fn) {
      s.value = slot.fn();
    } else if (slot.counter) {
      s.value = static_cast<double>(slot.counter->value());
    } else if (slot.gauge) {
      s.value = static_cast<double>(slot.gauge->value());
    } else if (slot.histogram) {
      s.is_histogram = true;
      s.buckets = slot.histogram->snapshot();
      for (std::uint64_t b : s.buckets) s.count += b;
      s.sum_us = slot.histogram->sum();
      s.exemplars = slot.histogram->exemplar_snapshot();
    }
    out.push_back(std::move(s));
    // Labeled cells ride directly behind their family's global sample so
    // exporters emit them under the one TYPE line.
    if (slot.counter_family) {
      for (auto& cell : slot.counter_family->collect()) {
        Sample c;
        c.name = name;
        c.labels = std::move(cell.labels);
        c.kind = Kind::kCounter;
        c.value = static_cast<double>(cell.value);
        out.push_back(std::move(c));
      }
    }
    if (slot.histogram_family) {
      for (auto& cell : slot.histogram_family->collect()) {
        Sample c;
        c.name = name;
        c.labels = std::move(cell.labels);
        c.kind = Kind::kHistogram;
        c.is_histogram = true;
        c.buckets = cell.buckets;
        c.count = cell.count;
        c.sum_us = cell.sum_us;
        out.push_back(std::move(c));
      }
    }
    // Derived window gauges (rates / last-window quantiles). Computed at
    // scrape time from the rings; names extend the base instrument's.
    auto derived = [&out](const std::string& n, double v) {
      Sample d;
      d.name = n;
      d.kind = Kind::kGauge;
      d.value = v;
      out.push_back(std::move(d));
    };
    if (slot.windowed_counter) {
      const WindowedCounter& w = *slot.windowed_counter;
      derived(name + "_win_count", static_cast<double>(w.window_count()));
      derived(name + "_win_rate", w.rate_per_s());
    }
    if (slot.windowed_histogram) {
      const WindowedHistogram& w = *slot.windowed_histogram;
      const HistogramBuckets wb = w.window_buckets();
      std::uint64_t wc = 0;
      for (std::uint64_t b : wb) wc += b;
      derived(name + "_win_count", static_cast<double>(wc));
      derived(name + "_win_p50_us", bucket_quantile(wb, 0.50));
      derived(name + "_win_p95_us", bucket_quantile(wb, 0.95));
      derived(name + "_win_p99_us", bucket_quantile(wb, 0.99));
    }
  }
  return out;  // map iteration keeps families/derived adjacent to their base
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace cgs::obs
