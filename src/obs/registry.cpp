#include "obs/registry.h"

#include <algorithm>

namespace cgs::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

}  // namespace

Registry::Slot& Registry::slot_for(const std::string& name, Kind kind,
                                   bool callback) {
  CGS_CHECK_MSG(valid_metric_name(name),
                "obs: invalid metric name (want [a-zA-Z_:][a-zA-Z0-9_:]*)");
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    CGS_CHECK_MSG(it->second.kind == kind,
                  "obs: metric re-registered with a different kind");
    if (callback) {
      CGS_CHECK_MSG(static_cast<bool>(it->second.fn),
                    "obs: callback name collides with an owned instrument");
    } else {
      CGS_CHECK_MSG(!it->second.fn,
                    "obs: owned instrument name collides with a callback");
    }
    return it->second;
  }
  Slot slot;
  slot.kind = kind;
  return slots_.emplace(name, std::move(slot)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/false);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kGauge, /*callback=*/false);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kHistogram, /*callback=*/false);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>();
  return *slot.histogram;
}

void Registry::gauge_fn(const std::string& name, std::function<double()> fn) {
  CGS_CHECK_MSG(static_cast<bool>(fn), "obs: null gauge callback");
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kGauge, /*callback=*/true);
  slot.fn = std::move(fn);
}

void Registry::counter_fn(const std::string& name,
                          std::function<double()> fn) {
  CGS_CHECK_MSG(static_cast<bool>(fn), "obs: null counter callback");
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slot_for(name, Kind::kCounter, /*callback=*/true);
  slot.fn = std::move(fn);
}

void Registry::unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(name);
}

void Registry::unregister_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.lower_bound(prefix);
  while (it != slots_.end() && it->first.compare(0, prefix.size(), prefix) == 0)
    it = slots_.erase(it);
}

std::vector<Sample> Registry::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    Sample s;
    s.name = name;
    s.kind = slot.kind;
    if (slot.fn) {
      s.value = slot.fn();
    } else if (slot.counter) {
      s.value = static_cast<double>(slot.counter->value());
    } else if (slot.gauge) {
      s.value = static_cast<double>(slot.gauge->value());
    } else if (slot.histogram) {
      s.is_histogram = true;
      s.buckets = slot.histogram->snapshot();
      for (std::uint64_t b : s.buckets) s.count += b;
      s.sum_us = slot.histogram->sum();
    }
    out.push_back(std::move(s));
  }
  return out;  // map iteration: already name-sorted
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace cgs::obs
