#pragma once
// obs::Registry: the process's unified metrics namespace. Subsystems ask
// for named instruments once at setup (counter()/gauge()/histogram() —
// create-or-get under a mutex, cold path only) and keep the returned
// reference for their hot paths; exporters (obs/export.h) call collect()
// to walk every instrument at scrape time. Instruments are owned by the
// registry and never move or die before it, so a reference taken at
// setup stays valid for the registry's lifetime — a subsystem that dies
// first simply leaves its counters frozen at their final values, which
// is exactly what a post-shutdown scrape should see.
//
// Callback instruments (gauge_fn / counter_fn) are for values that live
// in someone else's data structure — cache sizes, queue depths, pool
// occupancy — and are evaluated at collect() time. Because they read
// external state, whoever registered one MUST unregister it (unregister /
// unregister_prefix) before that state is destroyed; the owned atomic
// instruments have no such obligation. Callbacks must not call back into
// the same registry (collect() holds the registry lock).
//
// Names follow the Prometheus data model ([a-zA-Z_:][a-zA-Z0-9_:]*);
// asking for an existing name with the same kind returns the same
// instrument (two subsystems may deliberately share a counter), asking
// with a different kind is a caller bug and throws.

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/labels.h"
#include "obs/metric.h"
#include "obs/window.h"

namespace cgs::obs {

enum class Kind { kCounter, kGauge, kHistogram };

/// One instrument's value at collect() time. A labeled family appears as
/// its global (labels empty) sample followed by one sample per live cell
/// (labels = canonical rendering); exporters fold the labels into the
/// series name, never into a separate TYPE line.
struct Sample {
  std::string name;
  std::string labels;  // canonical label rendering; empty = unlabeled
  Kind kind = Kind::kCounter;
  double value = 0;  // counter/gauge (callback or owned)
  bool is_histogram = false;
  HistogramBuckets buckets{};    // histogram only
  HistogramBuckets exemplars{};  // histogram only: per-bucket trace ids
  std::uint64_t count = 0;       // histogram only
  std::uint64_t sum_us = 0;      // histogram only
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-get an owned instrument. The reference stays valid for the
  /// registry's lifetime. Throws cgs::Error on a kind mismatch or an
  /// invalid name.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Create-or-get a labeled family over `name`. The family wraps the
  /// owned instrument of the same name (created on demand): every labeled
  /// add/record also lands in the global series, so labeled cells always
  /// sum to it. `options` applies only on first creation; when
  /// options.events is null the registry wires in its own event log.
  CounterFamily& counter_family(const std::string& name,
                                FamilyOptions options = {});
  HistogramFamily& histogram_family(const std::string& name,
                                    FamilyOptions options = {});

  /// Create-or-get a sliding-window companion over `name` (same wrapping
  /// contract as families: one call feeds both the cumulative instrument
  /// and the window ring). collect() emits derived `<name>_win_*` gauges.
  WindowedCounter& windowed_counter(const std::string& name,
                                    WindowOptions options = {});
  WindowedHistogram& windowed_histogram(const std::string& name,
                                        WindowOptions options = {});

  /// The registry's structured event log (created on first use). Emit
  /// from any thread; drained by the exporters. Stable for the registry's
  /// lifetime once created.
  EventLog& events();
  /// Null until events() has been called — exporters use this so a
  /// registry that never emitted an event exposes no event section.
  const EventLog* events_or_null() const;

  /// Register a callback evaluated at collect() time. Replaces an
  /// existing callback under the same name (a restarted subsystem
  /// re-binds its gauges); throws if the name is held by an owned
  /// instrument.
  void gauge_fn(const std::string& name, std::function<double()> fn);
  void counter_fn(const std::string& name, std::function<double()> fn);

  /// Drop one instrument / every instrument whose name starts with
  /// `prefix`. Required for callbacks before their backing state dies;
  /// legal (but rarely wanted) for owned instruments.
  void unregister(const std::string& name);
  void unregister_prefix(const std::string& prefix);

  /// Snapshot every instrument, sorted by name (stable exposition order).
  std::vector<Sample> collect() const;

  std::size_t size() const;

 private:
  struct Slot {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;  // callback instruments only
    // Optional companions wrapping the owned instrument above.
    std::unique_ptr<CounterFamily> counter_family;
    std::unique_ptr<HistogramFamily> histogram_family;
    std::unique_ptr<WindowedCounter> windowed_counter;
    std::unique_ptr<WindowedHistogram> windowed_histogram;
  };

  Slot& slot_for(const std::string& name, Kind kind, bool callback);

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::unique_ptr<EventLog> events_;  // created on first events() call
};

}  // namespace cgs::obs
