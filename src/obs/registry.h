#pragma once
// obs::Registry: the process's unified metrics namespace. Subsystems ask
// for named instruments once at setup (counter()/gauge()/histogram() —
// create-or-get under a mutex, cold path only) and keep the returned
// reference for their hot paths; exporters (obs/export.h) call collect()
// to walk every instrument at scrape time. Instruments are owned by the
// registry and never move or die before it, so a reference taken at
// setup stays valid for the registry's lifetime — a subsystem that dies
// first simply leaves its counters frozen at their final values, which
// is exactly what a post-shutdown scrape should see.
//
// Callback instruments (gauge_fn / counter_fn) are for values that live
// in someone else's data structure — cache sizes, queue depths, pool
// occupancy — and are evaluated at collect() time. Because they read
// external state, whoever registered one MUST unregister it (unregister /
// unregister_prefix) before that state is destroyed; the owned atomic
// instruments have no such obligation. Callbacks must not call back into
// the same registry (collect() holds the registry lock).
//
// Names follow the Prometheus data model ([a-zA-Z_:][a-zA-Z0-9_:]*);
// asking for an existing name with the same kind returns the same
// instrument (two subsystems may deliberately share a counter), asking
// with a different kind is a caller bug and throws.

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metric.h"

namespace cgs::obs {

enum class Kind { kCounter, kGauge, kHistogram };

/// One instrument's value at collect() time.
struct Sample {
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0;  // counter/gauge (callback or owned)
  bool is_histogram = false;
  HistogramBuckets buckets{};  // histogram only
  std::uint64_t count = 0;     // histogram only
  std::uint64_t sum_us = 0;    // histogram only
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-get an owned instrument. The reference stays valid for the
  /// registry's lifetime. Throws cgs::Error on a kind mismatch or an
  /// invalid name.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Register a callback evaluated at collect() time. Replaces an
  /// existing callback under the same name (a restarted subsystem
  /// re-binds its gauges); throws if the name is held by an owned
  /// instrument.
  void gauge_fn(const std::string& name, std::function<double()> fn);
  void counter_fn(const std::string& name, std::function<double()> fn);

  /// Drop one instrument / every instrument whose name starts with
  /// `prefix`. Required for callbacks before their backing state dies;
  /// legal (but rarely wanted) for owned instruments.
  void unregister(const std::string& name);
  void unregister_prefix(const std::string& prefix);

  /// Snapshot every instrument, sorted by name (stable exposition order).
  std::vector<Sample> collect() const;

  std::size_t size() const;

 private:
  struct Slot {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;  // callback instruments only
  };

  Slot& slot_for(const std::string& name, Kind kind, bool callback);

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace cgs::obs
