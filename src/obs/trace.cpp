#include "obs/trace.h"

#include <algorithm>

namespace cgs::obs {

namespace {

/// Delta between two stage stamps, or 0 if either stage never happened.
/// Stamps come from one steady clock so inversion means "not stamped in
/// order" (a stage skipped for this request) — treat as absent.
std::uint64_t delta(const Trace& t, Stage from, Stage to) {
  const std::uint64_t a = t.at(from);
  const std::uint64_t b = t.at(to);
  if (a == 0 || b == 0 || b < a) return 0;
  return b - a;
}

}  // namespace

Tracer::Tracer(Registry& registry, TraceOptions options,
               const std::string& prefix)
    : options_(options),
      queue_wait_(registry.histogram(prefix + "_queue_wait_us")),
      linger_(registry.histogram(prefix + "_linger_us")),
      compute_(registry.histogram(prefix + "_compute_us")),
      fulfil_(registry.histogram(prefix + "_fulfil_us")),
      write_stall_(registry.histogram(prefix + "_write_stall_us")),
      total_(registry.histogram(prefix + "_total_us")),
      sampled_(registry.counter(prefix + "_sampled_total")),
      ring_size_(options.slow_ring) {
  if (ring_size_ > 0) ring_ = std::make_unique<Slot[]>(ring_size_);
}

void Tracer::finish(const Trace& t) {
  if (!t.active) return;
  sampled_.add(1);
  queue_wait_.record(delta(t, Stage::kEnqueued, Stage::kBatchClosed));
  linger_.record(delta(t, Stage::kBatchClosed, Stage::kEngineStart));
  // Exemplars on the stages operators chase tails in: a scrape's p99
  // compute/total bucket then names an actual trace id.
  compute_.record(delta(t, Stage::kEngineStart, Stage::kEngineEnd),
                  t.trace_id);
  fulfil_.record(delta(t, Stage::kEngineEnd, Stage::kFulfilled));
  // write_stall only exists for requests whose flush was observed.
  if (t.at(Stage::kFlushed) != 0)
    write_stall_.record(delta(t, Stage::kFulfilled, Stage::kFlushed));
  // Total: received -> last stamped stage.
  std::uint64_t last = 0;
  for (std::uint64_t s : t.stamps) last = std::max(last, s);
  const std::uint64_t first = t.at(Stage::kReceived);
  const std::uint64_t total_us = (first != 0 && last > first) ? last - first : 0;
  total_.record(total_us, t.trace_id);
  offer_slow(t, total_us);
}

void Tracer::offer_slow(const Trace& t, std::uint64_t total_us) {
  if (ring_size_ == 0 || total_us == 0) return;
  // Find the currently-cheapest slot; replace it if we are slower. The
  // scan is racy (totals move under us) — acceptable: the ring only has
  // to be approximately the K slowest.
  std::size_t victim = 0;
  std::uint64_t victim_total = ~std::uint64_t{0};
  for (std::size_t i = 0; i < ring_size_; ++i) {
    const std::uint64_t cur = ring_[i].total.load(std::memory_order_relaxed);
    if (cur < victim_total) {
      victim_total = cur;
      victim = i;
    }
  }
  if (total_us <= victim_total) return;
  Slot& slot = ring_[victim];
  std::uint32_t v = slot.version.load(std::memory_order_relaxed);
  if (v & 1u) return;  // another writer is inside; drop ours
  if (!slot.version.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acquire))
    return;  // lost the race; drop
  slot.stamps = t.stamps;
  slot.trace_id = t.trace_id;
  slot.request_id = t.request_id;
  slot.tenant = t.tenant;
  slot.req_class = t.req_class;
  slot.total.store(total_us, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

std::vector<SlowTrace> Tracer::slowest() const {
  std::vector<SlowTrace> out;
  out.reserve(ring_size_);
  for (std::size_t i = 0; i < ring_size_; ++i) {
    const Slot& slot = ring_[i];
    const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 & 1u) continue;  // writer inside
    SlowTrace st;
    st.total_us = slot.total.load(std::memory_order_relaxed);
    st.trace_id = slot.trace_id;
    st.request_id = slot.request_id;
    st.tenant = slot.tenant;
    st.req_class = slot.req_class;
    st.stamps = slot.stamps;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1) continue;  // torn
    if (st.total_us != 0) out.push_back(st);
  }
  std::sort(out.begin(), out.end(), [](const SlowTrace& a, const SlowTrace& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

}  // namespace cgs::obs
