#pragma once
// Sampled per-request stage tracing. A request's life through the serving
// stack is a fixed sequence of instants:
//
//   received -> enqueued -> batch_closed -> engine_start -> engine_end
//            -> fulfilled -> flushed
//
// Tracer::begin() decides (1-in-sample_every) whether this request gets a
// Trace; an unsampled Trace is inert and every stamp() on it is a single
// predictable branch, so the off path costs nothing measurable. finish()
// folds the sampled stamps into per-stage histograms in the registry —
// queue-wait (enqueued->batch_closed), linger (batch_closed->engine_start),
// compute (engine_start->engine_end), fulfil (engine_end->fulfilled),
// write-stall (fulfilled->flushed) and end-to-end total — and keeps the K
// slowest complete traces in a lock-free seqlock ring so "what did the
// worst request actually do" survives until scrape time.
//
// Stamps are steady-clock microseconds; 0 means "stage never happened"
// (e.g. flushed is only stamped when the transport reports the write).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace cgs::obs {

enum class Stage : std::uint8_t {
  kReceived = 0,
  kEnqueued,
  kBatchClosed,
  kEngineStart,
  kEngineEnd,
  kFulfilled,
  kFlushed,
};
inline constexpr std::size_t kNumStages = 7;

/// What kind of work a traced request was — kept with the trace so the
/// slow ring can say "the worst request was a keygen", not just "slow".
enum class RequestClass : std::uint8_t {
  kOther = 0,
  kSign,
  kVerify,
  kKeygen,
  kGauss,
};

inline const char* request_class_name(RequestClass c) {
  switch (c) {
    case RequestClass::kOther:
      return "other";
    case RequestClass::kSign:
      return "sign";
    case RequestClass::kVerify:
      return "verify";
    case RequestClass::kKeygen:
      return "keygen";
    case RequestClass::kGauss:
      return "gauss";
  }
  return "other";
}

/// One request's stage stamps plus its identity (trace id, wire request
/// id, request class, tenant fingerprint). Cheap to carry by value inside
/// a job; all stamping methods no-op unless the trace was sampled.
struct Trace {
  bool active = false;
  std::uint64_t trace_id = 0;    // non-zero iff active; may come off the wire
  std::uint64_t request_id = 0;  // caller-assigned wire request id
  std::uint64_t tenant = 0;      // key fingerprint / shard key; 0 = none
  RequestClass req_class = RequestClass::kOther;
  std::array<std::uint64_t, kNumStages> stamps{};  // us; 0 = not stamped

  static std::uint64_t now_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void stamp(Stage s) {
    if (active) stamps[static_cast<std::size_t>(s)] = now_us();
  }
  /// Backdate a stage to an instant captured earlier (e.g. the transport
  /// read time, taken before sampling was decided).
  void stamp_at(Stage s, std::uint64_t us) {
    if (active) stamps[static_cast<std::size_t>(s)] = us;
  }
  std::uint64_t at(Stage s) const {
    return stamps[static_cast<std::size_t>(s)];
  }
};

struct TraceOptions {
  /// Sample one request in this many; 0 disables tracing entirely (the
  /// begin() fast path is then a single branch, no atomic).
  std::uint32_t sample_every = 64;
  /// How many slowest traces to retain for the scrape endpoint.
  std::size_t slow_ring = 16;
};

/// A finished trace as read back from the slow ring, identity included —
/// enough for cgs_stats to name the worst request, not just time it.
struct SlowTrace {
  std::uint64_t total_us = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  RequestClass req_class = RequestClass::kOther;
  std::array<std::uint64_t, kNumStages> stamps{};
};

class Tracer {
 public:
  /// Registers `<prefix>_{queue_wait,linger,compute,fulfil,write_stall,
  /// total}_us` histograms and `<prefix>_sampled_total` in `registry`
  /// (owned instruments — nothing to unregister). The registry must
  /// outlive the tracer.
  Tracer(Registry& registry, TraceOptions options,
         const std::string& prefix = "cgs_trace");

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return options_.sample_every != 0; }

  /// Hand out a Trace, sampled 1-in-sample_every. A non-zero
  /// `wire_trace_id` (the client propagated trace context) forces the
  /// sample and reuses the wire id, so a distributed trace is never cut
  /// short server-side; otherwise a sampled trace gets a fresh id.
  /// Thread-safe. sample_every == 0 disables everything, wire ids
  /// included (the off path stays one branch).
  Trace begin(std::uint64_t wire_trace_id = 0) {
    Trace t;
    if (options_.sample_every == 0) return t;  // one branch when off
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    if (wire_trace_id != 0) {
      t.active = true;
      t.trace_id = wire_trace_id;
    } else if (seq % options_.sample_every == 0) {
      t.active = true;
      t.trace_id = make_trace_id(seq);
    }
    if (t.active) t.stamps[0] = Trace::now_us();  // received
    return t;
  }

  /// Deterministic non-zero id from the sampling sequence (SplitMix64
  /// finalizer — the same mixer the dispatcher shards with).
  static std::uint64_t make_trace_id(std::uint64_t seq) {
    std::uint64_t x = seq + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x == 0 ? 1 : x;
  }

  /// Fold a finished trace into the stage histograms and, if it is among
  /// the slowest seen, the slow ring. No-op for unsampled traces.
  void finish(const Trace& t);

  /// Copies of the retained slowest traces, slowest first. Lock-free
  /// readers: a slot being overwritten concurrently is skipped.
  std::vector<SlowTrace> slowest() const;

 private:
  // Seqlock slot: even version = stable, odd = writer inside. total is
  // atomic so the min-scan can read it without entering the lock.
  struct alignas(64) Slot {
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::uint64_t> total{0};
    std::uint64_t trace_id = 0;
    std::uint64_t request_id = 0;
    std::uint64_t tenant = 0;
    RequestClass req_class = RequestClass::kOther;
    std::array<std::uint64_t, kNumStages> stamps{};
  };

  void offer_slow(const Trace& t, std::uint64_t total_us);

  TraceOptions options_;
  std::atomic<std::uint64_t> seq_{0};
  Histogram& queue_wait_;
  Histogram& linger_;
  Histogram& compute_;
  Histogram& fulfil_;
  Histogram& write_stall_;
  Histogram& total_;
  Counter& sampled_;
  std::unique_ptr<Slot[]> ring_;
  std::size_t ring_size_;
};

}  // namespace cgs::obs
