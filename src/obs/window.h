#pragma once
// obs::Windowed<Counter|Histogram>: sliding-window companions to the
// cumulative instruments. A cumulative counter answers "how many ever";
// operations needs "how many per second right now" and "what is p99 over
// the last minute". Each windowed instrument wraps its cumulative global
// (every record lands in both) and adds a ring of fixed epochs (default
// 12 x 10s): recording CASes the target slot's epoch id forward when a
// new epoch begins — the winner zeroes the slot, losers spin the handful
// of nanoseconds until the new epoch is published, then add. All state is
// atomic (TSan-clean); the one approximation is a thread preempted across
// an epoch boundary attributing a single observation to the wrong 10s
// slot, which is noise at monitoring granularity and never desynchronizes
// the cumulative global (that was already bumped).
//
// Reads merge every slot whose epoch id is still inside the window, so an
// idle instrument decays to zero as its slots age out rather than
// reporting stale traffic forever.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>

#include "obs/metric.h"

namespace cgs::obs {

struct WindowOptions {
  std::uint64_t epoch_us = 10'000'000;  // 10 s per slot
  std::size_t epochs = 12;              // 12 slots -> 2-minute window
};

namespace detail {

inline std::uint64_t window_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// CAS the slot's epoch id up to `epoch`, zeroing via `reset` when this
/// thread wins the rotation. Returns once the slot is publishing `epoch`
/// or a later one (a straggler then adds to the newer epoch — see the
/// header comment).
template <typename Reset>
void rotate_slot(std::atomic<std::uint64_t>& slot_epoch, std::uint64_t epoch,
                 Reset&& reset) {
  std::uint64_t cur = slot_epoch.load(std::memory_order_acquire);
  while (cur < epoch) {
    // Claim with an odd sentinel is unnecessary: the winner zeroes and
    // THEN publishes the epoch (release), and losers wait below, so no
    // thread adds between the claim and the zeroing.
    if (slot_epoch.compare_exchange_weak(cur, ~std::uint64_t{0},
                                         std::memory_order_acq_rel)) {
      reset();
      slot_epoch.store(epoch, std::memory_order_release);
      return;
    }
  }
  // Another thread is rotating (sentinel) or already published: wait for
  // a real epoch id >= ours.
  while (slot_epoch.load(std::memory_order_acquire) == ~std::uint64_t{0}) {
  }
}

}  // namespace detail

/// Sliding-window counter. add() also bumps the wrapped cumulative
/// counter, so the global series and its window agree by construction.
class WindowedCounter {
 public:
  WindowedCounter(Counter& global, WindowOptions options)
      : global_(global),
        options_(options),
        slots_(std::make_unique<Slot[]>(options.epochs)) {
    CGS_CHECK(options_.epochs > 0 && options_.epoch_us > 0);
  }

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void add(std::uint64_t n = 1) { add_at(n, detail::window_now_us()); }

  void add_at(std::uint64_t n, std::uint64_t now_us) {
    global_.add(n);
    const std::uint64_t epoch = now_us / options_.epoch_us;
    Slot& s = slots_[epoch % options_.epochs];
    detail::rotate_slot(s.epoch, epoch, [&s] {
      s.n.store(0, std::memory_order_relaxed);
    });
    s.n.fetch_add(n, std::memory_order_relaxed);
  }

  /// Events inside the live window (slots older than the window excluded).
  std::uint64_t window_count(std::uint64_t now_us = 0) const {
    if (now_us == 0) now_us = detail::window_now_us();
    const std::uint64_t epoch = now_us / options_.epoch_us;
    const std::uint64_t oldest =
        epoch >= options_.epochs ? epoch - options_.epochs + 1 : 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < options_.epochs; ++i) {
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e == ~std::uint64_t{0} || e < oldest || e > epoch) continue;
      total += slots_[i].n.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Mean events per second over the window span.
  double rate_per_s(std::uint64_t now_us = 0) const {
    const double span_s = static_cast<double>(options_.epoch_us) *
                          static_cast<double>(options_.epochs) / 1e6;
    return static_cast<double>(window_count(now_us)) / span_s;
  }

  const WindowOptions& options() const { return options_; }

 private:
  // epoch 0 = "never used": the slot carries zero counts, so window reads
  // that include it are unchanged. ~0 is reserved as the mid-rotation
  // sentinel (see detail::rotate_slot).
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> n{0};
  };

  Counter& global_;
  WindowOptions options_;
  std::unique_ptr<Slot[]> slots_;
};

/// Sliding-window log2 latency histogram wrapping a cumulative
/// obs::Histogram (same bucket layout). record() lands in both; window
/// reads answer "last-window p50/p95/p99" next to the cumulative series.
class WindowedHistogram {
 public:
  WindowedHistogram(Histogram& global, WindowOptions options)
      : global_(global),
        options_(options),
        slots_(std::make_unique<Slot[]>(options.epochs)) {
    CGS_CHECK(options_.epochs > 0 && options_.epoch_us > 0);
  }

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void record(std::uint64_t us, std::uint64_t exemplar_trace_id = 0) {
    global_.record(us, exemplar_trace_id);
    const std::uint64_t now = detail::window_now_us();
    const std::uint64_t epoch = now / options_.epoch_us;
    Slot& s = slots_[epoch % options_.epochs];
    detail::rotate_slot(s.epoch, epoch, [&s] {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    });
    int bucket = std::bit_width(us);
    if (bucket > 64) bucket = 64;
    s.buckets[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(us, std::memory_order_relaxed);
  }

  /// Merged buckets of every slot still inside the window.
  HistogramBuckets window_buckets(std::uint64_t now_us = 0) const {
    if (now_us == 0) now_us = detail::window_now_us();
    const std::uint64_t epoch = now_us / options_.epoch_us;
    const std::uint64_t oldest =
        epoch >= options_.epochs ? epoch - options_.epochs + 1 : 0;
    HistogramBuckets acc{};
    for (std::size_t i = 0; i < options_.epochs; ++i) {
      const std::uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e == ~std::uint64_t{0} || e < oldest || e > epoch) continue;
      for (std::size_t b = 0; b < acc.size(); ++b)
        acc[b] += slots_[i].buckets[b].load(std::memory_order_relaxed);
    }
    return acc;
  }

  std::uint64_t window_count(std::uint64_t now_us = 0) const {
    const HistogramBuckets acc = window_buckets(now_us);
    std::uint64_t n = 0;
    for (std::uint64_t b : acc) n += b;
    return n;
  }

  double window_quantile(double q, std::uint64_t now_us = 0) const {
    return bucket_quantile(window_buckets(now_us), q);
  }

  const WindowOptions& options() const { return options_; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = never used (zero counts)
    std::array<std::atomic<std::uint64_t>, 65> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };

  Histogram& global_;
  WindowOptions options_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace cgs::obs
