#include "prng/chacha20.h"

#include <bit>
#include <cstring>

#include "common/bits.h"

namespace cgs::prng {

namespace {

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

// Eight blocks per call via GCC vector extensions: lane j of every vector
// is block (counter + j)'s state word, so the rounds are the scalar code
// verbatim on 8-wide words. The byte stream is identical to eight
// sequential scalar blocks. On generic x86-64 builds the 256-bit vectors
// lower to SSE pairs; target_clones adds a runtime-dispatched AVX2 clone
// on ELF hosts that support it, roughly doubling bulk keystream.
using u32x8 = std::uint32_t __attribute__((vector_size(32)));

// ThreadSanitizer cannot run IFUNC resolvers (they fire during relocation,
// before the TSan runtime exists — instant segfault at load), so the clone
// dispatch is compiled out under TSan; the generic vector path remains.
#if defined(__SANITIZE_THREAD__)
#define CGS_CHACHA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CGS_CHACHA_TSAN 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute) && \
    !defined(CGS_CHACHA_TSAN)
#if __has_attribute(target_clones)
#define CGS_CHACHA_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef CGS_CHACHA_CLONES
#define CGS_CHACHA_CLONES
#endif

inline u32x8 rotl_v(u32x8 v, int r) {
  return (v << r) | (v >> (32 - r));
}

inline void quarter_round_v(u32x8& a, u32x8& b, u32x8& c, u32x8& d) {
  a += b; d ^= a; d = rotl_v(d, 16);
  c += d; b ^= c; b = rotl_v(b, 12);
  a += b; d ^= a; d = rotl_v(d, 8);
  c += d; b ^= c; b = rotl_v(b, 7);
}

CGS_CHACHA_CLONES
void chacha20_blocks8(const std::array<std::uint32_t, 16>& state,
                      std::uint32_t counter, std::uint8_t out[512]) {
  u32x8 s[16], x[16];
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t w = state[i];
    s[i] = u32x8{w, w, w, w, w, w, w, w};
  }
  s[12] = u32x8{counter,     counter + 1, counter + 2, counter + 3,
                counter + 4, counter + 5, counter + 6, counter + 7};
  for (int i = 0; i < 16; ++i) x[i] = s[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round_v(x[0], x[4], x[8], x[12]);
    quarter_round_v(x[1], x[5], x[9], x[13]);
    quarter_round_v(x[2], x[6], x[10], x[14]);
    quarter_round_v(x[3], x[7], x[11], x[15]);
    quarter_round_v(x[0], x[5], x[10], x[15]);
    quarter_round_v(x[1], x[6], x[11], x[12]);
    quarter_round_v(x[2], x[7], x[8], x[13]);
    quarter_round_v(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += s[i];
  for (int j = 0; j < 8; ++j) {
    for (int i = 0; i < 16; ++i) {
      if constexpr (std::endian::native == std::endian::little) {
        // Single u32 store == store32's byte order on LE; the per-byte
        // form defeats the vector lane extract and costs ~a third of the
        // whole block function.
        const std::uint32_t v = x[i][j];
        std::memcpy(out + 64 * j + 4 * i, &v, 4);
      } else {
        store32(out + 64 * j + 4 * i, x[i][j]);
      }
    }
  }
}

std::array<std::uint32_t, 16> make_state(
    const std::array<std::uint8_t, 32>& key,
    const std::array<std::uint8_t, 12>& nonce) {
  std::array<std::uint32_t, 16> st;
  st[0] = 0x61707865u; st[1] = 0x3320646eu;
  st[2] = 0x79622d32u; st[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) st[4 + i] = load32(key.data() + 4 * i);
  st[12] = 0;  // per-block counter, patched at generation time
  for (int i = 0; i < 3; ++i) st[13 + i] = load32(nonce.data() + 4 * i);
  return st;
}

}  // namespace

namespace {

// One scalar block from precomputed input words (counter patched in) —
// the single place the key/nonce-derived state is consumed, shared by the
// public RFC entry point and the source's refill().
void chacha20_block_state(const std::array<std::uint32_t, 16>& state,
                          std::uint32_t counter,
                          std::span<std::uint8_t, 64> out) {
  std::array<std::uint32_t, 16> st = state;
  st[12] = counter;
  std::uint32_t x[16];
  std::memcpy(x, st.data(), sizeof x);
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i)
    store32(out.data() + 4 * i, x[i] + st[static_cast<std::size_t>(i)]);
}

}  // namespace

void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint32_t counter, std::span<std::uint8_t, 64> out) {
  chacha20_block_state(make_state(key, nonce), counter, out);
}

ChaCha20Source::ChaCha20Source(std::uint64_t seed) {
  // Expand the seed across the key with distinct lane constants; this is a
  // convenience constructor for benches/tests, not a KDF.
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t lane = seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    std::memcpy(key_.data() + 8 * i, &lane, 8);
  }
  nonce_.fill(0);
  state_ = make_state(key_, nonce_);
}

ChaCha20Source::ChaCha20Source(const std::array<std::uint8_t, 32>& key,
                               const std::array<std::uint8_t, 12>& nonce)
    : key_(key), nonce_(nonce), state_(make_state(key, nonce)) {}

void ChaCha20Source::refill() {
  chacha20_block_state(state_, counter_++, block_);
  pos_ = 0;
}

std::uint64_t ChaCha20Source::next_word() {
  if (pos_ >= 64) refill();
  std::uint64_t w;
  std::memcpy(&w, block_.data() + pos_, 8);
  pos_ += 8;
  return w;
}

void ChaCha20Source::fill_words(std::span<std::uint64_t> out) {
  std::size_t i = 0;
  // Drain the partially consumed block first so the combined stream equals
  // the same sequence of next_word() calls.
  while (i < out.size() && pos_ < 64) {
    std::memcpy(&out[i++], block_.data() + pos_, 8);
    pos_ += 8;
  }
  // Whole blocks straight into the destination, eight at a time.
  std::uint8_t octet[512];
  while (out.size() - i >= 64) {
    chacha20_blocks8(state_, counter_, octet);
    counter_ += 8;
    std::memcpy(&out[i], octet, 512);
    i += 64;
  }
  // Tail: buffer one block and serve the leading words; the rest stays for
  // future next_word()/fill_words() calls.
  while (i < out.size()) {
    refill();
    while (i < out.size() && pos_ < 64) {
      std::memcpy(&out[i++], block_.data() + pos_, 8);
      pos_ += 8;
    }
  }
}

}  // namespace cgs::prng
