#include "prng/chacha20.h"

#include <cstring>

#include "common/bits.h"

namespace cgs::prng {

namespace {

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint32_t counter, std::span<std::uint8_t, 64> out) {
  std::uint32_t st[16];
  st[0] = 0x61707865u; st[1] = 0x3320646eu;
  st[2] = 0x79622d32u; st[3] = 0x6b206574u;
  for (int i = 0; i < 8; ++i) st[4 + i] = load32(key.data() + 4 * i);
  st[12] = counter;
  for (int i = 0; i < 3; ++i) st[13 + i] = load32(nonce.data() + 4 * i);

  std::uint32_t x[16];
  std::memcpy(x, st, sizeof x);
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store32(out.data() + 4 * i, x[i] + st[i]);
}

ChaCha20Source::ChaCha20Source(std::uint64_t seed) {
  // Expand the seed across the key with distinct lane constants; this is a
  // convenience constructor for benches/tests, not a KDF.
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t lane = seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    std::memcpy(key_.data() + 8 * i, &lane, 8);
  }
  nonce_.fill(0);
}

ChaCha20Source::ChaCha20Source(const std::array<std::uint8_t, 32>& key,
                               const std::array<std::uint8_t, 12>& nonce)
    : key_(key), nonce_(nonce) {}

void ChaCha20Source::refill() {
  chacha20_block(key_, nonce_, counter_++, block_);
  pos_ = 0;
}

std::uint64_t ChaCha20Source::next_word() {
  if (pos_ >= 64) refill();
  std::uint64_t w;
  std::memcpy(&w, block_.data() + pos_, 8);
  pos_ += 8;
  return w;
}

}  // namespace cgs::prng
