#pragma once
// ChaCha20 (RFC 8439 block function) as a RandomBitSource — the PRNG the
// paper benches against (its Table 1/2 rows all draw path bits from
// ChaCha20). fill_words() is overridden with a bulk path that generates
// eight blocks per core call via GCC vector extensions (with a
// runtime-dispatched AVX2 clone on hosts that support it): the bit-sliced
// samplers consume one word per precision bit per batch, so at 128-bit
// precision the PRNG is a first-order term of the whole online path
// (exactly the overhead the paper's §3.3 accounts for).

#include <array>
#include <cstdint>
#include <span>

#include "common/randombits.h"

namespace cgs::prng {

/// One RFC 8439 block: 64 bytes of keystream for (key, nonce, counter).
void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint32_t counter, std::span<std::uint8_t, 64> out);

class ChaCha20Source final : public RandomBitSource {
 public:
  /// Deterministic stream from a 64-bit seed (expanded into the key).
  explicit ChaCha20Source(std::uint64_t seed);

  ChaCha20Source(const std::array<std::uint8_t, 32>& key,
                 const std::array<std::uint8_t, 12>& nonce);

  std::uint64_t next_word() override;

  /// Bulk keystream: bit-identical to the same number of next_word()
  /// calls, but generated eight blocks at a time (vectorized core)
  /// straight into `out` — no per-word virtual dispatch, no byte-buffer
  /// shuffling.
  void fill_words(std::span<std::uint64_t> out) override;

  /// Number of 64-byte blocks generated so far (PRNG-cost accounting).
  std::uint64_t blocks_generated() const { return counter_; }

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 12> nonce_{};
  std::array<std::uint32_t, 16> state_{};  // input words (counter at [12])
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  int pos_ = 64;  // byte offset into block_, 64 == empty
};

}  // namespace cgs::prng
