#pragma once
// ChaCha20 stream cipher used as the pseudo-random generator for sampling —
// the same choice as the Falcon reference implementation and this paper's
// Table 1 ("with ChaCha as the pseudo random number generator").

#include <array>
#include <cstdint>
#include <span>

#include "common/randombits.h"

namespace cgs::prng {

/// Raw ChaCha20 block function (RFC 8439 layout): 32-byte key, 12-byte
/// nonce, 32-bit block counter -> 64-byte keystream block.
void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::uint32_t counter, std::span<std::uint8_t, 64> out);

/// RandomBitSource over the ChaCha20 keystream.
class ChaCha20Source final : public RandomBitSource {
 public:
  /// Deterministic stream from a 64-bit seed (expanded into the key).
  explicit ChaCha20Source(std::uint64_t seed);

  ChaCha20Source(const std::array<std::uint8_t, 32>& key,
                 const std::array<std::uint8_t, 12>& nonce);

  std::uint64_t next_word() override;

  /// Number of 64-byte blocks generated so far (PRNG-cost accounting).
  std::uint64_t blocks_generated() const { return counter_; }

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 12> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  int pos_ = 64;  // byte offset into block_, 64 == empty
};

}  // namespace cgs::prng
