#include "prng/keccak.h"

#include <cstring>

#include "common/bits.h"
#include "common/check.h"

namespace cgs::prng {

namespace {

constexpr std::uint64_t kRC[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull};

constexpr int kRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                          25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

}  // namespace

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y], kRho[x + 5 * y]);
    // Chi
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        a[x + 5 * y] =
            b[x + 5 * y] ^ ((~b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
    // Iota
    a[0] ^= kRC[round];
  }
}

// Same clone-dispatch arrangement as chacha20.cpp: on generic x86-64
// builds the 256-bit vectors lower to SSE pairs (~2 lanes' worth of win);
// target_clones adds a runtime-dispatched AVX2 clone where supported.
// IFUNC resolvers fire before the TSan runtime exists, so the dispatch is
// compiled out under ThreadSanitizer.
#if defined(__SANITIZE_THREAD__)
#define CGS_KECCAK_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CGS_KECCAK_TSAN 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute) && \
    !defined(CGS_KECCAK_TSAN)
#if __has_attribute(target_clones)
#define CGS_KECCAK_CLONES __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef CGS_KECCAK_CLONES
#define CGS_KECCAK_CLONES
#endif

// A macro, not a helper function, on purpose: an out-of-line call from
// the AVX2 clone into default-target code would pass the vectors through
// a mismatched register ABI (garbage at -O0, where nothing inlines on
// its own), and even an always_inline function with a vector return
// draws gcc's -Wpsabi ABI note.
#define CGS_ROTL_V(v, r) \
  ((r) == 0 ? (v) : (U64x4)(((v) << (r)) | ((v) >> (64 - (r)))))

CGS_KECCAK_CLONES
void keccak_f1600_x4(std::array<U64x4, 25>& a) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    U64x4 c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ CGS_ROTL_V(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi
    U64x4 b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        b[y + 5 * ((2 * x + 3 * y) % 5)] =
            CGS_ROTL_V(a[x + 5 * y], kRho[x + 5 * y]);
    // Chi
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        a[x + 5 * y] =
            b[x + 5 * y] ^ ((~b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
    // Iota
    a[0] ^= U64x4{kRC[round], kRC[round], kRC[round], kRC[round]};
  }
}
#undef CGS_ROTL_V

Shake::Shake(Variant v)
    : rate_(v == Variant::kShake128 ? 168 : 136) {}

void Shake::absorb(std::span<const std::uint8_t> data) {
  CGS_CHECK_MSG(!squeezing_, "absorb after squeeze");
  for (std::uint8_t byte : data) {
    reinterpret_cast<std::uint8_t*>(state_.data())[pos_] ^= byte;
    if (++pos_ == rate_) permute_and_reset_pos();
  }
}

void Shake::absorb(std::string_view s) {
  absorb(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Shake::permute_and_reset_pos() {
  keccak_f1600(state_);
  pos_ = 0;
}

std::array<std::uint64_t, 25> Shake::finalize_state() {
  CGS_CHECK_MSG(!squeezing_, "finalize after squeeze");
  // SHAKE domain separation + pad10*1.
  auto* bytes = reinterpret_cast<std::uint8_t*>(state_.data());
  bytes[pos_] ^= 0x1f;
  bytes[rate_ - 1] ^= 0x80;
  squeezing_ = true;
  pos_ = rate_;  // a later squeeze() permutes first, continuing the stream
  return state_;
}

void Shake::squeeze(std::span<std::uint8_t> out) {
  if (!squeezing_) (void)finalize_state();  // pos_ at rate: permute below
  for (auto& o : out) {
    if (pos_ == rate_) permute_and_reset_pos();
    o = reinterpret_cast<const std::uint8_t*>(state_.data())[pos_++];
  }
}

std::vector<std::uint8_t> Shake::hash(Variant v,
                                      std::span<const std::uint8_t> data,
                                      std::size_t out_len) {
  Shake s(v);
  s.absorb(data);
  std::vector<std::uint8_t> out(out_len);
  s.squeeze(out);
  return out;
}

ShakeSource::ShakeSource(std::uint64_t seed) : shake_(Shake::Variant::kShake128) {
  std::array<std::uint8_t, 8> s{};
  std::memcpy(s.data(), &seed, 8);
  shake_.absorb(s);
}

std::uint64_t ShakeSource::next_word() {
  if (pos_ + 8 > buf_.size()) {
    shake_.squeeze(buf_);
    pos_ = 0;
    ++blocks_;
  }
  std::uint64_t w;
  std::memcpy(&w, buf_.data() + pos_, 8);
  pos_ += 8;
  return w;
}

}  // namespace cgs::prng
