#pragma once
// Keccak-f[1600] permutation and SHAKE-128/256 XOFs. SHAKE-256 is what
// Falcon's hash-to-point uses; SHAKE-128 serves as the "Keccak PRNG" in the
// paper's §7 PRNG-overhead discussion.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/randombits.h"

namespace cgs::prng {

/// In-place Keccak-f[1600] permutation on 25 lanes.
void keccak_f1600(std::array<std::uint64_t, 25>& state);

/// Four independent Keccak-f[1600] states permuted together, one state
/// per SIMD lane (GCC vector extensions, like the 256-lane samplers).
/// This is what lets a batched consumer — hash-to-point over a verify
/// batch — amortize the permutation the way bit-slicing amortizes the
/// sampler netlist.
using U64x4 = std::uint64_t __attribute__((vector_size(32)));
void keccak_f1600_x4(std::array<U64x4, 25>& states);

/// Incremental SHAKE sponge (capacity fixed by the variant).
class Shake {
 public:
  enum class Variant { kShake128, kShake256 };

  explicit Shake(Variant v);

  /// Absorb more input; only valid before the first squeeze.
  void absorb(std::span<const std::uint8_t> data);
  void absorb(std::string_view s);

  /// Switch to squeezing (idempotent) and emit `out.size()` bytes.
  void squeeze(std::span<std::uint8_t> out);

  /// Apply the SHAKE padding and hand back the squeeze-ready sponge
  /// state (the first squeeze permutation not yet applied). For batch
  /// consumers that drive several sponges through one vectorized
  /// keccak_f1600_x4 pass — each permutation of the returned state
  /// yields the next rate-sized block of the same stream squeeze()
  /// would produce. The Shake itself transitions to squeezing.
  std::array<std::uint64_t, 25> finalize_state();

  std::size_t rate() const { return rate_; }

  /// One-shot convenience.
  static std::vector<std::uint8_t> hash(Variant v,
                                        std::span<const std::uint8_t> data,
                                        std::size_t out_len);

 private:
  void permute_and_reset_pos();

  std::array<std::uint64_t, 25> state_{};
  std::size_t rate_;   // bytes
  std::size_t pos_ = 0;
  bool squeezing_ = false;
};

/// RandomBitSource over a seeded SHAKE-128 stream.
class ShakeSource final : public RandomBitSource {
 public:
  explicit ShakeSource(std::uint64_t seed);
  std::uint64_t next_word() override;

  std::uint64_t blocks_generated() const { return blocks_; }

 private:
  Shake shake_;
  std::array<std::uint8_t, 168> buf_{};  // SHAKE-128 rate
  std::size_t pos_ = sizeof(buf_);
  std::uint64_t blocks_ = 0;
};

}  // namespace cgs::prng
