#include "prng/splitmix.h"
// SplitMix64Source is header-only; this TU anchors the library target.
