#pragma once
// SplitMix64: tiny non-cryptographic generator for tests and for isolating
// sampler cost from PRNG cost in the Table-2 benches (its cost is ~1ns/word,
// effectively "free" randomness).

#include <cstdint>

#include "common/randombits.h"

namespace cgs::prng {

class SplitMix64Source final : public RandomBitSource {
 public:
  explicit SplitMix64Source(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_word() override {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cgs::prng
