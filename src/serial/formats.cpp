#include "serial/formats.h"

#include <bit>
#include <cmath>
#include <limits>

#include "conv/convolution.h"

namespace cgs::serial {

namespace {

template <typename E>
E checked_enum(std::uint8_t raw, std::uint8_t max) {
  if (raw > max) throw SerialError("serial: enum value out of range");
  return static_cast<E>(raw);
}

}  // namespace

// ---------------------------------------------------------------- netlist ---

void write_netlist(Writer& w, const bf::Netlist& nl) {
  w.i32(nl.num_inputs());
  w.u64(nl.nodes().size());
  for (const bf::Node& n : nl.nodes()) {
    w.u8(static_cast<std::uint8_t>(n.op));
    w.i32(n.a);
    w.i32(n.b);
  }
  w.u64(nl.outputs().size());
  for (std::int32_t o : nl.outputs()) w.i32(o);
}

bf::Netlist read_netlist(Reader& r) {
  const std::int32_t num_inputs = r.i32();
  const std::uint64_t num_nodes = r.u64();
  // 9 bytes per encoded node: a size claim beyond the remaining payload is
  // corruption, caught here before attempting a giant allocation.
  if (num_nodes > r.remaining() / 9 + 1)
    throw SerialError("serial: netlist node count exceeds payload");
  std::vector<bf::Node> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes));
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    bf::Node n;
    n.op = checked_enum<bf::Op>(r.u8(), static_cast<std::uint8_t>(bf::Op::kXor));
    n.a = r.i32();
    n.b = r.i32();
    nodes.push_back(n);
  }
  const std::uint64_t num_outputs = r.u64();
  if (num_outputs > r.remaining() / 4 + 1)
    throw SerialError("serial: netlist output count exceeds payload");
  std::vector<std::int32_t> outputs;
  outputs.reserve(static_cast<std::size_t>(num_outputs));
  for (std::uint64_t i = 0; i < num_outputs; ++i) outputs.push_back(r.i32());
  return bf::Netlist::from_parts(num_inputs, std::move(nodes),
                                 std::move(outputs));
}

// ----------------------------------------------------- params and config ---

void write_params(Writer& w, const gauss::GaussianParams& p) {
  w.u64(p.sigma_num);
  w.u64(p.sigma_den);
  w.u64(p.sigma_sq_num);
  w.u64(p.sigma_sq_den);
  w.i32(p.tau);
  w.i32(p.precision);
  w.u8(static_cast<std::uint8_t>(p.normalization));
  w.u8(static_cast<std::uint8_t>(p.rounding));
}

gauss::GaussianParams read_params(Reader& r) {
  gauss::GaussianParams p;
  p.sigma_num = r.u64();
  p.sigma_den = r.u64();
  p.sigma_sq_num = r.u64();
  p.sigma_sq_den = r.u64();
  p.tau = r.i32();
  p.precision = r.i32();
  p.normalization = checked_enum<gauss::Normalization>(r.u8(), 1);
  p.rounding = checked_enum<gauss::Rounding>(r.u8(), 1);
  if (p.sigma_num == 0 || p.sigma_den == 0 || p.sigma_sq_den == 0 ||
      p.tau < 1 || p.precision < 1 || p.precision > 256)
    throw SerialError("serial: gaussian params out of range");
  // max_value() computes tau * sigma_num in uint64; a wrap (including the
  // residual support_size() == max_value() + 1 == 0 case) would bind the
  // payload to a support size the parameters don't actually describe.
  if (static_cast<std::uint64_t>(p.tau) >
          std::numeric_limits<std::uint64_t>::max() / p.sigma_num ||
      p.max_value() == std::numeric_limits<std::uint64_t>::max())
    throw SerialError("serial: tau * sigma overflows");
  return p;
}

void write_config(Writer& w, const ct::SynthesisConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.mode));
  w.boolean(c.emit_valid_bit);
  w.boolean(c.cse);
  w.i32(c.exact_max_vars);
  w.u64(c.qm_node_budget);
}

ct::SynthesisConfig read_config(Reader& r) {
  ct::SynthesisConfig c;
  c.mode = checked_enum<ct::MinimizeMode>(
      r.u8(), static_cast<std::uint8_t>(ct::MinimizeMode::kNone));
  c.emit_valid_bit = r.boolean();
  c.cse = r.boolean();
  c.exact_max_vars = r.i32();
  c.qm_node_budget = r.u64();
  return c;
}

// ------------------------------------------------------------------ stats ---

void write_stats(Writer& w, const ct::SynthesisStats& s) {
  w.u64(s.num_leaves);
  w.i32(s.max_kappa);
  w.i32(s.delta);
  w.u64(s.cubes_raw);
  w.u64(s.cubes_minimized);
  w.u64(s.netlist_ops);
  w.boolean(s.all_exact);
}

ct::SynthesisStats read_stats(Reader& r) {
  ct::SynthesisStats s;
  s.num_leaves = r.u64();
  s.max_kappa = r.i32();
  s.delta = r.i32();
  s.cubes_raw = r.u64();
  s.cubes_minimized = r.u64();
  s.netlist_ops = r.u64();
  s.all_exact = r.boolean();
  return s;
}

// ---------------------------------------------------------------- sampler ---

void write_sampler(Writer& w, const ct::SynthesizedSampler& s) {
  write_netlist(w, s.netlist);
  w.i32(s.precision);
  w.i32(s.num_output_bits);
  w.boolean(s.has_valid_bit);
  write_stats(w, s.stats);
}

ct::SynthesizedSampler read_sampler(Reader& r) {
  ct::SynthesizedSampler s;
  s.netlist = read_netlist(r);
  s.precision = r.i32();
  s.num_output_bits = r.i32();
  s.has_valid_bit = r.boolean();
  s.stats = read_stats(r);
  if (s.precision != s.netlist.num_inputs())
    throw SerialError("serial: sampler precision/netlist input mismatch");
  // Magnitudes are assembled into 32-bit lanes with `1 << iota`; more than
  // 31 output bits would make every runtime backend shift past the operand
  // width (UB) on a crafted-but-checksummed file.
  if (s.num_output_bits < 0 || s.num_output_bits > 31)
    throw SerialError("serial: sampler output bit count out of range");
  const std::size_t expected_outputs =
      static_cast<std::size_t>(s.num_output_bits) + (s.has_valid_bit ? 1 : 0);
  if (s.netlist.outputs().size() != expected_outputs)
    throw SerialError("serial: sampler output count mismatch");
  return s;
}

// ----------------------------------------------------------------- bigfix ---

void write_bigfix(Writer& w, const fp::BigFix& v) {
  w.i32(v.frac_limbs());
  for (std::uint64_t limb : v.limbs()) w.u64(limb);
}

fp::BigFix read_bigfix(Reader& r) {
  const std::int32_t frac_limbs = r.i32();
  if (frac_limbs < 1 || frac_limbs > 64)
    throw SerialError("serial: bigfix limb count out of range");
  std::vector<std::uint64_t> limbs;
  limbs.reserve(static_cast<std::size_t>(frac_limbs) + 1);
  for (std::int32_t i = 0; i <= frac_limbs; ++i) limbs.push_back(r.u64());
  return fp::BigFix::from_limbs(frac_limbs, std::move(limbs));
}

// ------------------------------------------------------------- probmatrix ---

void write_probmatrix(Writer& w, const gauss::ProbMatrix& m) {
  write_params(w, m.params());
  const std::size_t rows = m.rows();
  const int n = m.precision();
  // Matrix bits packed 8 per byte, row-major, LSB-first within each byte.
  for (std::size_t v = 0; v < rows; ++v) {
    std::uint8_t acc = 0;
    for (int i = 0; i < n; ++i) {
      acc |= static_cast<std::uint8_t>(m.bit(v, i) << (i % 8));
      if (i % 8 == 7 || i == n - 1) {
        w.u8(acc);
        acc = 0;
      }
    }
  }
  // Column weights are not written: they are derived from the bits and
  // recomputed on load (a file could otherwise carry an inconsistent pair).
  for (std::size_t v = 0; v < rows; ++v) write_bigfix(w, m.probability(v));
  for (std::size_t v = 0; v < rows; ++v) write_bigfix(w, m.exact_probability(v));
  write_bigfix(w, m.deficit());
  w.u64(m.clipped_bits());
}

gauss::ProbMatrix read_probmatrix(Reader& r) {
  const gauss::GaussianParams params = read_params(r);
  const std::size_t rows = params.support_size();
  const int n = params.precision;
  const int row_bytes = (n + 7) / 8;
  // A row count implied by crafted params that cannot fit in the remaining
  // payload is corruption — reject before allocating anything row-sized.
  if (rows > r.remaining() / static_cast<std::size_t>(row_bytes))
    throw SerialError("serial: probmatrix row count exceeds payload");
  std::vector<std::vector<std::uint8_t>> bits(rows);
  for (std::size_t v = 0; v < rows; ++v) {
    auto packed = r.bytes(static_cast<std::size_t>(row_bytes));
    bits[v].resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      bits[v][static_cast<std::size_t>(i)] =
          (packed[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u;
  }
  std::vector<fp::BigFix> probs, exact;
  probs.reserve(rows);
  exact.reserve(rows);
  for (std::size_t v = 0; v < rows; ++v) probs.push_back(read_bigfix(r));
  for (std::size_t v = 0; v < rows; ++v) exact.push_back(read_bigfix(r));
  fp::BigFix deficit = read_bigfix(r);
  const std::uint64_t clipped = r.u64();
  return gauss::ProbMatrix::from_parts(params, std::move(bits),
                                       std::move(probs), std::move(exact),
                                       std::move(deficit), clipped);
}

// ------------------------------------------------------------ framed form ---

namespace {

template <typename WriteFn>
std::vector<std::uint8_t> framed(TypeTag tag, WriteFn&& fn) {
  Writer w;
  fn(w);
  return wrap(tag, w.take());
}

}  // namespace

std::vector<std::uint8_t> serialize(const bf::Netlist& nl) {
  return framed(TypeTag::kNetlist, [&](Writer& w) { write_netlist(w, nl); });
}

bf::Netlist deserialize_netlist(std::span<const std::uint8_t> frame) {
  Reader r(unwrap(frame, TypeTag::kNetlist));
  bf::Netlist nl = read_netlist(r);
  r.finish();
  return nl;
}

std::vector<std::uint8_t> serialize(const gauss::GaussianParams& params,
                                    const ct::SynthesisConfig& config,
                                    const ct::SynthesizedSampler& s) {
  return framed(TypeTag::kSynthesizedSampler, [&](Writer& w) {
    write_params(w, params);
    write_config(w, config);
    write_sampler(w, s);
  });
}

SamplerFrame deserialize_sampler(std::span<const std::uint8_t> frame) {
  Reader r(unwrap(frame, TypeTag::kSynthesizedSampler));
  SamplerFrame f;
  f.params = read_params(r);
  f.config = read_config(r);
  f.sampler = read_sampler(r);
  r.finish();
  if (f.sampler.precision != f.params.precision)
    throw SerialError("serial: sampler precision disagrees with its params");
  return f;
}

std::vector<std::uint8_t> serialize(const gauss::ProbMatrix& m) {
  return framed(TypeTag::kProbMatrix,
                [&](Writer& w) { write_probmatrix(w, m); });
}

gauss::ProbMatrix deserialize_probmatrix(std::span<const std::uint8_t> frame) {
  Reader r(unwrap(frame, TypeTag::kProbMatrix));
  gauss::ProbMatrix m = read_probmatrix(r);
  r.finish();
  return m;
}

// ----------------------------------------------------------------- recipe ---

namespace {

void write_f64(Writer& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }

double read_f64(Reader& r, bool allow_negative = true) {
  const double v = std::bit_cast<double>(r.u64());
  if (!std::isfinite(v) || (!allow_negative && v < 0.0))
    throw SerialError("serial: recipe double out of range");
  return v;
}

}  // namespace

void write_recipe(Writer& w, const gauss::ConvolutionRecipe& rec) {
  write_params(w, rec.base);
  w.i32(rec.k);
  write_f64(w, rec.target_sigma);
  write_f64(w, rec.target_center);
  write_f64(w, rec.eps);
  write_f64(w, rec.achieved_sigma);
  write_f64(w, rec.sigma_loss);
  w.i32(rec.shift_int);
  write_f64(w, rec.shift_frac);
}

gauss::ConvolutionRecipe read_recipe(Reader& r) {
  gauss::ConvolutionRecipe rec;
  rec.base = read_params(r);
  rec.k = r.i32();
  rec.target_sigma = read_f64(r, /*allow_negative=*/false);
  rec.target_center = read_f64(r);
  rec.eps = read_f64(r, /*allow_negative=*/false);
  rec.achieved_sigma = read_f64(r, /*allow_negative=*/false);
  rec.sigma_loss = read_f64(r);
  rec.shift_int = r.i32();
  rec.shift_frac = read_f64(r, /*allow_negative=*/false);
  if (rec.k < 1 || rec.k > conv::ConvolutionSampler::max_stride())
    throw SerialError("serial: recipe stride out of range");
  if (rec.target_sigma <= 0.0 || rec.achieved_sigma < rec.target_sigma ||
      rec.eps <= 0.0 || rec.eps >= 1.0 || rec.shift_frac >= 1.0)
    throw SerialError("serial: recipe fields inconsistent");
  // The combined support (1+k)*max_value must stay well inside int32 (the
  // planner's own bound): a frame violating it would overflow the combine
  // and the acceptance pmf even though every field is individually valid.
  if ((1 + static_cast<std::int64_t>(rec.k)) *
          static_cast<std::int64_t>(rec.base.max_value()) >
      std::numeric_limits<std::int32_t>::max() / 4)
    throw SerialError("serial: recipe stride too large for its base support");
  // The shift stage is derived state: a frame whose shift disagrees with
  // its own target_center would serve a wrong-centered (or, for a huge
  // shift_int, combine-overflowing) distribution despite a valid checksum.
  const gauss::CenterSplit split = gauss::split_center(rec.target_center);
  if (rec.shift_int != split.shift_int || rec.shift_frac != split.shift_frac)
    throw SerialError("serial: recipe shift disagrees with its center");
  return rec;
}

std::vector<std::uint8_t> serialize(const gauss::ConvolutionRecipe& rec) {
  return framed(TypeTag::kRecipe, [&](Writer& w) { write_recipe(w, rec); });
}

gauss::ConvolutionRecipe deserialize_recipe(
    std::span<const std::uint8_t> frame) {
  Reader r(unwrap(frame, TypeTag::kRecipe));
  gauss::ConvolutionRecipe rec = read_recipe(r);
  r.finish();
  return rec;
}

}  // namespace cgs::serial
