#pragma once
// Type-specific binary encoders over the serial core: Netlist, Gaussian
// parameters, synthesis config/stats, SynthesizedSampler and ProbMatrix.
//
// Two levels:
//  - write_*/read_* operate on a bare Writer/Reader stream, so composite
//    types embed each other (a sampler embeds a netlist and its stats).
//  - serialize()/deserialize_* wrap the stream in the versioned checksummed
//    frame from serial.h — this is the on-disk form the registry caches.
//
// Readers validate everything they decode (enum ranges, shape consistency,
// netlist straight-line invariants) and throw SerialError / cgs::Error on
// malformed input; callers treat any throw as "cache miss, recompute".

#include <cstdint>
#include <span>
#include <vector>

#include "bf/netlist.h"
#include "ct/synthesis.h"
#include "fp/bigfix.h"
#include "gauss/params.h"
#include "gauss/probmatrix.h"
#include "gauss/recipe.h"
#include "serial/serial.h"

namespace cgs::serial {

void write_netlist(Writer& w, const bf::Netlist& nl);
bf::Netlist read_netlist(Reader& r);

void write_params(Writer& w, const gauss::GaussianParams& p);
gauss::GaussianParams read_params(Reader& r);

void write_config(Writer& w, const ct::SynthesisConfig& c);
ct::SynthesisConfig read_config(Reader& r);

void write_stats(Writer& w, const ct::SynthesisStats& s);
ct::SynthesisStats read_stats(Reader& r);

void write_sampler(Writer& w, const ct::SynthesizedSampler& s);
ct::SynthesizedSampler read_sampler(Reader& r);

void write_bigfix(Writer& w, const fp::BigFix& v);
fp::BigFix read_bigfix(Reader& r);

void write_probmatrix(Writer& w, const gauss::ProbMatrix& m);
gauss::ProbMatrix read_probmatrix(Reader& r);

/// Framed (magic + version + type + checksum) blobs — the on-disk form.
std::vector<std::uint8_t> serialize(const bf::Netlist& nl);
bf::Netlist deserialize_netlist(std::span<const std::uint8_t> frame);

/// The sampler frame binds the netlist to the exact (params, config) it was
/// synthesized for, so a loader can detect a misfiled or renamed cache entry
/// instead of silently sampling from the wrong distribution.
struct SamplerFrame {
  gauss::GaussianParams params;
  ct::SynthesisConfig config;
  ct::SynthesizedSampler sampler;
};

std::vector<std::uint8_t> serialize(const gauss::GaussianParams& params,
                                    const ct::SynthesisConfig& config,
                                    const ct::SynthesizedSampler& s);
SamplerFrame deserialize_sampler(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> serialize(const gauss::ProbMatrix& m);
gauss::ProbMatrix deserialize_probmatrix(std::span<const std::uint8_t> frame);

/// Convolution recipes (the (sigma, c) planning result) are cached next to
/// raw samplers: the frame embeds the full target so a loader can detect a
/// misfiled entry exactly like the sampler frame does. Doubles travel as
/// IEEE-754 bit patterns (exact round trip); readers reject non-finite
/// values and out-of-range strides/fractions.
void write_recipe(Writer& w, const gauss::ConvolutionRecipe& r);
gauss::ConvolutionRecipe read_recipe(Reader& r);

std::vector<std::uint8_t> serialize(const gauss::ConvolutionRecipe& r);
gauss::ConvolutionRecipe deserialize_recipe(
    std::span<const std::uint8_t> frame);

}  // namespace cgs::serial
