#include "serial/serial.h"

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace cgs::serial {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

// Words are hashed as little-endian values so the frame checksum is the
// same on every host — a store written on LE must validate on BE.
inline std::uint64_t word_le(std::uint64_t w) {
  if constexpr (std::endian::native == std::endian::little) {
    return w;
  } else {
    return ((w & 0x00000000000000ffull) << 56) |
           ((w & 0x000000000000ff00ull) << 40) |
           ((w & 0x0000000000ff0000ull) << 24) |
           ((w & 0x00000000ff000000ull) << 8) |
           ((w & 0x000000ff00000000ull) >> 8) |
           ((w & 0x0000ff0000000000ull) >> 24) |
           ((w & 0x00ff000000000000ull) >> 40) |
           ((w & 0xff00000000000000ull) >> 56);
  }
}

}  // namespace

std::uint64_t hash64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ word_le(w)) * kPrime;
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ word_le(tail)) * kPrime;
  }
  // Mix the length so a zero tail and zero padding cannot alias.
  return (h ^ bytes.size()) * kPrime;
}

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::str(const std::string& v) {
  u64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::u32s(std::span<const std::uint32_t> v) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(std::uint32_t));
  } else {
    for (std::uint32_t x : v) u32(x);
  }
}

void Writer::f64_bits(std::span<const double> v) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
  } else {
    for (double x : v) u64(std::bit_cast<std::uint64_t>(x));
  }
}

std::uint8_t Reader::u8() {
  if (pos_ >= data_.size()) throw SerialError("serial: read past end of data");
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SerialError("serial: malformed boolean");
  return v != 0;
}

std::span<const std::uint8_t> Reader::bytes(std::size_t n) {
  if (n > remaining()) throw SerialError("serial: read past end of data");
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) throw SerialError("serial: string length exceeds data");
  auto s = bytes(static_cast<std::size_t>(n));
  return std::string(s.begin(), s.end());
}

std::vector<std::uint32_t> Reader::u32s(std::size_t count) {
  if (count > remaining() / sizeof(std::uint32_t))
    throw SerialError("serial: u32 array length exceeds data");
  const auto raw = bytes(count * sizeof(std::uint32_t));
  std::vector<std::uint32_t> v(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(v.data(), raw.data(), raw.size());
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t x = 0;
      for (int b = 0; b < 4; ++b)
        x |= static_cast<std::uint32_t>(raw[4 * i + b]) << (8 * b);
      v[i] = x;
    }
  }
  return v;
}

std::vector<double> Reader::f64_bits(std::size_t count) {
  if (count > remaining() / sizeof(double))
    throw SerialError("serial: f64 array length exceeds data");
  const auto raw = bytes(count * sizeof(double));
  std::vector<double> v(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(v.data(), raw.data(), raw.size());
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t x = 0;
      for (int b = 0; b < 8; ++b)
        x |= static_cast<std::uint64_t>(raw[8 * i + b]) << (8 * b);
      v[i] = std::bit_cast<double>(x);
    }
  }
  return v;
}

void Reader::finish() const {
  if (pos_ != data_.size())
    throw SerialError("serial: trailing bytes after payload");
}

std::vector<std::uint8_t> wrap(TypeTag tag, std::vector<std::uint8_t> payload) {
  Writer w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(tag));
  w.u64(payload.size());
  w.u64(hash64(payload));
  w.bytes(payload);
  return w.take();
}

TypeTag peek_tag(std::span<const std::uint8_t> frame) {
  Reader r(frame);
  if (r.remaining() < 28) throw SerialError("serial: frame truncated (header)");
  if (r.u32() != kMagic) throw SerialError("serial: bad magic");
  if (r.u32() != kFormatVersion)
    throw SerialError("serial: format version mismatch");
  const std::uint32_t tag = r.u32();
  if (tag < static_cast<std::uint32_t>(TypeTag::kNetlist) ||
      tag > static_cast<std::uint32_t>(TypeTag::kHealthResponse)) {
    std::ostringstream os;
    os << "serial: unknown type tag " << tag;
    throw SerialError(os.str());
  }
  return static_cast<TypeTag>(tag);
}

std::span<const std::uint8_t> unwrap(std::span<const std::uint8_t> frame,
                                     TypeTag expected_tag) {
  Reader r(frame);
  if (r.remaining() < 28) throw SerialError("serial: frame truncated (header)");
  if (r.u32() != kMagic) throw SerialError("serial: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    std::ostringstream os;
    os << "serial: format version mismatch (file " << version << ", library "
       << kFormatVersion << ")";
    throw SerialError(os.str());
  }
  const std::uint32_t tag = r.u32();
  if (tag != static_cast<std::uint32_t>(expected_tag)) {
    std::ostringstream os;
    os << "serial: type tag mismatch (file " << tag << ", expected "
       << static_cast<std::uint32_t>(expected_tag) << ")";
    throw SerialError(os.str());
  }
  const std::uint64_t size = r.u64();
  const std::uint64_t checksum = r.u64();
  if (size != r.remaining())
    throw SerialError("serial: payload size mismatch (truncated or padded)");
  auto payload = r.bytes(static_cast<std::size_t>(size));
  if (hash64(payload) != checksum)
    throw SerialError("serial: checksum mismatch (corrupted payload)");
  return payload;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[65536];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    data.insert(data.end(), chunk, chunk + got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return data;
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Unique temp name per process AND per call: two processes — or two
  // threads in one process — filling the same cache entry must not scribble
  // over each other's half-written temp file.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + "." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1)) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace cgs::serial
