#pragma once
// Byte-stream serialization core: a little-endian Writer/Reader pair plus a
// versioned, checksummed container frame. Every persisted artifact (netlist,
// synthesized sampler, probability matrix) is one frame:
//
//   magic "CGSB" | format version | type tag | payload size | word-wise
//   FNV-1a-64 of payload (hash64) | payload bytes
//
// so a loader can reject foreign files (bad magic), files from a future
// format (version mismatch), and bit rot (checksum mismatch) before parsing
// a single payload byte. Type-specific encoders live in serial/formats.h;
// this header is deliberately type-agnostic so future artifacts join by
// writing against Reader/Writer alone.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace cgs::serial {

/// Thrown on any malformed, truncated, corrupted or foreign input. Loaders
/// (e.g. the sampler registry's disk cache) catch this and fall back to
/// recomputing the artifact.
class SerialError : public Error {
 public:
  explicit SerialError(const std::string& what) : Error(what) {}
};

/// First four file bytes: 'C' 'G' 'S' 'B' (CGS Binary).
inline constexpr std::uint32_t kMagic = 0x42534743u;

/// Bumped on any incompatible payload-encoding change. v2: frame checksum
/// switched from byte-wise FNV-1a to the word-wise hash64 (stale cache
/// frames are rejected as a version mismatch and simply recomputed).
inline constexpr std::uint32_t kFormatVersion = 2;

/// Frame type tags (one per serializable artifact).
enum class TypeTag : std::uint32_t {
  kNetlist = 1,
  kSynthesizedSampler = 2,
  kProbMatrix = 3,
  kRecipe = 4,
  // Serving-layer wire messages (serve/wire.h): these travel over sockets
  // rather than the disk cache, but share the frame so the receive path
  // gets magic/version/checksum validation for free.
  kSignRequest = 5,
  kSignResponse = 6,
  kVerifyRequest = 7,
  kVerifyResponse = 8,
  kKeygenRequest = 9,
  kKeygenResponse = 10,
  // Observability scrape (serve/wire.h): a client asks for the server's
  // metrics exposition in one of the supported formats.
  kStatsRequest = 11,
  kStatsResponse = 12,
  // Transport-level overload shed (net/overload.h): the server answers a
  // request it cannot take on — connection cap, owed-responses cap, write
  // cap, idle or read-progress eviction — with this frame (retry-after
  // hint + reason) instead of a silent close.
  kOverloaded = 13,
  // Key-state store artifacts (store/ + falcon/state_codec.h): per-key
  // offline state persisted so an evicted tenant warm-starts from one
  // decode instead of a recompute. Disk-only, never on the wire.
  kFalconTree = 14,
  kNttKey = 15,
  // One record of a store::KvStore append log (key + value/tombstone);
  // the log is a sequence of these frames, so torn tails and bit rot are
  // detected by the same header/checksum validation as every other frame.
  kKvRecord = 16,
  // Health surface (serve/wire.h): per-subsystem readiness — queue
  // saturation, reactor loop lag, kvstore garbage ratio — answered inline
  // by the router without touching the dispatch queues, so health stays
  // answerable while the serving path is saturated.
  kHealthRequest = 17,
  kHealthResponse = 18,
};

/// The tag of a frame without validating its payload: header-only checks
/// (magic, version, known tag). Servers multiplexing several request types
/// on one stream peek here, then hand the frame to the matching decoder,
/// which re-validates everything including the checksum via unwrap.
TypeTag peek_tag(std::span<const std::uint8_t> frame);

/// FNV-1a 64-bit over a byte range. Byte-at-a-time and therefore
/// latency-bound (~3 cycles/byte) — kept for small-input identity hashing
/// (key fingerprints, cache-key hashes), NOT for frame checksums.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// The frame content hash: the FNV-1a recurrence applied to 8-byte
/// little-endian words (zero-padded tail, length mixed in last), ~6-8x the
/// throughput of fnv1a64. Warm starts decode at memory speed instead of
/// checksum speed — this is what keeps a KvStore replay over a ~100 MB log
/// and a per-miss frame validation off the serving path's critical cost.
std::uint64_t hash64(std::span<const std::uint8_t> bytes);

/// Append-only little-endian byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> v);
  /// Length-prefixed (u64) string.
  void str(const std::string& v);
  /// Bulk little-endian arrays — one memcpy on little-endian hosts instead
  /// of 4 (resp. 8) per-byte appends per element. The codec hot path: a
  /// warm-start frame is mostly one u32 or double-bit array.
  void u32s(std::span<const std::uint32_t> v);
  void f64_bits(std::span<const double> v);  // IEEE-754 bit patterns

  /// Pre-size the buffer when the caller knows the frame size up front.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte source; throws SerialError on overrun.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  bool boolean();
  std::span<const std::uint8_t> bytes(std::size_t n);
  std::string str();
  /// Bulk counterparts of Writer::u32s / f64_bits: bounds-checked once,
  /// then one memcpy on little-endian hosts.
  std::vector<std::uint32_t> u32s(std::size_t count);
  std::vector<double> f64_bits(std::size_t count);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Asserts the payload was consumed exactly — trailing garbage is corruption.
  void finish() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Wrap a payload in the versioned checksummed frame.
std::vector<std::uint8_t> wrap(TypeTag tag, std::vector<std::uint8_t> payload);

/// Validate a frame (magic, version, tag, size, checksum) and return the
/// payload bytes. Throws SerialError naming the first failed check.
std::span<const std::uint8_t> unwrap(std::span<const std::uint8_t> frame,
                                     TypeTag expected_tag);

/// Read a whole file; nullopt if it does not exist or cannot be opened.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

/// Write via a temp file + rename so concurrent readers never observe a
/// half-written frame. Returns false on any I/O failure (cache writes are
/// best-effort; the caller still holds the in-memory artifact).
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

}  // namespace cgs::serial
