#pragma once
// MicroBatcher: the adaptive batch-forming policy between the request
// queue and the engine. A batch closes on whichever comes first:
//
//   - max_batch items collected (a thousand concurrent clients fill the
//     64/256 bit-sliced lanes and ride the amortized netlist pass), or
//   - max_linger past the *first* item's arrival (one lone client waits at
//     most one linger, never a full batch's worth of strangers).
//
// The policy is adaptive in the sense that it never sleeps for the linger
// when the work is already there: under backlog the drain loop hits
// max_batch without ever reaching wait_until, so heavy load pays zero
// added latency and light load pays at most max_linger.

#include <chrono>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "serve/queue.h"

namespace cgs::serve {

template <typename T>
class MicroBatcher {
 public:
  /// `queue` (not owned) must outlive the batcher.
  MicroBatcher(RequestQueue<T>& queue, std::size_t max_batch,
               std::chrono::microseconds max_linger)
      : queue_(&queue), max_batch_(max_batch), max_linger_(max_linger) {
    CGS_CHECK_MSG(max_batch_ >= 1, "micro-batcher needs max_batch >= 1");
  }

  /// Blocks for the next batch: waits indefinitely for a first item, then
  /// drains until full or the linger deadline passes. Returns false (with
  /// `out` empty) only once the queue is closed and fully drained — the
  /// consumer loop's exit condition.
  bool next_batch(std::vector<T>& out) {
    out.clear();
    T first;
    if (!queue_->pop(first)) return false;
    const auto deadline = std::chrono::steady_clock::now() + max_linger_;
    out.push_back(std::move(first));
    while (out.size() < max_batch_) {
      T item;
      if (!queue_->pop_until(item, deadline)) break;
      out.push_back(std::move(item));
    }
    return true;
  }

  std::size_t max_batch() const { return max_batch_; }
  std::chrono::microseconds max_linger() const { return max_linger_; }

 private:
  RequestQueue<T>* queue_;
  std::size_t max_batch_;
  std::chrono::microseconds max_linger_;
};

}  // namespace cgs::serve
