#pragma once
// MicroBatcher: the adaptive batch-forming policy between the request
// queue and the engine. A batch closes on whichever comes first:
//
//   - max_batch items collected (a thousand concurrent clients fill the
//     64/256 bit-sliced lanes and ride the amortized netlist pass), or
//   - max_linger past the *first* item's arrival (one lone client waits at
//     most one linger, never a full batch's worth of strangers).
//
// The policy is adaptive in the sense that it never sleeps for the linger
// when the work is already there: under backlog the drain loop hits
// max_batch without ever reaching wait_until, so heavy load pays zero
// added latency and light load pays at most max_linger.
//
// Works over any queue with the RequestQueue consumer contract (pop /
// pop_until / close / closed / size) — the QoS multi-queue included. An
// optional idle-work hook turns the wait for a first item into a
// work-stealing loop: an idle lane thread lends itself to another lane's
// crew (checkqueue-style) instead of parking on the condition variable.

#include <chrono>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "serve/queue.h"

namespace cgs::serve {

template <typename T, typename Queue = RequestQueue<T>>
class MicroBatcher {
 public:
  /// `queue` (not owned) must outlive the batcher.
  MicroBatcher(Queue& queue, std::size_t max_batch,
               std::chrono::microseconds max_linger)
      : queue_(&queue), max_batch_(max_batch), max_linger_(max_linger) {
    CGS_CHECK_MSG(max_batch_ >= 1, "micro-batcher needs max_batch >= 1");
  }

  /// Something useful to do while the queue is empty (steal one task from
  /// another lane's crew, say). Returns true when it did work — the
  /// batcher then re-checks the queue immediately instead of waiting out
  /// a poll slice. Runs only between batches, never inside one, so a
  /// batch's linger budget is unaffected.
  void set_idle_work(std::function<bool()> fn) { idle_work_ = std::move(fn); }

  /// Blocks for the next batch: waits for a first item (doing idle work,
  /// when a hook is set), then drains until full or the linger deadline
  /// passes. Returns false (with `out` empty) only once the queue is
  /// closed and fully drained — the consumer loop's exit condition.
  bool next_batch(std::vector<T>& out) {
    out.clear();
    T first;
    if (!pop_first(first)) return false;
    const auto deadline = std::chrono::steady_clock::now() + max_linger_;
    out.push_back(std::move(first));
    while (out.size() < max_batch_) {
      T item;
      if (!queue_->pop_until(item, deadline)) break;
      out.push_back(std::move(item));
    }
    return true;
  }

  std::size_t max_batch() const { return max_batch_; }
  std::chrono::microseconds max_linger() const { return max_linger_; }

 private:
  bool pop_first(T& first) {
    if (!idle_work_) return queue_->pop(first);
    // Alternate short queue waits with stolen tasks. After doing stolen
    // work, poll the queue with a zero wait — our own lane's requests
    // must not sit behind a second borrowed task.
    constexpr auto kPollSlice = std::chrono::microseconds(200);
    for (;;) {
      const bool stole = idle_work_();
      const auto until = std::chrono::steady_clock::now() +
                         (stole ? std::chrono::microseconds(0) : kPollSlice);
      if (queue_->pop_until(first, until)) return true;
      if (queue_->closed() && queue_->size() == 0) return false;
    }
  }

  Queue* queue_;
  std::size_t max_batch_;
  std::chrono::microseconds max_linger_;
  std::function<bool()> idle_work_;
};

}  // namespace cgs::serve
