#include "serve/dispatcher.h"

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <bit>
#include <functional>
#include <span>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "prng/chacha20.h"

namespace cgs::serve {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// SplitMix64 finalizer: the shard router's mixing step. Fingerprints and
// IEEE-754 bit patterns are far from uniform in their low bits; lane index
// = mix(key) % lanes must not systematically collide tenants.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t gauss_shard_key(double sigma, double center) {
  return mix64(std::bit_cast<std::uint64_t>(sigma)) ^
         mix64(~std::bit_cast<std::uint64_t>(center));
}

}  // namespace

// Absolute expiry for a job: submitted + the request's relative budget,
// or "never" when the request carries none.
template <typename Req>
static std::chrono::steady_clock::time_point job_deadline(
    const Req& req, std::chrono::steady_clock::time_point submitted) {
  if (req.deadline_us == 0)
    return std::chrono::steady_clock::time_point::max();
  return submitted + std::chrono::microseconds(req.deadline_us);
}

template <typename JobT>
void Dispatcher::drop_expired(std::vector<JobT>& batch,
                              LaneCounters& counters) {
  const auto now = std::chrono::steady_clock::now();
  auto keep = batch.begin();
  for (auto it = batch.begin(); it != batch.end(); ++it) {
    if (it->deadline <= now) {
      counters.expired.add(1);
      it->promise.set_exception(std::make_exception_ptr(DeadlineExpired()));
      continue;
    }
    if (keep != it) *keep = std::move(*it);
    ++keep;
  }
  batch.erase(keep, batch.end());
}

// The one push-or-reject admission sequence every submit() overload
// shares: wrap the envelope, attach the future, try the queue, account
// the outcome, detach the future again when the request was not admitted.
// (The enqueued stamp lands just before the push — a rejected job's trace
// simply dies with the job.)
template <typename Req>
Submission<typename Req::Result> Dispatcher::submit_impl(
    Lane<Job<Req>>& lane, Req req, obs::RequestClass cls,
    std::uint64_t tenant) {
  Job<Req> job;
  job.req = std::move(req);
  job.submitted = std::chrono::steady_clock::now();
  job.deadline = job_deadline(job.req, job.submitted);
  job.trace = tracer_->begin(job.req.trace_id);
  job.trace.request_id = job.req.request_id;
  job.trace.tenant = tenant;
  job.trace.req_class = cls;
  const Priority priority = job.req.priority;
  Submission<typename Req::Result> result;
  result.future = job.promise.get_future();
  job.trace.stamp(obs::Stage::kEnqueued);
  result.status = lane.queue.try_push(std::move(job), priority, tenant);
  if (result.status == SubmitStatus::kOk) {
    lane.counters.submitted.add(1);
  } else {
    lane.counters.rejected.add(1);
    result.future = {};
    if (result.status != SubmitStatus::kShutdown) {
      // Backoff hint: how long this lane needs to drain its current depth
      // at one batch per linger — never 0, a full queue always means wait.
      const std::uint64_t batches_ahead =
          lane.queue.size() / options_.max_batch + 1;
      result.retry_after_ms = static_cast<std::uint32_t>(std::max<
          std::uint64_t>(1, batches_ahead * options_.max_linger_us / 1000));
    }
  }
  return result;
}

Dispatcher::Dispatcher(engine::SamplerRegistry& registry,
                       DispatcherOptions options)
    : registry_(&registry), options_(options) {
  CGS_CHECK_MSG(options_.sign_lanes >= 1 && options_.verify_lanes >= 1 &&
                    options_.gauss_lanes >= 1,
                "dispatcher needs at least one lane of each kind");
  CGS_CHECK_MSG(options_.max_batch >= 1, "dispatcher needs max_batch >= 1");
  if (options_.obs_registry) {
    obs_ = options_.obs_registry;
  } else {
    owned_obs_ = std::make_unique<obs::Registry>();
    obs_ = owned_obs_.get();
  }
  tracer_ = std::make_unique<obs::Tracer>(*obs_, options_.trace);
  events_ = &obs_->events();
  if (options_.tenant_metrics) {
    const auto klass = [this](const char* c) {
      ClassTelemetry t;
      obs::FamilyOptions fam;
      fam.max_series = options_.tenant_series;
      t.requests = &obs_->counter_family(
          "cgs_tenant_" + std::string(c) + "_requests_total", fam);
      t.latency = &obs_->windowed_histogram("cgs_serve_" + std::string(c) +
                                            "_latency_us");
      t.slo_good = &obs_->counter("cgs_slo_" + std::string(c) + "_good_total");
      t.slo_bad = &obs_->counter("cgs_slo_" + std::string(c) + "_bad_total");
      return t;
    };
    sign_telemetry_ = klass("sign");
    verify_telemetry_ = klass("verify");
    keygen_telemetry_ = klass("keygen");
    gauss_telemetry_ = klass("gauss");
  }
  // Key-state plumbing: one shared persistent store behind both per-tenant
  // caches, and a 60/40 byte-budget split (trees are the heavier artifact)
  // unless the caller budgeted a cache directly. When BOTH services already
  // have external stores wired, key_state.dir is moot: opening an owned
  // KvStore then would register cgs_kvstore_* series for a store no cache
  // touches, scraping as misleading zeros.
  if (!options_.key_state.dir.empty() &&
      (!options_.signing.key_state || !options_.verification.key_state)) {
    if (options_.key_state.events == nullptr)
      options_.key_state.events = events_;
    key_state_ = std::make_unique<store::KvStore>(options_.key_state);
    if (!options_.signing.key_state)
      options_.signing.key_state = key_state_.get();
    if (!options_.verification.key_state)
      options_.verification.key_state = key_state_.get();
  }
  if (options_.key_state_budget_bytes != 0) {
    if (!options_.signing.tree_cache.bounded())
      options_.signing.tree_cache.max_bytes =
          options_.key_state_budget_bytes * 3 / 5;
    if (!options_.verification.key_cache.bounded())
      options_.verification.key_cache.max_bytes =
          options_.key_state_budget_bytes * 2 / 5;
  }
  // The verify crew replaces the service's inner per-call fan-out: slices
  // already run concurrently (crew workers + thieving sign lanes), so the
  // service itself defaults to straight-line execution per slice.
  if (options_.verification.num_threads == 0)
    options_.verification.num_threads = 1;
  signing_ = std::make_unique<falcon::SigningService>(*registry_,
                                                      options_.signing);
  verifier_ =
      std::make_unique<falcon::VerificationService>(options_.verification);
  gaussian_ = std::make_unique<engine::GaussianService>(*registry_,
                                                        options_.gaussian);
  verify_crew_ =
      std::make_unique<TaskCrew>(std::max(0, options_.verify_steal_workers));
  QosQueueOptions qos;
  qos.capacity = options_.queue_capacity;
  qos.tenant_capacity = options_.tenant_capacity;
  qos.max_tenants = options_.max_tenant_slots;
  qos.age_promote_us = options_.age_promote_us;
  qos.drr_quantum = options_.drr_quantum;
  const auto lane_prefix = [](const char* kind, int i) {
    return "cgs_serve_" + std::string(kind) + "_lane" + std::to_string(i);
  };
  for (int i = 0; i < options_.sign_lanes; ++i)
    sign_lanes_.push_back(std::make_unique<Lane<SignJob>>(
        qos, *obs_, lane_prefix("sign", i)));
  for (int i = 0; i < options_.verify_lanes; ++i)
    verify_lanes_.push_back(std::make_unique<Lane<VerifyJob>>(
        qos, *obs_, lane_prefix("verify", i)));
  keygen_lanes_.push_back(std::make_unique<Lane<KeygenJob>>(
      qos, *obs_, lane_prefix("keygen", 0)));
  for (int i = 0; i < options_.gauss_lanes; ++i)
    gauss_lanes_.push_back(std::make_unique<Lane<GaussJob>>(
        qos, *obs_, lane_prefix("gauss", i)));
  register_bridges();
  // Lanes start only after every queue exists — a lane thread never sees a
  // half-constructed dispatcher.
  for (auto& lane : sign_lanes_) {
    Lane<SignJob>* l = lane.get();
    lane->thread = std::thread([this, l] { run_sign_lane(*l); });
  }
  for (auto& lane : verify_lanes_) {
    Lane<VerifyJob>* l = lane.get();
    lane->thread = std::thread([this, l] { run_verify_lane(*l); });
  }
  for (auto& lane : keygen_lanes_) {
    Lane<KeygenJob>* l = lane.get();
    lane->thread = std::thread([this, l] { run_keygen_lane(*l); });
  }
  for (auto& lane : gauss_lanes_) {
    Lane<GaussJob>* l = lane.get();
    lane->thread = std::thread([this, l] { run_gauss_lane(*l); });
  }
}

Dispatcher::~Dispatcher() { shutdown(); }

// Callback instruments that read dispatcher-owned state (queues, the
// services' cache stats). Registered once at construction, unregistered at
// shutdown so a scrape of an external registry after this dispatcher dies
// never chases dangling pointers — the owned lane counters stay behind,
// frozen at their final values.
void Dispatcher::register_bridges() {
  const auto gauge = [this](std::string name, std::function<double()> fn) {
    obs_->gauge_fn(name, std::move(fn));
    callback_metrics_.push_back(std::move(name));
  };
  const auto counter = [this](std::string name, std::function<double()> fn) {
    obs_->counter_fn(name, std::move(fn));
    callback_metrics_.push_back(std::move(name));
  };
  const auto lane_depths = [&gauge, &counter](const auto& lanes,
                                              const char* kind) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      auto* lane = lanes[i].get();
      const std::string prefix =
          "cgs_serve_" + std::string(kind) + "_lane" + std::to_string(i);
      gauge(prefix + "_queue_depth",
            [lane] { return static_cast<double>(lane->queue.size()); });
      // The QosQueue policy counters, scraped alongside the depth so an
      // operator sees WHY a lane sheds, not just that it is deep.
      counter(prefix + "_aged_promotions_total", [lane] {
        return static_cast<double>(lane->queue.stats().aged_promotions);
      });
      counter(prefix + "_priority_inversions_total", [lane] {
        return static_cast<double>(lane->queue.stats().priority_inversions);
      });
      counter(prefix + "_tenant_rejections_total", [lane] {
        return static_cast<double>(lane->queue.stats().tenant_rejections);
      });
      gauge(prefix + "_tenant_slots", [lane] {
        return static_cast<double>(lane->queue.stats().tenant_slots);
      });
    }
  };
  lane_depths(sign_lanes_, "sign");
  lane_depths(verify_lanes_, "verify");
  lane_depths(keygen_lanes_, "keygen");
  lane_depths(gauss_lanes_, "gauss");

  counter("cgs_serve_verify_slices_stolen_total", [crew = verify_crew_.get()] {
    return static_cast<double>(crew->stolen());
  });

  const auto cache = [&](const std::string& name, auto stats_fn) {
    counter("cgs_cache_" + name + "_hits_total",
            [stats_fn] { return static_cast<double>(stats_fn().hits); });
    counter("cgs_cache_" + name + "_misses_total",
            [stats_fn] { return static_cast<double>(stats_fn().misses); });
    // The eviction bridge doubles as the eviction event source: the cache
    // itself has no hook, so the delta between scrapes becomes one
    // kCacheEviction event (a/b = entries/bytes after). Event granularity
    // is scrape granularity; the lifetime counter stays exact.
    counter("cgs_cache_" + name + "_evictions_total",
            [stats_fn, name, events = events_,
             last = std::make_shared<std::atomic<std::uint64_t>>(0)] {
              const auto st = stats_fn();
              const std::uint64_t prev = last->exchange(st.evictions);
              if (st.evictions > prev)
                events->emit(obs::EventKind::kCacheEviction, st.entries,
                             st.bytes, name);
              return static_cast<double>(st.evictions);
            });
    counter(
        "cgs_cache_" + name + "_warm_starts_total",
        [stats_fn] { return static_cast<double>(stats_fn().warm_starts); });
    gauge("cgs_cache_" + name + "_entries",
          [stats_fn] { return static_cast<double>(stats_fn().entries); });
    gauge("cgs_cache_" + name + "_bytes",
          [stats_fn] { return static_cast<double>(stats_fn().bytes); });
  };
  cache("ffldl_tree",
        [svc = signing_.get()] { return svc->tree_cache_stats(); });
  cache("ntt_key", [svc = verifier_.get()] { return svc->key_cache_stats(); });
  cache("recipe", [reg = registry_] { return reg->recipe_cache_stats(); });
  cache("netlist", [reg = registry_] { return reg->netlist_cache_stats(); });

  if (key_state_) {
    store::KvStore* kv = key_state_.get();
    counter("cgs_kvstore_gets_total",
            [kv] { return static_cast<double>(kv->stats().gets); });
    counter("cgs_kvstore_puts_total",
            [kv] { return static_cast<double>(kv->stats().puts); });
    counter("cgs_kvstore_compactions_total",
            [kv] { return static_cast<double>(kv->stats().compactions); });
    gauge("cgs_kvstore_file_bytes",
          [kv] { return static_cast<double>(kv->stats().file_bytes); });
    gauge("cgs_kvstore_entries",
          [kv] { return static_cast<double>(kv->stats().entries); });
  }

  counter("cgs_signing_base_calls_total", [svc = signing_.get()] {
    return static_cast<double>(svc->base_calls());
  });
  counter("cgs_signing_base_rejections_total", [svc = signing_.get()] {
    return static_cast<double>(svc->rejections());
  });
  counter("cgs_gauss_samples_served_total", [svc = gaussian_.get()] {
    return static_cast<double>(svc->samples_served());
  });
  gauge("cgs_gauss_streams", [svc = gaussian_.get()] {
    return static_cast<double>(svc->num_streams());
  });
}

void Dispatcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  for (const std::string& name : callback_metrics_) obs_->unregister(name);
  callback_metrics_.clear();
  for (auto& lane : sign_lanes_) lane->queue.close();
  for (auto& lane : verify_lanes_) lane->queue.close();
  for (auto& lane : keygen_lanes_) lane->queue.close();
  for (auto& lane : gauss_lanes_) lane->queue.close();
  for (auto& lane : sign_lanes_)
    if (lane->thread.joinable()) lane->thread.join();
  for (auto& lane : verify_lanes_)
    if (lane->thread.joinable()) lane->thread.join();
  for (auto& lane : keygen_lanes_)
    if (lane->thread.joinable()) lane->thread.join();
  for (auto& lane : gauss_lanes_)
    if (lane->thread.joinable()) lane->thread.join();
}

std::uint64_t Dispatcher::add_key(falcon::KeyPair kp) {
  const std::uint64_t id = falcon::key_fingerprint(kp);
  std::lock_guard<std::mutex> lock(keys_mu_);
  auto it = keys_.find(id);
  if (it == keys_.end()) {
    keys_.emplace(id, std::move(kp));
  } else {
    // Same fingerprint must mean the same key material — a collision here
    // would route a tenant's messages to another tenant's tree.
    CGS_CHECK_MSG(it->second.f == kp.f && it->second.g == kp.g,
                  "key fingerprint collision between distinct tenant keys");
  }
  return id;
}

const falcon::KeyPair* Dispatcher::key(std::uint64_t key_id) const {
  std::lock_guard<std::mutex> lock(keys_mu_);
  auto it = keys_.find(key_id);
  return it == keys_.end() ? nullptr : &it->second;
}

// One completed request's class telemetry. The trace id rides along as
// the latency exemplar, so a scraped tail bucket can name a trace that
// actually landed in it.
void Dispatcher::record_class(const ClassTelemetry& t, std::uint64_t tenant,
                              std::uint64_t latency_us,
                              std::uint64_t trace_id) {
  if (t.requests == nullptr) return;
  t.requests->add(obs::LabelSet{{"tenant", obs::tenant_label(tenant)}});
  t.latency->record(latency_us, trace_id);
  (latency_us <= options_.slo_latency_us ? *t.slo_good : *t.slo_bad).add(1);
}

Submission<falcon::Signature> Dispatcher::submit(SignRequest req) {
  CGS_CHECK_MSG(key(req.key_id) != nullptr,
                "submit(SignRequest): key_id not registered (add_key first)");
  Lane<SignJob>& lane = *sign_lanes_[mix64(req.key_id) % sign_lanes_.size()];
  const std::uint64_t tenant = req.key_id;
  return submit_impl(lane, std::move(req), obs::RequestClass::kSign, tenant);
}

Submission<bool> Dispatcher::submit(VerifyRequest req) {
  CGS_CHECK_MSG(
      key(req.key_id) != nullptr,
      "submit(VerifyRequest): key_id not registered (add_key first)");
  Lane<VerifyJob>& lane =
      *verify_lanes_[mix64(req.key_id) % verify_lanes_.size()];
  const std::uint64_t tenant = req.key_id;
  return submit_impl(lane, std::move(req), obs::RequestClass::kVerify, tenant);
}

Submission<KeygenResult> Dispatcher::submit(KeygenRequest req) {
  // Tenant unknown until the solve finishes — the keygen lane fills it in
  // once the fingerprint exists.
  return submit_impl(*keygen_lanes_.front(), std::move(req),
                     obs::RequestClass::kKeygen, 0);
}

Submission<std::vector<std::int32_t>> Dispatcher::submit(GaussRequest req) {
  CGS_CHECK_MSG(req.n >= 1, "submit(GaussRequest): empty request");
  const std::uint64_t tenant = gauss_shard_key(req.sigma, req.center);
  Lane<GaussJob>& lane = *gauss_lanes_[tenant % gauss_lanes_.size()];
  return submit_impl(lane, std::move(req), obs::RequestClass::kGauss, tenant);
}

void Dispatcher::run_sign_lane(Lane<SignJob>& lane) {
  MicroBatcher<SignJob, QosQueue<SignJob>> batcher(
      lane.queue, options_.max_batch,
      std::chrono::microseconds(options_.max_linger_us));
  // While this lane's queue is empty, lend the thread to the verify crew:
  // a lingering verify batch's slices finish on otherwise-idle cores.
  batcher.set_idle_work(
      [crew = verify_crew_.get()] { return crew->try_help_one(); });
  std::vector<SignJob> batch;
  while (batcher.next_batch(batch)) {
    const std::uint64_t closed_us = obs::Trace::now_us();
    for (SignJob& job : batch)
      job.trace.stamp_at(obs::Stage::kBatchClosed, closed_us);
    drop_expired(batch, lane.counters);
    if (batch.empty()) continue;
    // Group by tenant key, preserving arrival order within each group —
    // one sign_many per key is what fills the engine's bit-sliced lanes.
    std::map<std::uint64_t, std::vector<std::size_t>> by_key;
    for (std::size_t i = 0; i < batch.size(); ++i)
      by_key[batch[i].req.key_id].push_back(i);
    for (const auto& [key_id, indices] : by_key) {
      const falcon::KeyPair* kp = key(key_id);
      std::vector<std::string_view> messages;
      messages.reserve(indices.size());
      for (std::size_t i : indices) messages.push_back(batch[i].req.message);
      lane.counters.batches.add(1);
      lane.counters.batched.add(indices.size());
      for (std::size_t i : indices)
        batch[i].trace.stamp(obs::Stage::kEngineStart);
      try {
        CGS_CHECK_MSG(kp != nullptr, "signing lane lost a registered key");
        auto sigs = signing_->sign_many(*kp, messages);
        for (std::size_t i : indices)
          batch[i].trace.stamp(obs::Stage::kEngineEnd);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          SignJob& job = batch[indices[j]];
          const std::uint64_t latency = elapsed_us(job.submitted);
          lane.counters.latency.record(latency);
          record_class(sign_telemetry_, key_id, latency, job.trace.trace_id);
          lane.counters.completed.add(1);
          job.trace.stamp(obs::Stage::kFulfilled);
          job.promise.set_value(std::move(sigs[j]));
          tracer_->finish(job.trace);
        }
      } catch (...) {
        const auto error = std::current_exception();
        for (std::size_t i : indices) {
          lane.counters.failed.add(1);
          batch[i].promise.set_exception(error);
        }
      }
    }
  }
}

void Dispatcher::run_verify_lane(Lane<VerifyJob>& lane) {
  MicroBatcher<VerifyJob, QosQueue<VerifyJob>> batcher(
      lane.queue, options_.max_batch,
      std::chrono::microseconds(options_.max_linger_us));
  const std::size_t slice =
      std::max<std::size_t>(1, options_.verify_steal_slice);
  std::vector<VerifyJob> batch;
  while (batcher.next_batch(batch)) {
    const std::uint64_t closed_us = obs::Trace::now_us();
    for (VerifyJob& job : batch)
      job.trace.stamp_at(obs::Stage::kBatchClosed, closed_us);
    drop_expired(batch, lane.counters);
    if (batch.empty()) continue;
    // Group by tenant key like the sign lane: one verify pass per key runs
    // the shared hash/NTT pipeline over the whole group against that key's
    // cached NTT-domain public key.
    std::map<std::uint64_t, std::vector<std::size_t>> by_key;
    for (std::size_t i = 0; i < batch.size(); ++i)
      by_key[batch[i].req.key_id].push_back(i);
    for (const auto& [key_id, indices] : by_key) {
      const falcon::KeyPair* kp = key(key_id);
      std::vector<std::string_view> messages;
      std::vector<falcon::Signature> sigs;
      messages.reserve(indices.size());
      sigs.reserve(indices.size());
      for (std::size_t i : indices) {
        messages.push_back(batch[i].req.message);
        sigs.push_back(std::move(batch[i].req.sig));
      }
      lane.counters.batches.add(1);
      lane.counters.batched.add(indices.size());
      for (std::size_t i : indices)
        batch[i].trace.stamp(obs::Stage::kEngineStart);
      try {
        CGS_CHECK_MSG(kp != nullptr, "verify lane lost a registered key");
        // Large groups split into crew slices: each task verifies a
        // disjoint subrange and writes a disjoint region of `verdicts`,
        // so crew workers (and thieving idle sign lanes) run them with no
        // shared mutable state. run() returns only when every slice is
        // done — the lane thread itself executes whatever was not stolen.
        std::vector<std::uint8_t> verdicts(indices.size());
        if (indices.size() <= slice) {
          const auto v = verifier_->verify_many(kp->h, kp->params, messages,
                                                sigs);
          std::copy(v.begin(), v.end(), verdicts.begin());
        } else {
          const std::size_t tasks_n = (indices.size() + slice - 1) / slice;
          std::vector<std::exception_ptr> errors(tasks_n);
          std::vector<std::function<void()>> tasks;
          tasks.reserve(tasks_n);
          for (std::size_t t = 0; t < tasks_n; ++t) {
            const std::size_t begin = t * slice;
            const std::size_t count =
                std::min(slice, indices.size() - begin);
            tasks.push_back([this, kp, &messages, &sigs, &verdicts, &errors,
                             t, begin, count] {
              try {
                const auto v = verifier_->verify_many(
                    kp->h, kp->params,
                    std::span<const std::string_view>(messages)
                        .subspan(begin, count),
                    std::span<const falcon::Signature>(sigs)
                        .subspan(begin, count));
                std::copy(v.begin(), v.end(), verdicts.begin() +
                                                  static_cast<std::ptrdiff_t>(
                                                      begin));
              } catch (...) {
                errors[t] = std::current_exception();
              }
            });
          }
          verify_crew_->run(std::move(tasks));
          for (const auto& e : errors)
            if (e) std::rethrow_exception(e);
        }
        for (std::size_t i : indices)
          batch[i].trace.stamp(obs::Stage::kEngineEnd);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          VerifyJob& job = batch[indices[j]];
          const std::uint64_t latency = elapsed_us(job.submitted);
          lane.counters.latency.record(latency);
          record_class(verify_telemetry_, key_id, latency, job.trace.trace_id);
          lane.counters.completed.add(1);
          job.trace.stamp(obs::Stage::kFulfilled);
          job.promise.set_value(verdicts[j] != 0);
          tracer_->finish(job.trace);
        }
      } catch (...) {
        const auto error = std::current_exception();
        for (std::size_t i : indices) {
          lane.counters.failed.add(1);
          batch[i].promise.set_exception(error);
        }
      }
    }
  }
}

void Dispatcher::run_keygen_lane(Lane<KeygenJob>& lane) {
#ifdef __linux__
  // Lowest scheduling priority: when keygen and a sign/verify lane compete
  // for a core, the solver always loses — the lane's isolation guarantee
  // is its own queue + thread, this makes it hold under CPU contention
  // too. (Best-effort: EPERM etc. just leaves the default priority.)
  ::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)), 19);
#endif
  MicroBatcher<KeygenJob, QosQueue<KeygenJob>> batcher(
      lane.queue, options_.max_batch,
      std::chrono::microseconds(options_.max_linger_us));
  std::vector<KeygenJob> batch;
  while (batcher.next_batch(batch)) {
    const std::uint64_t closed_us = obs::Trace::now_us();
    for (KeygenJob& job : batch)
      job.trace.stamp_at(obs::Stage::kBatchClosed, closed_us);
    drop_expired(batch, lane.counters);
    // Keygens are independent multi-hundred-millisecond solves — there is
    // nothing to batch, the lane just drains them one by one.
    for (KeygenJob& job : batch) {
      lane.counters.batches.add(1);
      lane.counters.batched.add(1);
      job.trace.stamp(obs::Stage::kEngineStart);
      // A keygen start is a discrete, operationally loud happening (an
      // NTRU solve is about to eat a core for hundreds of ms) — exactly
      // what the event ring exists for.
      events_->emit(obs::EventKind::kKeygenStart, job.req.params.n, 0,
                    "keygen lane");
      try {
        prng::ChaCha20Source rng(job.req.seed);
        falcon::KeyPair kp = falcon::keygen(job.req.params, rng);
        job.trace.stamp(obs::Stage::kEngineEnd);
        KeygenResult result;
        result.params = kp.params;
        result.public_h = kp.h;
        result.key_id = add_key(std::move(kp));
        // The tenant only exists once the solve finishes — backfill the
        // trace so the slow ring can still name it.
        job.trace.tenant = result.key_id;
        const std::uint64_t latency = elapsed_us(job.submitted);
        lane.counters.latency.record(latency);
        record_class(keygen_telemetry_, result.key_id, latency,
                     job.trace.trace_id);
        lane.counters.completed.add(1);
        job.trace.stamp(obs::Stage::kFulfilled);
        job.promise.set_value(std::move(result));
        tracer_->finish(job.trace);
      } catch (...) {
        lane.counters.failed.add(1);
        job.promise.set_exception(std::current_exception());
      }
    }
  }
}

void Dispatcher::run_gauss_lane(Lane<GaussJob>& lane) {
  MicroBatcher<GaussJob, QosQueue<GaussJob>> batcher(
      lane.queue, options_.max_batch,
      std::chrono::microseconds(options_.max_linger_us));
  std::vector<GaussJob> batch;
  while (batcher.next_batch(batch)) {
    const std::uint64_t closed_us = obs::Trace::now_us();
    for (GaussJob& job : batch)
      job.trace.stamp_at(obs::Stage::kBatchClosed, closed_us);
    drop_expired(batch, lane.counters);
    if (batch.empty()) continue;
    // Group by exact target bit patterns: one bulk sample() per distinct
    // (sigma, center), split back across the requests afterwards.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<std::size_t>>
        by_target;
    for (std::size_t i = 0; i < batch.size(); ++i)
      by_target[{std::bit_cast<std::uint64_t>(batch[i].req.sigma),
                 std::bit_cast<std::uint64_t>(batch[i].req.center)}]
          .push_back(i);
    for (const auto& [target, indices] : by_target) {
      std::size_t total = 0;
      for (std::size_t i : indices) total += batch[i].req.n;
      lane.counters.batches.add(1);
      lane.counters.batched.add(indices.size());
      for (std::size_t i : indices)
        batch[i].trace.stamp(obs::Stage::kEngineStart);
      try {
        const GaussJob& head = batch[indices.front()];
        const std::uint64_t tenant =
            gauss_shard_key(head.req.sigma, head.req.center);
        const std::vector<std::int32_t> bulk =
            gaussian_->sample(head.req.sigma, head.req.center, total);
        for (std::size_t i : indices)
          batch[i].trace.stamp(obs::Stage::kEngineEnd);
        std::size_t off = 0;
        for (std::size_t i : indices) {
          GaussJob& job = batch[i];
          std::vector<std::int32_t> slice(
              bulk.begin() + static_cast<std::ptrdiff_t>(off),
              bulk.begin() + static_cast<std::ptrdiff_t>(off + job.req.n));
          off += job.req.n;
          const std::uint64_t latency = elapsed_us(job.submitted);
          lane.counters.latency.record(latency);
          record_class(gauss_telemetry_, tenant, latency, job.trace.trace_id);
          lane.counters.completed.add(1);
          job.trace.stamp(obs::Stage::kFulfilled);
          job.promise.set_value(std::move(slice));
          tracer_->finish(job.trace);
        }
      } catch (...) {
        const auto error = std::current_exception();
        for (std::size_t i : indices) {
          lane.counters.failed.add(1);
          batch[i].promise.set_exception(error);
        }
      }
    }
  }
}

namespace {

template <typename LanePtr>
void snapshot_lanes(const std::vector<LanePtr>& lanes,
                    std::vector<LaneSnapshot>& out, LatencyBuckets& merged) {
  for (const auto& lane : lanes) {
    LaneSnapshot snap;
    snap.submitted = lane->counters.submitted.value();
    snap.rejected = lane->counters.rejected.value();
    snap.completed = lane->counters.completed.value();
    snap.failed = lane->counters.failed.value();
    snap.expired = lane->counters.expired.value();
    snap.batches = lane->counters.batches.value();
    snap.batched = lane->counters.batched.value();
    snap.queue_depth = lane->queue.size();
    const QosQueueStats qos = lane->queue.stats();
    snap.aged_promotions = qos.aged_promotions;
    snap.priority_inversions = qos.priority_inversions;
    snap.tenant_rejections = qos.tenant_rejections;
    snap.tenant_slots = qos.tenant_slots;
    // One bucket snapshot per lane: all three quantiles and the merge come
    // from the same copy (the old path re-read the live buckets once per
    // quantile, so p50/p95/p99 could disagree about the total).
    const LatencyBuckets buckets = lane->counters.latency.snapshot();
    snap.p50_us = bucket_quantile(buckets, 0.50);
    snap.p95_us = bucket_quantile(buckets, 0.95);
    snap.p99_us = bucket_quantile(buckets, 0.99);
    for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += buckets[i];
    out.push_back(snap);
  }
}

}  // namespace

MetricsSnapshot Dispatcher::metrics() const {
  MetricsSnapshot snap;
  LatencyBuckets sign_merged{};
  LatencyBuckets verify_merged{};
  LatencyBuckets keygen_merged{};
  LatencyBuckets gauss_merged{};
  snapshot_lanes(sign_lanes_, snap.sign_lanes, sign_merged);
  snapshot_lanes(verify_lanes_, snap.verify_lanes, verify_merged);
  snapshot_lanes(keygen_lanes_, snap.keygen_lanes, keygen_merged);
  snapshot_lanes(gauss_lanes_, snap.gauss_lanes, gauss_merged);
  snap.p50_us = bucket_quantile(sign_merged, 0.50);
  snap.p95_us = bucket_quantile(sign_merged, 0.95);
  snap.p99_us = bucket_quantile(sign_merged, 0.99);
  snap.verify_p50_us = bucket_quantile(verify_merged, 0.50);
  snap.verify_p95_us = bucket_quantile(verify_merged, 0.95);
  snap.verify_p99_us = bucket_quantile(verify_merged, 0.99);
  snap.keygen_p50_us = bucket_quantile(keygen_merged, 0.50);
  snap.keygen_p95_us = bucket_quantile(keygen_merged, 0.95);
  snap.keygen_p99_us = bucket_quantile(keygen_merged, 0.99);
  snap.gauss_p50_us = bucket_quantile(gauss_merged, 0.50);
  snap.gauss_p95_us = bucket_quantile(gauss_merged, 0.95);
  snap.gauss_p99_us = bucket_quantile(gauss_merged, 0.99);
  snap.ffldl_tree_cache = signing_->tree_cache_stats();
  snap.ntt_key_cache = verifier_->key_cache_stats();
  snap.recipe_cache = registry_->recipe_cache_stats();
  snap.netlist_cache = registry_->netlist_cache_stats();
  snap.base_calls = signing_->base_calls();
  snap.base_rejections = signing_->rejections();
  snap.gauss_samples_served = gaussian_->samples_served();
  return snap;
}

std::vector<HealthComponent> Dispatcher::health() const {
  std::vector<HealthComponent> out;
  const auto queues = [&](const auto& lanes, const char* kind) {
    double worst = 0;
    for (const auto& lane : lanes)
      worst = std::max(worst,
                       static_cast<double>(lane->queue.size()) /
                           static_cast<double>(options_.queue_capacity));
    HealthComponent c;
    c.name = std::string(kind) + "_queue";
    c.value = worst;
    c.ok = worst < 0.9;
    c.detail = "worst lane depth / capacity";
    out.push_back(std::move(c));
  };
  queues(sign_lanes_, "sign");
  queues(verify_lanes_, "verify");
  queues(keygen_lanes_, "keygen");
  queues(gauss_lanes_, "gauss");
  if (key_state_) {
    const store::KvStoreStats st = key_state_->stats();
    HealthComponent c;
    c.name = "kvstore_garbage";
    c.value = st.file_bytes == 0
                  ? 0.0
                  : 1.0 - static_cast<double>(st.live_bytes) /
                              static_cast<double>(st.file_bytes);
    // Compaction keeps the ratio near compact_garbage_ratio; a ratio
    // pinned far above it means compaction is failing (disk, rename).
    c.ok = c.value < 0.9;
    c.detail = "dead bytes / log bytes";
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace cgs::serve
