#pragma once
// Dispatcher: the asynchronous front end that turns many small concurrent
// requests into full bit-sliced batches. Clients submit and get a future;
// admission is a bounded RequestQueue (typed backpressure, never a block);
// per-lane threads run a MicroBatcher (close on max_batch or max_linger,
// whichever first) and hand closed batches to the blocking services:
//
//   submit(SignRequest) ──── shard by key fingerprint ──> sign lane ──┐
//   submit(VerifyRequest) ── shard by key fingerprint ──> verify lane ├─ MicroBatcher
//   submit(GaussRequest) ─── shard by (sigma, c) key ──> gauss lane ──┘   │
//   submit(KeygenRequest) ── dedicated low-priority ──> keygen lane ──┘   ▼
//        falcon::SigningService::sign_many /
//        falcon::VerificationService::verify_many /
//        GaussianService::sample / falcon::keygen
//
// Sign and verify lanes are sharded by falcon::key_fingerprint, so N
// tenant keys live concurrently, each signing under its own cached ffLDL
// tree and verifying against its own cached NTT-domain public key; a lane
// batch that spans several keys is grouped into one sign_many/verify_many
// per key (the engine batches per key — that is what fills its lanes).
// Raw-Gaussian requests shard by the canonical (sigma, center) recipe key
// and a lane batch collapses into one GaussianService::sample per distinct
// target. Because SigningService checks workers out per call instead of
// serializing callers, two lanes' batches on different keys overlap on
// disjoint worker subsets instead of convoying.
//
// Keygen runs on its own dedicated lane (and, on Linux, at minimum thread
// scheduling priority): an NTRU solve is hundreds of milliseconds of
// number theory, so isolating it is what keeps a tenant onboarding from
// stalling every sign/verify request behind it — the keygen queue, its
// batcher and its thread share nothing with the latency-sensitive lanes.
//
// Admission is policy, not just a depth check. Every lane queue is a
// QosQueue: three strict-priority bands (interactive sign/verify, bulk
// gauss, background keygen) with an aging valve so bulk/background can
// never starve, and DRR fair-share across per-tenant sub-queues inside a
// band — a storming tenant hits its own depth cap (kTenantFull, with a
// retry-after hint) while every other tenant keeps admitting. Requests
// may carry a relative deadline; work whose budget lapsed while queued is
// dropped at batch close with a typed DeadlineExpired instead of running
// late. Verify batches split into slices on a work-stealing crew, and
// idle sign-lane batchers steal verify slices while they linger.
//
// Shutdown drains: queues stop admitting (kShutdown), lane threads finish
// everything already accepted, and every outstanding future is fulfilled —
// a submitted request is never silently dropped.

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.h"
#include "engine/service.h"
#include "falcon/signing_service.h"
#include "falcon/verification_service.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/steal.h"

namespace cgs::serve {

/// A submission attempt: on ok() the future is valid and will be
/// fulfilled (value or exception) even across shutdown; otherwise
/// `status` says why the request was not admitted and `retry_after_ms`
/// is the dispatcher's backoff hint (how long the rejecting lane needs
/// to drain one batch's worth of depth — 0 when retrying is pointless,
/// i.e. shutdown).
template <typename T>
struct Submission {
  SubmitStatus status = SubmitStatus::kShutdown;
  std::future<T> future;
  std::uint32_t retry_after_ms = 0;
  bool ok() const { return status == SubmitStatus::kOk; }
};

/// What a deadline-carrying request's future yields when its budget
/// lapsed while it was still queued: the lane dropped it at batch close
/// instead of running it late. Wire frontends map this to a typed
/// kOverloaded shed ("deadline-expired") rather than a generic failure.
class DeadlineExpired : public Error {
 public:
  DeadlineExpired() : Error("deadline-expired") {}
};

struct DispatcherOptions {
  std::size_t queue_capacity = 1024;  // per lane
  std::size_t max_batch = 64;        // requests per closed batch
  std::uint64_t max_linger_us = 2000;
  int sign_lanes = 2;
  int verify_lanes = 1;
  int gauss_lanes = 1;
  // --- QoS admission policy (see serve/queue.h QosQueue) ---------------
  /// Per-tenant depth cap inside each lane queue: one storming tenant
  /// hits kTenantFull while every other tenant still admits. 0 = no
  /// per-tenant cap beyond queue_capacity (the pre-QoS behavior).
  std::size_t tenant_capacity = 0;
  /// Bounded tenant-slot table per lane (beyond it, rare tenants share a
  /// FIFO overflow sub-queue instead of growing the table without bound).
  std::size_t max_tenant_slots = 32;
  /// Strict-priority aging valve: a lower-band request older than this
  /// is served ahead of the higher bands (counts as aged, never as an
  /// inversion). 0 = strict priority with no aging.
  std::uint64_t age_promote_us = 10'000;
  /// DRR quantum (requests) for the per-tenant round-robin within a band.
  std::uint32_t drr_quantum = 4;
  /// Work-stealing verify crew: dedicated helper threads (0 = none; the
  /// verify lane thread still drives its own batches, and idle sign-lane
  /// batchers steal single slices either way).
  int verify_steal_workers = 1;
  /// Verify batches with more than this many requests for one key are
  /// split into crew tasks of at most this size.
  std::size_t verify_steal_slice = 16;
  // Exactly one keygen lane, always: its whole point is isolation, and a
  // second one would only let two NTRU solves compete for cores.
  falcon::SigningOptions signing;        // inner SigningService configuration
  falcon::VerificationOptions verification;  // inner VerificationService
  engine::ServiceOptions gaussian;       // inner GaussianService configuration
  /// Combined RAM budget (approximate bytes) for the two per-tenant key
  /// caches, split 60/40 between ffLDL trees (the heavier artifact) and
  /// NTT keys. 0 = unbounded (legacy every-key-resident behavior). A
  /// budget set directly on signing.tree_cache / verification.key_cache
  /// wins over the split.
  std::size_t key_state_budget_bytes = 0;
  /// Persistent key-state store configuration; an empty dir disables
  /// persistence. When set, the dispatcher owns one store::KvStore shared
  /// by both key caches (wired into signing.key_state /
  /// verification.key_state unless the caller already supplied one), so
  /// evicted trees and NTT keys warm-start from disk — across requests
  /// AND across process restarts.
  store::KvStoreOptions key_state;
  /// Metrics registry to bind every lane counter / trace histogram /
  /// cache bridge into. nullptr -> the dispatcher owns a private registry
  /// (obs_registry() exposes it either way). An external registry must
  /// outlive the dispatcher; sharing one registry between two dispatchers
  /// makes them share lane counters name-for-name — usually not wanted.
  obs::Registry* obs_registry = nullptr;
  /// Per-request stage tracing (see obs/trace.h). sample_every = 0 turns
  /// the tracer off entirely (one predictable branch per request).
  obs::TraceOptions trace;
  /// Tenant-sliced, time-windowed telemetry. When on, every request class
  /// registers: a tenant-labeled request counter
  /// (`cgs_tenant_<class>_requests_total{tenant="<hex16>"}`, top
  /// `tenant_series` tenants + an `other` overflow cell — labeled cells
  /// always sum to the unlabeled global), a windowed end-to-end latency
  /// histogram (`cgs_serve_<class>_latency_us` + derived `_win_*` gauges),
  /// and SLO verdict counters (`cgs_slo_<class>_{good,bad}_total` against
  /// `slo_latency_us`). Off registers none of them — the telemetry-pricing
  /// baseline the bench compares against.
  bool tenant_metrics = true;
  std::size_t tenant_series = 32;
  std::uint64_t slo_latency_us = 50'000;
};

/// One subsystem's readiness as reported by Dispatcher::health(). `value`
/// is the load measure (lane queue saturation or kvstore garbage ratio,
/// both in [0,1]); `ok` is the component's verdict against its threshold.
/// The wire health frame (serve/wire.h) is built from these, plus the
/// transport components the server layer appends.
struct HealthComponent {
  std::string name;
  bool ok = true;
  double value = 0;
  std::string detail;
};

/// What a fulfilled keygen submission yields: the key is registered with
/// the dispatcher under `key_id` (usable in sign / verify submissions
/// immediately); only public material leaves the serving layer.
struct KeygenResult {
  std::uint64_t key_id = 0;
  falcon::FalconParams params;
  std::vector<std::uint32_t> public_h;
};

// ----------------------------------------------------------------------
// The typed request envelopes. One struct per operation, each naming its
// Result type, so the dispatcher exposes a single submit() overload set
// and a wire frontend's frame -> lane plumbing is one switch that builds
// an envelope — not four parallel call paths. Every envelope rides the
// same Job<Req> internally (promise + submit stamp + trace), and every
// submission shares one admission sequence.

/// Sign `message` under a registered key (add_key / a fulfilled keygen).
/// Every envelope also carries its wire identity: the caller's request id
/// and an optional propagated trace id (non-zero forces the request's
/// trace to be sampled under that id — see obs::Tracer::begin). Both are
/// threaded into the job's Trace so the slow ring and exemplars can name
/// the request, its tenant and its class.
struct SignRequest {
  using Result = falcon::Signature;
  std::uint64_t key_id = 0;
  std::string message;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  /// QoS class (see serve/queue.h). Signing answers a waiting caller.
  Priority priority = Priority::kInteractive;
  /// Relative latency budget in microseconds from admission; 0 = none.
  /// Still queued when it lapses -> the future fails DeadlineExpired.
  std::uint64_t deadline_us = 0;
};

/// Verify `sig` over `message` against a registered key; yields the
/// verdict (true = accepted).
struct VerifyRequest {
  using Result = bool;
  std::uint64_t key_id = 0;
  std::string message;
  falcon::Signature sig;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  Priority priority = Priority::kInteractive;
  std::uint64_t deadline_us = 0;  // relative budget; 0 = none
};

/// Generate a key at `params` from `seed` (deterministic per seed). Runs
/// on the dedicated low-priority keygen lane.
struct KeygenRequest {
  using Result = KeygenResult;
  falcon::FalconParams params;
  std::uint64_t seed = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  /// Tenant onboarding: nothing interactive ever waits on it.
  Priority priority = Priority::kBackground;
  std::uint64_t deadline_us = 0;  // relative budget; 0 = none
};

/// `n` raw Gaussian samples at (sigma, center).
struct GaussRequest {
  using Result = std::vector<std::int32_t>;
  double sigma = 0;
  double center = 0;
  std::size_t n = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  /// Bulk sampling: throughput work, below interactive sign/verify.
  Priority priority = Priority::kBulk;
  std::uint64_t deadline_us = 0;  // relative budget; 0 = none
};

class Dispatcher {
 public:
  /// `registry` (not owned) must outlive the dispatcher; both inner
  /// services plan/synthesize through it.
  explicit Dispatcher(engine::SamplerRegistry& registry,
                      DispatcherOptions options = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Register a tenant key; returns its id (the key fingerprint) used in
  /// submit_sign and on the wire. Idempotent for the same key material.
  std::uint64_t add_key(falcon::KeyPair kp);
  /// The registered key for an id; nullptr when unknown.
  const falcon::KeyPair* key(std::uint64_t key_id) const;

  /// The one entry point: queue a typed request envelope on its lane.
  /// Fails fast with kQueueFull (backpressure) or kShutdown; throws
  /// cgs::Error only on an unregistered key_id in a sign/verify envelope
  /// (caller bug, not load — wire frontends check key() first).
  Submission<falcon::Signature> submit(SignRequest req);
  Submission<bool> submit(VerifyRequest req);
  Submission<KeygenResult> submit(KeygenRequest req);
  Submission<std::vector<std::int32_t>> submit(GaussRequest req);

  /// Point-in-time metrics across every lane (plus the cache stats of
  /// the three per-key caches underneath).
  MetricsSnapshot metrics() const;

  /// Per-subsystem readiness: the worst lane queue saturation of each
  /// request class (depth / capacity, not-ok at >= 0.9) and, when the
  /// dispatcher owns a key-state store, its log garbage ratio. Reads only
  /// atomics and the store's stats mutex — safe to call while every lane
  /// is saturated, which is exactly when it matters.
  std::vector<HealthComponent> health() const;

  /// The registry every serve-layer instrument lives in — scrape with
  /// obs::prometheus_text / obs::json_text. Valid for the dispatcher's
  /// lifetime (longer, when an external registry was supplied).
  obs::Registry& obs_registry() { return *obs_; }
  const obs::Registry& obs_registry() const { return *obs_; }

  /// The request tracer (slowest() for the retained worst traces).
  obs::Tracer& tracer() { return *tracer_; }

  /// Stop admitting, drain every queued request, join the lane threads.
  /// Idempotent; the destructor calls it.
  void shutdown();

  falcon::SigningService& signing_service() { return *signing_; }
  falcon::VerificationService& verification_service() { return *verifier_; }
  engine::GaussianService& gaussian_service() { return *gaussian_; }
  /// The dispatcher-owned persistent key-state store; nullptr when
  /// key_state.dir was empty (or the caller supplied external stores).
  store::KvStore* key_state() { return key_state_.get(); }
  const DispatcherOptions& options() const { return options_; }

 private:
  /// Every envelope travels its lane in the same wrapper: the request,
  /// the promise its Submission future hangs off, the admission stamp
  /// for the latency histogram, and the per-request trace.
  template <typename Req>
  struct Job {
    Req req;
    std::promise<typename Req::Result> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Absolute expiry (submitted + deadline_us); time_point::max() when
    /// the request carries no budget.
    std::chrono::steady_clock::time_point deadline;
    obs::Trace trace;
  };
  using SignJob = Job<SignRequest>;
  using VerifyJob = Job<VerifyRequest>;
  using KeygenJob = Job<KeygenRequest>;
  using GaussJob = Job<GaussRequest>;
  template <typename Job>
  struct Lane {
    Lane(const QosQueueOptions& qos, obs::Registry& registry,
         const std::string& prefix)
        : queue(qos), counters(registry, prefix) {}
    QosQueue<Job> queue;
    LaneCounters counters;
    std::thread thread;
  };

  /// Per-class telemetry bundle (see DispatcherOptions::tenant_metrics).
  /// All-null when tenant metrics are off — record_class is then one
  /// branch per completion.
  struct ClassTelemetry {
    obs::CounterFamily* requests = nullptr;
    obs::WindowedHistogram* latency = nullptr;
    obs::Counter* slo_good = nullptr;
    obs::Counter* slo_bad = nullptr;
  };

  /// The one admission sequence behind every submit() overload: stamp,
  /// trace (identity included), try the lane queue, account the outcome.
  template <typename Req>
  Submission<typename Req::Result> submit_impl(Lane<Job<Req>>& lane, Req req,
                                               obs::RequestClass cls,
                                               std::uint64_t tenant);

  /// One completed request's class telemetry: tenant-labeled count,
  /// windowed latency (exemplar = the request's trace id), SLO verdict.
  void record_class(const ClassTelemetry& t, std::uint64_t tenant,
                    std::uint64_t latency_us, std::uint64_t trace_id);

  void run_sign_lane(Lane<SignJob>& lane);
  void run_verify_lane(Lane<VerifyJob>& lane);
  void run_keygen_lane(Lane<KeygenJob>& lane);
  void run_gauss_lane(Lane<GaussJob>& lane);

  /// Drop every job in `batch` whose deadline already passed: fail the
  /// promise with DeadlineExpired, count it, keep the rest in order.
  /// Called at batch close — the one moment a lane inspects jobs anyway.
  template <typename JobT>
  void drop_expired(std::vector<JobT>& batch, LaneCounters& counters);

  void register_bridges();

  engine::SamplerRegistry* registry_;
  DispatcherOptions options_;
  std::unique_ptr<store::KvStore> key_state_;  // shared by both key caches
  std::unique_ptr<obs::Registry> owned_obs_;  // when no external registry
  obs::Registry* obs_ = nullptr;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::EventLog* events_ = nullptr;  // the registry's event log
  ClassTelemetry sign_telemetry_;
  ClassTelemetry verify_telemetry_;
  ClassTelemetry keygen_telemetry_;
  ClassTelemetry gauss_telemetry_;
  std::vector<std::string> callback_metrics_;  // unregistered at shutdown
  std::unique_ptr<falcon::SigningService> signing_;
  std::unique_ptr<falcon::VerificationService> verifier_;
  std::unique_ptr<engine::GaussianService> gaussian_;
  /// Work-stealing crew for verify slices (declared before the lanes, so
  /// lane threads — which post to and steal from it — join first).
  std::unique_ptr<TaskCrew> verify_crew_;

  mutable std::mutex keys_mu_;
  std::map<std::uint64_t, falcon::KeyPair> keys_;

  std::vector<std::unique_ptr<Lane<SignJob>>> sign_lanes_;
  std::vector<std::unique_ptr<Lane<VerifyJob>>> verify_lanes_;
  std::vector<std::unique_ptr<Lane<KeygenJob>>> keygen_lanes_;
  std::vector<std::unique_ptr<Lane<GaussJob>>> gauss_lanes_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace cgs::serve
