#pragma once
// serve::Metrics: per-lane observability for the serving layer with no
// locks on the hot path. Counters are relaxed atomics (each event is one
// fetch_add; cross-counter consistency is not needed for monitoring) and
// latencies go into a log2-bucketed histogram — 64 power-of-two buckets
// cover 1us..2^63us, bucket index = bit_width(us), so recording is a
// single lock-free increment and p50/p95/p99 are recovered by a bucket
// walk with ~2x worst-case resolution (plenty to tell "one linger" from
// "queue melt-down"). Lanes are cache-line separated so two lanes'
// counters never false-share.

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cgs::serve {

/// 65 log2 buckets over microseconds: [0] holds 0us, [k] holds
/// [2^(k-1), 2^k) us.
using LatencyBuckets = std::array<std::uint64_t, 65>;

/// Upper bound (us) of the bucket holding the q-quantile observation of a
/// bucket array (q in [0, 1]); 0 when empty. Resolution is the bucket
/// width (~2x).
inline double bucket_quantile(const LatencyBuckets& buckets, double q) {
  CGS_CHECK(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  // rank in [1, total]: the +1 makes q=0 the min and q=1 the max.
  const auto rank = static_cast<std::uint64_t>(q * (total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank)
      return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
  }
  return std::ldexp(1.0, 64);
}

/// Lock-free log2 latency histogram (microseconds).
class LatencyHistogram {
 public:
  void record(std::uint64_t us) {
    const int bucket = std::bit_width(us);  // 0us -> 0, else 1 + floor(log2)
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  double quantile(double q) const {
    LatencyBuckets snap{};
    merge_into(snap);
    return bucket_quantile(snap, q);
  }

  void merge_into(LatencyBuckets& acc) const {
    for (std::size_t i = 0; i < acc.size(); ++i)
      acc[i] += buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
};

/// One lane's counters. Submissions are counted by the submitting client
/// thread (lock-free); batch/completion counters by the lane thread.
struct alignas(64) LaneCounters {
  std::atomic<std::uint64_t> submitted{0};   // accepted into the queue
  std::atomic<std::uint64_t> rejected{0};    // not admitted (kQueueFull
                                             // backpressure or kShutdown)
  std::atomic<std::uint64_t> completed{0};   // promises fulfilled
  std::atomic<std::uint64_t> failed{0};      // promises failed (exception)
  std::atomic<std::uint64_t> batches{0};     // engine calls dispatched
  std::atomic<std::uint64_t> batched{0};     // requests across those calls
  LatencyHistogram latency;                  // submit -> promise fulfilled
};

/// Plain-value copy of one lane at a point in time.
struct LaneSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched = 0;
  std::size_t queue_depth = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;

  /// Mean requests per dispatched engine batch — the "are the bit-sliced
  /// lanes actually full" number.
  double occupancy() const {
    return batches ? static_cast<double>(batched) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

/// Snapshot of the whole serving layer (see Dispatcher::metrics()).
struct MetricsSnapshot {
  std::vector<LaneSnapshot> sign_lanes;
  std::vector<LaneSnapshot> verify_lanes;
  std::vector<LaneSnapshot> keygen_lanes;
  std::vector<LaneSnapshot> gauss_lanes;
  double p50_us = 0, p95_us = 0, p99_us = 0;  // sign latency, all lanes
  double verify_p50_us = 0, verify_p95_us = 0, verify_p99_us = 0;
  double keygen_p50_us = 0, keygen_p95_us = 0, keygen_p99_us = 0;
  double gauss_p50_us = 0, gauss_p95_us = 0, gauss_p99_us = 0;

  std::uint64_t sign_submitted() const { return sum(sign_lanes, &LaneSnapshot::submitted); }
  std::uint64_t sign_rejected() const { return sum(sign_lanes, &LaneSnapshot::rejected); }
  std::uint64_t sign_completed() const { return sum(sign_lanes, &LaneSnapshot::completed); }
  std::uint64_t sign_batches() const { return sum(sign_lanes, &LaneSnapshot::batches); }
  std::uint64_t sign_batched() const { return sum(sign_lanes, &LaneSnapshot::batched); }
  double sign_occupancy() const { return occupancy(sign_lanes); }

  std::uint64_t verify_completed() const { return sum(verify_lanes, &LaneSnapshot::completed); }
  std::uint64_t verify_failed() const { return sum(verify_lanes, &LaneSnapshot::failed); }
  std::uint64_t verify_batches() const { return sum(verify_lanes, &LaneSnapshot::batches); }
  double verify_occupancy() const { return occupancy(verify_lanes); }

  std::uint64_t keygen_completed() const { return sum(keygen_lanes, &LaneSnapshot::completed); }
  std::uint64_t keygen_failed() const { return sum(keygen_lanes, &LaneSnapshot::failed); }

 private:
  static std::uint64_t sum(const std::vector<LaneSnapshot>& lanes,
                           std::uint64_t LaneSnapshot::* field) {
    std::uint64_t total = 0;
    for (const auto& lane : lanes) total += lane.*field;
    return total;
  }
  static double occupancy(const std::vector<LaneSnapshot>& lanes) {
    const std::uint64_t b = sum(lanes, &LaneSnapshot::batches);
    return b ? static_cast<double>(sum(lanes, &LaneSnapshot::batched)) /
                   static_cast<double>(b)
             : 0.0;
  }
};

}  // namespace cgs::serve
