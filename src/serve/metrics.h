#pragma once
// serve metrics, now thin bindings over the unified obs layer: the
// instrument types (obs::Counter / obs::Histogram, relaxed atomics, log2
// latency buckets) live in obs/metric.h, and every lane's counters are
// *named registry instruments* — the same storage the Prometheus/JSON
// exporters walk at scrape time. The serve layer keeps its plain-value
// MetricsSnapshot view (tests and benches want numbers, not exposition
// text), which now also carries the per-key cache stats of the three
// caches underneath the dispatcher.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric.h"
#include "obs/registry.h"

namespace cgs::serve {

// Historical serve-layer names; the types moved to obs/metric.h when the
// registry unified all telemetry (tests and benches keep compiling).
using LatencyBuckets = obs::HistogramBuckets;
using LatencyHistogram = obs::Histogram;
using obs::bucket_quantile;

/// One lane's counters, bound by name into an obs::Registry under
/// `<prefix>_*`. The registry owns the storage, so these references stay
/// valid for the registry's lifetime and the same counters show up in the
/// exposition endpoints with no second accounting path. Submissions are
/// counted by the submitting client thread (lock-free); batch/completion
/// counters by the lane thread.
struct LaneCounters {
  LaneCounters(obs::Registry& registry, const std::string& prefix)
      : submitted(registry.counter(prefix + "_submitted_total")),
        rejected(registry.counter(prefix + "_rejected_total")),
        completed(registry.counter(prefix + "_completed_total")),
        failed(registry.counter(prefix + "_failed_total")),
        expired(registry.counter(prefix + "_expired_total")),
        batches(registry.counter(prefix + "_batches_total")),
        batched(registry.counter(prefix + "_batched_total")),
        latency(registry.histogram(prefix + "_latency_us")) {}

  obs::Counter& submitted;  // accepted into the queue
  obs::Counter& rejected;   // not admitted (kQueueFull / kTenantFull
                            // backpressure or kShutdown)
  obs::Counter& completed;  // promises fulfilled
  obs::Counter& failed;     // promises failed (exception)
  obs::Counter& expired;    // dropped at batch close: deadline already past
  obs::Counter& batches;    // engine calls dispatched
  obs::Counter& batched;    // requests across those calls
  obs::Histogram& latency;  // submit -> promise fulfilled
};

/// Plain-value copy of one lane at a point in time.
struct LaneSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched = 0;
  std::size_t queue_depth = 0;
  // The lane's QosQueue policy counters (see QosQueueStats).
  std::uint64_t aged_promotions = 0;
  std::uint64_t priority_inversions = 0;  // invariant: stays 0
  std::uint64_t tenant_rejections = 0;
  std::size_t tenant_slots = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;

  /// Mean requests per dispatched engine batch — the "are the bit-sliced
  /// lanes actually full" number.
  double occupancy() const {
    return batches ? static_cast<double>(batched) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

/// Snapshot of the whole serving layer (see Dispatcher::metrics()).
struct MetricsSnapshot {
  std::vector<LaneSnapshot> sign_lanes;
  std::vector<LaneSnapshot> verify_lanes;
  std::vector<LaneSnapshot> keygen_lanes;
  std::vector<LaneSnapshot> gauss_lanes;
  double p50_us = 0, p95_us = 0, p99_us = 0;  // sign latency, all lanes
  double verify_p50_us = 0, verify_p95_us = 0, verify_p99_us = 0;
  double keygen_p50_us = 0, keygen_p95_us = 0, keygen_p99_us = 0;
  double gauss_p50_us = 0, gauss_p95_us = 0, gauss_p99_us = 0;

  // Per-key caches underneath the dispatcher (prerequisite numbers for
  // bounding them — ROADMAP eviction work).
  obs::CacheStats ffldl_tree_cache;  // SigningService
  obs::CacheStats ntt_key_cache;     // VerificationService
  obs::CacheStats recipe_cache;      // SamplerRegistry recipes
  obs::CacheStats netlist_cache;     // SamplerRegistry netlists
  std::uint64_t base_calls = 0;      // engine base-sampler invocations
  std::uint64_t base_rejections = 0;
  std::uint64_t gauss_samples_served = 0;

  std::uint64_t sign_submitted() const { return sum(sign_lanes, &LaneSnapshot::submitted); }
  std::uint64_t sign_rejected() const { return sum(sign_lanes, &LaneSnapshot::rejected); }
  std::uint64_t sign_completed() const { return sum(sign_lanes, &LaneSnapshot::completed); }
  std::uint64_t sign_batches() const { return sum(sign_lanes, &LaneSnapshot::batches); }
  std::uint64_t sign_batched() const { return sum(sign_lanes, &LaneSnapshot::batched); }
  double sign_occupancy() const { return occupancy(sign_lanes); }

  std::uint64_t verify_completed() const { return sum(verify_lanes, &LaneSnapshot::completed); }
  std::uint64_t verify_failed() const { return sum(verify_lanes, &LaneSnapshot::failed); }
  std::uint64_t verify_batches() const { return sum(verify_lanes, &LaneSnapshot::batches); }
  double verify_occupancy() const { return occupancy(verify_lanes); }

  std::uint64_t keygen_completed() const { return sum(keygen_lanes, &LaneSnapshot::completed); }
  std::uint64_t keygen_failed() const { return sum(keygen_lanes, &LaneSnapshot::failed); }

  std::uint64_t sign_expired() const { return sum(sign_lanes, &LaneSnapshot::expired); }
  std::uint64_t verify_expired() const { return sum(verify_lanes, &LaneSnapshot::expired); }

  /// Priority inversions across every lane of every class — the QoS
  /// invariant the replay bench gates at exactly zero.
  std::uint64_t priority_inversions() const {
    return sum(sign_lanes, &LaneSnapshot::priority_inversions) +
           sum(verify_lanes, &LaneSnapshot::priority_inversions) +
           sum(keygen_lanes, &LaneSnapshot::priority_inversions) +
           sum(gauss_lanes, &LaneSnapshot::priority_inversions);
  }
  std::uint64_t aged_promotions() const {
    return sum(sign_lanes, &LaneSnapshot::aged_promotions) +
           sum(verify_lanes, &LaneSnapshot::aged_promotions) +
           sum(keygen_lanes, &LaneSnapshot::aged_promotions) +
           sum(gauss_lanes, &LaneSnapshot::aged_promotions);
  }
  std::uint64_t tenant_rejections() const {
    return sum(sign_lanes, &LaneSnapshot::tenant_rejections) +
           sum(verify_lanes, &LaneSnapshot::tenant_rejections) +
           sum(keygen_lanes, &LaneSnapshot::tenant_rejections) +
           sum(gauss_lanes, &LaneSnapshot::tenant_rejections);
  }

 private:
  static std::uint64_t sum(const std::vector<LaneSnapshot>& lanes,
                           std::uint64_t LaneSnapshot::* field) {
    std::uint64_t total = 0;
    for (const auto& lane : lanes) total += lane.*field;
    return total;
  }
  static double occupancy(const std::vector<LaneSnapshot>& lanes) {
    const std::uint64_t b = sum(lanes, &LaneSnapshot::batches);
    return b ? static_cast<double>(sum(lanes, &LaneSnapshot::batched)) /
                   static_cast<double>(b)
             : 0.0;
  }
};

}  // namespace cgs::serve
