#pragma once
// RequestQueue: the serving layer's admission point — a bounded MPMC queue
// with explicit backpressure. Producers never block: try_push either
// accepts the item or returns a typed rejection (kQueueFull when the
// caller should shed load or retry, kShutdown once close() has been
// called), so a slow signing backend surfaces as rejected submissions
// instead of an unbounded memory ramp or a convoy of blocked client
// threads. Consumers (the MicroBatcher) block with a deadline, which is
// what turns "wait a little for more requests" into full bit-sliced
// batches.
//
// Plain mutex + two condition variables: the queue hand-off is thousands
// of times cheaper than the Falcon signing work behind it, so lock-free
// machinery would buy nothing here (the *metrics* counters on the hot
// submit path are lock-free — see serve/metrics.h).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace cgs::serve {

/// Why a submission was not accepted (or, kOk, that it was).
enum class SubmitStatus {
  kOk,
  kQueueFull,  // backpressure: capacity reached, caller sheds or retries
  kShutdown,   // close() was called; no further work is accepted
};

inline const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kOk: return "ok";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "?";
}

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    CGS_CHECK_MSG(capacity_ >= 1, "request queue needs capacity >= 1");
  }

  /// Non-blocking admission; on kOk the item has been moved in and the
  /// consumer is woken.
  SubmitStatus try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return SubmitStatus::kShutdown;
      if (items_.size() >= capacity_) return SubmitStatus::kQueueFull;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return SubmitStatus::kOk;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  /// Returns false only in the latter case — items queued before close()
  /// are always delivered (shutdown drains, it does not drop).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Like pop() but gives up at `deadline`; false on timeout or on
  /// closed-and-drained (check closed() to tell the two apart).
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait_until(lock, deadline,
                         [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop accepting; wake every waiter. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (a gauge — racy by nature, exact at the instant).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cgs::serve
