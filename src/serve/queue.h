#pragma once
// RequestQueue: the serving layer's admission point — a bounded MPMC queue
// with explicit backpressure. Producers never block: try_push either
// accepts the item or returns a typed rejection (kQueueFull when the
// caller should shed load or retry, kShutdown once close() has been
// called), so a slow signing backend surfaces as rejected submissions
// instead of an unbounded memory ramp or a convoy of blocked client
// threads. Consumers (the MicroBatcher) block with a deadline, which is
// what turns "wait a little for more requests" into full bit-sliced
// batches.
//
// QosQueue layers policy on the same contract: three strict-priority
// bands with aging (bulk can never starve, but never convoys interactive
// work either) and, inside each band, deficit-round-robin across
// per-tenant sub-queues with a per-tenant depth cap, so one tenant's
// storm sheds *that tenant* (kTenantFull) while everyone else still
// admits and batches. The consumer interface (pop / pop_until / close)
// is identical, so the MicroBatcher drives either queue.
//
// Plain mutex + two condition variables: the queue hand-off is thousands
// of times cheaper than the Falcon signing work behind it, so lock-free
// machinery would buy nothing here (the *metrics* counters on the hot
// submit path are lock-free — see serve/metrics.h).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace cgs::serve {

/// Why a submission was not accepted (or, kOk, that it was).
enum class SubmitStatus {
  kOk,
  kQueueFull,   // backpressure: global capacity reached, caller sheds or
                // retries
  kTenantFull,  // per-tenant depth cap reached: THIS tenant backs off,
                // everyone else still admits
  kShutdown,    // close() was called; no further work is accepted
};

inline const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kOk: return "ok";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kTenantFull: return "tenant-full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "?";
}

/// Request priority class. Lower value = served first. The dispatcher's
/// defaults: sign/verify are interactive (a client is blocked on the
/// answer), raw Gaussian bulk (pipeline fodder), keygen background (an
/// NTRU solve nobody waits on with a stopwatch).
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kBulk = 1,
  kBackground = 2,
};

inline constexpr std::size_t kPriorityBands = 3;

inline const char* to_string(Priority p) {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBulk: return "bulk";
    case Priority::kBackground: return "background";
  }
  return "?";
}

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    CGS_CHECK_MSG(capacity_ >= 1, "request queue needs capacity >= 1");
  }

  /// Non-blocking admission; on kOk the item has been moved in and the
  /// consumer is woken.
  SubmitStatus try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return SubmitStatus::kShutdown;
      if (items_.size() >= capacity_) return SubmitStatus::kQueueFull;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return SubmitStatus::kOk;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  /// Returns false only in the latter case — items queued before close()
  /// are always delivered (shutdown drains, it does not drop).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Like pop() but gives up at `deadline`; false on timeout or on
  /// closed-and-drained (check closed() to tell the two apart).
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait_until(lock, deadline,
                         [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop accepting; wake every waiter. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (a gauge — racy by nature, exact at the instant).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

struct QosQueueOptions {
  /// Global bound across every band and tenant (kQueueFull beyond).
  std::size_t capacity = 1024;
  /// Per-tenant depth cap (kTenantFull beyond). 0 = capacity, i.e. no
  /// tenant-level cap — the legacy single-FIFO admission behavior.
  std::size_t tenant_capacity = 0;
  /// Live per-tenant sub-queue slots. Tenants beyond this share one
  /// overflow sub-queue per band (the 2Q-style bounded label admission
  /// from obs/labels.h, applied to scheduling state): fairness degrades
  /// gracefully to "the long tail is one tenant", memory stays bounded.
  /// A slot is reclaimed the moment its sub-queue drains.
  std::size_t max_tenants = 32;
  /// A lower band whose oldest item has waited this long is served ahead
  /// of higher bands — the anti-starvation valve. 0 disables aging
  /// (strict priority only).
  std::uint64_t age_promote_us = 10'000;
  /// Items a tenant may pop in a row before the round-robin rotates on —
  /// the deficit-round-robin quantum.
  std::uint32_t drr_quantum = 4;
};

/// Counters a QosQueue keeps about its own policy decisions; read them
/// through the accessors below (each is exact under the queue mutex).
struct QosQueueStats {
  std::uint64_t aged_promotions = 0;   // lower-band pops via the age valve
  std::uint64_t priority_inversions = 0;  // self-check, must stay 0
  std::uint64_t tenant_rejections = 0;    // kTenantFull answers
  std::size_t tenant_slots = 0;           // live per-tenant sub-queues
};

/// The QoS admission point: strict priority with aging across three
/// bands, deficit-round-robin across per-tenant sub-queues within a band,
/// a per-tenant depth cap, and a bounded tenant-slot table. Same consumer
/// contract as RequestQueue (pop blocks, close drains), so the
/// MicroBatcher drives it unchanged.
template <typename T>
class QosQueue {
 public:
  explicit QosQueue(QosQueueOptions options) : options_(options) {
    CGS_CHECK_MSG(options_.capacity >= 1, "qos queue needs capacity >= 1");
    CGS_CHECK_MSG(options_.drr_quantum >= 1, "qos queue needs quantum >= 1");
    if (options_.tenant_capacity == 0 ||
        options_.tenant_capacity > options_.capacity)
      options_.tenant_capacity = options_.capacity;
    if (options_.max_tenants == 0) options_.max_tenants = 1;
  }

  /// Non-blocking admission into (band, tenant). kQueueFull when the
  /// global bound is hit, kTenantFull when only this tenant's cap is —
  /// the caller sheds exactly the storming tenant.
  SubmitStatus try_push(T&& item, Priority priority, std::uint64_t tenant) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return SubmitStatus::kShutdown;
      if (total_ >= options_.capacity) return SubmitStatus::kQueueFull;
      Band& band = bands_[static_cast<std::size_t>(priority)];
      Sub& sub = resolve(band, tenant);
      if (sub.items.size() >= options_.tenant_capacity) {
        ++stats_.tenant_rejections;
        return SubmitStatus::kTenantFull;
      }
      sub.items.push_back(
          Entry{std::move(item), std::chrono::steady_clock::now()});
      if (!sub.in_rotation) {
        sub.deficit = 0;
        band.rotation.push_back(&sub);
        sub.in_rotation = true;
      }
      ++band.size;
      ++total_;
    }
    ready_cv_.notify_one();
    return SubmitStatus::kOk;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained
  /// (same drain-never-drop contract as RequestQueue::pop).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [this] { return total_ > 0 || closed_; });
    if (total_ == 0) return false;
    out = take_locked();
    return true;
  }

  /// Like pop() but gives up at `deadline`; false on timeout or on
  /// closed-and-drained.
  template <typename Clock, typename Duration>
  bool pop_until(T& out,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait_until(lock, deadline,
                         [this] { return total_ > 0 || closed_; });
    if (total_ == 0) return false;
    out = take_locked();
    return true;
  }

  /// Stop accepting; wake every waiter. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous total depth across every band and tenant.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  /// Instantaneous depth of one band.
  std::size_t band_size(Priority priority) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bands_[static_cast<std::size_t>(priority)].size;
  }

  std::size_t capacity() const { return options_.capacity; }

  QosQueueStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    QosQueueStats s = stats_;
    s.tenant_slots = tenant_slots_;
    return s;
  }

 private:
  struct Entry {
    T item;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// One tenant's FIFO within a band (or the band's shared overflow).
  struct Sub {
    std::uint64_t tenant = 0;
    bool is_overflow = false;
    bool in_rotation = false;
    std::uint32_t deficit = 0;
    std::deque<Entry> items;
  };
  struct Band {
    std::unordered_map<std::uint64_t, Sub> tenants;
    Sub overflow;
    /// DRR rotation over non-empty sub-queues. Pointers stay valid:
    /// unordered_map never moves nodes, and a sub leaves the rotation
    /// before its map node is erased.
    std::deque<Sub*> rotation;
    std::size_t size = 0;
  };

  Sub& resolve(Band& band, std::uint64_t tenant) {
    auto it = band.tenants.find(tenant);
    if (it != band.tenants.end()) return it->second;
    if (tenant_slots_ >= options_.max_tenants) {
      band.overflow.is_overflow = true;
      return band.overflow;
    }
    ++tenant_slots_;
    Sub& sub = band.tenants[tenant];
    sub.tenant = tenant;
    return sub;
  }

  /// The scheduling decision, mu_ held and total_ > 0: pick the band
  /// (strict priority, unless a lower band's oldest head has aged past
  /// the promote threshold), then DRR within it.
  T take_locked() {
    const auto now = std::chrono::steady_clock::now();
    std::size_t highest = 0;
    while (bands_[highest].size == 0) ++highest;
    std::size_t chosen = highest;
    bool aged = false;
    if (options_.age_promote_us != 0) {
      const auto promote = std::chrono::microseconds(options_.age_promote_us);
      for (std::size_t b = highest + 1; b < kPriorityBands && !aged; ++b) {
        if (bands_[b].size == 0) continue;
        // The band's oldest head: every sub is FIFO, so scan rotation
        // heads (bounded by max_tenants — trivial next to a signing op).
        for (const Sub* sub : bands_[b].rotation) {
          if (!sub->items.empty() &&
              now - sub->items.front().enqueued >= promote) {
            chosen = b;
            aged = true;
            ++stats_.aged_promotions;
            break;
          }
        }
      }
    }
    // Self-check: serving a lower band while a higher one holds work is
    // legal ONLY through the aging valve above. Anything else is a
    // priority inversion — counted, never silently shipped; the QoS
    // replay bench gates this at exactly zero.
    if (chosen != highest && !aged) ++stats_.priority_inversions;

    Band& band = bands_[chosen];
    Sub* sub = band.rotation.front();
    if (sub->deficit == 0) sub->deficit = options_.drr_quantum;
    Entry entry = std::move(sub->items.front());
    sub->items.pop_front();
    --sub->deficit;
    --band.size;
    --total_;
    if (sub->items.empty()) {
      band.rotation.pop_front();
      sub->in_rotation = false;
      sub->deficit = 0;
      if (!sub->is_overflow) {
        band.tenants.erase(sub->tenant);
        --tenant_slots_;
      }
    } else if (sub->deficit == 0) {
      // Quantum spent: rotate to the back so the next tenant gets its turn.
      band.rotation.pop_front();
      band.rotation.push_back(sub);
    }
    return std::move(entry.item);
  }

  QosQueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  Band bands_[kPriorityBands];
  std::size_t total_ = 0;
  std::size_t tenant_slots_ = 0;
  QosQueueStats stats_;
  bool closed_ = false;
};

}  // namespace cgs::serve
