#include "serve/router.h"

#include <memory>
#include <string>
#include <utility>

#include "net/overload.h"
#include "obs/export.h"
#include "serial/serial.h"
#include "serve/wire.h"

namespace cgs::serve {

CompletionPool::CompletionPool(int threads) {
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this] { run(); });
}

CompletionPool::~CompletionPool() { join(); }

void CompletionPool::join() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void CompletionPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void CompletionPool::run() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

// The shared tail of every request type: reject unadmitted submissions
// now, otherwise park (token, future) on the pool and answer — success
// or error — when the future lands. `ok` and `err` encode the response
// frames; the token travels through std::function via shared_ptr (the
// pool's tasks must be copyable, the token is move-only).
// An admission shed on the wire: the same typed kOverloaded frame the
// transport itself sheds with, not a response-type-specific failure
// string — one frame kind means "back off", whoever shed it. It names
// the request (pipelining clients settle by id) and carries the
// dispatcher's drain-time retry hint.
std::vector<std::uint8_t> overloaded(std::uint64_t request_id,
                                     std::string reason,
                                     std::uint32_t retry_after_ms) {
  net::OverloadedFrame shed;
  shed.retry_after_ms = retry_after_ms;
  shed.reason = std::move(reason);
  shed.request_id = request_id;
  return net::encode_overloaded(shed);
}

template <typename R, typename Ok, typename Err>
void settle_async(CompletionPool& pool, net::ResponseToken token,
                  Submission<R> sub, std::uint64_t request_id, Ok ok,
                  Err err) {
  if (!sub.ok()) {
    token.send(
        overloaded(request_id, to_string(sub.status), sub.retry_after_ms));
    return;
  }
  auto tok = std::make_shared<net::ResponseToken>(std::move(token));
  auto fut = std::make_shared<std::future<R>>(std::move(sub.future));
  pool.post([tok, fut, request_id, ok, err] {
    try {
      tok->send(ok(request_id, fut->get()));
    } catch (const DeadlineExpired& e) {
      // The budget lapsed while queued — a load answer, not a failure of
      // the operation. retry_after 0: only the client knows whether the
      // deadline itself can move.
      tok->send(overloaded(request_id, e.what(), 0));
    } catch (const std::exception& e) {
      tok->send(err(request_id, std::string(e.what())));
    }
  });
}

std::vector<std::uint8_t> sign_err(std::uint64_t id, const std::string& e) {
  return encode(SignResponseFrame::failure(id, e));
}
std::vector<std::uint8_t> verify_err(std::uint64_t id, const std::string& e) {
  return encode(VerifyResponseFrame::failure(id, e));
}
std::vector<std::uint8_t> keygen_err(std::uint64_t id, const std::string& e) {
  return encode(KeygenResponseFrame::failure(id, e));
}

// Best-effort request id recovery from a frame we could not (or will not)
// decode. Every request payload leads with `request_id u64 LE` right
// after the 28-byte serial header, so even a frame whose tail is
// corrupted usually still names itself — the id only stays 0 when the
// frame is too short to contain one. Never throws.
std::uint64_t readable_request_id(std::span<const std::uint8_t> frame) {
  constexpr std::size_t kHeader = 28;  // magic|version|tag|size|hash64
  if (frame.size() < kHeader + 8) return 0;
  std::uint64_t id = 0;
  for (int i = 7; i >= 0; --i)
    id = (id << 8) | frame[kHeader + static_cast<std::size_t>(i)];
  return id;
}

}  // namespace

void route_frame(Dispatcher& dispatcher, CompletionPool& pool,
                 net::ResponseToken token, std::vector<std::uint8_t> frame) {
  try {
    switch (serial::peek_tag(frame)) {
      case serial::TypeTag::kKeygenRequest: {
        const KeygenRequestFrame req = decode_keygen_request(frame);
        KeygenRequest env;
        env.params = falcon::FalconParams::for_degree(
            static_cast<std::size_t>(req.degree));
        env.seed = req.seed;
        env.request_id = req.request_id;
        env.trace_id = req.trace_id;
        env.deadline_us = req.deadline_us;
        settle_async(
            pool, std::move(token), dispatcher.submit(std::move(env)),
            req.request_id,
            [](std::uint64_t id, const KeygenResult& r) {
              return encode(KeygenResponseFrame::success(
                  id, r.key_id, r.public_h, r.params.n));
            },
            keygen_err);
        return;
      }
      case serial::TypeTag::kSignRequest: {
        SignRequestFrame req = decode_sign_request(frame);
        if (dispatcher.key(req.key_id) == nullptr) {
          token.send(sign_err(req.request_id, "unknown key"));
          return;
        }
        SignRequest env;
        env.key_id = req.key_id;
        env.message = std::move(req.message);
        env.request_id = req.request_id;
        env.trace_id = req.trace_id;
        env.deadline_us = req.deadline_us;
        settle_async(
            pool, std::move(token), dispatcher.submit(std::move(env)),
            req.request_id,
            [](std::uint64_t id, const falcon::Signature& sig) {
              return encode(SignResponseFrame::success(id, sig));
            },
            sign_err);
        return;
      }
      case serial::TypeTag::kVerifyRequest: {
        VerifyRequestFrame req = decode_verify_request(frame);
        if (dispatcher.key(req.key_id) == nullptr) {
          token.send(verify_err(req.request_id, "unknown key"));
          return;
        }
        VerifyRequest env;
        env.key_id = req.key_id;
        env.sig = req.to_signature();
        env.message = std::move(req.message);
        env.request_id = req.request_id;
        env.trace_id = req.trace_id;
        env.deadline_us = req.deadline_us;
        settle_async(
            pool, std::move(token), dispatcher.submit(std::move(env)),
            req.request_id,
            [](std::uint64_t id, bool accepted) {
              return encode(VerifyResponseFrame::verdict(id, accepted));
            },
            verify_err);
        return;
      }
      case serial::TypeTag::kStatsRequest: {
        // Answered inline on the loop thread: a registry walk is cheap.
        const StatsRequestFrame req = decode_stats_request(frame);
        const obs::Registry& registry = dispatcher.obs_registry();
        std::string text = req.format == StatsFormat::kJson
                               ? obs::json_text(registry)
                               : obs::prometheus_text(registry);
        token.send(encode(StatsResponseFrame::success(
            req.request_id, req.format, std::move(text))));
        return;
      }
      case serial::TypeTag::kHealthRequest: {
        // Answered inline like stats — never queued, so health stays
        // answerable while every dispatch lane is saturated (which is
        // exactly when a load balancer needs the answer).
        const HealthRequestFrame req = decode_health_request(frame);
        std::vector<HealthComponentFrame> components;
        for (const HealthComponent& c : dispatcher.health()) {
          HealthComponentFrame f;
          f.name = c.name;
          f.ok = c.ok;
          f.value = c.value;
          f.detail = c.detail;
          components.push_back(std::move(f));
        }
        // Transport readiness: the reactors publish their worst recent
        // loop lag as a gauge (net::Server's timer-wheel probe); fold it
        // in when a server registered one against this registry.
        for (const obs::Sample& s : dispatcher.obs_registry().collect()) {
          if (s.name == "cgs_net_loop_lag_us" && s.labels.empty()) {
            HealthComponentFrame f;
            f.name = "net_loop_lag";
            f.value = s.value;
            f.ok = s.value < 100'000;  // a loop 100ms behind is not ready
            f.detail = "worst reactor loop lag (us)";
            components.push_back(std::move(f));
          }
        }
        token.send(encode(HealthResponseFrame::success(
            req.request_id, std::move(components))));
        return;
      }
      default:
        // A well-formed frame whose tag is simply not a request (a
        // response tag, say). Pretending it was a verify that failed
        // made the client's sign/keygen decode phase choke on a
        // VerifyResponse for id 0 — answer with the one frame kind every
        // decode phase accepts, naming the id the frame itself carries.
        token.send(overloaded(readable_request_id(frame),
                              "unsupported request type", 0));
        return;
    }
  } catch (const std::exception& e) {
    // Undecodable frame: still answer (the transport owes one response
    // per delivered frame) with an error of the response type matching
    // the request's tag where readable, so the client's current decode
    // phase can always parse it. The id is recovered best-effort from
    // the frame prefix — a torn tail should not anonymize the response
    // and wedge a pipelining client waiting on that id.
    if (!token.valid()) return;
    const std::uint64_t id = readable_request_id(frame);
    std::vector<std::uint8_t> resp;
    try {
      switch (serial::peek_tag(frame)) {
        case serial::TypeTag::kKeygenRequest:
          resp = keygen_err(id, e.what());
          break;
        case serial::TypeTag::kSignRequest:
          resp = sign_err(id, e.what());
          break;
        case serial::TypeTag::kHealthRequest:
          resp = encode(HealthResponseFrame::failure(id, e.what()));
          break;
        default:
          resp = verify_err(id, e.what());
          break;
      }
    } catch (const std::exception&) {
      resp = verify_err(id, e.what());
    }
    token.send(std::move(resp));
  }
}

}  // namespace cgs::serve
