#pragma once
// The wire front end's frame -> lane plumbing, shared by every server
// binary (examples/protocol_server, bench/bench_c10k): one switch that
// decodes a request frame by tag, builds the matching typed Dispatcher
// envelope, submits it, and settles the net::ResponseToken when the
// future lands. Admission failures (kQueueFull / kShutdown) and
// undecodable frames answer immediately with the matching error response
// type — the token is settled on every path, so the transport's reply-
// debt accounting (and its drain-true shutdown) holds no matter what the
// application layer does.
//
// Completion runs off the event loop: route_frame() hands the future +
// token pair to a CompletionPool, whose workers block on future.get()
// and send the response from their own thread (ResponseToken routes
// itself to the owning reactor). The pool must be joined before the
// Server is destroyed — pending tasks hold live tokens.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/server.h"
#include "serve/dispatcher.h"

namespace cgs::serve {

/// Waits on dispatcher futures off the event loop and settles the
/// response tokens — the reactor threads themselves never block.
class CompletionPool {
 public:
  explicit CompletionPool(int threads);
  ~CompletionPool();

  CompletionPool(const CompletionPool&) = delete;
  CompletionPool& operator=(const CompletionPool&) = delete;

  /// Drain the queue and join the workers. Idempotent. Call before the
  /// net::Server whose tokens the queued tasks hold is destroyed.
  void join();

  void post(std::function<void()> task);

 private:
  void run();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// One frame in, one settled token out: decode by tag, submit the typed
/// envelope to its lane, let `pool` answer when the future lands. Every
/// failure mode (unknown key, queue full, undecodable payload,
/// unsupported tag) answers with the error response of the matching
/// type; the token never escapes unsettled.
void route_frame(Dispatcher& dispatcher, CompletionPool& pool,
                 net::ResponseToken token, std::vector<std::uint8_t> frame);

}  // namespace cgs::serve
