#include "serve/steal.h"

#include <utility>

namespace cgs::serve {

TaskCrew::TaskCrew(int workers) {
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

TaskCrew::~TaskCrew() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  // Any batch still pending belongs to a run() caller, and run() never
  // returns before its batch drains — so by the time a TaskCrew can be
  // destroyed, pending_ holds nothing whose owner is still waiting.
}

void TaskCrew::finish(Task task) {
  // Tasks are contractually noexcept (slices capture their own errors),
  // but the batch accounting must settle even if one slips through —
  // a lost decrement would park run() forever.
  try {
    task.fn();
  } catch (...) {
  }
  bool batch_done = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_done = (--task.batch->remaining == 0);
  }
  if (batch_done) done_cv_.notify_all();
}

void TaskCrew::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  BatchState batch;
  batch.remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& fn : tasks) pending_.push_back(Task{std::move(fn), &batch});
  }
  work_cv_.notify_all();
  // Join the crew: execute pending tasks (this batch's or another's —
  // helping a neighbor drains the pool that our own stragglers sit in)
  // until every task of THIS batch has completed somewhere.
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.remaining != 0) {
    if (!pending_.empty()) {
      Task task = std::move(pending_.front());
      pending_.pop_front();
      lock.unlock();
      finish(std::move(task));
      lock.lock();
    } else {
      // Our tasks are all claimed but some are still in flight on other
      // threads; wait for a completion (or for new work we can help with).
      done_cv_.wait(lock,
                    [&] { return batch.remaining == 0 || !pending_.empty(); });
    }
  }
}

bool TaskCrew::try_help_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return false;
    task = std::move(pending_.front());
    pending_.pop_front();
    ++stolen_;
  }
  finish(std::move(task));
  return true;
}

std::uint64_t TaskCrew::stolen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stolen_;
}

void TaskCrew::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stopping and drained
    Task task = std::move(pending_.front());
    pending_.pop_front();
    ++stolen_;
    lock.unlock();
    finish(std::move(task));
    lock.lock();
  }
}

}  // namespace cgs::serve
