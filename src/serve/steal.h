#pragma once
// TaskCrew: a checkqueue-style work crew for batch fan-out. The thread
// that owns a batch (the verify lane) does not hand work off and block —
// it posts the batch's tasks to a shared pool and then *joins the crew*,
// executing tasks itself until its batch is complete. Dedicated workers
// (possibly zero) drain the same pool, and any other thread with a spare
// moment lends a hand through try_help_one() — that is how an idle sign
// lane steals verify slices between its own batches.
//
// run() is batch-scoped: it returns exactly when every task it posted has
// finished executing, no matter which thread ran each one. Multiple
// threads may run() concurrently; their batches interleave in the shared
// pool and each caller waits only for its own. Tasks must not throw —
// callers capture failures into their own slots (a slice records its
// exception_ptr; the batch owner rethrows after run()).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgs::serve {

class TaskCrew {
 public:
  /// `workers` dedicated threads (0 is valid: the batch owner plus
  /// helpers do all the work).
  explicit TaskCrew(int workers = 0);
  ~TaskCrew();

  TaskCrew(const TaskCrew&) = delete;
  TaskCrew& operator=(const TaskCrew&) = delete;

  /// Post `tasks` and execute alongside the crew until all of them have
  /// completed. The calling thread is part of the crew for the duration —
  /// it never parks while its batch still has unclaimed tasks.
  void run(std::vector<std::function<void()>> tasks);

  /// Claim and execute one pending task, if any; true when work was done.
  /// The lending thread runs the task inline — keep tasks slice-sized.
  bool try_help_one();

  /// Tasks executed by a thread other than the one that posted them
  /// (dedicated workers and try_help_one lenders both count).
  std::uint64_t stolen() const;

 private:
  struct BatchState {
    std::size_t remaining = 0;  // guarded by the crew mutex
  };
  struct Task {
    std::function<void()> fn;
    BatchState* batch = nullptr;
  };

  void worker_loop();
  /// Execute `task` (mutex NOT held), then settle its batch accounting.
  void finish(Task task);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // pending_ gained a task / stopping
  std::condition_variable done_cv_;  // some batch's remaining hit zero
  std::deque<Task> pending_;
  std::vector<std::thread> workers_;
  std::uint64_t stolen_ = 0;
  bool stopping_ = false;
};

}  // namespace cgs::serve
