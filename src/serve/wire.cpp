#include "serve/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "falcon/codec.h"
#include "serial/serial.h"

namespace cgs::serve {

namespace {

// The u32 length prefix ahead of every serial frame.
std::vector<std::uint8_t> length_prefixed(std::vector<std::uint8_t> frame) {
  CGS_CHECK_MSG(frame.size() <= kMaxWireMessage - 4,
                "wire message exceeds kMaxWireMessage");
  const auto len = static_cast<std::uint32_t>(frame.size());
  std::vector<std::uint8_t> out;
  out.reserve(4 + frame.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode(const SignRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  w.u64(req.key_id);
  w.str(req.message);
  return length_prefixed(
      serial::wrap(serial::TypeTag::kSignRequest, w.take()));
}

SignRequestFrame decode_sign_request(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kSignRequest);
  serial::Reader r(payload);
  SignRequestFrame req;
  req.request_id = r.u64();
  req.key_id = r.u64();
  req.message = r.str();
  r.finish();
  return req;
}

SignResponseFrame SignResponseFrame::success(std::uint64_t request_id,
                                             const falcon::Signature& sig) {
  SignResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.degree = sig.s1.size();
  resp.nonce = sig.nonce;
  resp.s1_compressed = falcon::compress_s1(sig.s1);
  return resp;
}

SignResponseFrame SignResponseFrame::failure(std::uint64_t request_id,
                                             std::string error) {
  SignResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

falcon::Signature SignResponseFrame::to_signature() const {
  if (!ok)
    throw serial::SerialError("sign response is an error frame: " + error);
  auto s1 = falcon::decompress_s1(s1_compressed, degree);
  if (!s1 || s1->size() != degree)
    throw serial::SerialError("sign response carries malformed s1 coding");
  falcon::Signature sig;
  sig.nonce = nonce;
  sig.s1 = std::move(*s1);
  return sig;
}

std::vector<std::uint8_t> encode(const SignResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    w.u64(resp.degree);
    w.bytes(std::span(resp.nonce.data(), resp.nonce.size()));
    w.u64(resp.s1_compressed.size());
    w.bytes(resp.s1_compressed);
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kSignResponse, w.take()));
}

SignResponseFrame decode_sign_response(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kSignResponse);
  serial::Reader r(payload);
  SignResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.degree = r.u64();
    if (resp.degree == 0 || resp.degree > (1u << 14))
      throw serial::SerialError("sign response degree out of range");
    const auto nonce = r.bytes(resp.nonce.size());
    std::memcpy(resp.nonce.data(), nonce.data(), resp.nonce.size());
    const std::uint64_t len = r.u64();
    if (len > r.remaining())
      throw serial::SerialError("sign response s1 length overruns payload");
    const auto s1 = r.bytes(static_cast<std::size_t>(len));
    resp.s1_compressed.assign(s1.begin(), s1.end());
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

bool write_message(int fd, std::span<const std::uint8_t> encoded) {
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

// Pull exactly `len` bytes; 0 = clean EOF before any byte, -1 = error or
// torn read, 1 = got them all.
int read_exact(int fd, std::uint8_t* dst, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, dst + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return off == 0 ? 0 : -1;
    off += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> read_message(int fd) {
  std::uint8_t prefix[4];
  switch (read_exact(fd, prefix, sizeof prefix)) {
    case 0: return std::nullopt;  // clean EOF between messages
    case -1: throw serial::SerialError("wire: torn length prefix");
    default: break;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{prefix[i]} << (8 * i);
  if (len > kMaxWireMessage)
    throw serial::SerialError("wire: message length exceeds cap");
  std::vector<std::uint8_t> frame(len);
  if (len != 0 && read_exact(fd, frame.data(), len) != 1)
    throw serial::SerialError("wire: torn message body");
  return frame;
}

}  // namespace cgs::serve
