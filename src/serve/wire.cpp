#include "serve/wire.h"

#include <cstring>

#include "falcon/codec.h"
#include "serial/serial.h"

namespace cgs::serve {

namespace {

using net::length_prefixed;

// Shared field helpers for the frames that carry a signature: 40-byte
// nonce + u64-length-prefixed compressed s1.
void write_signature_fields(serial::Writer& w, std::uint64_t degree,
                            const std::array<std::uint8_t, 40>& nonce,
                            const std::vector<std::uint8_t>& s1_compressed) {
  w.u64(degree);
  w.bytes(std::span(nonce.data(), nonce.size()));
  w.u64(s1_compressed.size());
  w.bytes(s1_compressed);
}

void read_signature_fields(serial::Reader& r, std::uint64_t& degree,
                           std::array<std::uint8_t, 40>& nonce,
                           std::vector<std::uint8_t>& s1_compressed,
                           const char* what) {
  degree = r.u64();
  if (degree == 0 || degree > (1u << 14))
    throw serial::SerialError(std::string(what) + " degree out of range");
  const auto nonce_bytes = r.bytes(nonce.size());
  std::memcpy(nonce.data(), nonce_bytes.data(), nonce.size());
  const std::uint64_t len = r.u64();
  if (len > r.remaining())
    throw serial::SerialError(std::string(what) +
                              " s1 length overruns payload");
  const auto s1 = r.bytes(static_cast<std::size_t>(len));
  s1_compressed.assign(s1.begin(), s1.end());
}

// Optional trailing request-context block on request frames (see the
// header comment): v1 carries the trace id, v2 adds the deadline budget.
// Encoders emit the oldest version that holds the fields actually set —
// absent when both are zero — so the bytes match what a pre-context (or
// pre-deadline) peer would have produced whenever the newer fields are
// unused. The decoder accepts absence and both known versions, nothing
// else: a future ctx_version is a typed decode error, not silent
// misparsing.
constexpr std::uint8_t kTraceCtxVersion = 1;
constexpr std::uint8_t kDeadlineCtxVersion = 2;

struct RequestCtx {
  std::uint64_t trace_id = 0;
  std::uint64_t deadline_us = 0;
};

void write_request_ctx(serial::Writer& w, const RequestCtx& ctx) {
  if (ctx.deadline_us != 0) {
    w.u8(kDeadlineCtxVersion);
    w.u64(ctx.trace_id);
    w.u64(ctx.deadline_us);
  } else if (ctx.trace_id != 0) {
    w.u8(kTraceCtxVersion);
    w.u64(ctx.trace_id);
  }
}

RequestCtx read_request_ctx(serial::Reader& r, const char* what) {
  RequestCtx ctx;
  if (r.remaining() == 0) return ctx;  // pre-context peer: no block
  const std::uint8_t version = r.u8();
  if (version == kTraceCtxVersion) {
    ctx.trace_id = r.u64();
  } else if (version == kDeadlineCtxVersion) {
    ctx.trace_id = r.u64();
    ctx.deadline_us = r.u64();
  } else {
    throw serial::SerialError(std::string(what) +
                              " unknown request context version");
  }
  return ctx;
}

falcon::Signature signature_from_fields(
    std::uint64_t degree, const std::array<std::uint8_t, 40>& nonce,
    const std::vector<std::uint8_t>& s1_compressed, const char* what) {
  auto s1 = falcon::decompress_s1(s1_compressed,
                                  static_cast<std::size_t>(degree));
  if (!s1 || s1->size() != degree)
    throw serial::SerialError(std::string(what) +
                              " carries malformed s1 coding");
  falcon::Signature sig;
  sig.nonce = nonce;
  sig.s1 = std::move(*s1);
  return sig;
}

}  // namespace

std::vector<std::uint8_t> encode(const SignRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  w.u64(req.key_id);
  w.str(req.message);
  write_request_ctx(w, {req.trace_id, req.deadline_us});
  return length_prefixed(
      serial::wrap(serial::TypeTag::kSignRequest, w.take()));
}

SignRequestFrame decode_sign_request(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kSignRequest);
  serial::Reader r(payload);
  SignRequestFrame req;
  req.request_id = r.u64();
  req.key_id = r.u64();
  req.message = r.str();
  const RequestCtx ctx = read_request_ctx(r, "sign request");
  req.trace_id = ctx.trace_id;
  req.deadline_us = ctx.deadline_us;
  r.finish();
  return req;
}

SignResponseFrame SignResponseFrame::success(std::uint64_t request_id,
                                             const falcon::Signature& sig) {
  SignResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.degree = sig.s1.size();
  resp.nonce = sig.nonce;
  resp.s1_compressed = falcon::compress_s1(sig.s1);
  return resp;
}

SignResponseFrame SignResponseFrame::failure(std::uint64_t request_id,
                                             std::string error) {
  SignResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

falcon::Signature SignResponseFrame::to_signature() const {
  if (!ok)
    throw serial::SerialError("sign response is an error frame: " + error);
  return signature_from_fields(degree, nonce, s1_compressed,
                               "sign response");
}

std::vector<std::uint8_t> encode(const SignResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    write_signature_fields(w, resp.degree, resp.nonce, resp.s1_compressed);
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kSignResponse, w.take()));
}

SignResponseFrame decode_sign_response(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kSignResponse);
  serial::Reader r(payload);
  SignResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    read_signature_fields(r, resp.degree, resp.nonce, resp.s1_compressed,
                          "sign response");
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

VerifyRequestFrame VerifyRequestFrame::make(std::uint64_t request_id,
                                            std::uint64_t key_id,
                                            std::string message,
                                            const falcon::Signature& sig) {
  VerifyRequestFrame req;
  req.request_id = request_id;
  req.key_id = key_id;
  req.message = std::move(message);
  req.degree = sig.s1.size();
  req.nonce = sig.nonce;
  req.s1_compressed = falcon::compress_s1(sig.s1);
  return req;
}

falcon::Signature VerifyRequestFrame::to_signature() const {
  return signature_from_fields(degree, nonce, s1_compressed,
                               "verify request");
}

std::vector<std::uint8_t> encode(const VerifyRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  w.u64(req.key_id);
  w.str(req.message);
  write_signature_fields(w, req.degree, req.nonce, req.s1_compressed);
  write_request_ctx(w, {req.trace_id, req.deadline_us});
  return length_prefixed(
      serial::wrap(serial::TypeTag::kVerifyRequest, w.take()));
}

VerifyRequestFrame decode_verify_request(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kVerifyRequest);
  serial::Reader r(payload);
  VerifyRequestFrame req;
  req.request_id = r.u64();
  req.key_id = r.u64();
  req.message = r.str();
  read_signature_fields(r, req.degree, req.nonce, req.s1_compressed,
                        "verify request");
  const RequestCtx ctx = read_request_ctx(r, "verify request");
  req.trace_id = ctx.trace_id;
  req.deadline_us = ctx.deadline_us;
  r.finish();
  return req;
}

VerifyResponseFrame VerifyResponseFrame::verdict(std::uint64_t request_id,
                                                 bool accepted) {
  VerifyResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.accepted = accepted;
  return resp;
}

VerifyResponseFrame VerifyResponseFrame::failure(std::uint64_t request_id,
                                                 std::string error) {
  VerifyResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

std::vector<std::uint8_t> encode(const VerifyResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    w.boolean(resp.accepted);
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kVerifyResponse, w.take()));
}

VerifyResponseFrame decode_verify_response(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kVerifyResponse);
  serial::Reader r(payload);
  VerifyResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.accepted = r.boolean();
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

std::vector<std::uint8_t> encode(const KeygenRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  w.u64(req.degree);
  w.u64(req.seed);
  write_request_ctx(w, {req.trace_id, req.deadline_us});
  return length_prefixed(
      serial::wrap(serial::TypeTag::kKeygenRequest, w.take()));
}

KeygenRequestFrame decode_keygen_request(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kKeygenRequest);
  serial::Reader r(payload);
  KeygenRequestFrame req;
  req.request_id = r.u64();
  req.degree = r.u64();
  if (req.degree == 0 || req.degree > (1u << 14))
    throw serial::SerialError("keygen request degree out of range");
  req.seed = r.u64();
  const RequestCtx ctx = read_request_ctx(r, "keygen request");
  req.trace_id = ctx.trace_id;
  req.deadline_us = ctx.deadline_us;
  r.finish();
  return req;
}

KeygenResponseFrame KeygenResponseFrame::success(
    std::uint64_t request_id, std::uint64_t key_id,
    const std::vector<std::uint32_t>& h, std::size_t degree) {
  KeygenResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.key_id = key_id;
  resp.degree = degree;
  resp.h = h;
  return resp;
}

KeygenResponseFrame KeygenResponseFrame::failure(std::uint64_t request_id,
                                                 std::string error) {
  KeygenResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

std::vector<std::uint8_t> encode(const KeygenResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    CGS_CHECK_MSG(resp.h.size() == resp.degree,
                  "keygen response public key length mismatch");
    w.u64(resp.key_id);
    w.u64(resp.degree);
    // h lives in [0, q) with q = 12289 < 2^16: two bytes per coefficient.
    for (std::uint32_t v : resp.h) w.u16(static_cast<std::uint16_t>(v));
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kKeygenResponse, w.take()));
}

KeygenResponseFrame decode_keygen_response(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kKeygenResponse);
  serial::Reader r(payload);
  KeygenResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.key_id = r.u64();
    resp.degree = r.u64();
    if (resp.degree == 0 || resp.degree > (1u << 14))
      throw serial::SerialError("keygen response degree out of range");
    if (r.remaining() != 2 * resp.degree)
      throw serial::SerialError(
          "keygen response public key length mismatch");
    resp.h.reserve(static_cast<std::size_t>(resp.degree));
    for (std::uint64_t i = 0; i < resp.degree; ++i) {
      const std::uint16_t v = r.u16();
      if (v >= falcon::kQ)
        throw serial::SerialError(
            "keygen response public key coefficient out of range");
      resp.h.push_back(v);
    }
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

namespace {

StatsFormat stats_format_from(std::uint8_t v, const char* what) {
  if (v > static_cast<std::uint8_t>(StatsFormat::kJson))
    throw serial::SerialError(std::string(what) + " unknown stats format");
  return static_cast<StatsFormat>(v);
}

}  // namespace

std::vector<std::uint8_t> encode(const StatsRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  w.u8(static_cast<std::uint8_t>(req.format));
  return length_prefixed(
      serial::wrap(serial::TypeTag::kStatsRequest, w.take()));
}

StatsRequestFrame decode_stats_request(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kStatsRequest);
  serial::Reader r(payload);
  StatsRequestFrame req;
  req.request_id = r.u64();
  req.format = stats_format_from(r.u8(), "stats request");
  r.finish();
  return req;
}

StatsResponseFrame StatsResponseFrame::success(std::uint64_t request_id,
                                               StatsFormat format,
                                               std::string text) {
  StatsResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.format = format;
  resp.text = std::move(text);
  return resp;
}

StatsResponseFrame StatsResponseFrame::failure(std::uint64_t request_id,
                                               std::string error) {
  StatsResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

std::vector<std::uint8_t> encode(const StatsResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    w.u8(static_cast<std::uint8_t>(resp.format));
    w.str(resp.text);
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kStatsResponse, w.take()));
}

StatsResponseFrame decode_stats_response(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kStatsResponse);
  serial::Reader r(payload);
  StatsResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.format = stats_format_from(r.u8(), "stats response");
    resp.text = r.str();
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

HealthResponseFrame HealthResponseFrame::success(
    std::uint64_t request_id, std::vector<HealthComponentFrame> components) {
  HealthResponseFrame resp;
  resp.request_id = request_id;
  resp.ok = true;
  resp.healthy = true;
  for (const HealthComponentFrame& c : components)
    resp.healthy = resp.healthy && c.ok;
  resp.components = std::move(components);
  return resp;
}

HealthResponseFrame HealthResponseFrame::failure(std::uint64_t request_id,
                                                 std::string error) {
  HealthResponseFrame resp;
  resp.request_id = request_id;
  resp.error = std::move(error);
  return resp;
}

std::vector<std::uint8_t> encode(const HealthRequestFrame& req) {
  serial::Writer w;
  w.u64(req.request_id);
  return length_prefixed(
      serial::wrap(serial::TypeTag::kHealthRequest, w.take()));
}

HealthRequestFrame decode_health_request(std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kHealthRequest);
  serial::Reader r(payload);
  HealthRequestFrame req;
  req.request_id = r.u64();
  r.finish();
  return req;
}

std::vector<std::uint8_t> encode(const HealthResponseFrame& resp) {
  serial::Writer w;
  w.u64(resp.request_id);
  w.boolean(resp.ok);
  if (resp.ok) {
    w.boolean(resp.healthy);
    w.u32(static_cast<std::uint32_t>(resp.components.size()));
    for (const HealthComponentFrame& c : resp.components) {
      w.str(c.name);
      w.boolean(c.ok);
      const double v = c.value;
      w.f64_bits(std::span(&v, 1));
      w.str(c.detail);
    }
  } else {
    w.str(resp.error);
  }
  return length_prefixed(
      serial::wrap(serial::TypeTag::kHealthResponse, w.take()));
}

HealthResponseFrame decode_health_response(
    std::span<const std::uint8_t> frame) {
  const auto payload =
      serial::unwrap(frame, serial::TypeTag::kHealthResponse);
  serial::Reader r(payload);
  HealthResponseFrame resp;
  resp.request_id = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.healthy = r.boolean();
    const std::uint32_t count = r.u32();
    // Each component is at least 18 bytes (two u64 string lengths, a bool
    // and the f64): reject a count the remaining payload cannot hold
    // before reserving anything.
    if (count > r.remaining() / 18)
      throw serial::SerialError(
          "health response component count overruns payload");
    resp.components.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      HealthComponentFrame c;
      c.name = r.str();
      c.ok = r.boolean();
      c.value = r.f64_bits(1).front();
      c.detail = r.str();
      resp.components.push_back(std::move(c));
    }
  } else {
    resp.error = r.str();
  }
  r.finish();
  return resp;
}

}  // namespace cgs::serve
