#pragma once
// Wire protocol for the signing server: length-prefixed serial frames over
// a byte stream. Each message is
//
//   u32 LE total frame length | serial frame (magic CGSB | version | tag |
//   payload size | FNV-1a-64 checksum | payload)
//
// so a stream reader knows exactly how many bytes to pull before handing
// the blob to serial::unwrap, which then rejects foreign, version-skewed
// or corrupted messages before a single payload byte is parsed. Payloads
// are encoded with the serial Reader/Writer like every other artifact:
//
//   kSignRequest:    request_id u64 | key_id u64 | message str
//   kSignResponse:   request_id u64 | ok bool | on ok: degree u64, nonce
//                    40 bytes, compressed s1 (length-prefixed); else: error
//                    string
//   kVerifyRequest:  request_id u64 | key_id u64 | message str | degree
//                    u64 | nonce 40 bytes | compressed s1 (length-prefixed)
//   kVerifyResponse: request_id u64 | ok bool | on ok: accepted bool;
//                    else: error string
//   kKeygenRequest:  request_id u64 | degree u64 | seed u64
//   kKeygenResponse: request_id u64 | ok bool | on ok: key_id u64, degree
//                    u64, public h as degree u16 values; else: error string
//   kStatsRequest:   request_id u64 | format u8 (0 = Prometheus text,
//                    1 = JSON)
//   kStatsResponse:  request_id u64 | ok bool | on ok: format u8,
//                    exposition text str; else: error string
//   kHealthRequest:  request_id u64
//   kHealthResponse: request_id u64 | ok bool | on ok: healthy bool,
//                    component count u32, per component: name str | ok
//                    bool | value f64 bits | detail str; else: error string
//
// Request context (wire revisions 1 and 2 of this protocol, serial format
// version unchanged): kSignRequest, kVerifyRequest and kKeygenRequest may
// carry an OPTIONAL trailing block after the fields above —
//
//   ctx_version 1:  u8 (= 1) | trace_id u64
//   ctx_version 2:  u8 (= 2) | trace_id u64 | deadline_us u64
//
// A request without the block decodes exactly as before, so peers that
// never send context interoperate unchanged; encoders emit the OLDEST
// version that carries the fields actually set (no deadline -> v1, no
// trace either -> no block), so a frame is byte-identical to what an
// older peer would have produced whenever the newer fields are absent. A
// receiver that sees an unknown ctx_version rejects the frame. The block
// sits inside the checksummed payload, so a corrupted trace id or
// deadline is caught like any other field. `deadline_us` is the
// requester's RELATIVE latency budget (microseconds from server receipt,
// not a wall-clock timestamp — no clock sync assumed); work still queued
// when it lapses is answered with a typed expired shed, never run late
// and never dropped silently.
//
// A kVerifyResponse's `ok` says the request was processed ("this is a
// verdict"); `accepted` is the verdict itself — a rejected signature is a
// successful verification that answered no.
//
// Signatures travel compressed (falcon/codec.h Golomb-Rice coding), the
// same encoding a Falcon signature ships with anywhere else.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "falcon/sign.h"
#include "net/framing.h"

namespace cgs::serve {

/// Hard cap on a single wire message (length prefix included). Requests
/// are small; this bounds what a malformed or hostile length prefix can
/// make the reader allocate. (The transport framing itself lives in
/// net/framing.h; this is its cap.)
inline constexpr std::uint32_t kMaxWireMessage = net::kMaxFrameBytes;

struct SignRequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t key_id = 0;  // falcon::key_fingerprint of a registered key
  std::string message;
  /// Optional trace context: non-zero = propagate this id server-side
  /// (forces the server to sample the request's trace). 0 = absent, and
  /// the frame encodes byte-identically to the pre-trace wire format.
  std::uint64_t trace_id = 0;
  /// Optional latency budget in microseconds (see header note). 0 = none.
  std::uint64_t deadline_us = 0;
};

struct SignResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;  // set when !ok
  std::uint64_t degree = 0;
  std::array<std::uint8_t, 40> nonce{};
  std::vector<std::uint8_t> s1_compressed;

  static SignResponseFrame success(std::uint64_t request_id,
                                   const falcon::Signature& sig);
  static SignResponseFrame failure(std::uint64_t request_id,
                                   std::string error);

  /// Decompress back into a Signature; throws serial::SerialError when the
  /// response is an error frame or the compressed s1 is malformed.
  falcon::Signature to_signature() const;
};

struct VerifyRequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t key_id = 0;  // the key the signature claims to be under
  std::string message;
  std::uint64_t degree = 0;
  std::array<std::uint8_t, 40> nonce{};
  std::vector<std::uint8_t> s1_compressed;
  std::uint64_t trace_id = 0;  // optional trace context (see header note)
  std::uint64_t deadline_us = 0;  // optional latency budget (header note)

  static VerifyRequestFrame make(std::uint64_t request_id,
                                 std::uint64_t key_id, std::string message,
                                 const falcon::Signature& sig);

  /// Decompress back into a Signature; throws serial::SerialError when the
  /// compressed s1 is malformed.
  falcon::Signature to_signature() const;
};

struct VerifyResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;       // the request was processed (verdict below)
  bool accepted = false; // the verdict: signature verifies under the key
  std::string error;     // set when !ok

  static VerifyResponseFrame verdict(std::uint64_t request_id, bool accepted);
  static VerifyResponseFrame failure(std::uint64_t request_id,
                                     std::string error);
};

struct KeygenRequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t degree = 0;
  std::uint64_t seed = 0;  // keygen entropy: deterministic per seed
  std::uint64_t trace_id = 0;  // optional trace context (see header note)
  std::uint64_t deadline_us = 0;  // optional latency budget (header note)
};

struct KeygenResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;       // set when !ok
  std::uint64_t key_id = 0;  // registered fingerprint, valid in sign/verify
  std::uint64_t degree = 0;
  std::vector<std::uint32_t> h;  // public key, coefficient domain [0, q)

  static KeygenResponseFrame success(std::uint64_t request_id,
                                     std::uint64_t key_id,
                                     const std::vector<std::uint32_t>& h,
                                     std::size_t degree);
  static KeygenResponseFrame failure(std::uint64_t request_id,
                                     std::string error);
};

/// Exposition format selector carried by the stats frames.
enum class StatsFormat : std::uint8_t { kPrometheus = 0, kJson = 1 };

/// Ask the server for its metrics exposition — the wire face of
/// obs::prometheus_text / obs::json_text over the server's registry.
struct StatsRequestFrame {
  std::uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kPrometheus;
};

struct StatsResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;  // set when !ok
  StatsFormat format = StatsFormat::kPrometheus;
  std::string text;   // the exposition document

  static StatsResponseFrame success(std::uint64_t request_id,
                                    StatsFormat format, std::string text);
  static StatsResponseFrame failure(std::uint64_t request_id,
                                    std::string error);
};

/// One subsystem's readiness as reported in a health response. `value`
/// is the component's load measure (queue saturation in [0,1], reactor
/// loop lag in us, kvstore garbage ratio in [0,1]); `ok` is the
/// component's own verdict against its threshold.
struct HealthComponentFrame {
  std::string name;
  bool ok = true;
  double value = 0;
  std::string detail;
};

/// Ask the server whether it is ready for traffic. Answered inline by the
/// router (never queued), so a saturated dispatcher still reports its
/// saturation instead of timing out the probe.
struct HealthRequestFrame {
  std::uint64_t request_id = 0;
};

struct HealthResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;     // set when !ok
  bool healthy = false;  // AND over every component's ok
  std::vector<HealthComponentFrame> components;

  static HealthResponseFrame success(
      std::uint64_t request_id, std::vector<HealthComponentFrame> components);
  static HealthResponseFrame failure(std::uint64_t request_id,
                                     std::string error);
};

/// Encode as a length-prefixed serial frame ready to write to a stream.
std::vector<std::uint8_t> encode(const SignRequestFrame& req);
std::vector<std::uint8_t> encode(const SignResponseFrame& resp);
std::vector<std::uint8_t> encode(const VerifyRequestFrame& req);
std::vector<std::uint8_t> encode(const VerifyResponseFrame& resp);
std::vector<std::uint8_t> encode(const KeygenRequestFrame& req);
std::vector<std::uint8_t> encode(const KeygenResponseFrame& resp);
std::vector<std::uint8_t> encode(const StatsRequestFrame& req);
std::vector<std::uint8_t> encode(const StatsResponseFrame& resp);
std::vector<std::uint8_t> encode(const HealthRequestFrame& req);
std::vector<std::uint8_t> encode(const HealthResponseFrame& resp);

/// Decode the serial-frame part (no length prefix — the stream layer has
/// already consumed it). Throws serial::SerialError on malformed input.
SignRequestFrame decode_sign_request(std::span<const std::uint8_t> frame);
SignResponseFrame decode_sign_response(std::span<const std::uint8_t> frame);
VerifyRequestFrame decode_verify_request(std::span<const std::uint8_t> frame);
VerifyResponseFrame decode_verify_response(
    std::span<const std::uint8_t> frame);
KeygenRequestFrame decode_keygen_request(std::span<const std::uint8_t> frame);
KeygenResponseFrame decode_keygen_response(
    std::span<const std::uint8_t> frame);
StatsRequestFrame decode_stats_request(std::span<const std::uint8_t> frame);
StatsResponseFrame decode_stats_response(std::span<const std::uint8_t> frame);
HealthRequestFrame decode_health_request(std::span<const std::uint8_t> frame);
HealthResponseFrame decode_health_response(
    std::span<const std::uint8_t> frame);

/// Blocking stream I/O over a file descriptor (socket or pipe) — thin
/// aliases of net::write_frame / net::read_frame, kept so message-layer
/// callers read naturally. Same contracts: write_message is false on any
/// short write / error; read_message is nullopt on clean EOF at a message
/// boundary and throws serial::SerialError on a torn message or an
/// oversized length.
inline bool write_message(int fd, std::span<const std::uint8_t> encoded) {
  return net::write_frame(fd, encoded);
}
inline std::optional<std::vector<std::uint8_t>> read_message(int fd) {
  return net::read_frame(fd);
}

}  // namespace cgs::serve
