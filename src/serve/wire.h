#pragma once
// Wire protocol for the signing server: length-prefixed serial frames over
// a byte stream. Each message is
//
//   u32 LE total frame length | serial frame (magic CGSB | version | tag |
//   payload size | FNV-1a-64 checksum | payload)
//
// so a stream reader knows exactly how many bytes to pull before handing
// the blob to serial::unwrap, which then rejects foreign, version-skewed
// or corrupted messages before a single payload byte is parsed. Payloads
// are encoded with the serial Reader/Writer like every other artifact:
//
//   kSignRequest:  request_id u64 | key_id u64 | message str
//   kSignResponse: request_id u64 | ok bool | on ok: degree u64, nonce
//                  40 bytes, compressed s1 (length-prefixed); else: error
//                  string
//
// Signatures travel compressed (falcon/codec.h Golomb-Rice coding), the
// same encoding a Falcon signature ships with anywhere else.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "falcon/sign.h"

namespace cgs::serve {

/// Hard cap on a single wire message (length prefix included). Sign
/// requests are small; this bounds what a malformed or hostile length
/// prefix can make the reader allocate.
inline constexpr std::uint32_t kMaxWireMessage = 1u << 20;

struct SignRequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t key_id = 0;  // falcon::key_fingerprint of a registered key
  std::string message;
};

struct SignResponseFrame {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;  // set when !ok
  std::uint64_t degree = 0;
  std::array<std::uint8_t, 40> nonce{};
  std::vector<std::uint8_t> s1_compressed;

  static SignResponseFrame success(std::uint64_t request_id,
                                   const falcon::Signature& sig);
  static SignResponseFrame failure(std::uint64_t request_id,
                                   std::string error);

  /// Decompress back into a Signature; throws serial::SerialError when the
  /// response is an error frame or the compressed s1 is malformed.
  falcon::Signature to_signature() const;
};

/// Encode as a length-prefixed serial frame ready to write to a stream.
std::vector<std::uint8_t> encode(const SignRequestFrame& req);
std::vector<std::uint8_t> encode(const SignResponseFrame& resp);

/// Decode the serial-frame part (no length prefix — the stream layer has
/// already consumed it). Throws serial::SerialError on malformed input.
SignRequestFrame decode_sign_request(std::span<const std::uint8_t> frame);
SignResponseFrame decode_sign_response(std::span<const std::uint8_t> frame);

/// Blocking stream I/O over a file descriptor (socket or pipe).
/// write_message writes the already-encoded length-prefixed bytes; false
/// on any short write / error. read_message pulls one length prefix plus
/// frame; nullopt on clean EOF at a message boundary, throws
/// serial::SerialError on a torn message or an oversized length.
bool write_message(int fd, std::span<const std::uint8_t> encoded);
std::optional<std::vector<std::uint8_t>> read_message(int fd);

}  // namespace cgs::serve
