#include "stats/acceptance.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cgs::stats {

SignedPmf convolution_design_pmf(const gauss::ProbMatrix& base,
                                 const gauss::ConvolutionRecipe& recipe) {
  CGS_CHECK_MSG(base.params().support_size() == recipe.base.support_size() &&
                    base.precision() == recipe.base.precision,
                "matrix does not match the recipe's base params");
  const std::vector<double> q = signed_expected_probs(base);
  const auto maxv = static_cast<std::int32_t>(base.rows()) - 1;
  const std::int32_t k = recipe.k;

  // Support of x1 + k*x2: [-(1+k)maxv, (1+k)maxv]; the Bernoulli bump adds
  // one more value at the top when the center has a fractional part. A
  // crafted-but-checksummed recipe frame can carry a huge (k, support)
  // pair; bound the reach in 64 bits before sizing anything by it.
  const std::int64_t reach64 =
      (1 + static_cast<std::int64_t>(k)) * static_cast<std::int64_t>(maxv);
  CGS_CHECK_MSG(reach64 <= (std::int64_t{1} << 22),
                "design pmf support too large: stride " << k << " over "
                    << base.rows() << " rows");
  const auto reach = static_cast<std::int32_t>(reach64);
  const double frac = recipe.shift_frac;
  SignedPmf out;
  out.min_value = -reach + recipe.shift_int;
  out.probs.assign(static_cast<std::size_t>(2 * reach + 1) + (frac > 0.0),
                   0.0);

  // conv[(a + k*b) + reach] += q(a) * q(b), then mix the rounding stage:
  // p(v) = (1-frac) * conv(v - shift) + frac * conv(v - shift - 1).
  std::vector<double> conv(static_cast<std::size_t>(2 * reach + 1), 0.0);
  for (std::int32_t a = -maxv; a <= maxv; ++a) {
    const double qa = q[static_cast<std::size_t>(a + maxv)];
    if (qa == 0.0) continue;
    for (std::int32_t b = -maxv; b <= maxv; ++b) {
      const double qb = q[static_cast<std::size_t>(b + maxv)];
      conv[static_cast<std::size_t>(a + k * b + reach)] += qa * qb;
    }
  }
  for (std::size_t i = 0; i < conv.size(); ++i) {
    out.probs[i] += (1.0 - frac) * conv[i];
    if (frac > 0.0) out.probs[i + 1] += frac * conv[i];
  }
  return out;
}

SignedPmf ideal_gaussian_pmf(double sigma, double center,
                             std::int32_t min_value, std::int32_t max_value) {
  CGS_CHECK(sigma > 0.0 && max_value >= min_value);
  SignedPmf out;
  out.min_value = min_value;
  out.probs.resize(static_cast<std::size_t>(max_value - min_value) + 1);
  double mass = 0.0;
  for (std::int32_t v = min_value; v <= max_value; ++v) {
    const double d = (static_cast<double>(v) - center) / sigma;
    const double p = std::exp(-0.5 * d * d);
    out.probs[static_cast<std::size_t>(v - min_value)] = p;
    mass += p;
  }
  for (double& p : out.probs) p /= mass;
  return out;
}

double renyi_divergence(const SignedPmf& p, const SignedPmf& q, double alpha) {
  CGS_CHECK_MSG(alpha > 1.0, "Renyi order must be > 1");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.probs.size(); ++i) {
    const double pv = p.probs[i];
    if (pv == 0.0) continue;
    const double qv = q.at(p.min_value + static_cast<std::int32_t>(i));
    CGS_CHECK_MSG(qv > 0.0, "P has mass outside Q's support");
    sum += std::pow(pv, alpha) / std::pow(qv, alpha - 1.0);
  }
  return std::pow(sum, 1.0 / (alpha - 1.0));
}

std::string AcceptanceResult::describe() const {
  std::ostringstream os;
  os << (accepted() ? "ACCEPTED" : "REJECTED") << " [chi2 stat=" << chi.statistic
     << " dof=" << chi.dof << " p=" << chi.p_value
     << (chi_ok ? " ok" : " FAIL") << "; Renyi2=" << renyi
     << (renyi_ok ? " ok" : " FAIL") << "]";
  return os.str();
}

AcceptanceResult accept_convolution(std::span<const std::int32_t> samples,
                                    const gauss::ProbMatrix& base,
                                    const gauss::ConvolutionRecipe& recipe,
                                    const AcceptanceBounds& bounds) {
  CGS_CHECK_MSG(!samples.empty(), "acceptance needs samples");
  const SignedPmf design = convolution_design_pmf(base, recipe);

  std::vector<std::uint64_t> observed(design.probs.size(), 0);
  for (std::int32_t s : samples) {
    const std::int64_t i = static_cast<std::int64_t>(s) - design.min_value;
    CGS_CHECK_MSG(i >= 0 && i < static_cast<std::int64_t>(observed.size()),
                  "sample " << s << " outside the design support");
    ++observed[static_cast<std::size_t>(i)];
  }

  AcceptanceResult r;
  r.chi = chi_square(observed, design.probs);
  r.chi_ok = r.chi.p_value >= bounds.min_chi_p;

  const SignedPmf ideal =
      ideal_gaussian_pmf(recipe.achieved_sigma, recipe.target_center,
                         design.min_value, design.max_value());
  r.renyi = renyi_divergence(design, ideal, bounds.renyi_alpha);
  r.renyi_ok = r.renyi <= bounds.max_renyi;
  return r;
}

}  // namespace cgs::stats
