#pragma once
// Acceptance testing for the convolution service: does a batch of convolved
// samples actually follow D_{sigma, c}? Two checks, combined:
//
//  1. chi-square of the observed histogram against the *design* pmf — the
//     exact distribution the pipeline is built to produce (base signed pmf
//     convolved with its k-strided copy, integer-shifted, mixed by the
//     Bernoulli(frac) rounding stage). This catches implementation bugs:
//     wrong stride, wrong shift, broken rounding, biased streams.
//  2. Renyi divergence of that design pmf against the ideal discrete
//     Gaussian at (achieved sigma, c) — an analytic closeness certificate
//     in the measure the paper's §7 points to ([28]): it catches *planning*
//     bugs (a base below smoothing, a sigma mis-reported) that the
//     self-consistent chi-square can never see.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gauss/probmatrix.h"
#include "gauss/recipe.h"
#include "stats/chisquare.h"

namespace cgs::stats {

/// A pmf over the contiguous signed support [min_value, min_value + size).
struct SignedPmf {
  std::int32_t min_value = 0;
  std::vector<double> probs;

  std::int32_t max_value() const {
    return min_value + static_cast<std::int32_t>(probs.size()) - 1;
  }
  double at(std::int32_t v) const {
    const std::int64_t i = static_cast<std::int64_t>(v) - min_value;
    return (i < 0 || i >= static_cast<std::int64_t>(probs.size()))
               ? 0.0
               : probs[static_cast<std::size_t>(i)];
  }
};

/// The exact pmf of x1 + k*x2 + shift_int + Bernoulli(shift_frac) with
/// x1, x2 drawn from `base`'s signed distribution (conditional on no
/// restart, matching what the engine emits).
SignedPmf convolution_design_pmf(const gauss::ProbMatrix& base,
                                 const gauss::ConvolutionRecipe& recipe);

/// Discrete Gaussian D_{sigma, center} restricted to [min_value, max_value]
/// and renormalized over that range.
SignedPmf ideal_gaussian_pmf(double sigma, double center,
                             std::int32_t min_value, std::int32_t max_value);

/// Renyi divergence R_alpha(P || Q), alpha > 1, over P's support; requires
/// Q > 0 wherever P > 0.
double renyi_divergence(const SignedPmf& p, const SignedPmf& q, double alpha);

/// Tabulated acceptance bounds. The Renyi bound is calibrated for bases at
/// or above eta_eps(Z): the convolution then tracks the ideal Gaussian to
/// R_2 - 1 well below 1e-4, while a ~1%-misplanned sigma already exceeds
/// the default bound.
struct AcceptanceBounds {
  double min_chi_p = 1e-4;     // reject implementation-level mismatch
  double renyi_alpha = 2.0;
  double max_renyi = 1.0 + 1e-3;  // reject planning-level mismatch
};

struct AcceptanceResult {
  ChiSquareResult chi;   // observed vs design pmf
  double renyi = 0.0;    // design pmf vs ideal D_{achieved sigma, c}
  bool chi_ok = false;
  bool renyi_ok = false;
  bool accepted() const { return chi_ok && renyi_ok; }
  std::string describe() const;
};

/// Run both checks on a sample batch produced under `recipe` from `base`
/// (which must be the matrix of recipe.base).
AcceptanceResult accept_convolution(std::span<const std::int32_t> samples,
                                    const gauss::ProbMatrix& base,
                                    const gauss::ConvolutionRecipe& recipe,
                                    const AcceptanceBounds& bounds = {});

}  // namespace cgs::stats
