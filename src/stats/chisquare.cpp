#include "stats/chisquare.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace cgs::stats {

std::string Histogram::render(int width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (const auto& [v, c] : counts_) peak = std::max(peak, c);
  for (const auto& [v, c] : counts_) {
    const int bar = static_cast<int>(
        static_cast<double>(c) / static_cast<double>(peak) * width);
    os << (v < 0 ? "" : " ") << v << "\t" << c << "\t";
    for (int i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

namespace {

// Lanczos log-gamma (Numerical Recipes coefficients).
double log_gamma(double x) {
  static const double cof[6] = {76.18009172947146,  -86.50532032941677,
                                24.01409824083091,  -1.231739572450155,
                                0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (double c : cof) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Regularized lower incomplete gamma P(a,x) by series; Q by continued
// fraction; standard split at x < a+1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ++ap;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double gamma_q(double a, double x) {
  CGS_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

ChiSquareResult chi_square(const std::vector<std::uint64_t>& observed,
                           const std::vector<double>& expected_probs,
                           double min_expected) {
  CGS_CHECK(observed.size() == expected_probs.size());
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  CGS_CHECK_MSG(total > 0, "empty observation set");

  // Pool adjacent low-expectation cells (the Gaussian tails).
  std::vector<double> exp_pooled;
  std::vector<double> obs_pooled;
  double e_acc = 0.0, o_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    e_acc += expected_probs[i] * static_cast<double>(total);
    o_acc += static_cast<double>(observed[i]);
    if (e_acc >= min_expected) {
      exp_pooled.push_back(e_acc);
      obs_pooled.push_back(o_acc);
      e_acc = o_acc = 0.0;
    }
  }
  if (e_acc > 0.0 || o_acc > 0.0) {
    if (exp_pooled.empty()) {
      exp_pooled.push_back(e_acc);
      obs_pooled.push_back(o_acc);
    } else {
      exp_pooled.back() += e_acc;
      obs_pooled.back() += o_acc;
    }
  }

  ChiSquareResult r;
  for (std::size_t i = 0; i < exp_pooled.size(); ++i) {
    if (exp_pooled[i] <= 0.0) {
      CGS_CHECK_MSG(obs_pooled[i] == 0.0,
                    "observed mass where expected probability is zero");
      continue;
    }
    const double d = obs_pooled[i] - exp_pooled[i];
    r.statistic += d * d / exp_pooled[i];
    ++r.dof;
  }
  r.dof = std::max(1, r.dof - 1);
  r.p_value = gamma_q(r.dof / 2.0, r.statistic / 2.0);
  return r;
}

std::vector<double> signed_expected_probs(const gauss::ProbMatrix& m) {
  const auto maxv = static_cast<std::int64_t>(m.rows()) - 1;
  // Conditional on landing in the table (restarts discard the deficit).
  double mass = 0.0;
  for (std::size_t v = 0; v < m.rows(); ++v)
    mass += m.probability(v).to_double();
  std::vector<double> probs(static_cast<std::size_t>(2 * maxv + 1), 0.0);
  for (std::int64_t v = -maxv; v <= maxv; ++v) {
    const double p_mag =
        m.probability(static_cast<std::size_t>(std::llabs(v))).to_double() /
        mass;
    probs[static_cast<std::size_t>(v + maxv)] = (v == 0) ? p_mag : p_mag / 2.0;
  }
  return probs;
}

ChiSquareResult chi_square_signed(const Histogram& h,
                                  const gauss::ProbMatrix& m) {
  const auto maxv = static_cast<std::int64_t>(m.rows()) - 1;
  std::vector<std::uint64_t> obs(static_cast<std::size_t>(2 * maxv + 1), 0);
  for (const auto& [v, c] : h.counts()) {
    CGS_CHECK_MSG(std::llabs(v) <= maxv, "sample outside the support");
    obs[static_cast<std::size_t>(v + maxv)] = c;
  }
  return chi_square(obs, signed_expected_probs(m));
}

}  // namespace cgs::stats
