#pragma once
// Goodness-of-fit machinery for validating sampler output distributions
// (Fig. 5's histograms, plus the chi-square checks behind them).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gauss/probmatrix.h"

namespace cgs::stats {

/// Histogram over signed sample values.
class Histogram {
 public:
  void add(std::int32_t v) { ++counts_[v]; ++total_; }
  std::uint64_t count(std::int32_t v) const {
    auto it = counts_.find(v);
    return it == counts_.end() ? 0 : it->second;
  }
  std::uint64_t total() const { return total_; }
  const std::map<std::int32_t, std::uint64_t>& counts() const {
    return counts_;
  }

  /// ASCII bar rendering (Fig. 5 style).
  std::string render(int width = 60) const;

 private:
  std::map<std::int32_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

struct ChiSquareResult {
  double statistic = 0.0;
  int dof = 0;
  double p_value = 0.0;  // upper-tail probability
};

/// Chi-square test of observed counts against expected probabilities.
/// Cells with expected count below `min_expected` are pooled into their
/// neighbour to keep the approximation sound.
ChiSquareResult chi_square(const std::vector<std::uint64_t>& observed,
                           const std::vector<double>& expected_probs,
                           double min_expected = 5.0);

/// Expected signed-distribution probabilities from a probability matrix
/// (conditional on no restart): index i maps to value i - max_value.
std::vector<double> signed_expected_probs(const gauss::ProbMatrix& m);

/// Chi-square of a signed-sample histogram against the matrix distribution.
ChiSquareResult chi_square_signed(const Histogram& h,
                                  const gauss::ProbMatrix& m);

/// Regularized upper incomplete gamma Q(a, x) — chi-square tail probability
/// is Q(dof/2, stat/2).
double gamma_q(double a, double x);

}  // namespace cgs::stats
