#include "stats/divergence.h"

#include <cmath>

#include "common/check.h"

namespace cgs::stats {

namespace {

// Folded-magnitude pmfs as doubles: (truncated, exact) per magnitude, plus
// total truncated mass for conditioning.
struct Pmfs {
  std::vector<double> trunc;
  std::vector<double> exact;
  double trunc_mass = 0.0;
};

Pmfs pmfs(const gauss::ProbMatrix& m) {
  Pmfs p;
  p.trunc.reserve(m.rows());
  p.exact.reserve(m.rows());
  for (std::size_t v = 0; v < m.rows(); ++v) {
    p.trunc.push_back(m.probability(v).to_double());
    p.exact.push_back(m.exact_probability(v).to_double());
    p.trunc_mass += p.trunc.back();
  }
  return p;
}

}  // namespace

double statistical_distance(const gauss::ProbMatrix& m, bool conditional) {
  const Pmfs p = pmfs(m);
  const double scale = conditional ? 1.0 / p.trunc_mass : 1.0;
  double sd = 0.0;
  for (std::size_t v = 0; v < p.trunc.size(); ++v)
    sd += std::fabs(p.trunc[v] * scale - p.exact[v]);
  // Mass of the exact distribution beyond the tail cut contributes fully.
  double exact_mass = 0.0;
  for (double q : p.exact) exact_mass += q;
  sd += std::max(0.0, 1.0 - exact_mass);
  return sd / 2.0;
}

double renyi_divergence(const gauss::ProbMatrix& m, double alpha) {
  CGS_CHECK_MSG(alpha > 1.0, "Renyi order must be > 1");
  const Pmfs p = pmfs(m);
  double sum = 0.0;
  for (std::size_t v = 0; v < p.trunc.size(); ++v) {
    const double pv = p.trunc[v] / p.trunc_mass;  // sampled distribution
    const double qv = p.exact[v];
    if (pv == 0.0) continue;
    CGS_CHECK_MSG(qv > 0.0, "sampled mass outside exact support");
    sum += std::pow(pv, alpha) / std::pow(qv, alpha - 1.0);
  }
  return std::pow(sum, 1.0 / (alpha - 1.0));
}

double max_log_distance(const gauss::ProbMatrix& m) {
  const Pmfs p = pmfs(m);
  double worst = 0.0;
  for (std::size_t v = 0; v < p.trunc.size(); ++v) {
    const double pv = p.trunc[v] / p.trunc_mass;
    const double qv = p.exact[v];
    if (pv == 0.0 || qv == 0.0) continue;
    worst = std::max(worst, std::fabs(std::log(pv) - std::log(qv)));
  }
  return worst;
}

int required_precision_bits(const gauss::GaussianParams& params, int lambda) {
  // SD <= support * 2^-n (row truncation) — solve for n with a 1-bit margin.
  const double support = static_cast<double>(params.support_size());
  return lambda + static_cast<int>(std::ceil(std::log2(support))) + 1;
}

}  // namespace cgs::stats
