#pragma once
// Distance measures between the truncated sampled distribution and the ideal
// discrete Gaussian: statistical distance, Renyi divergence, and max-log
// distance — the measures the paper's §7 points to for reducing precision
// requirements ([25] max-log, [28] Renyi).

#include <vector>

#include "gauss/probmatrix.h"

namespace cgs::stats {

/// 1/2 * sum |p - q| over the signed support (q = exact, p = truncated,
/// conditioned or not per `conditional`).
double statistical_distance(const gauss::ProbMatrix& m,
                            bool conditional = false);

/// Renyi divergence R_a(P || Q) of order a > 1 between the truncated
/// (sampled) distribution P and the exact distribution Q, over the common
/// support. Returns the divergence value (not its log).
double renyi_divergence(const gauss::ProbMatrix& m, double alpha);

/// Max-log distance: max_v |ln p(v) - ln q(v)| over the common support.
double max_log_distance(const gauss::ProbMatrix& m);

/// Precision bits n needed so the statistical distance of an n-bit
/// truncation stays below 2^-lambda, estimated from the matrix dimensions
/// (support * 2^-n bound).
int required_precision_bits(const gauss::GaussianParams& params, int lambda);

}  // namespace cgs::stats
