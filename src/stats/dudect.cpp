#include "stats/dudect.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/cycles.h"

namespace cgs::stats {

std::string WelchResult::describe() const {
  std::ostringstream os;
  os << "t=" << t << " (n0=" << n0 << " mean0=" << mean0 << ", n1=" << n1
     << " mean1=" << mean1 << ") => " << (leaky() ? "LEAKY" : "ok");
  return os.str();
}

void WelchTTest::push(int cls, double value) {
  CGS_CHECK(cls == 0 || cls == 1);
  auto& n = n_[cls];
  auto& mean = mean_[cls];
  auto& m2 = m2_[cls];
  ++n;
  const double d = value - mean;
  mean += d / static_cast<double>(n);
  m2 += d * (value - mean);
}

WelchResult WelchTTest::result() const {
  WelchResult r;
  r.n0 = n_[0];
  r.n1 = n_[1];
  r.mean0 = mean_[0];
  r.mean1 = mean_[1];
  if (n_[0] < 2 || n_[1] < 2) return r;
  const double var0 = m2_[0] / static_cast<double>(n_[0] - 1);
  const double var1 = m2_[1] / static_cast<double>(n_[1] - 1);
  const double denom = std::sqrt(var0 / static_cast<double>(n_[0]) +
                                 var1 / static_cast<double>(n_[1]));
  r.t = denom > 0 ? (mean_[0] - mean_[1]) / denom : 0.0;
  return r;
}

WelchResult dudect(const std::function<void(int)>& fn,
                   const DudectConfig& cfg) {
  CGS_CHECK(cfg.keep_percentile > 0.0 && cfg.keep_percentile <= 1.0);
  // Deterministic class schedule (LCG) — interleaving defeats drift.
  std::uint64_t lcg = 0x853c49e6748fea9bull;
  auto next_cls = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int>(lcg >> 63);
  };

  for (std::size_t i = 0; i < cfg.warmup; ++i) fn(next_cls());

  std::vector<std::pair<int, double>> meas;
  meas.reserve(cfg.measurements);
  for (std::size_t i = 0; i < cfg.measurements; ++i) {
    const int cls = next_cls();
    const std::uint64_t t0 = cycles_begin();
    fn(cls);
    const std::uint64_t t1 = cycles_end();
    meas.emplace_back(cls, static_cast<double>(t1 - t0));
  }

  // Percentile cropping: discard the slowest tail (interrupts, SMIs).
  std::vector<double> times;
  times.reserve(meas.size());
  for (const auto& [c, t] : meas) times.push_back(t);
  std::sort(times.begin(), times.end());
  const double cutoff =
      times[static_cast<std::size_t>(static_cast<double>(times.size() - 1) *
                                     cfg.keep_percentile)];

  WelchTTest test;
  for (const auto& [c, t] : meas)
    if (t <= cutoff) test.push(c, t);
  return test.result();
}

}  // namespace cgs::stats
