#pragma once
// dudect-style timing-leakage detection (Reparaz, Balasch, Verbauwhede,
// DATE 2017) — the tool the paper used to affirm constant-time behaviour.
// Two input classes are measured interleaved; Welch's t-test on the timing
// populations flags a data-dependent timing difference when |t| exceeds
// ~4.5. Constant-time code stays near |t| ~ 1.

#include <cstdint>
#include <functional>
#include <string>

namespace cgs::stats {

struct WelchResult {
  double t = 0.0;        // Welch t statistic
  double mean0 = 0.0, mean1 = 0.0;
  std::size_t n0 = 0, n1 = 0;
  bool leaky(double threshold = 4.5) const {
    return t > threshold || t < -threshold;
  }
  std::string describe() const;
};

/// Online Welch accumulator.
class WelchTTest {
 public:
  void push(int cls, double value);
  WelchResult result() const;

 private:
  double mean_[2] = {0, 0};
  double m2_[2] = {0, 0};
  std::size_t n_[2] = {0, 0};
};

struct DudectConfig {
  std::size_t measurements = 20000;
  std::size_t warmup = 500;
  /// Drop measurements above this percentile (interrupt noise), 0 < p <= 1.
  double keep_percentile = 0.95;
};

/// Measure `fn(cls)` with cls alternating pseudo-randomly between 0 and 1.
/// The callable runs the operation under test with class-dependent input
/// (e.g. class 0: fixed random bits, class 1: fresh random bits).
WelchResult dudect(const std::function<void(int cls)>& fn,
                   const DudectConfig& cfg = {});

}  // namespace cgs::stats
